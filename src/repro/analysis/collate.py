"""Collate benchmark reports into one REPORT.md.

After ``pytest benchmarks/ --benchmark-only`` (or ``python -m repro
reproduce``), every experiment leaves a text report (and some an SVG
figure) under ``benchmarks/reports/``.  This module stitches them into a
single reviewable document, ordered by the experiment registry.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS

_HEADER = """\
# Reproduction report

Generated from `benchmarks/reports/` — one section per paper table/figure
(see EXPERIMENTS.md for paper-vs-measured commentary and
`repro/experiments.py` for the registry).
"""


def collate_reports(
    reports_dir: Path, dest: Optional[Path] = None
) -> str:
    """Assemble REPORT.md from the per-experiment report files.

    Experiments without a report file yet are listed as pending.
    """
    reports_dir = Path(reports_dir)
    if not reports_dir.is_dir():
        raise ConfigurationError(f"{reports_dir} is not a directory")
    sections: List[str] = [_HEADER]
    seen = set()
    for exp in EXPERIMENTS.values():
        stem = exp.bench.replace("bench_", "").replace(".py", "")
        candidates = sorted(reports_dir.glob(f"{stem}*.txt"))
        sections.append(f"\n## {exp.exp_id} — {exp.title}\n")
        sections.append(f"*workload:* {exp.workload}\n")
        if not candidates:
            sections.append("*(pending — run `python -m repro reproduce`)*\n")
            continue
        for path in candidates:
            seen.add(path.name)
            sections.append("```\n" + path.read_text().rstrip() + "\n```\n")
        for fig in sorted(reports_dir.glob(f"{stem}*.svg")):
            sections.append(f"![{exp.exp_id}]({fig.name})\n")
    extras = sorted(
        p.name for p in reports_dir.glob("*.txt") if p.name not in seen
    )
    if extras:
        sections.append("\n## Unregistered reports\n")
        for name in extras:
            sections.append(f"* {name}\n")
    text = "\n".join(sections)
    if dest is not None:
        Path(dest).write_text(text)
    return text
