"""Run-level telemetry reports for pooled sweeps (``python -m repro report``).

Takes the :class:`~repro.runner.telemetry.RunTelemetry` a pooled sweep
collected — one :class:`~repro.runner.telemetry.TelemetrySnapshot` per
executed cell plus the parent's cache counters — and turns it into:

* :func:`build_report` — a JSON-able dict (schema :data:`SCHEMA`) with
  the merged metrics, per-policy aggregates (decision latency, bytes
  sent, compression core claims), per-worker load split and cache
  effectiveness;
* :func:`render_report` — the terminal rendering of the same data.

The report answers the questions a sweep leaves behind: which policy
spent its time where, did the pool balance, did the cache help.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.analysis.tables import render_table
from repro.runner.telemetry import RunTelemetry

__all__ = ["SCHEMA", "build_report", "render_report", "write_report"]

#: Schema tag of ``report.json`` (bump on breaking layout changes).
SCHEMA = "repro-report-v1"


def _metric(dump: Dict[str, Dict[str, Any]], name: str, field: str = "value"):
    entry = dump.get(name)
    return entry.get(field, 0) if entry else 0


def _aggregate(snapshots) -> Dict[str, Any]:
    """Fold a snapshot list into one aggregate block (merged metrics +
    summed wall/CPU)."""
    reg_dump: Dict[str, Dict[str, Any]] = {}
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry(enabled=True)
    wall = cpu = 0.0
    records = 0
    kernels = set()
    for snap in snapshots:
        reg.merge(snap.metrics)
        wall += snap.wall_s
        cpu += snap.cpu_s
        if snap.recorder:
            records += int(snap.recorder.get("records", 0))
        if getattr(snap, "kernel", None):
            kernels.add(snap.kernel)
    reg_dump = reg.dump()
    decisions = _metric(reg_dump, "engine.decisions")
    latency = reg_dump.get("engine.decision_latency", {})
    claims = _metric(reg_dump, "engine.core_claims")
    return {
        "cells": len(snapshots),
        "wall_s": round(wall, 6),
        "cpu_s": round(cpu, 6),
        # The *resolved* decision-kernel backend(s) the cells actually
        # executed under (a compiled->threaded fallback shows up here,
        # not just in the timings).
        "kernels": sorted(kernels),
        "decisions": int(decisions),
        # Explicit nulls, not 0.0: a cell with zero decisions (empty
        # workload, or metrics disabled) has no latency to average, and
        # "0us" would read as a measurement.
        "decision_latency_mean_s": (
            float(latency["sum"]) / int(latency["count"])
            if latency.get("count") else None
        ),
        "bytes_sent": float(_metric(reg_dump, "engine.bytes_sent")),
        "flow_completions": int(_metric(reg_dump, "engine.flow_completions")),
        "core_claims": int(claims),
        "core_claims_per_decision": (
            float(claims) / float(decisions) if decisions else None
        ),
        "recorder_records": records,
        "metrics": reg_dump,
    }


def build_report(
    telemetry: RunTelemetry,
    grid: Dict[str, Any],
    label: str = "",
    window: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the ``report.json`` payload from merged telemetry.

    ``window`` is a :meth:`repro.obs.window.RollingWindow.snapshot`
    from a streamed run's telemetry plane; pooled sweeps have no live
    window, so the key is an explicit ``null`` (rendered ``n/a``) —
    never absent, never zeros.
    """
    per_policy = {
        policy: _aggregate(snaps)
        for policy, snaps in sorted(telemetry.by_policy().items())
    }
    workers_detail = {
        str(pid): {
            "cells": int(w["cells"]),
            "wall_s": round(w["wall_s"], 6),
            "cpu_s": round(w["cpu_s"], 6),
            "peak_rss_kb": int(w["peak_rss_kb"]),
        }
        for pid, w in sorted(telemetry.worker_stats().items())
    }
    executed = telemetry.cells - telemetry.cached_cells
    return {
        "schema": SCHEMA,
        "label": label,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "grid": grid,
        "cells": telemetry.cells,
        "executed_cells": executed,
        "cached_cells": telemetry.cached_cells,
        "workers": telemetry.workers,
        "wall_s": round(telemetry.wall_s, 6),
        # An all-cache-hit sweep executes nothing: no snapshots, no load
        # to balance — skew is undefined, not 0x.
        "skew": (
            round(telemetry.skew(), 4) if telemetry.snapshots else None
        ),
        "cache": {
            "hits": telemetry.cache_hits,
            "misses": telemetry.cache_misses,
            "corrupt_dropped": telemetry.cache_corrupt,
        },
        "totals": telemetry.merged_metrics().dump(),
        "policies": per_policy,
        "workers_detail": workers_detail,
        "window": window,
    }


def _fmt(value, spec: str, suffix: str = "") -> str:
    """Format a possibly-null report field (``None`` renders as n/a)."""
    return "n/a" if value is None else f"{value:{spec}}{suffix}"


def render_report(report: Dict[str, Any]) -> str:
    """Terminal summary of one :func:`build_report` payload."""
    lines = []
    lines.append(render_table(
        ["policy", "cells", "wall", "decisions", "latency (mean)",
         "bytes sent", "claims/decision", "kernel"],
        [
            [
                policy,
                str(p["cells"]),
                f"{p['wall_s']:.2f}s",
                str(p["decisions"]),
                _fmt(
                    None if p["decision_latency_mean_s"] is None
                    else p["decision_latency_mean_s"] * 1e6,
                    ".0f", "us",
                ),
                f"{p['bytes_sent']:.3g}",
                _fmt(p["core_claims_per_decision"], ".2f"),
                ",".join(p.get("kernels") or []) or "n/a",
            ]
            for policy, p in report["policies"].items()
        ],
        title=(
            f"sweep telemetry — {report['cells']} cells "
            f"({report['executed_cells']} executed, "
            f"{report['cached_cells']} cached), "
            f"{report['workers']} workers, wall {report['wall_s']:.2f}s"
        ),
    ))
    if report["workers_detail"]:
        lines.append("")
        lines.append(render_table(
            ["worker pid", "cells", "busy", "cpu", "peak rss"],
            [
                [
                    pid,
                    str(w["cells"]),
                    f"{w['wall_s']:.2f}s",
                    f"{w['cpu_s']:.2f}s",
                    f"{w['peak_rss_kb'] / 1024:.0f}MB",
                ]
                for pid, w in report["workers_detail"].items()
            ],
            title=(
                "worker load "
                f"(skew {_fmt(report['skew'], '.2f', 'x')} max/mean)"
            ),
        ))
    cache = report["cache"]
    total = cache["hits"] + cache["misses"]
    hit_pct = 100.0 * cache["hits"] / total if total else 0.0
    lines.append(
        f"\ncache: {cache['hits']} hits / {cache['misses']} misses "
        f"({hit_pct:.0f}% hit rate"
        + (
            f", {cache['corrupt_dropped']} corrupt dropped)"
            if cache["corrupt_dropped"] else ")"
        )
    )
    window = report.get("window")
    if window is None:
        lines.append("live window: n/a (telemetry plane off)")
    else:
        rates = window.get("rates_per_s") or {}
        tick_wall = window.get("tick_wall_s") or {}

        def rate(key):
            v = rates.get(key)
            return "n/a" if v is None else f"{v:,.1f}/s"

        lines.append(
            f"live window ({window.get('ticks', 0)} ticks, "
            f"{window.get('span_wall_s', 0.0):.1f}s): "
            f"admitted {rate('flows_admitted')}, "
            f"retired {rate('flows_retired')}, "
            f"restamped {rate('restamped')}, "
            f"tick p95 {tick_wall.get('p95', 0.0) * 1e3:.1f}ms"
        )
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path) -> Path:
    """Write the payload as ``report.json``-style output; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
