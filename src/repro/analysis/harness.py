"""Experiment harness: run workloads under many policies, compare results.

Every benchmark in ``benchmarks/`` boils down to "run this workload under
these schedulers on this fabric and report a metric" — this module is that
loop.  Workloads (lists of :class:`~repro.core.coflow.Coflow`) are read-only
to the engine, so one workload can be replayed under every policy for a
perfectly paired comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow
from repro.core.scheduler import Scheduler
from repro.core.simulator import SimulationResult, SliceSimulator
from repro.cpu.cores import BackgroundFn, CpuModel
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import make_scheduler
from repro.units import gbps


@dataclass
class ExperimentSetup:
    """Shared environment of one experiment (fabric + CPU + codec)."""

    num_ports: int = 16
    bandwidth: float = gbps(1)
    slice_len: float = 0.01
    cores_per_node: int = 4
    codec: str = "lz4"
    size_dependent_ratio: bool = True
    background: Optional[BackgroundFn] = None
    sample_cpu: bool = False

    def __post_init__(self) -> None:
        if self.num_ports <= 0 or self.bandwidth <= 0:
            raise ConfigurationError("num_ports and bandwidth must be positive")

    def with_(self, **kw) -> "ExperimentSetup":
        """A modified copy (for parameter sweeps)."""
        return replace(self, **kw)

    def build_simulator(self, scheduler: Scheduler, obs=None) -> SliceSimulator:
        fabric = BigSwitch(self.num_ports, self.bandwidth)
        cpu = CpuModel(
            self.num_ports,
            cores_per_node=self.cores_per_node,
            background=self.background,
        )
        compression = (
            CompressionEngine(self.codec, size_dependent=self.size_dependent_ratio)
            if scheduler.uses_compression
            else None
        )
        return SliceSimulator(
            fabric,
            scheduler,
            slice_len=self.slice_len,
            cpu=cpu,
            compression=compression,
            sample_cpu=self.sample_cpu,
            obs=obs,
        )


def run_policy(
    policy: Union[str, Scheduler],
    coflows: Sequence[Coflow],
    setup: Optional[ExperimentSetup] = None,
    obs=None,
) -> SimulationResult:
    """Run one policy over a workload and return the result.

    Live :class:`Scheduler` instances are ``fresh()``-ed first, so a
    scheduler that carries cross-run state (FVDF's served-window map,
    EDF's admission sets) cannot leak it between runs.
    """
    setup = setup or ExperimentSetup()
    scheduler = make_scheduler(policy) if isinstance(policy, str) else policy.fresh()
    sim = setup.build_simulator(scheduler, obs=obs)
    sim.submit_many(list(coflows))
    return sim.run()


def run_many(
    policies: Sequence[Union[str, Scheduler]],
    coflows: Sequence[Coflow],
    setup: Optional[ExperimentSetup] = None,
    parallel: Union[None, int, str] = None,
    cache=None,
) -> Dict[str, SimulationResult]:
    """Run several policies over the *same* workload (paired comparison).

    ``parallel`` selects the execution path: ``None`` defers to the
    ``REPRO_PARALLEL`` env var (unset → sequential), ``"auto"`` uses one
    worker per core, an integer ≥ 1 fans the policies out over that many
    pool workers via :mod:`repro.runner` — with results bit-identical to
    the sequential loop.  ``cache`` is forwarded to the runner's
    content-addressed result cache (None → env-controlled default).
    """
    from repro.runner import resolve_workers

    workers = resolve_workers(parallel)
    if workers > 0:
        return _run_many_pooled(policies, coflows, setup, workers, cache)
    out: Dict[str, SimulationResult] = {}
    for p in policies:
        scheduler = make_scheduler(p) if isinstance(p, str) else p
        out[scheduler.name] = run_policy(scheduler, coflows, setup)
    return out


def _run_many_pooled(
    policies, coflows, setup, workers: int, cache
) -> Dict[str, SimulationResult]:
    """The pool path of :func:`run_many` (full results, spec order kept)."""
    from repro.runner import RunSpec, WorkloadSpec, run_specs

    setup = setup or ExperimentSetup()
    workload = WorkloadSpec.inline(coflows)
    specs = []
    for p in policies:
        # The display key must match the sequential path's dict keys, and
        # a cache hit cannot ask the worker for it — resolve names here.
        name = make_scheduler(p).name if isinstance(p, str) else p.name
        specs.append(
            RunSpec(policy=p, workload=workload, setup=setup, key=name,
                    full=True)
        )
    outs = run_specs(specs, workers=workers, cache=cache)
    return {out.key: out.result for out in outs}


def speedups_over(
    results: Dict[str, SimulationResult],
    ours: str,
    metric: str = "avg_cct",
) -> Dict[str, float]:
    """``metric(baseline) / metric(ours)`` for every baseline in results."""
    if ours not in results:
        raise ConfigurationError(f"{ours!r} not among results {sorted(results)}")
    our_val = getattr(results[ours], metric)
    if our_val <= 0:
        raise ConfigurationError(f"{ours} has non-positive {metric}")
    return {
        name: getattr(res, metric) / our_val
        for name, res in results.items()
        if name != ours
    }
