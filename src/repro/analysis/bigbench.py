"""Trace-scale end-to-end benchmark and the ``BENCH_bigtrace.json`` trajectory.

Where :mod:`repro.analysis.perfbench` times the per-decision hot path,
this module times the per-*event* paths — bulk ingest, batched
retirement, lazy result materialization and columnar metrics — by
replaying a synthetic Facebook-like trace (:func:`repro.traces.facebook.
synthesize`, ≥100k flows across ≥5k coflows) end to end: ``submit_many``
→ ``run`` → headline metrics.  In this regime the scheduler work per
decision is modest and wall clock is dominated by exactly the O(total
flows) Python loops the columnar pipeline removed.

Two timings anchor each entry:

* **after** — the current engine (columnar ingest/retire, lazy
  ``ResultStore``-backed results);
* **before** — the pinned pre-columnar baseline
  (:class:`~repro.core.reference.PreColumnarSliceSimulator`: scalar
  per-flow ``submit`` with per-flow codec-ratio calls, per-flow eager
  ``FlowResult`` retirement, dict-chasing ``_regroup``, copying views),
  re-measured on the same machine and trace so the ratio is
  apples-to-apples regardless of host speed.

Every entry also records ``identical``: the two arms' flow/coflow
result columns and headline metrics compared bit-for-bit — the speedup
is only meaningful if the columnar path is an exact behavioural match.

``python -m repro bench --bigtrace`` and
``benchmarks/bench_bigtrace_scale.py`` are thin wrappers around
:func:`bench_entry`; entries append to ``BENCH_bigtrace.json`` at the
repo root via :func:`repro.analysis.perfbench.append_entry`.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass
from typing import Dict, Optional, Type

import numpy as np

from repro.analysis.harness import ExperimentSetup
from repro.analysis.perfbench import append_entry  # noqa: F401  (re-export)
from repro.units import gbps

#: Schema tag stored in the JSON file (bump on breaking layout changes).
SCHEMA = "repro-bench-bigtrace-v1"

#: Minimum acceptable columnar-vs-pre-columnar end-to-end speedup.
MIN_SPEEDUP = 3.0

#: Minimum fraction of the untraced columnar speedup the recorder-attached
#: replay must retain (recorder wall clock ≤ untraced / this).
MIN_RECORDER_RETENTION = 0.8


@dataclass(frozen=True)
class TraceCase:
    """One replayed-trace configuration."""

    name: str
    num_coflows: int
    num_ports: int
    arrival_rate: float
    mean_reducer_mb: float
    bandwidth: float = gbps(4)
    slice_len: float = 0.2
    policy: str = "fvdf-flow"
    seed: int = 23


#: The tracked case: ≥100k flows across ≥5k coflows (the ISSUE floor) on
#: the paper's own flow-granularity FVDF policy with compression enabled.
#: Arrivals are spread so the active set stays small and decisions number
#: in the hundreds — wall clock is then dominated by ingest (the
#: pre-columnar path pays a scalar codec-ratio call per flow), per-flow
#: retirement and result materialization, i.e. the columnar pipeline's
#: target, not by scheduler math shared between both arms.
CASE = TraceCase(
    "fb-synth-130k",
    num_coflows=32000,
    num_ports=8,
    arrival_rate=800.0,
    mean_reducer_mb=0.02,
)

#: Seconds-scale case for CI smoke runs (same shape, 1/16 the coflows).
SMOKE_CASE = TraceCase(
    "fb-synth-smoke",
    num_coflows=2000,
    num_ports=8,
    arrival_rate=800.0,
    mean_reducer_mb=0.02,
)


def synthesize_case(case: TraceCase):
    """Build the case's trace (outside any timed region)."""
    from repro.traces.facebook import synthesize

    return synthesize(
        np.random.default_rng(case.seed),
        num_coflows=case.num_coflows,
        num_ports=case.num_ports,
        arrival_rate=case.arrival_rate,
        mean_reducer_mb=case.mean_reducer_mb,
    )


def _summarize(result) -> Dict:
    """Headline metrics, computed through the columnar accessors.

    Part of the timed region: a real replay ends with the paper's
    numbers, and this is where the lazy path pays (or rather, skips)
    dataclass materialization.
    """
    from repro.core.metrics import fct_by_size_bins

    return {
        "avg_fct": result.avg_fct,
        "avg_cct": result.avg_cct,
        "max_cct": result.max_cct,
        "makespan": result.makespan,
        "total_bytes_sent": result.total_bytes_sent,
        "total_bytes_original": result.total_bytes_original,
        "traffic_reduction": result.traffic_reduction,
        "fct_bins": fct_by_size_bins(
            result.flow_results, [1e4, 1e5, 1e6]
        ),
    }


def run_arm(case: TraceCase, trace, sim_cls: Optional[Type] = None, obs=None):
    """One end-to-end replay: submit → run → summarize, timed.

    Returns ``(wall_seconds, result, summary)``.  ``sim_cls`` defaults to
    the current engine; pass
    :class:`~repro.core.reference.PreColumnarSliceSimulator` for the
    pinned baseline.  ``obs`` attaches an observability bundle (the
    recorder arm hands in a flight recorder this way).
    """
    from repro.core.simulator import SliceSimulator
    from repro.schedulers import make_scheduler

    cls = sim_cls or SliceSimulator
    setup = ExperimentSetup(
        num_ports=case.num_ports,
        bandwidth=case.bandwidth,
        slice_len=case.slice_len,
    )
    scheduler = make_scheduler(case.policy)
    base = setup.build_simulator(scheduler)
    kwargs = {} if obs is None else {"obs": obs}
    sim = cls(
        base.fabric,
        scheduler,
        slice_len=setup.slice_len,
        cpu=base.cpu,
        compression=base.compression,
        **kwargs,
    )
    t0 = time.perf_counter()
    sim.submit_many(trace.coflows)
    result = sim.run()
    summary = _summarize(result)
    wall = time.perf_counter() - t0
    return wall, result, summary


def _result_columns(result) -> Dict[str, np.ndarray]:
    """The comparison columns of one arm, extracted identically per arm."""
    return {
        "flow_id": np.asarray([f.flow_id for f in result.flow_results]),
        "coflow_id": np.asarray([c.coflow_id for c in result.coflow_results]),
        "fct": result.fct_array,
        "size": result.size_array,
        "cct": result.cct_array,
        "finish": result.finish_array,
        "bytes_sent": np.asarray(
            [f.bytes_sent for f in result.flow_results]
        ),
    }


def identical_results(res_new, res_old, sum_new: Dict, sum_old: Dict) -> bool:
    """Bit-exact comparison of the two arms' results and metrics."""
    if sum_new != sum_old:
        return False
    cols_new = _result_columns(res_new)
    cols_old = _result_columns(res_old)
    return all(
        np.array_equal(cols_new[k], cols_old[k]) for k in cols_new
    )


def bench_entry(
    repeats: int = 2,
    label: str = "",
    case: Optional[TraceCase] = None,
    npz_out=None,
    smoke_trace_identity: bool = False,
) -> Dict:
    """Replay the trace through all three arms; return one trajectory entry.

    Arms: columnar (tracked ``after``), pinned pre-columnar (``before``),
    and columnar with a flight recorder attached (``recorder``, whose
    ``retained`` ratio is floor-asserted at :data:`MIN_RECORDER_RETENTION`
    by :func:`check_entry`).  ``npz_out`` saves the recorder arm's
    columnar trace; ``smoke_trace_identity`` additionally runs a legacy
    tracer arm and records whether the decoded recorder stream matches it
    record for record (seconds-scale cases only — the tracer arm is the
    slow path the recorder exists to avoid).
    """
    from repro.core.reference import PreColumnarSliceSimulator
    from repro.obs import Observability

    case = case or CASE
    trace = synthesize_case(case)
    best_after = best_before = best_rec = None
    res_new = sum_new = res_old = sum_old = None
    recorder = None
    for _ in range(max(1, repeats)):
        wall, res_new, sum_new = run_arm(case, trace)
        if best_after is None or wall < best_after:
            best_after = wall
    for _ in range(max(1, repeats)):
        # A fresh recorder per repeat: each replay records the full run.
        obs = Observability(trace=False, metrics=False, record=True)
        wall, res_rec, sum_rec = run_arm(case, trace, obs=obs)
        if best_rec is None or wall < best_rec:
            best_rec = wall
            recorder = obs.recorder
    for _ in range(max(1, repeats)):
        wall, res_old, sum_old = run_arm(
            case, trace, sim_cls=PreColumnarSliceSimulator
        )
        if best_before is None or wall < best_before:
            best_before = wall
    ident = identical_results(res_new, res_old, sum_new, sum_old)
    rec_entry = {
        "wall_s": round(best_rec, 6),
        "records": len(recorder),
        "nbytes": recorder.nbytes(),
        # Fraction of the untraced columnar speedup the recorder-attached
        # replay retains: (before/rec) / (before/after) = after/rec.
        "retained": round(best_after / best_rec, 4),
        "floor": MIN_RECORDER_RETENTION,
    }
    if smoke_trace_identity:
        obs_tr = Observability(trace=True, metrics=False)
        _, _, _ = run_arm(case, trace, obs=obs_tr)
        rec_entry["identical"] = list(recorder) == obs_tr.tracer.records
    if npz_out is not None:
        recorder.save_npz(npz_out)
        rec_entry["npz"] = str(npz_out)
    entry = {
        "label": label or "bigtrace",
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repeats": repeats,
        "trace": {
            "case": case.name,
            "policy": case.policy,
            "num_coflows": len(trace.coflows),
            "num_flows": trace.num_flows,
            "num_ports": case.num_ports,
            "total_gb": round(trace.total_bytes / 1e9, 3),
            "slice_len": case.slice_len,
            "seed": case.seed,
        },
        "decisions": res_new.decision_points,
        "makespan": res_new.makespan,
        "identical": ident,
        "recorder": rec_entry,
        "speedup": {
            "case": case.name,
            "before_s": round(best_before, 6),
            "after_s": round(best_after, 6),
            "ratio": round(best_before / best_after, 2),
            "reference": "PreColumnarSliceSimulator (scalar per-flow "
                         "submit/retire, dict-chasing regroup, eager "
                         "dataclass results)",
        },
    }
    return entry


def check_entry(entry: Dict, smoke: bool = False) -> None:
    """Assert the entry's invariants (speedup floor skipped for smoke).

    ``identical`` must hold at any scale; the ≥MIN_SPEEDUP and recorder
    retention floors are only meaningful on the full-size case (tiny
    smoke traces amortize nothing).  Smoke entries instead assert the
    decoded recorder stream matched the legacy tracer record for record
    (when the entry carried that arm).
    """
    assert entry["identical"], (
        "columnar and pre-columnar results diverged on "
        f"{entry['trace']['case']!r}"
    )
    rec = entry.get("recorder") or {}
    if smoke:
        if "identical" in rec:
            assert rec["identical"], (
                "decoded flight-recorder stream diverged from the legacy "
                f"tracer on {entry['trace']['case']!r}"
            )
        return
    speedup = entry["speedup"]
    assert speedup["ratio"] >= MIN_SPEEDUP, (
        f"bigtrace speedup regressed: {speedup['ratio']:.2f}x < "
        f"{MIN_SPEEDUP:.1f}x on {speedup['case']!r} "
        f"(before {speedup['before_s']:.2f}s, after {speedup['after_s']:.2f}s)"
    )
    if rec:
        assert rec["retained"] >= MIN_RECORDER_RETENTION, (
            f"recorder-attached replay retains only {rec['retained']:.0%} "
            f"of the untraced columnar speedup "
            f"(< {MIN_RECORDER_RETENTION:.0%} floor: untraced "
            f"{speedup['after_s']:.2f}s vs recorder {rec['wall_s']:.2f}s)"
        )


def default_bigbench_path():
    """``BENCH_bigtrace.json`` at the repository root."""
    from pathlib import Path

    return Path(__file__).resolve().parents[3] / "BENCH_bigtrace.json"
