"""Reading and summarising JSONL traces produced by :mod:`repro.obs`.

The writer side lives in :class:`repro.obs.trace.Tracer` (``dump_jsonl``);
this module is the consumer: load a trace back into typed records, slice it
by kind or time, and render a quick per-kind summary — the round-trip that
``python -m repro trace <scenario> --out run.jsonl`` feeds.
"""

from __future__ import annotations

from typing import Dict, IO, Iterator, List, Optional, Sequence, Set, Union

from repro.errors import ReproError
from repro.obs.trace import TraceRecord, record_from_json

__all__ = [
    "decision_timeline",
    "iter_trace",
    "kinds_at",
    "read_trace",
    "trace_summary",
]


def iter_trace(source: Union[str, IO[str]]) -> Iterator[TraceRecord]:
    """Stream records from a JSONL trace file or open text handle.

    Blank lines are skipped; a malformed line raises
    :class:`~repro.errors.ReproError` naming the line number.
    """
    if hasattr(source, "read"):
        yield from _iter_handle(source)  # type: ignore[arg-type]
        return
    with open(source, "r", encoding="utf-8") as fh:
        yield from _iter_handle(fh)


def _iter_handle(fh: IO[str]) -> Iterator[TraceRecord]:
    for lineno, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            yield record_from_json(line)
        except (ValueError, KeyError) as exc:
            raise ReproError(f"malformed trace line {lineno}: {exc}") from None


def read_trace(source: Union[str, IO[str]]) -> List[TraceRecord]:
    """Load a whole JSONL trace into memory, in file order."""
    return list(iter_trace(source))


def trace_summary(records: Sequence[TraceRecord]) -> Dict[str, int]:
    """Record count per kind (sorted by kind name)."""
    counts: Dict[str, int] = {}
    for r in records:
        counts[r.kind] = counts.get(r.kind, 0) + 1
    return dict(sorted(counts.items()))


def decision_timeline(records: Sequence[TraceRecord]) -> List[TraceRecord]:
    """The ``decision`` records in time order — one per scheduler wake-up.

    Each record's ``data["kinds"]`` holds the trigger kinds the scheduler
    saw (as ``EventKind`` names), which is how the tied-boundary regression
    test asserts that coincident events both reach the scheduler.
    """
    return sorted(
        (r for r in records if r.kind == "decision"), key=lambda r: r.t
    )


def kinds_at(
    records: Sequence[TraceRecord],
    t: float,
    tol: float = 1e-9,
    kinds: Optional[Set[str]] = None,
) -> Set[str]:
    """Record kinds present at simulated instant ``t`` (± ``tol``).

    ``kinds`` restricts the search to the given record kinds.
    """
    return {
        r.kind
        for r in records
        if abs(r.t - t) <= tol and (kinds is None or r.kind in kinds)
    }
