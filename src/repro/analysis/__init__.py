"""Result analysis: experiment harness, metric helpers, report rendering."""

from repro.analysis.harness import (
    ExperimentSetup,
    run_many,
    run_policy,
    speedups_over,
)
from repro.analysis.collate import collate_reports
from repro.analysis.export import export_coflows_csv, export_flows_csv
from repro.analysis.seeds import SeedStats, run_seeds
from repro.analysis.svg import Series, bar_chart, cdf_chart, line_chart
from repro.analysis.tables import render_cdf, render_series, render_table
from repro.analysis.timeline import render_timeline
from repro.analysis.tracefile import (
    decision_timeline,
    iter_trace,
    kinds_at,
    read_trace,
    trace_summary,
)
from repro.core.metrics import (
    RunSummary,
    TrafficSummary,
    avg_cct,
    avg_fct,
    cct_values,
    cdf_at,
    compare,
    completion_rates,
    empirical_cdf,
    fct_by_size_bins,
    fct_values,
    filter_flows_by_size_percentile,
    speedup,
    throughput_windows,
)

__all__ = [
    "ExperimentSetup", "run_policy", "run_many", "speedups_over",
    "SeedStats", "run_seeds",
    "render_table", "render_cdf", "render_series", "render_timeline",
    "export_flows_csv", "export_coflows_csv",
    "Series", "line_chart", "cdf_chart", "bar_chart", "collate_reports",
    "read_trace", "iter_trace", "trace_summary", "decision_timeline", "kinds_at",
    "empirical_cdf", "cdf_at", "speedup", "avg_fct", "avg_cct",
    "fct_values", "cct_values", "filter_flows_by_size_percentile",
    "fct_by_size_bins", "throughput_windows", "completion_rates",
    "TrafficSummary", "RunSummary", "compare",
]
