"""Dependency-free SVG charts (line, CDF, bar).

The benchmark reports are plain text; these helpers additionally render
paper-style figures as standalone SVG files without a plotting stack —
enough for the line/CDF/bar shapes the paper's evaluation uses.

Coordinates: the plot area is padded inside the canvas; x/y values map
linearly (or log10 on x when requested) onto it, y inverted (SVG's origin
is top-left).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Union

from repro.errors import ConfigurationError

#: Default categorical palette (color-blind friendly).
PALETTE = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
    "#F0E442", "#000000",
]

_PAD_L, _PAD_R, _PAD_T, _PAD_B = 60, 140, 40, 50


@dataclass
class Series:
    """One line on a chart."""

    label: str
    xs: Sequence[float]
    ys: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ConfigurationError(
                f"series {self.label!r}: {len(self.xs)} xs vs {len(self.ys)} ys"
            )
        if not self.xs:
            raise ConfigurationError(f"series {self.label!r} is empty")


def _esc(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / (n - 1)
    return [lo + i * step for i in range(n)]


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e4 or abs(v) < 1e-2:
        return f"{v:.1e}"
    return f"{v:.3g}"


def line_chart(
    series: Sequence[Series],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 640,
    height: int = 400,
    logx: bool = False,
    dest: Optional[Union[str, Path, TextIO]] = None,
) -> str:
    """Render line series to an SVG string (and optionally a file)."""
    if not series:
        raise ConfigurationError("need at least one series")
    xs_all = [x for s in series for x in s.xs]
    ys_all = [y for s in series for y in s.ys]
    if logx:
        if min(xs_all) <= 0:
            raise ConfigurationError("logx needs positive x values")
        tx = lambda x: math.log10(x)
    else:
        tx = lambda x: float(x)
    x_lo, x_hi = min(map(tx, xs_all)), max(map(tx, xs_all))
    y_lo, y_hi = min(ys_all), max(ys_all)
    if y_lo > 0 and y_lo / max(y_hi, 1e-300) < 0.5:
        y_lo = 0.0  # anchor at zero unless the data is a narrow band
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    plot_w = width - _PAD_L - _PAD_R
    plot_h = height - _PAD_T - _PAD_B

    def px(x: float) -> float:
        return _PAD_L + (tx(x) - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return _PAD_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_esc(title)}</text>'
        )
    # axes
    x0, y0 = _PAD_L, _PAD_T + plot_h
    parts.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x0 + plot_w}" y2="{y0}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{x0}" y1="{_PAD_T}" x2="{x0}" y2="{y0}" stroke="black"/>'
    )
    for t in _ticks(x_lo, x_hi):
        xv = 10 ** t if logx else t
        xp = _PAD_L + (t - x_lo) / (x_hi - x_lo) * plot_w
        parts.append(f'<line x1="{xp}" y1="{y0}" x2="{xp}" y2="{y0 + 4}" stroke="black"/>')
        parts.append(
            f'<text x="{xp}" y="{y0 + 18}" text-anchor="middle">{_fmt(xv)}</text>'
        )
    for t in _ticks(y_lo, y_hi):
        yp = py(t)
        parts.append(f'<line x1="{x0 - 4}" y1="{yp}" x2="{x0}" y2="{yp}" stroke="black"/>')
        parts.append(
            f'<text x="{x0 - 8}" y="{yp + 4}" text-anchor="end">{_fmt(t)}</text>'
        )
    if xlabel:
        parts.append(
            f'<text x="{_PAD_L + plot_w / 2}" y="{height - 10}" '
            f'text-anchor="middle">{_esc(xlabel)}</text>'
        )
    if ylabel:
        parts.append(
            f'<text x="16" y="{_PAD_T + plot_h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 16 {_PAD_T + plot_h / 2})">{_esc(ylabel)}</text>'
        )
    # series + legend
    for i, s in enumerate(series):
        color = PALETTE[i % len(PALETTE)]
        pts = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in zip(s.xs, s.ys))
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        ly = _PAD_T + 16 * i
        lx = _PAD_L + plot_w + 12
        parts.append(
            f'<line x1="{lx}" y1="{ly}" x2="{lx + 18}" y2="{ly}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{lx + 24}" y="{ly + 4}">{_esc(s.label)}</text>')
    parts.append("</svg>")
    svg = "\n".join(parts)
    if dest is not None:
        if isinstance(dest, (str, Path)):
            Path(dest).write_text(svg)
        else:
            dest.write(svg)
    return svg


def cdf_chart(
    samples: Dict[str, Sequence[float]],
    title: str = "",
    xlabel: str = "",
    dest: Optional[Union[str, Path, TextIO]] = None,
    logx: bool = False,
) -> str:
    """Empirical-CDF chart: one step curve per labelled sample set."""
    if not samples:
        raise ConfigurationError("need at least one sample set")
    series = []
    for label, values in samples.items():
        xs = sorted(float(v) for v in values)
        if not xs:
            raise ConfigurationError(f"sample set {label!r} is empty")
        n = len(xs)
        ys = [(i + 1) / n for i in range(n)]
        series.append(Series(label=label, xs=xs, ys=ys))
    return line_chart(
        series, title=title, xlabel=xlabel, ylabel="CDF", dest=dest, logx=logx
    )


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    ylabel: str = "",
    width: int = 640,
    height: int = 400,
    dest: Optional[Union[str, Path, TextIO]] = None,
) -> str:
    """Simple vertical bar chart."""
    if len(labels) != len(values) or not labels:
        raise ConfigurationError("labels and values must align and be non-empty")
    y_hi = max(max(values), 1e-12)
    plot_w = width - _PAD_L - 40
    plot_h = height - _PAD_T - _PAD_B
    slot = plot_w / len(values)
    bar_w = slot * 0.6
    y0 = _PAD_T + plot_h
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_esc(title)}</text>'
        )
    parts.append(
        f'<line x1="{_PAD_L}" y1="{y0}" x2="{_PAD_L + plot_w}" y2="{y0}" stroke="black"/>'
    )
    for i, (label, v) in enumerate(zip(labels, values)):
        h = max(v, 0.0) / y_hi * plot_h
        x = _PAD_L + i * slot + (slot - bar_w) / 2
        color = PALETTE[i % len(PALETTE)]
        parts.append(
            f'<rect x="{x:.1f}" y="{y0 - h:.1f}" width="{bar_w:.1f}" '
            f'height="{h:.1f}" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{y0 - h - 4:.1f}" '
            f'text-anchor="middle">{_fmt(v)}</text>'
        )
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{y0 + 16}" '
            f'text-anchor="middle">{_esc(label)}</text>'
        )
    if ylabel:
        parts.append(
            f'<text x="16" y="{_PAD_T + plot_h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 16 {_PAD_T + plot_h / 2})">{_esc(ylabel)}</text>'
        )
    parts.append("</svg>")
    svg = "\n".join(parts)
    if dest is not None:
        if isinstance(dest, (str, Path)):
            Path(dest).write_text(svg)
        else:
            dest.write(svg)
    return svg
