"""Streaming-service benchmark and the ``BENCH_stream.json`` trajectory.

Where :mod:`repro.analysis.bigbench` replays a finite trace through one
batch ``submit_many`` → ``run`` pass, this module measures the *service*
regime (:mod:`repro.service`): an unbounded arrival stream admitted tick
by tick under backpressure, with retired coflows drained and discarded as
the run goes.  The two claims under test:

* **steady-state throughput** — flows retired per wall-second once the
  stream is warmed up (measured over the back half of the run, after the
  25%-of-flows mark), floor-asserted by :func:`check_entry`;
* **bounded memory** — the engine's live row count and the process RSS
  must be a function of the in-flight backlog, not of stream length: the
  tracked entry records peak live rows as a fraction of total flows and
  the RSS growth ratio between the 25% mark and the end of a ≥1M-flow
  replay.

``python -m repro serve --bench`` and
``benchmarks/bench_stream_scale.py`` are thin wrappers around
:func:`bench_entry`; entries append to ``BENCH_stream.json`` at the repo
root via :func:`repro.analysis.perfbench.append_entry`.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.harness import ExperimentSetup
from repro.analysis.perfbench import append_entry  # noqa: F401  (re-export)
from repro.units import KB, gbps

#: Schema tag stored in the JSON file (bump on breaking layout changes).
SCHEMA = "repro-bench-stream-v1"

#: Steady-state floor: flows retired per wall-second over the back half
#: of the tracked case (conservative ~1/3 of the measured dev-box rate;
#: the seed 1M-flow replay sustained ~4.9k flows/s steady).
MIN_STEADY_FLOWS_PER_S = 1_500.0

#: Peak engine rows may not exceed this fraction of the total flows in
#: the stream — the columnar store must stay backlog-sized.
MAX_LIVE_ROW_FRACTION = 0.25

#: Process RSS at the end of the stream over RSS at the 25% mark.
MAX_RSS_GROWTH = 1.5


@dataclass(frozen=True)
class StreamCase:
    """One streamed-replay configuration."""

    name: str
    num_coflows: int
    width: int
    rate: float  # coflow arrivals per simulated second
    flow_bytes: float = 64 * KB
    num_ports: int = 16
    bandwidth: float = gbps(4)
    slice_len: float = 0.2
    tick: float = 5.0
    max_in_flight: int = 50_000
    policy: str = "fvdf-flow"
    seed: int = 23

    @property
    def total_flows(self) -> int:
        return self.num_coflows * self.width


#: The tracked case: one million flows streamed through the service.
#: Arrival rate and sizing keep utilization low (~6%) so wall clock is
#: dominated by the streaming machinery itself — admission batching,
#: tick resume, drain/compaction — rather than by scheduler math.
CASE = StreamCase("stream-1m", num_coflows=250_000, width=4, rate=2000.0)

#: Seconds-scale case for CI smoke runs: 1% of the coflows, with a short
#: tick and a tight in-flight bound so the run still spans many ticks and
#: exercises backpressure/drain (the 1.0-live-row-fraction degenerate
#: case of "everything fits in one tick" would test nothing).
SMOKE_CASE = StreamCase(
    "stream-smoke",
    num_coflows=2_500,
    width=4,
    rate=2000.0,
    tick=0.25,
    max_in_flight=2_000,
)


def _current_rss_kb() -> int:
    """VmRSS of this process in KiB (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


def build_driver(case: StreamCase):
    """Fresh (driver, spec) for one streamed replay of ``case``."""
    from repro.schedulers import make_scheduler
    from repro.service import SourceSpec, StreamDriver
    from repro.traces.distributions import ConstantSize

    spec = SourceSpec(
        rate=case.rate,
        num_ports=case.num_ports,
        width=case.width,
        size_dist=ConstantSize(case.flow_bytes),
        seed=case.seed,
        limit=case.num_coflows,
    )
    setup = ExperimentSetup(
        num_ports=case.num_ports,
        bandwidth=case.bandwidth,
        slice_len=case.slice_len,
    )
    sim = setup.build_simulator(make_scheduler(case.policy))
    driver = StreamDriver(
        sim,
        spec.build(),
        tick=case.tick,
        max_in_flight=case.max_in_flight,
        drain_every=1,
        keep_shards=False,  # aggregates only: this is the unbounded regime
        setup=setup,
        source_spec=spec,
    )
    return driver, spec


def run_stream(case: StreamCase) -> Dict:
    """One streamed replay with RSS probes; returns the raw measurements."""
    driver, _ = build_driver(case)
    total = case.total_flows
    t0 = time.perf_counter()
    # Warm-up phase: tick until a quarter of the stream has retired.
    while driver.stats.flows_done < total * 0.25:
        if driver.exhausted() and not driver.sim.pending:
            break
        driver.tick_once()
    rss_25 = _current_rss_kb()
    t_mid = time.perf_counter()
    flows_mid = driver.stats.flows_done
    stats = driver.run()  # the measured steady-state back half
    wall = time.perf_counter() - t0
    rss_end = _current_rss_kb()
    back_wall = time.perf_counter() - t_mid
    back_flows = stats.flows_done - flows_mid
    return {
        "stats": stats,
        "wall_s": wall,
        "throughput_flows_per_s": stats.flows_done / wall if wall else 0.0,
        "steady_flows_per_s": back_flows / back_wall if back_wall else 0.0,
        "rss_25_kb": rss_25,
        "rss_end_kb": rss_end,
        "rss_growth": (rss_end / rss_25) if rss_25 else 0.0,
        "makespan": float(driver.sim.now),
    }


def bench_entry(
    repeats: int = 1,
    label: str = "",
    case: Optional[StreamCase] = None,
) -> Dict:
    """Stream the case end to end; return one trajectory entry.

    ``repeats`` keeps the best (lowest-wall) replay — streaming runs are
    long, so the tracked default is a single replay.
    """
    case = case or CASE
    best = None
    for _ in range(max(1, repeats)):
        m = run_stream(case)
        if best is None or m["wall_s"] < best["wall_s"]:
            best = m
    stats = best["stats"]
    return {
        "label": label or case.name,
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repeats": repeats,
        "case": {
            "name": case.name,
            "num_coflows": case.num_coflows,
            "width": case.width,
            "total_flows": case.total_flows,
            "rate": case.rate,
            "flow_bytes": case.flow_bytes,
            "num_ports": case.num_ports,
            "bandwidth": case.bandwidth,
            "slice_len": case.slice_len,
            "tick": case.tick,
            "max_in_flight": case.max_in_flight,
            "policy": case.policy,
            "seed": case.seed,
        },
        "flows_done": stats.flows_done,
        "coflows_done": stats.coflows_done,
        "ticks": stats.ticks,
        "drains": stats.drains,
        "restamped": stats.restamped,
        "avg_fct": round(stats.avg_fct, 6),
        "avg_cct": round(stats.avg_cct, 6),
        "traffic_reduction": round(stats.traffic_reduction, 6),
        "makespan": round(best["makespan"], 3),
        "wall_s": round(best["wall_s"], 3),
        "throughput_flows_per_s": round(best["throughput_flows_per_s"], 1),
        "steady_flows_per_s": round(best["steady_flows_per_s"], 1),
        "peak_live_rows": stats.peak_live_rows,
        "peak_in_flight": stats.peak_in_flight,
        "live_row_fraction": round(
            stats.peak_live_rows / case.total_flows, 6
        ),
        "rss_25_kb": best["rss_25_kb"],
        "rss_end_kb": best["rss_end_kb"],
        "rss_growth": round(best["rss_growth"], 4),
        "floors": {
            "steady_flows_per_s": MIN_STEADY_FLOWS_PER_S,
            "live_row_fraction": MAX_LIVE_ROW_FRACTION,
            "rss_growth": MAX_RSS_GROWTH,
        },
    }


def check_entry(entry: Dict, case: Optional[StreamCase] = None) -> None:
    """Assert the entry's bounded-memory and throughput floors."""
    case = case or CASE
    if entry["flows_done"] != case.total_flows:
        raise AssertionError(
            f"stream incomplete: {entry['flows_done']} of "
            f"{case.total_flows} flows retired"
        )
    if entry["live_row_fraction"] > MAX_LIVE_ROW_FRACTION:
        raise AssertionError(
            f"engine rows not bounded: peak {entry['peak_live_rows']} rows "
            f"is {entry['live_row_fraction']:.2%} of the stream "
            f"(max {MAX_LIVE_ROW_FRACTION:.0%})"
        )
    # RSS probes need /proc; skip the growth assertion where unavailable.
    if entry["rss_25_kb"] and entry["rss_growth"] > MAX_RSS_GROWTH:
        raise AssertionError(
            f"RSS grew {entry['rss_growth']:.2f}x between the 25% mark and "
            f"the end (max {MAX_RSS_GROWTH:.2f}x) — memory is tracking "
            "stream length"
        )
    if entry["steady_flows_per_s"] < MIN_STEADY_FLOWS_PER_S:
        raise AssertionError(
            f"steady-state throughput {entry['steady_flows_per_s']:.0f} "
            f"flows/s below the {MIN_STEADY_FLOWS_PER_S:.0f} floor"
        )


def default_stream_path():
    """``BENCH_stream.json`` at the repository root."""
    from pathlib import Path

    return Path(__file__).resolve().parents[3] / "BENCH_stream.json"
