"""CSV export of simulation results (for external plotting/analysis).

Two dumps cover what the paper's figures consume: per-flow records (FCT
CDFs, size breakdowns) and per-coflow records (CCT CDFs, traffic).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence, TextIO, Union

from repro.core.simulator import SimulationResult

FLOW_FIELDS = [
    "flow_id", "coflow_id", "src", "dst", "size", "arrival", "start",
    "finish", "finish_physical", "fct", "bytes_sent", "bytes_compressed_in",
    "decompress_time",
]

COFLOW_FIELDS = [
    "coflow_id", "label", "arrival", "finish", "cct", "size", "width",
    "bytes_sent", "deadline", "met_deadline",
]


def _open(dest: Union[str, Path, TextIO], fn) -> None:
    if isinstance(dest, (str, Path)):
        with open(dest, "w", newline="") as fh:
            fn(fh)
    else:
        fn(dest)


def export_flows_csv(result: SimulationResult, dest: Union[str, Path, TextIO]) -> None:
    """Write one row per finished flow."""

    def _write(fh: TextIO) -> None:
        w = csv.DictWriter(fh, fieldnames=FLOW_FIELDS)
        w.writeheader()
        for f in result.flow_results:
            w.writerow({
                "flow_id": f.flow_id, "coflow_id": f.coflow_id,
                "src": f.src, "dst": f.dst, "size": f.size,
                "arrival": f.arrival, "start": f.start, "finish": f.finish,
                "finish_physical": f.finish_physical, "fct": f.fct,
                "bytes_sent": f.bytes_sent,
                "bytes_compressed_in": f.bytes_compressed_in,
                "decompress_time": f.decompress_time,
            })

    _open(dest, _write)


def export_coflows_csv(result: SimulationResult, dest: Union[str, Path, TextIO]) -> None:
    """Write one row per finished coflow."""

    def _write(fh: TextIO) -> None:
        w = csv.DictWriter(fh, fieldnames=COFLOW_FIELDS)
        w.writeheader()
        for c in result.coflow_results:
            w.writerow({
                "coflow_id": c.coflow_id, "label": c.label,
                "arrival": c.arrival, "finish": c.finish, "cct": c.cct,
                "size": c.size, "width": c.width, "bytes_sent": c.bytes_sent,
                "deadline": "" if c.deadline is None else c.deadline,
                "met_deadline": "" if c.met_deadline is None else int(c.met_deadline),
            })

    _open(dest, _write)
