"""ASCII coflow timeline (Gantt) rendering.

A quick visual of who ran when — handy in examples and when debugging
scheduling decisions without a plotting stack::

    C1 shuffle |====----====      |  4.0s
    C2 sort    |  ======          |  3.0s

``=`` spans arrival→finish; the bar is wall-clock scaled.  Waiting and
transmitting are not distinguished (the engine does not retain per-slice
rate history), so the bar reads as "in flight".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.coflow import CoflowResult
from repro.errors import ConfigurationError
from repro.units import seconds_to_human


def render_timeline(
    coflows: Sequence[CoflowResult],
    width: int = 60,
    max_rows: int = 40,
    title: Optional[str] = None,
) -> str:
    """Render completed coflows as an ASCII Gantt chart."""
    if width < 10:
        raise ConfigurationError("width must be >= 10")
    if not coflows:
        return "(no coflows)"
    items = sorted(coflows, key=lambda c: (c.arrival, c.coflow_id))[:max_rows]
    t_max = max(c.finish for c in items)
    t_max = max(t_max, 1e-12)
    label_w = min(max(len(c.label or str(c.coflow_id)) for c in items), 24)
    lines: List[str] = []
    if title:
        lines.append(title)
    for c in items:
        label = (c.label or f"coflow-{c.coflow_id}")[:label_w].ljust(label_w)
        start = int(round(c.arrival / t_max * (width - 1)))
        end = max(int(round(c.finish / t_max * (width - 1))), start + 1)
        bar = " " * start + "=" * (end - start)
        bar = bar.ljust(width)
        lines.append(f"{label} |{bar}| {seconds_to_human(c.cct)}")
    if len(coflows) > max_rows:
        lines.append(f"... ({len(coflows) - max_rows} more)")
    lines.append(f"{'t'.rjust(label_w)} |0{' ' * (width - 2)}{seconds_to_human(t_max)}")
    return "\n".join(lines)
