"""Sweep-scaling benchmark and the ``BENCH_sweep.json`` trajectory.

PR 2 made a single run ~4x faster; after that the full-suite wall clock
is dominated by the *fan-out* — dozens of (policy × bandwidth × seed)
cells executed strictly sequentially.  This module times a fixed
fig6e-shaped sweep grid through :mod:`repro.runner` three ways and
appends the results to ``BENCH_sweep.json`` at the repo root:

* **sequential** — the plain in-process loop (cache disabled): the
  baseline every other mode must reproduce bit-identically;
* **parallel cold** — the process pool at ``workers`` workers, writing a
  fresh result cache as it goes;
* **parallel warm** — the same grid again over the now-populated cache:
  every cell is a content-addressed hit.

The tracked figure (``speedup.ratio``) is the suite-level wall-clock
gain of the runner over the sequential loop, floor-asserted at
:data:`MIN_SPEEDUP`.  Its ``mode`` records *which* mechanism delivered
it: on hosts with ≥ ``workers`` usable cores the cold pool run must beat
the floor by parallelism alone (``mode="pool"``); on smaller hosts —
single-core CI boxes cannot extract parallel speedup from CPU-bound
work, no matter the worker count — the demonstrated figure is the warm
re-run (``mode="cache"``), which is exactly the "unchanged benchmark
cells are near-instant" property the cache exists for.  Both ratios are
always recorded, so a multi-core reader of the trajectory can compare
either across entries.

Every mode's summaries are compared exactly (``ResultSummary.__eq__`` is
bitwise on floats and arrays); an entry with ``identical: false`` means
the pool or cache broke determinism and :func:`check_entry` fails it
regardless of speed.

Each entry also carries a ``collection`` block — an ``arrays=True``
slice of the grid run sequentially and at 1/2/4 workers, proving the
shared-memory result transport (:mod:`repro.runner.shm`) is bit-exact at
every worker count, actually used (attach count), and leak-free
(``/dev/shm`` swept for stray ``repro-shm-*`` segments).
"""

from __future__ import annotations

import platform
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.harness import ExperimentSetup
from repro.analysis.perfbench import append_entry as _append_entry
from repro.runner import ResultCache, RunSpec, WorkloadSpec, run_specs, usable_cores
from repro.traces.distributions import LogNormalSizes
from repro.traces.generator import WorkloadConfig
from repro.units import KB, MB, gbps, mbps

#: Schema tag of ``BENCH_sweep.json`` (bump on breaking layout changes).
SCHEMA = "repro-bench-sweep-v1"

#: Minimum acceptable suite-level speedup of the runner at BENCH_WORKERS.
MIN_SPEEDUP = 2.5

#: Worker count of the tracked figure.
BENCH_WORKERS = 4


@dataclass(frozen=True)
class SweepGrid:
    """A (policy × bandwidth × seed) grid of seeded synthetic workloads.

    The default mirrors the Fig. 6(e) evaluation shape (coflow traces,
    16 ports, bandwidth sweep) widened to three seeds so the grid is
    large enough for fan-out to matter.
    """

    policies: Tuple[str, ...] = (
        "sebf", "scf", "ncf", "lcf", "pff", "pfp", "fvdf",
    )
    bandwidths: Tuple[float, ...] = (mbps(100), gbps(1), gbps(10))
    seeds: Tuple[int, ...] = (14, 15, 16, 17)
    num_coflows: int = 80
    num_ports: int = 16
    max_width: int = 8
    arrival_rate: float = 2.0
    slice_len: float = 0.01

    @property
    def cells(self) -> int:
        return len(self.policies) * len(self.bandwidths) * len(self.seeds)

    def workload_config(self) -> WorkloadConfig:
        return WorkloadConfig(
            num_coflows=self.num_coflows,
            num_ports=self.num_ports,
            size_dist=LogNormalSizes(
                median=8 * MB, sigma=1.3, lo=64 * KB, hi=256 * MB
            ),
            width=(1, self.max_width),
            arrival_rate=self.arrival_rate,
        )

    def specs(
        self, telemetry: bool = False, arrays: bool = False
    ) -> List[RunSpec]:
        """One cacheable RunSpec per grid cell, in deterministic order.

        Workloads are *generated* specs (config + seed): each worker
        rebuilds its trace with ``np.random.default_rng(seed)``, so only
        a few hundred bytes cross the pipe per cell.  ``telemetry=True``
        makes every cell ship a :class:`~repro.runner.telemetry.
        TelemetrySnapshot` home (the cache digest is unaffected);
        ``arrays=True`` makes every cell carry its per-flow/per-coflow
        columns home (over shared memory on the pooled path).
        """
        cfg = self.workload_config()
        out: List[RunSpec] = []
        for seed in self.seeds:
            workload = WorkloadSpec.generated(cfg, seed)
            for bw in self.bandwidths:
                setup = ExperimentSetup(
                    num_ports=self.num_ports, bandwidth=bw,
                    slice_len=self.slice_len,
                )
                for policy in self.policies:
                    out.append(
                        RunSpec(
                            policy=policy, workload=workload, setup=setup,
                            key=f"s{seed}/bw{bw:g}/{policy}",
                            telemetry=telemetry, arrays=arrays,
                        )
                    )
        return out

    def describe(self) -> Dict:
        return {
            "policies": list(self.policies),
            "bandwidths": [float(b) for b in self.bandwidths],
            "seeds": list(self.seeds),
            "num_coflows": self.num_coflows,
            "num_ports": self.num_ports,
            "max_width": self.max_width,
            "arrival_rate": self.arrival_rate,
            "slice_len": self.slice_len,
        }


#: The tracked grid (84 cells at defaults — big enough that per-cell pool
#: overhead amortises and a 4-worker multi-core run clears the floor with
#: margin).
GRID = SweepGrid()

#: Tiny grid for the CI smoke run (`python -m repro sweep --smoke`).
SMOKE_GRID = SweepGrid(
    policies=("sebf", "fvdf"),
    bandwidths=(mbps(100), gbps(1)),
    seeds=(0,),
    num_coflows=10,
)


def _timed_run(specs, workers, cache) -> Tuple[list, float]:
    t0 = time.perf_counter()
    outs = run_specs(specs, workers=workers, cache=cache)
    return outs, time.perf_counter() - t0


def _summaries_identical(a, b) -> bool:
    return len(a) == len(b) and all(
        x.key == y.key and x.summary == y.summary for x, y in zip(a, b)
    )


#: Worker counts the array-collection identity check runs at.
COLLECTION_WORKERS = (1, 2, 4)


def _collection_block(grid: SweepGrid) -> Dict:
    """Array-bearing sweeps through the shared-memory result transport.

    Runs an ``arrays=True`` version of the grid (first two seeds — the
    collection cost scales with cells, not seeds) sequentially and at
    each of :data:`COLLECTION_WORKERS`, recording per-worker-count wall
    time, exact summary identity against the sequential pass, how many
    cells actually attached through shared memory, and whether any
    ``repro-shm-*`` segment outlived the pools.
    """
    import dataclasses
    import glob
    import os

    from repro.runner import shm as shm_mod

    small = dataclasses.replace(grid, seeds=tuple(grid.seeds[:2]))
    specs = small.specs(arrays=True)
    seq_outs, seq_s = _timed_run(specs, workers=0, cache=False)
    attached_before = shm_mod.ATTACHED
    runs = []
    for w in COLLECTION_WORKERS:
        outs, wall = _timed_run(specs, workers=w, cache=False)
        runs.append(
            {
                "workers": w,
                "wall_s": round(wall, 6),
                "identical": _summaries_identical(seq_outs, outs),
            }
        )
    leaked = (
        len(glob.glob(f"/dev/shm/{shm_mod.SHM_PREFIX}*"))
        if os.path.isdir("/dev/shm")
        else 0
    )
    return {
        "transport": "shm" if shm_mod.shm_enabled() else "pickle",
        "cells": len(specs),
        "sequential_s": round(seq_s, 6),
        "attached": shm_mod.ATTACHED - attached_before,
        "leaked_segments": leaked,
        "runs": runs,
        "identical": all(r["identical"] for r in runs),
    }


def bench_entry(
    grid: Optional[SweepGrid] = None,
    workers: int = BENCH_WORKERS,
    label: str = "",
) -> Dict:
    """Time the grid sequentially / pooled-cold / pooled-warm; one entry.

    The warm pass runs against a throwaway cache directory populated by
    the cold pass, so the entry is self-contained and never touches (or
    is polluted by) the user's ``.repro-cache/``.
    """
    grid = grid or GRID
    specs = grid.specs()
    cache_dir = tempfile.mkdtemp(prefix="repro-sweepbench-")
    try:
        seq_outs, seq_s = _timed_run(specs, workers=0, cache=False)
        cold_cache = ResultCache(root=cache_dir, enabled=True)
        cold_outs, cold_s = _timed_run(specs, workers=workers, cache=cold_cache)
        warm_cache = ResultCache(root=cache_dir, enabled=True)
        warm_outs, warm_s = _timed_run(specs, workers=workers, cache=warm_cache)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    identical = _summaries_identical(seq_outs, cold_outs) and \
        _summaries_identical(seq_outs, warm_outs)
    cores = usable_cores()
    pool_speedup = round(seq_s / cold_s, 2) if cold_s > 0 else None
    cache_speedup = round(seq_s / warm_s, 2) if warm_s > 0 else None
    mode = "pool" if cores >= workers else "cache"
    ratio = pool_speedup if mode == "pool" else cache_speedup
    return {
        "label": label or "sweep-grid",
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cores": cores,
        "workers": workers,
        "cells": len(specs),
        "grid": grid.describe(),
        "sequential_s": round(seq_s, 6),
        "parallel_cold_s": round(cold_s, 6),
        "parallel_warm_s": round(warm_s, 6),
        "pool_speedup": pool_speedup,
        "cache_speedup": cache_speedup,
        "cache_hits_warm": warm_cache.hits,
        "identical": identical,
        "collection": _collection_block(grid),
        "speedup": {
            "mode": mode,
            "ratio": ratio,
            "floor": MIN_SPEEDUP,
            "reference": "sequential in-process loop over the same specs",
        },
    }


def check_entry(entry: Dict) -> None:
    """Raise AssertionError unless the entry meets the tracked floors."""
    assert entry["identical"], (
        "parallel/cached sweep results are not bit-identical to the "
        "sequential path"
    )
    sp = entry["speedup"]
    assert sp["ratio"] is not None and sp["ratio"] >= MIN_SPEEDUP, (
        f"sweep speedup regressed: {sp['ratio']}x < {MIN_SPEEDUP}x "
        f"(mode={sp['mode']}, workers={entry['workers']}, "
        f"cores={entry['cores']}, seq={entry['sequential_s']:.2f}s, "
        f"cold={entry['parallel_cold_s']:.2f}s, "
        f"warm={entry['parallel_warm_s']:.2f}s)"
    )
    # The warm-cache path must clear the floor on any host; on multi-core
    # hosts the cold pool must clear it too (that is the mode asserted
    # above), so both mechanisms stay independently healthy.
    assert entry["cache_speedup"] >= MIN_SPEEDUP, (
        f"warm-cache sweep re-run below floor: "
        f"{entry['cache_speedup']}x < {MIN_SPEEDUP}x"
    )
    coll = entry.get("collection")
    if coll is not None:
        assert coll["identical"], (
            "array-bearing pooled sweeps are not bit-identical to the "
            "sequential path: "
            + ", ".join(
                f"workers={r['workers']}:{r['identical']}"
                for r in coll["runs"]
            )
        )
        assert coll["leaked_segments"] == 0, (
            f"{coll['leaked_segments']} repro-shm-* segment(s) leaked "
            f"in /dev/shm after the collection sweeps"
        )
        if coll["transport"] == "shm":
            assert coll["attached"] > 0, (
                "shm transport enabled but no cell was collected through "
                "shared memory"
            )


def append_entry(path, entry: Dict) -> Dict:
    """Append ``entry`` to the sweep trajectory at ``path``."""
    return _append_entry(path, entry, schema=SCHEMA)


def default_sweep_path() -> Path:
    """``BENCH_sweep.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "BENCH_sweep.json"
