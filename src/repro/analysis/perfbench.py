"""Hot-path scaling benchmark and the ``BENCH_hotpath.json`` trajectory.

The decision-point hot path (view building + FVDF's Γ ranking + rate
allocation) is the O(decision points × active flows) term that dominates
trace-scale runs.  This module times it on a fixed scaling grid
(flows × coflows × ports) and records the results in a machine-readable
trajectory file at the repo root, so every future PR can re-run the grid
and append its own entry — regressions show up as a slower entry, wins as
a faster one.

Two timings anchor each entry:

* **after** — the current vectorized engine (:class:`~repro.core.fvdf.
  FVDFScheduler` on the incremental-view engine);
* **before** — the pinned pre-vectorization reference
  (:class:`~repro.core.reference.ReferenceFVDFScheduler` with
  ``force_regroup=True``), re-measured on the same machine and workload so
  the speedup ratio is apples-to-apples regardless of host speed.

``python -m repro bench`` and ``benchmarks/bench_hotpath_scale.py`` are
thin wrappers around :func:`bench_entry` / :func:`append_entry`.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.analysis.harness import ExperimentSetup
from repro.core.scheduler import Scheduler
from repro.units import MB, mbps

#: Schema tag stored in the JSON file (bump on breaking layout changes).
SCHEMA = "repro-bench-hotpath-v1"

#: The case whose before/after ratio is the tracked speedup figure.
SPEEDUP_CASE = "large"

#: Minimum acceptable vectorized-vs-reference speedup on SPEEDUP_CASE.
MIN_SPEEDUP = 3.0

#: The grid case the kernel-backend comparison runs on (burst overload —
#: the regime where the contended fill actually has parallel work).
KERNEL_CASE = "large"

#: Floor for the best non-python backend on KERNEL_CASE...
KERNEL_MIN_SPEEDUP = 1.5

#: ...asserted only on hosts with at least this many usable cores.
#: Below it the threaded backend has nothing to fan out over and the
#: entry records ``mode="single-core"``: identity is still enforced,
#: the ratio is informational.
KERNEL_MIN_CORES = 4


@dataclass(frozen=True)
class BenchCase:
    """One point of the scaling grid."""

    name: str
    num_coflows: int
    num_ports: int
    max_width: int
    arrival_rate: float
    bandwidth: float = mbps(200)
    slice_len: float = 0.01
    seed: int = 11

    def workload(self):
        from repro.traces.distributions import LogNormalSizes
        from repro.traces.generator import WorkloadConfig, generate_workload

        cfg = WorkloadConfig(
            num_coflows=self.num_coflows,
            num_ports=self.num_ports,
            size_dist=LogNormalSizes(
                median=4 * MB, sigma=1.0, lo=256 * 1024, hi=64 * MB
            ),
            width=(1, self.max_width),
            arrival_rate=self.arrival_rate,
        )
        return generate_workload(cfg, np.random.default_rng(self.seed))

    def setup(self) -> ExperimentSetup:
        return ExperimentSetup(
            num_ports=self.num_ports,
            bandwidth=self.bandwidth,
            slice_len=self.slice_len,
        )


#: The scaling grid: active-flow count grows with coflows × width while the
#: port count (constraint groups) grows alongside, so the grid exercises
#: both the per-flow and the per-group terms of the hot path.  The large
#: case is a burst-arrival overload (all coflows arrive within ~2s of
#: simulated time) so the active-flow count stays in the thousands for
#: most of the run — the regime where the scalar reference's
#: O(active flows) per-decision cost dominates and the vectorized path's
#: near-flat per-decision cost pays off.
GRID: List[BenchCase] = [
    BenchCase("small", num_coflows=100, num_ports=32, max_width=8,
              arrival_rate=20.0),
    BenchCase("medium", num_coflows=250, num_ports=48, max_width=12,
              arrival_rate=35.0),
    BenchCase("large", num_coflows=600, num_ports=128, max_width=64,
              arrival_rate=300.0),
]


def run_case(
    case: BenchCase,
    scheduler_factory: Callable[[], Scheduler],
    repeats: int = 3,
    force_regroup: bool = False,
) -> Dict:
    """Best-of-``repeats`` wall time for one grid case.

    The workload is generated once and replayed; each repeat builds a
    fresh simulator (schedulers are stateful across a run).  Returns the
    per-run record stored in the JSON entry.
    """
    workload = case.workload()
    setup = case.setup()
    best = None
    decisions = 0
    peak = 0
    for _ in range(max(1, repeats)):
        scheduler = scheduler_factory()
        sim = setup.build_simulator(scheduler)
        sim.force_regroup = force_regroup
        peak_run = 0

        def observe(_now: float) -> None:
            nonlocal peak_run
            if sim.active_flows > peak_run:
                peak_run = sim.active_flows

        sim.on_decision(observe)
        sim.submit_many(list(workload))
        t0 = time.perf_counter()
        res = sim.run()
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
        decisions = res.decision_points
        peak = peak_run
    return {
        "name": case.name,
        "num_coflows": case.num_coflows,
        "num_ports": case.num_ports,
        "max_width": case.max_width,
        "arrival_rate": case.arrival_rate,
        "wall_s": round(best, 6),
        "decisions": decisions,
        "decisions_per_sec": round(decisions / best, 2) if best > 0 else None,
        "peak_active_flows": peak,
    }


def bench_entry(repeats: int = 3, label: str = "", grid=None) -> Dict:
    """Run the full grid plus the reference baseline; return one entry."""
    from repro.core.reference import ReferenceFVDFScheduler
    from repro.schedulers import make_scheduler

    grid = list(grid) if grid is not None else list(GRID)
    cases = [
        run_case(case, lambda: make_scheduler("fvdf"), repeats=repeats)
        for case in grid
    ]
    speedup = None
    anchor = next((c for c in grid if c.name == SPEEDUP_CASE), None)
    if anchor is not None:
        before = run_case(
            anchor,
            ReferenceFVDFScheduler,
            repeats=repeats,
            force_regroup=True,
        )
        after_s = next(c["wall_s"] for c in cases if c["name"] == anchor.name)
        speedup = {
            "case": anchor.name,
            "before_s": before["wall_s"],
            "after_s": after_s,
            "ratio": round(before["wall_s"] / after_s, 2),
            "reference": "ReferenceFVDFScheduler + force_regroup "
                         "(pre-vectorization scalar hot path)",
        }
    return {
        "label": label or "hotpath-grid",
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repeats": repeats,
        "cases": cases,
        "speedup": speedup,
    }


def _kernel_backends() -> List[str]:
    """Backends worth timing separately on this host (python first).

    ``process`` is always timed: without a usable shm transport (or
    below two shards of work) it degrades to threaded dispatch, and the
    entry's per-run ``resolved`` field plus the ``backends``
    availability block make that state visible.
    """
    from repro.core import kernels

    names = ["python", "threaded", "process"]
    if kernels.have_numba():
        names.append("compiled")  # distinct from threaded only with numba
    return names


def _run_kernel_case(case: BenchCase, kernel: str, repeats: int) -> Dict:
    """Best-of-``repeats`` wall time for one case under one backend.

    Alongside the timing, the per-flow/per-coflow results are hashed so
    the entry can *prove* the backends agreed bitwise, not just that the
    suite didn't crash — and the *resolved* backend is recorded next to
    the requested one, so a ``compiled → threaded`` fallback is a
    visible label, not a mystery timing.
    """
    from repro.core import kernels
    from repro.schedulers import make_scheduler

    workload = case.workload()
    setup = case.setup()
    best = None
    decisions = 0
    fingerprint = None
    for _ in range(max(1, repeats)):
        scheduler = make_scheduler("fvdf", kernel=kernel)
        sim = setup.build_simulator(scheduler)
        sim.submit_many(list(workload))
        t0 = time.perf_counter()
        res = sim.run()
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
        decisions = res.decision_points
        fp = hashlib.sha256()
        fp.update(np.ascontiguousarray(res.fct_array).tobytes())
        fp.update(np.ascontiguousarray(res.cct_array).tobytes())
        fp.update(np.float64(res.makespan).tobytes())
        fingerprint = fp.hexdigest()
    return {
        "kernel": kernel,
        "resolved": kernels.resolved_name(kernel),
        "wall_s": round(best, 6),
        "decisions": decisions,
        "decisions_per_sec": round(decisions / best, 2) if best > 0 else None,
        "fingerprint": fingerprint,
    }


def kernel_entry(
    repeats: int = 3,
    label: str = "",
    grid=None,
    case_name: str = KERNEL_CASE,
) -> Dict:
    """Time the anchor case under every decision-kernel backend.

    Returns one backend-labeled ``BENCH_hotpath.json`` entry: per-backend
    wall times with result fingerprints (``identical`` is true iff every
    backend produced bitwise-equal FCT/CCT/makespan) and a ``speedup``
    block comparing the best non-python backend against the python
    reference.  The :data:`KERNEL_MIN_SPEEDUP` floor is only *asserted*
    (``speedup.asserted``) on hosts with :data:`KERNEL_MIN_CORES`+ cores;
    a single-core host still proves identity, which is the portable half
    of the contract.
    """
    from repro.core import kernels

    grid = list(grid) if grid is not None else list(GRID)
    case = next((c for c in grid if c.name == case_name), grid[-1])
    runs = [
        _run_kernel_case(case, name, repeats) for name in _kernel_backends()
    ]
    identical = len({r["fingerprint"] for r in runs}) == 1
    python_s = next(r["wall_s"] for r in runs if r["kernel"] == "python")
    others = [r for r in runs if r["kernel"] != "python"]
    best = min(others, key=lambda r: r["wall_s"]) if others else None
    cores = kernels.usable_cores()
    mode = "parallel" if cores >= KERNEL_MIN_CORES else "single-core"
    return {
        "label": label or "kernel-backends",
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repeats": repeats,
        "cores": cores,
        "backends": kernels.available_backends(),
        "case": {
            "name": case.name,
            "num_coflows": case.num_coflows,
            "num_ports": case.num_ports,
            "max_width": case.max_width,
            "arrival_rate": case.arrival_rate,
        },
        "runs": runs,
        "identical": identical,
        "speedup": {
            "case": case.name,
            "python_s": python_s,
            "best_kernel": best["kernel"] if best else None,
            "best_s": best["wall_s"] if best else None,
            "ratio": (
                round(python_s / best["wall_s"], 2)
                if best and best["wall_s"] > 0
                else None
            ),
            "floor": KERNEL_MIN_SPEEDUP,
            "mode": mode,
            "asserted": mode == "parallel",
            "reference": "python decision kernel on the same case",
        },
    }


def check_kernel_entry(entry: Dict) -> None:
    """Raise AssertionError unless a kernel entry meets its floors.

    Bit-identity is unconditional; the speedup floor applies only when
    the entry itself says it ran in the parallel regime (≥ 4 cores).
    """
    assert entry["identical"], (
        "kernel backends disagreed on the bench case — fingerprints: "
        + ", ".join(
            f"{r['kernel']}={r['fingerprint'][:12]}" for r in entry["runs"]
        )
    )
    sp = entry["speedup"]
    if sp.get("asserted"):
        assert sp["ratio"] is not None and sp["ratio"] >= sp["floor"], (
            f"kernel speedup regressed: best backend {sp['best_kernel']} "
            f"at {sp['ratio']}x < {sp['floor']}x on case {sp['case']} "
            f"({entry['cores']} cores)"
        )


def append_entry(path, entry: Dict, schema: str = SCHEMA) -> Dict:
    """Append ``entry`` to the trajectory file at ``path`` (creating it).

    Shared by every tracked trajectory (``BENCH_hotpath.json`` with the
    default schema, ``BENCH_sweep.json`` via
    :mod:`repro.analysis.sweepbench`); the schema tag guards against
    appending entries of one grid into the other's file.
    """
    path = Path(path)
    if path.exists():
        doc = json.loads(path.read_text())
        if doc.get("schema") != schema:
            raise ValueError(
                f"{path} has schema {doc.get('schema')!r}, expected {schema!r}"
            )
    else:
        doc = {"schema": schema, "entries": []}
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def default_bench_path() -> Path:
    """``BENCH_hotpath.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "BENCH_hotpath.json"
