"""Multi-seed experiment statistics.

Single-trace comparisons can flatter a policy by luck of placement; this
module repeats an experiment across seeds and reports mean ± standard
deviation (and pairwise win rates), so benchmark conclusions can be
asserted robustly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.harness import ExperimentSetup, run_many
from repro.core.coflow import Coflow
from repro.core.scheduler import Scheduler
from repro.core.simulator import SimulationResult
from repro.errors import ConfigurationError

WorkloadFactory = Callable[[int], Sequence[Coflow]]


@dataclass
class SeedStats:
    """Per-policy samples of one metric across seeds."""

    metric: str
    samples: Dict[str, np.ndarray]

    def mean(self, name: str) -> float:
        return float(self.samples[name].mean())

    def std(self, name: str) -> float:
        return float(self.samples[name].std(ddof=1)) if len(self.samples[name]) > 1 else 0.0

    def speedup_mean(self, baseline: str, ours: str) -> float:
        """Mean per-seed speedup of ``ours`` over ``baseline``."""
        return float((self.samples[baseline] / self.samples[ours]).mean())

    def win_rate(self, ours: str, baseline: str) -> float:
        """Fraction of seeds where ``ours`` beats ``baseline``."""
        return float((self.samples[ours] < self.samples[baseline]).mean())

    def summary_rows(self) -> List[List]:
        return [
            [name, self.mean(name), self.std(name)]
            for name in sorted(self.samples)
        ]


def run_seeds(
    policies: Sequence[Union[str, Scheduler]],
    workload_factory: WorkloadFactory,
    setup: Optional[ExperimentSetup] = None,
    seeds: Sequence[int] = range(5),
    metric: str = "avg_cct",
    parallel: Union[None, int, str] = None,
    cache=None,
    workload_tag: Optional[str] = None,
) -> SeedStats:
    """Run every policy on every seed's workload; collect one metric.

    ``workload_factory(seed)`` must build a fresh workload per seed; the
    same workload is shared by all policies within a seed (paired design).

    With ``parallel`` (or ``REPRO_PARALLEL``) set, the whole
    (seed × policy) grid fans out over the process pool: the factory is
    pickled into each :class:`~repro.runner.spec.RunSpec` and re-invoked
    *inside the worker* — the paired design survives because the factory
    is deterministic per seed, and only compact summaries travel back.
    Factories must then be picklable (module-level functions, not
    lambdas/closures).  Opaque callables are uncacheable unless a stable
    ``workload_tag`` names their content for the result cache.
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    from repro.runner import resolve_workers

    workers = resolve_workers(parallel)
    if workers > 0:
        return _run_seeds_pooled(
            policies, workload_factory, setup, seeds, metric, workers,
            cache, workload_tag,
        )
    acc: Dict[str, List[float]] = {}
    for seed in seeds:
        workload = workload_factory(seed)
        results: Dict[str, SimulationResult] = run_many(policies, workload, setup)
        for name, res in results.items():
            acc.setdefault(name, []).append(float(getattr(res, metric)))
    return SeedStats(
        metric=metric,
        samples={name: np.asarray(vals) for name, vals in acc.items()},
    )


def _run_seeds_pooled(
    policies, workload_factory, setup, seeds, metric, workers, cache,
    workload_tag,
) -> SeedStats:
    """The (seed × policy) pool path of :func:`run_seeds`."""
    from repro.runner import SUMMARY_METRICS, RunSpec, WorkloadSpec, run_specs
    from repro.schedulers import make_scheduler

    # Metrics beyond the compact summary's scalars need the full result.
    full = metric not in SUMMARY_METRICS
    setup = setup or ExperimentSetup()
    # Keys must match the sequential path's (scheduler.name), including on
    # cache hits that never construct a scheduler — resolve them up front.
    names = [
        make_scheduler(p).name if isinstance(p, str) else p.name
        for p in policies
    ]
    specs = []
    for seed in seeds:
        workload = WorkloadSpec.from_callable(
            workload_factory, seed, tag=workload_tag
        )
        for p, name in zip(policies, names):
            specs.append(
                RunSpec(policy=p, workload=workload, setup=setup, full=full,
                        key=name)
            )
    outs = run_specs(specs, workers=workers, cache=cache)
    acc: Dict[str, List[float]] = {}
    for out in outs:
        acc.setdefault(out.key, []).append(
            float(getattr(out.payload, metric))
        )
    return SeedStats(
        metric=metric,
        samples={name: np.asarray(vals) for name, vals in acc.items()},
    )
