"""Multi-seed experiment statistics.

Single-trace comparisons can flatter a policy by luck of placement; this
module repeats an experiment across seeds and reports mean ± standard
deviation (and pairwise win rates), so benchmark conclusions can be
asserted robustly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.harness import ExperimentSetup, run_many
from repro.core.coflow import Coflow
from repro.core.scheduler import Scheduler
from repro.core.simulator import SimulationResult
from repro.errors import ConfigurationError

WorkloadFactory = Callable[[int], Sequence[Coflow]]


@dataclass
class SeedStats:
    """Per-policy samples of one metric across seeds."""

    metric: str
    samples: Dict[str, np.ndarray]

    def mean(self, name: str) -> float:
        return float(self.samples[name].mean())

    def std(self, name: str) -> float:
        return float(self.samples[name].std(ddof=1)) if len(self.samples[name]) > 1 else 0.0

    def speedup_mean(self, baseline: str, ours: str) -> float:
        """Mean per-seed speedup of ``ours`` over ``baseline``."""
        return float((self.samples[baseline] / self.samples[ours]).mean())

    def win_rate(self, ours: str, baseline: str) -> float:
        """Fraction of seeds where ``ours`` beats ``baseline``."""
        return float((self.samples[ours] < self.samples[baseline]).mean())

    def summary_rows(self) -> List[List]:
        return [
            [name, self.mean(name), self.std(name)]
            for name in sorted(self.samples)
        ]


def run_seeds(
    policies: Sequence[Union[str, Scheduler]],
    workload_factory: WorkloadFactory,
    setup: Optional[ExperimentSetup] = None,
    seeds: Sequence[int] = range(5),
    metric: str = "avg_cct",
) -> SeedStats:
    """Run every policy on every seed's workload; collect one metric.

    ``workload_factory(seed)`` must build a fresh workload per seed; the
    same workload is shared by all policies within a seed (paired design).
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    acc: Dict[str, List[float]] = {}
    for seed in seeds:
        workload = workload_factory(seed)
        results: Dict[str, SimulationResult] = run_many(policies, workload, setup)
        for name, res in results.items():
            acc.setdefault(name, []).append(float(getattr(res, metric)))
    return SeedStats(
        metric=metric,
        samples={name: np.asarray(vals) for name, vals in acc.items()},
    )
