"""Plain-text table/series rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and consistent
without pulling in a plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def format_cell(value, precision: int = 3) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:,.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table (paper-table style)."""
    str_rows: List[List[str]] = [
        [format_cell(c, precision) for c in row] for row in rows
    ]
    for r in str_rows:
        if len(r) != len(headers):
            raise ConfigurationError(
                f"row has {len(r)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_cdf(
    values: Sequence[float],
    points: Optional[Sequence[float]] = None,
    width: int = 40,
    label: str = "CDF",
) -> str:
    """Render an empirical CDF as an ASCII bar series (figure stand-in)."""
    x = np.sort(np.asarray(values, dtype=np.float64))
    if len(x) == 0:
        return f"{label}: (no data)"
    if points is None:
        points = np.quantile(x, np.linspace(0.1, 1.0, 10))
    lines = [label]
    for p in points:
        frac = float(np.searchsorted(x, p, side="right")) / len(x)
        bar = "#" * int(round(frac * width))
        lines.append(f"  x <= {format_cell(float(p)):>12}: {bar} {frac * 100:5.1f}%")
    return "\n".join(lines)


def render_series(
    xs: Sequence,
    ys: Sequence[float],
    xlabel: str = "x",
    ylabel: str = "y",
    title: Optional[str] = None,
) -> str:
    """Render an (x, y) series as a two-column table (figure stand-in)."""
    return render_table([xlabel, ylabel], list(zip(xs, ys)), title=title)
