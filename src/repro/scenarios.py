"""Canonical scenarios from the paper, reusable by tests/examples/benches.

The centrepiece is the Fig. 3/4 motivating example: two coflows on a 3×3
fabric whose per-policy average FCT/CCT the paper states exactly
(PFF 4.6/5.5, WSS 5.2/6, FIFO 4.4/5.5, PFP 3.8/5.5, SEBF 4/4.5, FVDF
2.8/3.25 with compression).  The paper's figure does not state the port
assignment; the one below is derived analytically in DESIGN.md and
reproduces *all five* baseline numbers simultaneously, which pins it down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compression.codecs import Codec
from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.scheduler import Scheduler
from repro.core.simulator import SimulationResult, SliceSimulator
from repro.cpu.cores import CpuModel
from repro.fabric.bigswitch import BigSwitch

#: Exact values the paper states for Fig. 4, keyed by policy name.
FIG4_PAPER_NUMBERS: Dict[str, Tuple[float, float]] = {
    "pff": (4.6, 5.5),
    "fair": (4.6, 5.5),  # PFF == Spark FAIR at this granularity
    "wss": (5.2, 6.0),
    "fifo": (4.4, 5.5),
    "pfp": (3.8, 5.5),
    "sebf": (4.0, 4.5),
    "fvdf": (2.8, 3.25),
}


def motivating_example(bandwidth: float = 1.0) -> Tuple[BigSwitch, List[Coflow]]:
    """The Fig. 3 workload: C1 = {4, 4, 2}, C2 = {2, 3} on a 3×3 fabric.

    Port assignment (derived, see DESIGN.md):

    ========  =====  =======  ======  ====
    flow      size   ingress  egress  FIFO
    ========  =====  =======  ======  ====
    C1.f1     4      0        0       1st
    C1.f2     4      1        1       3rd
    C1.f3     2      2        2       5th
    C2.f4     2      0        0       4th
    C2.f5     3      2        2       2nd
    ========  =====  =======  ======  ====

    Flow ids encode the interleaved FIFO arrival order
    (f1, f5, f2, f4, f3), matching the paper's "five flows are interleaved".
    Sizes are in abstract data units (bytes here) against unit bandwidth.
    """
    fabric = BigSwitch(num_ports=3, bandwidth=bandwidth)
    u = bandwidth  # one paper "data unit" takes one time unit on the wire
    f1 = Flow(src=0, dst=0, size=4 * u, flow_id=0)
    f5 = Flow(src=2, dst=2, size=3 * u, flow_id=1)
    f2 = Flow(src=1, dst=1, size=4 * u, flow_id=2)
    f4 = Flow(src=0, dst=0, size=2 * u, flow_id=3)
    f3 = Flow(src=2, dst=2, size=2 * u, flow_id=4)
    c1 = Coflow([f1, f2, f3], arrival=0.0, label="C1")
    c2 = Coflow([f4, f5], arrival=0.0, label="C2")
    return fabric, [c1, c2]


def motivating_compression_engine(bandwidth: float = 1.0) -> CompressionEngine:
    """A codec matching Fig. 4(f): ratio 47.59%, fast enough to pay off.

    ``R(1-ξ) = 4·0.5241 ≈ 2.1 > B = 1``, so Eq. 3 enables compression, and
    a flow's volume shrinks by the paper's "2 data units per coflow" scale.
    """
    codec = Codec(
        name="fig4",
        speed=4.0 * bandwidth,
        decompression_speed=16.0 * bandwidth,
        ratio=0.4759,
    )
    return CompressionEngine(codec=codec, size_dependent=False)


def run_motivating_example(
    scheduler: Scheduler,
    slice_len: float = 0.01,
    bandwidth: float = 1.0,
    cores_per_node: int = 1,
    obs=None,
) -> SimulationResult:
    """Run one policy on the Fig. 3 workload and return the result."""
    fabric, coflows = motivating_example(bandwidth)
    sim = SliceSimulator(
        fabric,
        scheduler,
        slice_len=slice_len,
        cpu=CpuModel(fabric.num_ingress, cores_per_node=cores_per_node),
        compression=motivating_compression_engine(bandwidth)
        if scheduler.uses_compression
        else None,
        obs=obs,
    )
    sim.submit_many(coflows)
    return sim.run()
