"""Generic CSV workload serialisation.

The Facebook benchmark format (:mod:`repro.traces.facebook`) cannot carry
per-flow compressibility or ratio overrides; this CSV format can, so any
generated workload — including Table I app traces — round-trips exactly.

Columns::

    coflow_id,label,arrival,src,dst,size,compressible,ratio_override

One row per flow; flows of one coflow share ``coflow_id``/``label``/
``arrival``.  ``ratio_override`` is empty when unset.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Dict, List, TextIO, Union

import numpy as np

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.errors import TraceFormatError

FIELDS = [
    "coflow_id", "label", "arrival", "src", "dst", "size",
    "compressible", "ratio_override",
]


def write_csv_trace(coflows: List[Coflow], dest: Union[str, Path, TextIO]) -> None:
    """Write a workload to CSV (one row per flow)."""
    if isinstance(dest, (str, Path)):
        with open(dest, "w", newline="") as fh:
            write_csv_trace(coflows, fh)
            return
    writer = csv.DictWriter(dest, fieldnames=FIELDS)
    writer.writeheader()
    for c in coflows:
        for f in c.flows:
            writer.writerow({
                "coflow_id": c.coflow_id,
                "label": c.label,
                "arrival": repr(c.arrival),
                "src": f.src,
                "dst": f.dst,
                "size": repr(f.size),
                "compressible": int(f.compressible),
                "ratio_override": "" if f.ratio_override is None else repr(f.ratio_override),
            })


def coflow_json_to_columns(rec: Dict[str, Any]) -> Dict[str, Any]:
    """Parse one JSONL coflow record straight into raw per-flow columns.

    Column-space twin of :func:`repro.service.arrivals.coflow_from_json`:
    the same record layout, but no :class:`Flow`/:class:`Coflow` objects
    (and no ids drawn) — the block ingest path stamps ids later, in
    object-construction order.  ``override`` uses ``-1.0`` for "no
    ratio override", matching :class:`repro.core.ingest.CoflowBlock`.
    """
    flows = rec["flows"]
    w = len(flows)
    return {
        "arrival": float(rec.get("arrival", 0.0)),
        "label": str(rec.get("label", "")),
        "deadline": rec.get("deadline"),
        "src": np.fromiter((int(f["src"]) for f in flows), np.intp, w),
        "dst": np.fromiter((int(f["dst"]) for f in flows), np.intp, w),
        "size": np.fromiter((float(f["size"]) for f in flows), np.float64, w),
        "compressible": np.fromiter(
            (bool(f.get("compressible", True)) for f in flows), bool, w
        ),
        "override": np.fromiter(
            (
                -1.0
                if f.get("ratio_override") is None
                else float(f["ratio_override"])
                for f in flows
            ),
            np.float64,
            w,
        ),
    }


def read_csv_trace(source: Union[str, Path, TextIO]) -> List[Coflow]:
    """Read a CSV workload back into coflows (sorted by arrival).

    Coflow identities are regenerated (fresh ids); grouping, arrival
    times, labels and every per-flow attribute are preserved.
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="") as fh:
            return read_csv_trace(fh)
    reader = csv.DictReader(source)
    if reader.fieldnames != FIELDS:
        raise TraceFormatError(
            f"bad CSV header {reader.fieldnames}; expected {FIELDS}"
        )
    groups: Dict[str, dict] = {}
    for lineno, row in enumerate(reader, start=2):
        try:
            key = row["coflow_id"]
            flow = Flow(
                src=int(row["src"]),
                dst=int(row["dst"]),
                size=float(row["size"]),
                compressible=bool(int(row["compressible"])),
                ratio_override=(
                    float(row["ratio_override"]) if row["ratio_override"] else None
                ),
            )
            arrival = float(row["arrival"])
        except (KeyError, ValueError, TypeError) as exc:
            raise TraceFormatError(f"line {lineno}: malformed row {row!r}") from exc
        g = groups.setdefault(key, {"label": row["label"], "arrival": arrival,
                                    "flows": []})
        if g["arrival"] != arrival:
            raise TraceFormatError(
                f"line {lineno}: coflow {key} has inconsistent arrivals"
            )
        g["flows"].append(flow)
    coflows = [
        Coflow(g["flows"], arrival=g["arrival"], label=g["label"])
        for g in groups.values()
    ]
    coflows.sort(key=lambda c: c.arrival)
    return coflows
