"""Spark-shuffle workloads with the paper's per-application profiles.

Table I of the paper measured the intermediate data of one shuffle block for
eleven HiBench applications, compressed and uncompressed.  Those numbers
are reproduced verbatim in :data:`TABLE_I`; coflows built from a profile
carry the application's compression ratio as each flow's
``ratio_override``, so the compression-aware experiments (Tables I/VII,
Fig. 7) see the paper's per-app compressibility rather than the generic
codec curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AppProfile:
    """One Table I row: per-block shuffle bytes for a HiBench application."""

    name: str
    block_compressed: float  # bytes after compression
    block_uncompressed: float  # raw shuffle-block bytes

    def __post_init__(self) -> None:
        if self.block_compressed <= 0 or self.block_uncompressed <= 0:
            raise ConfigurationError(f"{self.name}: block sizes must be positive")
        if self.block_compressed >= self.block_uncompressed:
            raise ConfigurationError(f"{self.name}: compressed must be < uncompressed")

    @property
    def ratio(self) -> float:
        """Compression ratio (compressed / uncompressed), as in Table I."""
        return self.block_compressed / self.block_uncompressed


#: Table I of the paper, verbatim (bytes of one shuffle block).
TABLE_I: Dict[str, AppProfile] = {
    p.name: p
    for p in [
        AppProfile("wordcount", 246_497, 440_872),
        AppProfile("sort", 757_621_572, 3_034_919_593),
        AppProfile("terasort", 8_713_992_886, 31_200_010_752),
        AppProfile("dfsio", 354_606, 1_868_846),
        AppProfile("logistic-regression", 5_077_091, 6_757_608),
        AppProfile("lda", 515_454, 754_677),
        AppProfile("svm", 3_368, 7_023),
        AppProfile("bayes", 2_153_182, 8_176_706),
        AppProfile("random-forest", 815_832, 1_194_464),
        AppProfile("pagerank", 27_741_768, 65_413_648),
        AppProfile("nweight", 3_814_494, 13_168_667),
    ]
}


def get_profile(name: str) -> AppProfile:
    try:
        return TABLE_I[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown application {name!r}; available: {sorted(TABLE_I)}"
        ) from None


def shuffle_coflow(
    app: AppProfile,
    num_mappers: int,
    num_reducers: int,
    num_ports: int,
    rng: np.random.Generator,
    arrival: float = 0.0,
    scale: float = 1.0,
    size_jitter: float = 0.2,
    label: Optional[str] = None,
) -> Coflow:
    """Build the shuffle coflow of one (app, stage): mappers × reducers flows.

    Each mapper→reducer flow carries one shuffle block of the app's
    uncompressed size (× ``scale``, jittered ±``size_jitter``), tagged with
    the app's Table I compression ratio.
    """
    if num_mappers < 1 or num_reducers < 1:
        raise ConfigurationError("need at least one mapper and one reducer")
    if num_ports < 1:
        raise ConfigurationError("need at least one port")
    m_ports = rng.integers(0, num_ports, size=num_mappers)
    r_ports = rng.integers(0, num_ports, size=num_reducers)
    flows: List[Flow] = []
    for mp in m_ports:
        for rp in r_ports:
            jitter = 1.0 + size_jitter * (2 * rng.random() - 1)
            size = max(app.block_uncompressed * scale * jitter, 1.0)
            flows.append(
                Flow(
                    src=int(mp),
                    dst=int(rp),
                    size=size,
                    ratio_override=app.ratio,
                )
            )
    return Coflow(flows, arrival=arrival, label=label or f"{app.name}-shuffle")


def spark_trace(
    rng: np.random.Generator,
    num_jobs: int = 50,
    num_ports: int = 16,
    apps: Optional[Sequence[str]] = None,
    arrival_rate: float = 0.5,
    mappers: int = 4,
    reducers: int = 4,
    scale: float = 1.0,
) -> List[Coflow]:
    """A stream of shuffle coflows from a mix of Table I applications."""
    if num_jobs <= 0:
        raise ConfigurationError("num_jobs must be positive")
    pool = [get_profile(a) for a in apps] if apps else list(TABLE_I.values())
    t = 0.0
    coflows: List[Coflow] = []
    for k in range(num_jobs):
        app = pool[int(rng.integers(0, len(pool)))]
        coflows.append(
            shuffle_coflow(
                app,
                num_mappers=mappers,
                num_reducers=reducers,
                num_ports=num_ports,
                rng=rng,
                arrival=t,
                scale=scale,
                label=f"{app.name}-{k}",
            )
        )
        t += rng.exponential(1.0 / arrival_rate)
    return coflows


def mean_table1_ratio() -> float:
    """Byte-weighted average compression ratio across Table I apps."""
    comp = sum(p.block_compressed for p in TABLE_I.values())
    raw = sum(p.block_uncompressed for p in TABLE_I.values())
    return comp / raw
