"""Workloads: size distributions, synthetic generators, trace formats."""

from repro.traces.distributions import (
    ConstantSize,
    LogNormalSizes,
    MixtureSizes,
    SizeDistribution,
    TruncatedPareto,
    byte_share_above,
    fig1_distribution,
    spark_flow_sizes,
)
from repro.traces.facebook import (
    FacebookTrace,
    read_facebook_trace,
    synthesize,
    synthesize_facebook_like,
    trace_summary,
    write_facebook_trace,
)
from repro.traces.classify import (
    BINS,
    ClassifierConfig,
    bin_counts,
    cct_by_bin,
    classify_coflow,
    speedup_by_bin,
)
from repro.traces.io import read_csv_trace, write_csv_trace
from repro.traces.generator import (
    WorkloadConfig,
    filter_workload_by_size,
    generate_flow_workload,
    generate_workload,
    workload_stats,
)
from repro.traces.spark import (
    TABLE_I,
    AppProfile,
    get_profile,
    mean_table1_ratio,
    shuffle_coflow,
    spark_trace,
)

__all__ = [
    "SizeDistribution", "TruncatedPareto", "LogNormalSizes", "MixtureSizes",
    "ConstantSize", "fig1_distribution", "spark_flow_sizes", "byte_share_above",
    "WorkloadConfig", "generate_workload", "generate_flow_workload",
    "workload_stats", "filter_workload_by_size",
    "FacebookTrace", "read_facebook_trace", "write_facebook_trace",
    "synthesize", "synthesize_facebook_like", "trace_summary",
    "read_csv_trace", "write_csv_trace",
    "BINS", "ClassifierConfig", "classify_coflow", "bin_counts",
    "cct_by_bin", "speedup_by_bin",
    "AppProfile", "TABLE_I", "get_profile", "shuffle_coflow", "spark_trace",
    "mean_table1_ratio",
]
