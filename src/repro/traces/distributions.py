"""Flow-size distributions matching the paper's Fig. 1 heavy tail.

Fig. 1 reports two facts about datacenter flows:

* (a) ~89.5% of flows are smaller than 10 GB, with the mass scattered over
  [10 MB, 10 GB];
* (b) more than 93% of traffic *bytes* come from flows larger than 10 GB.

A truncated Pareto reproduces both; :func:`fig1_distribution` is calibrated
to them and tested against them.  For scheduling experiments the paper
notes its own traces are much smaller ("dozens of kilobytes or several
megabytes"), which :func:`spark_flow_sizes` models as a log-normal body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.units import GB, KB, MB, TB


class SizeDistribution:
    """Base: something that samples positive flow sizes in bytes."""

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.sample(rng, n)


@dataclass
class TruncatedPareto(SizeDistribution):
    """Pareto(Type I) with scale ``xm``, shape ``alpha``, truncated at ``cap``.

    Sampled by inverse-CDF restricted to ``[xm, cap]``, so every draw lies
    in range (no rejection loop).
    """

    xm: float
    alpha: float
    cap: float

    def __post_init__(self) -> None:
        if self.xm <= 0 or self.alpha <= 0 or self.cap <= self.xm:
            raise ConfigurationError(
                f"need 0 < xm < cap and alpha > 0; got xm={self.xm}, "
                f"alpha={self.alpha}, cap={self.cap}"
            )

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # CDF on [xm, cap]: F(x) = (1 - (xm/x)^a) / (1 - (xm/cap)^a)
        f_cap = 1.0 - (self.xm / self.cap) ** self.alpha
        u = rng.random(n) * f_cap
        return self.xm * (1.0 - u) ** (-1.0 / self.alpha)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        f_cap = 1.0 - (self.xm / self.cap) ** self.alpha
        raw = 1.0 - (self.xm / np.clip(x, self.xm, self.cap)) ** self.alpha
        out = raw / f_cap
        out = np.where(x < self.xm, 0.0, out)
        return np.where(x >= self.cap, 1.0, out)


@dataclass
class LogNormalSizes(SizeDistribution):
    """Log-normal flow sizes with an interpretable median, optionally clipped."""

    median: float
    sigma: float = 1.5
    lo: Optional[float] = None
    hi: Optional[float] = None

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise ConfigurationError("median and sigma must be positive")
        if self.lo is not None and self.hi is not None and self.lo >= self.hi:
            raise ConfigurationError("need lo < hi")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        x = rng.lognormal(mean=np.log(self.median), sigma=self.sigma, size=n)
        if self.lo is not None or self.hi is not None:
            x = np.clip(x, self.lo, self.hi)
        return x


@dataclass
class MixtureSizes(SizeDistribution):
    """Weighted mixture of size distributions (body + tail compositions)."""

    components: Sequence[SizeDistribution]
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights) or not self.components:
            raise ConfigurationError("components and weights must align and be non-empty")
        w = np.asarray(self.weights, dtype=np.float64)
        if np.any(w < 0) or w.sum() <= 0:
            raise ConfigurationError("weights must be non-negative and sum > 0")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        w = np.asarray(self.weights, dtype=np.float64)
        w = w / w.sum()
        choice = rng.choice(len(self.components), size=n, p=w)
        out = np.empty(n)
        for i, comp in enumerate(self.components):
            mask = choice == i
            k = int(mask.sum())
            if k:
                out[mask] = comp.sample(rng, k)
        return out


@dataclass
class ConstantSize(SizeDistribution):
    """Degenerate distribution (useful in tests and controlled sweeps)."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ConfigurationError("value must be positive")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)


def fig1_distribution() -> TruncatedPareto:
    """The Fig. 1 heavy tail: ~89.5% of flows < 10 GB, >93% of bytes > 10 GB.

    Calibration: ``P(X > 10 GB) = (xm / 10 GB)^alpha = 0.105`` with
    ``xm = 10 MB`` gives ``alpha = log(0.105)/log(1e-3) ≈ 0.326``; the cap
    at 100 TB keeps the (otherwise infinite-mean) byte mass finite while
    leaving >93% of bytes above 10 GB.
    """
    alpha = np.log(0.105) / np.log(10 * MB / (10 * GB))
    return TruncatedPareto(xm=10 * MB, alpha=float(alpha), cap=100 * TB)


def spark_flow_sizes() -> LogNormalSizes:
    """Shuffle-block sizes as in the paper's own traces: tens of KB–few MB."""
    return LogNormalSizes(median=200 * KB, sigma=1.3, lo=1 * KB, hi=64 * MB)


def byte_share_above(sizes: np.ndarray, threshold: float) -> float:
    """Fraction of total bytes carried by flows larger than ``threshold``."""
    sizes = np.asarray(sizes, dtype=np.float64)
    total = sizes.sum()
    if total <= 0:
        return 0.0
    return float(sizes[sizes > threshold].sum() / total)
