"""The public Facebook coflow-benchmark trace format.

The coflow literature (Varys, Aalo, CODA, …) replays a one-hour Hive/
MapReduce trace from a 3000-machine Facebook cluster, distributed in a
simple text format (github.com/coflow/coflow-benchmark)::

    <num_ports> <num_coflows>
    <id> <arrival_ms> <num_mappers> <m1> ... <num_reducers> <r1:mb1> ...

Each mapper is a port index; each reducer is ``port:size_in_MB`` where the
size is the *total* bytes the reducer receives, split evenly across the
mappers (the standard interpretation).  This module reads and writes the
format and can synthesise FB-like traces with the published width/size
skew, so experiments run out of the box without the proprietary file.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, TextIO, Tuple, Union

import numpy as np

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.errors import ConfigurationError, TraceFormatError
from repro.units import MB


@dataclass
class FacebookTrace:
    """A parsed trace: fabric size plus the coflows."""

    num_ports: int
    coflows: List[Coflow]

    @property
    def num_flows(self) -> int:
        return sum(c.width for c in self.coflows)

    @property
    def total_bytes(self) -> float:
        return sum(c.size for c in self.coflows)


def _parse_coflow_line(line: str, lineno: int, num_ports: int) -> Coflow:
    tok = line.split()
    try:
        arrival_ms = float(tok[1])
        n_map = int(tok[2])
        mappers = [int(t) for t in tok[3 : 3 + n_map]]
        n_red = int(tok[3 + n_map])
        red_tok = tok[4 + n_map : 4 + n_map + n_red]
        if len(red_tok) != n_red:
            raise IndexError
        reducers: List[Tuple[int, float]] = []
        for rt in red_tok:
            port_s, mb_s = rt.split(":")
            reducers.append((int(port_s), float(mb_s)))
    except (IndexError, ValueError) as exc:
        raise TraceFormatError(f"line {lineno}: malformed coflow entry: {line!r}") from exc
    if not mappers or not reducers:
        raise TraceFormatError(f"line {lineno}: coflow needs mappers and reducers")
    for p in mappers + [r[0] for r in reducers]:
        if not 0 <= p < num_ports:
            raise TraceFormatError(f"line {lineno}: port {p} out of range 0..{num_ports - 1}")
    flows: List[Flow] = []
    for rport, total_mb in reducers:
        if total_mb <= 0:
            raise TraceFormatError(f"line {lineno}: non-positive reducer size {total_mb}")
        per_mapper = total_mb * MB / len(mappers)
        for mport in mappers:
            flows.append(Flow(src=mport, dst=rport, size=per_mapper))
    return Coflow(flows, arrival=arrival_ms / 1e3, label=f"fb-{tok[0]}")


def read_facebook_trace(source: Union[str, Path, TextIO]) -> FacebookTrace:
    """Parse a coflow-benchmark file into a :class:`FacebookTrace`."""
    if isinstance(source, (str, Path)):
        with open(source) as fh:
            return read_facebook_trace(fh)
    header = source.readline().split()
    if len(header) != 2:
        raise TraceFormatError(f"bad header: {header!r}")
    try:
        num_ports, num_coflows = int(header[0]), int(header[1])
    except ValueError as exc:
        raise TraceFormatError(f"bad header: {header!r}") from exc
    coflows: List[Coflow] = []
    for lineno, line in enumerate(source, start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        coflows.append(_parse_coflow_line(line, lineno, num_ports))
    if len(coflows) != num_coflows:
        raise TraceFormatError(
            f"header declares {num_coflows} coflows but file has {len(coflows)}"
        )
    coflows.sort(key=lambda c: c.arrival)
    return FacebookTrace(num_ports=num_ports, coflows=coflows)


def write_facebook_trace(
    trace: FacebookTrace, dest: Union[str, Path, TextIO]
) -> None:
    """Serialise coflows back to the benchmark format.

    Flows are grouped by (coflow, reducer); mapper sets are recovered from
    the distinct source ports.  Round-trips traces produced by
    :func:`synthesize_facebook_like` and :func:`read_facebook_trace`.
    """
    if isinstance(dest, (str, Path)):
        with open(dest, "w") as fh:
            write_facebook_trace(trace, fh)
            return
    dest.write(f"{trace.num_ports} {len(trace.coflows)}\n")
    for k, c in enumerate(trace.coflows):
        mappers = sorted({f.src for f in c.flows})
        by_reducer: dict = {}
        for f in c.flows:
            by_reducer[f.dst] = by_reducer.get(f.dst, 0.0) + f.size
        parts = [str(k + 1), f"{c.arrival * 1e3:.0f}", str(len(mappers))]
        parts += [str(m) for m in mappers]
        parts.append(str(len(by_reducer)))
        parts += [f"{p}:{b / MB:.6g}" for p, b in sorted(by_reducer.items())]
        dest.write(" ".join(parts) + "\n")


def synthesize_facebook_like(
    rng: np.random.Generator,
    num_coflows: int = 100,
    num_ports: int = 150,
    arrival_rate: float = 0.1,
    mean_reducer_mb: float = 64.0,
) -> FacebookTrace:
    """A synthetic trace with the FB trace's published skew.

    Width (mapper/reducer counts) follows a bounded Zipf — most coflows
    touch a handful of ports, a few span half the cluster; reducer sizes are
    log-normal around ``mean_reducer_mb``.
    """
    if num_coflows <= 0 or num_ports < 2:
        raise ConfigurationError("need num_coflows > 0 and num_ports >= 2")
    coflows: List[Coflow] = []
    t = 0.0
    max_width = max(2, num_ports // 2)
    for k in range(num_coflows):
        n_map = _bounded_zipf(rng, max_width)
        n_red = _bounded_zipf(rng, max_width)
        mappers = rng.choice(num_ports, size=n_map, replace=False)
        reducers = rng.choice(num_ports, size=n_red, replace=False)
        flows = []
        for rport in reducers:
            total = rng.lognormal(np.log(mean_reducer_mb * MB), 1.0)
            per_mapper = max(total / n_map, 1.0)
            for mport in mappers:
                flows.append(Flow(src=int(mport), dst=int(rport), size=per_mapper))
        coflows.append(Coflow(flows, arrival=t, label=f"fb-{k + 1}"))
        t += rng.exponential(1.0 / arrival_rate)
    return FacebookTrace(num_ports=num_ports, coflows=coflows)


#: Canonical short name (``traces.facebook.synthesize``) used by the
#: bigtrace benchmark and docs.
synthesize = synthesize_facebook_like


def _bounded_zipf(rng: np.random.Generator, upper: int, a: float = 1.8) -> int:
    """Zipf draw clipped to [1, upper]."""
    return int(min(rng.zipf(a), upper))


def trace_summary(trace: FacebookTrace) -> dict:
    """Descriptive statistics of a trace (counts, bytes, bins, widths).

    The bin breakdown uses the literature's Short/Long × Narrow/Wide
    classification (:mod:`repro.traces.classify`).
    """
    from repro.traces.classify import bin_counts

    widths = np.asarray([c.width for c in trace.coflows])
    sizes = np.asarray([c.size for c in trace.coflows])
    arrivals = np.asarray([c.arrival for c in trace.coflows])
    return {
        "num_ports": trace.num_ports,
        "num_coflows": len(trace.coflows),
        "num_flows": trace.num_flows,
        "total_bytes": float(sizes.sum()),
        "median_width": float(np.median(widths)) if len(widths) else 0.0,
        "max_width": int(widths.max()) if len(widths) else 0,
        "median_coflow_bytes": float(np.median(sizes)) if len(sizes) else 0.0,
        "horizon": float(arrivals.max()) if len(arrivals) else 0.0,
        "bins": bin_counts(trace.coflows),
    }
