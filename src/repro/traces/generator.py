"""Synthetic coflow workload generator.

Generates the trace-driven-simulation workloads of Section VI-A: coflows
with configurable width (parallel-flow count), per-flow sizes from a
:class:`~repro.traces.distributions.SizeDistribution`, Poisson arrivals,
and uniform-random placement on the fabric ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.errors import ConfigurationError
from repro.traces.distributions import SizeDistribution, spark_flow_sizes


@dataclass
class WorkloadConfig:
    """Knobs of the synthetic workload.

    Parameters
    ----------
    num_coflows:
        How many coflows to generate.
    num_ports:
        Fabric size (flows get uniform random src/dst in range).
    size_dist:
        Per-flow size distribution; default matches the paper's Spark
        shuffle traces.
    width:
        Either a fixed width or ``(min, max)`` for a log-uniform draw —
        coflow width distributions are heavy-tailed in production traces.
    arrival_rate:
        Poisson arrival rate (coflows/second).  ``None`` puts every coflow
        at t=0 (a batch workload).
    compressible_fraction:
        Probability that a flow's payload is compressible at all.
    """

    num_coflows: int = 100
    num_ports: int = 16
    size_dist: SizeDistribution = field(default_factory=spark_flow_sizes)
    width: Union[int, tuple] = (1, 8)
    arrival_rate: Optional[float] = None
    compressible_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.num_coflows <= 0 or self.num_ports <= 0:
            raise ConfigurationError("num_coflows and num_ports must be positive")
        if isinstance(self.width, tuple):
            lo, hi = self.width
            if not (1 <= lo <= hi):
                raise ConfigurationError(f"bad width range {self.width}")
        elif self.width < 1:
            raise ConfigurationError("width must be >= 1")
        if not 0 <= self.compressible_fraction <= 1:
            raise ConfigurationError("compressible_fraction must lie in [0, 1]")
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")


def _sample_widths(cfg: WorkloadConfig, rng: np.random.Generator) -> np.ndarray:
    if isinstance(cfg.width, int):
        return np.full(cfg.num_coflows, cfg.width, dtype=np.int64)
    lo, hi = cfg.width
    # log-uniform: most coflows narrow, a few wide (the production shape).
    w = np.exp(rng.uniform(np.log(lo), np.log(hi + 1), size=cfg.num_coflows))
    return np.clip(w.astype(np.int64), lo, hi)


def generate_workload(
    cfg: WorkloadConfig, rng: np.random.Generator
) -> List[Coflow]:
    """Generate a list of coflows per the config, sorted by arrival."""
    widths = _sample_widths(cfg, rng)
    if cfg.arrival_rate is None:
        arrivals = np.zeros(cfg.num_coflows)
    else:
        gaps = rng.exponential(1.0 / cfg.arrival_rate, size=cfg.num_coflows)
        arrivals = np.cumsum(gaps) - gaps[0]  # first coflow at t=0
    coflows: List[Coflow] = []
    for k in range(cfg.num_coflows):
        w = int(widths[k])
        sizes = cfg.size_dist.sample(rng, w)
        srcs = rng.integers(0, cfg.num_ports, size=w)
        dsts = rng.integers(0, cfg.num_ports, size=w)
        compressible = rng.random(w) < cfg.compressible_fraction
        flows = [
            Flow(
                src=int(srcs[j]),
                dst=int(dsts[j]),
                size=float(sizes[j]),
                compressible=bool(compressible[j]),
            )
            for j in range(w)
        ]
        coflows.append(Coflow(flows, arrival=float(arrivals[k]), label=f"cf{k}"))
    return coflows


def generate_flow_workload(
    cfg: WorkloadConfig, rng: np.random.Generator
) -> List[Coflow]:
    """Singleton-coflow workload for the flow-level experiments (Fig. 6a–d).

    Every generated flow is wrapped in its own coflow, so coflow-agnostic
    policies and FVDF's flow granularity compare like-for-like.
    """
    grouped = generate_workload(cfg, rng)
    singles: List[Coflow] = []
    for c in grouped:
        for f in c.flows:
            singles.append(
                Coflow(
                    [Flow(f.src, f.dst, f.size, compressible=f.compressible)],
                    arrival=c.arrival,
                    label=c.label,
                )
            )
    return singles


def filter_workload_by_size(
    coflows: List[Coflow], keep_fraction: float
) -> List[Coflow]:
    """Drop the smallest flows from a workload (Fig. 6(a)'s trace settings).

    The paper's "97% flows"/"95% flows" traces filter out kilobyte-scale
    flows *before* replay.  Flows below the (1−keep) size quantile are
    removed; coflows left empty disappear.  Fresh Flow/Coflow objects are
    returned so the filtered trace replays independently.
    """
    if not 0 < keep_fraction <= 1:
        raise ConfigurationError("keep_fraction must lie in (0, 1]")
    sizes = np.asarray([f.size for c in coflows for f in c.flows])
    if len(sizes) == 0 or keep_fraction == 1.0:
        return list(coflows)
    cutoff = float(np.quantile(sizes, 1.0 - keep_fraction))
    out: List[Coflow] = []
    for c in coflows:
        kept = [
            Flow(f.src, f.dst, f.size, compressible=f.compressible,
                 ratio_override=f.ratio_override)
            for f in c.flows
            if f.size >= cutoff
        ]
        if kept:
            out.append(
                Coflow(kept, arrival=c.arrival, label=c.label,
                       deadline=c.deadline)
            )
    return out


def workload_stats(coflows: List[Coflow]) -> dict:
    """Quick summary of a workload (used by examples and sanity tests)."""
    sizes = np.asarray([f.size for c in coflows for f in c.flows])
    widths = np.asarray([c.width for c in coflows])
    arrivals = np.asarray([c.arrival for c in coflows])
    return {
        "num_coflows": len(coflows),
        "num_flows": int(widths.sum()),
        "total_bytes": float(sizes.sum()),
        "mean_flow_size": float(sizes.mean()) if len(sizes) else 0.0,
        "max_width": int(widths.max()) if len(widths) else 0,
        "horizon": float(arrivals.max()) if len(arrivals) else 0.0,
    }
