"""Coflow classification into the literature's size×width bins.

Varys and Aalo break results down by coflow *length* (largest flow) and
*width* (number of flows) into four bins — Short/Long × Narrow/Wide — and
report per-bin CCT improvements, because policies behave very differently
on mice vs elephants.  This module reproduces that breakdown for any
workload/result pair.

Default thresholds follow Varys: a coflow is *short* if its longest flow
is under 5 MB and *narrow* if it has at most 50 flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.core.coflow import Coflow, CoflowResult
from repro.errors import ConfigurationError
from repro.units import MB

#: Varys' bin thresholds.
DEFAULT_LENGTH_THRESHOLD = 5 * MB
DEFAULT_WIDTH_THRESHOLD = 50

BINS = ("SN", "LN", "SW", "LW")  # Short/Long × Narrow/Wide


@dataclass(frozen=True)
class ClassifierConfig:
    length_threshold: float = DEFAULT_LENGTH_THRESHOLD
    width_threshold: int = DEFAULT_WIDTH_THRESHOLD

    def __post_init__(self) -> None:
        if self.length_threshold <= 0 or self.width_threshold <= 0:
            raise ConfigurationError("thresholds must be positive")


def classify_coflow(
    coflow: Union[Coflow, CoflowResult],
    config: ClassifierConfig = ClassifierConfig(),
) -> str:
    """Bin one coflow: "SN", "LN", "SW" or "LW"."""
    if isinstance(coflow, CoflowResult):
        length = max(f.size for f in coflow.flow_results)
        width = coflow.width
    else:
        length = max(f.size for f in coflow.flows)
        width = coflow.width
    short = length < config.length_threshold
    narrow = width <= config.width_threshold
    return ("S" if short else "L") + ("N" if narrow else "W")


def bin_counts(
    coflows: Iterable[Union[Coflow, CoflowResult]],
    config: ClassifierConfig = ClassifierConfig(),
) -> Dict[str, int]:
    """How many coflows land in each bin."""
    out = {b: 0 for b in BINS}
    for c in coflows:
        out[classify_coflow(c, config)] += 1
    return out


def cct_by_bin(
    results: Sequence[CoflowResult],
    config: ClassifierConfig = ClassifierConfig(),
) -> Dict[str, float]:
    """Average CCT per bin (empty bins omitted)."""
    acc: Dict[str, List[float]] = {}
    for c in results:
        acc.setdefault(classify_coflow(c, config), []).append(c.cct)
    return {b: float(np.mean(v)) for b, v in acc.items()}


def speedup_by_bin(
    baseline: Sequence[CoflowResult],
    ours: Sequence[CoflowResult],
    config: ClassifierConfig = ClassifierConfig(),
) -> Dict[str, float]:
    """Per-bin CCT speedup of ``ours`` over ``baseline`` (paired runs)."""
    base = cct_by_bin(baseline, config)
    mine = cct_by_bin(ours, config)
    out = {}
    for b in base:
        if b in mine and mine[b] > 0:
            out[b] = base[b] / mine[b]
    return out
