"""Shuffle materialisation: a job's map output becomes one coflow.

Each (mapper task, reducer task) pair contributes one flow of the app's
block size, placed on the nodes the tasks were scheduled on.  The flow's
``ratio_override`` carries the application's measured compressibility
(Table I) so that when Swallow compresses the shuffle, the traffic drops by
exactly the paper's per-app factor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.job import JobSpec
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.errors import ConfigurationError


def build_shuffle_coflow(
    spec: JobSpec,
    mapper_nodes: Sequence[int],
    reducer_nodes: Sequence[int],
    arrival: float,
) -> Coflow:
    """Build the coflow for one job's shuffle stage.

    Parameters
    ----------
    mapper_nodes / reducer_nodes:
        Node ids the map/reduce tasks run on (one entry per task).
    arrival:
        When the shuffle becomes ready (map-stage end).
    """
    if len(mapper_nodes) != spec.num_mappers:
        raise ConfigurationError(
            f"{spec.label}: expected {spec.num_mappers} mapper nodes, "
            f"got {len(mapper_nodes)}"
        )
    if len(reducer_nodes) != spec.num_reducers:
        raise ConfigurationError(
            f"{spec.label}: expected {spec.num_reducers} reducer nodes, "
            f"got {len(reducer_nodes)}"
        )
    block = spec.app.block_uncompressed * spec.shuffle_scale
    flows = [
        Flow(
            src=int(m),
            dst=int(r),
            size=block,
            ratio_override=spec.app.ratio,
        )
        for m in mapper_nodes
        for r in reducer_nodes
    ]
    return Coflow(flows, arrival=arrival, label=f"{spec.label}-shuffle")


def place_tasks(
    rng: np.random.Generator, num_tasks: int, num_nodes: int
) -> np.ndarray:
    """Uniform random task placement, spreading across nodes when possible."""
    if num_tasks <= 0 or num_nodes <= 0:
        raise ConfigurationError("num_tasks and num_nodes must be positive")
    if num_tasks <= num_nodes:
        return rng.choice(num_nodes, size=num_tasks, replace=False)
    return rng.integers(0, num_nodes, size=num_tasks)
