"""JVM garbage-collection time model (paper Table VIII).

The paper reports application-level GC time per map/reduce stage, showing
that compression shrinks shuffle buffers and therefore GC work.  We model
GC time as base cost plus allocation-proportional work, amplified when the
working set presses against the heap:

    gc = base + (alloc / throughput) * pressure(alloc / heap)

with a superlinear pressure term once allocations approach the heap size —
the paper's "page replacement in memory swap" regime.  The constants are
chosen so the large/huge/gigantic workloads land in Table VIII's ranges
(sub-second maps; seconds-to-minutes reduces at the gigantic scale).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB


@dataclass(frozen=True)
class GcModel:
    """Analytic GC-time model.

    Parameters
    ----------
    heap:
        JVM heap per executor, bytes.
    throughput:
        Bytes of allocation retired per second of GC work.
    base:
        Fixed per-stage GC cost (young-gen churn), seconds.
    pressure_knee:
        Fraction of heap occupancy where pressure starts to grow.
    pressure_power:
        Superlinearity of the over-knee penalty.
    """

    heap: float = 4 * GB
    throughput: float = 8 * GB
    base: float = 0.05
    pressure_knee: float = 0.5
    pressure_power: float = 2.0

    def __post_init__(self) -> None:
        if self.heap <= 0 or self.throughput <= 0:
            raise ConfigurationError("heap and throughput must be positive")
        if self.base < 0:
            raise ConfigurationError("base must be >= 0")
        if not 0 < self.pressure_knee <= 1:
            raise ConfigurationError("pressure_knee must lie in (0, 1]")
        if self.pressure_power < 1:
            raise ConfigurationError("pressure_power must be >= 1")

    def pressure(self, alloc: float) -> float:
        """Multiplier >= 1; grows once alloc presses past the knee."""
        occupancy = alloc / self.heap
        if occupancy <= self.pressure_knee:
            return 1.0
        over = (occupancy - self.pressure_knee) / self.pressure_knee
        return 1.0 + over**self.pressure_power

    def gc_time(self, alloc: float) -> float:
        """GC seconds for a stage allocating ``alloc`` bytes per executor."""
        if alloc < 0:
            raise ConfigurationError("alloc must be >= 0")
        return self.base + (alloc / self.throughput) * self.pressure(alloc)
