"""Failure and straggler injection for the cluster simulator.

Production map/reduce stages lose tasks (executor OOMs, preemptions, node
flakiness) and suffer stragglers; both stretch stage durations and change
when shuffles hit the fabric.  The model is intentionally simple and
deterministic-under-seed:

* each task independently *fails* with probability ``task_failure_prob``
  per attempt and is retried (serially, as a conservative re-execution
  model) up to ``max_retries`` times — beyond that the whole job is
  marked failed;
* each attempt independently *straggles* with probability
  ``straggler_prob``, running ``straggler_slowdown`` times longer.

A stage's duration is the slowest task's total attempt time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FailureModel:
    """Per-attempt task failure/straggler parameters.

    With ``speculative`` on, a backup copy of a straggling task launches
    once the expected task time has elapsed and the stage takes whichever
    copy finishes first — capping a straggler at 2× the base time (Spark's
    speculative execution, idealised).
    """

    task_failure_prob: float = 0.0
    max_retries: int = 3
    straggler_prob: float = 0.0
    straggler_slowdown: float = 3.0
    speculative: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.task_failure_prob < 1:
            raise ConfigurationError("task_failure_prob must lie in [0, 1)")
        if not 0 <= self.straggler_prob <= 1:
            raise ConfigurationError("straggler_prob must lie in [0, 1]")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.straggler_slowdown < 1:
            raise ConfigurationError("straggler_slowdown must be >= 1")

    def stage_time(
        self,
        base_task_time: float,
        num_tasks: int,
        rng: np.random.Generator,
    ) -> Tuple[float, int, bool]:
        """Simulate one stage's tasks.

        Returns
        -------
        (duration, total_attempts, failed):
            ``duration`` is the slowest task's cumulative attempt time;
            ``total_attempts`` counts every attempt across tasks;
            ``failed`` is True when some task exhausted its retries.
        """
        if base_task_time < 0 or num_tasks <= 0:
            raise ConfigurationError("need base_task_time >= 0 and num_tasks > 0")
        worst = 0.0
        attempts_total = 0
        failed = False
        for _ in range(num_tasks):
            elapsed = 0.0
            for attempt in range(self.max_retries + 1):
                attempts_total += 1
                t = base_task_time
                if self.straggler_prob and rng.random() < self.straggler_prob:
                    t *= self.straggler_slowdown
                    if self.speculative:
                        # backup launched at base_task_time, finishes after
                        # another base_task_time (assumed healthy copy).
                        t = min(t, 2 * base_task_time)
                elapsed += t
                if not (self.task_failure_prob and rng.random() < self.task_failure_prob):
                    break
            else:
                failed = True
            worst = max(worst, elapsed)
        return worst, attempts_total, failed


#: The default: a perfectly reliable cluster.
NO_FAILURES = FailureModel()
