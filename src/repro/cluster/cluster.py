"""Cluster deployment simulator — the stand-in for the paper's 100-VM testbed.

Jobs (map → shuffle → reduce → result) run over a simulated cluster: map and
reduce stages occupy CPU cores on their nodes (which is exactly the
background load Swallow's compression has to coexist with), shuffles become
coflows on the shared :class:`~repro.core.simulator.SliceSimulator`, and the
result stage writes output to disk.  Everything Fig. 7 and Tables V–VIII
report is measured here: per-stage durations, JCT, shuffle traffic, GC time
and CPU utilisation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.failures import NO_FAILURES, FailureModel
from repro.cluster.gc_model import GcModel
from repro.cluster.job import JobResult, JobSpec, StageRecord
from repro.cluster.node import ClusterNode, NodeSpec
from repro.cluster.shuffle import build_shuffle_coflow, place_tasks
from repro.compression.engine import CompressionEngine
from repro.core.coflow import CoflowResult
from repro.core.scheduler import Scheduler
from repro.core.simulator import SliceSimulator
from repro.cpu.cores import CpuModel
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch
from repro.units import gbps


@dataclass
class ClusterConfig:
    """Cluster-wide knobs.

    Setting ``num_racks`` places the nodes behind a two-tier fabric with
    rack uplinks of ``uplink_bandwidth`` (defaults to 1:1, i.e. no
    oversubscription); otherwise the ideal big switch is used.
    """

    num_nodes: int = 16
    bandwidth: float = gbps(1)
    node_spec: NodeSpec = field(default_factory=NodeSpec)
    gc: GcModel = field(default_factory=GcModel)
    failures: FailureModel = NO_FAILURES
    num_racks: Optional[int] = None
    uplink_bandwidth: Optional[float] = None
    slice_len: float = 0.01
    sample_cpu: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.num_racks is not None:
            if self.num_racks <= 0 or self.num_nodes % self.num_racks != 0:
                raise ConfigurationError(
                    f"num_racks={self.num_racks} must divide num_nodes={self.num_nodes}"
                )
        elif self.uplink_bandwidth is not None:
            raise ConfigurationError("uplink_bandwidth requires num_racks")

    def build_fabric(self) -> BigSwitch:
        if self.num_racks is None:
            return BigSwitch(self.num_nodes, self.bandwidth)
        hosts = self.num_nodes // self.num_racks
        uplink = (
            self.uplink_bandwidth
            if self.uplink_bandwidth is not None
            else hosts * self.bandwidth
        )
        from repro.fabric.twotier import TwoTierFabric

        return TwoTierFabric(self.num_racks, hosts, self.bandwidth, uplink)


@dataclass
class ClusterResult:
    """Aggregate outcome of a cluster run."""

    job_results: List[JobResult]
    makespan: float
    cpu_recorder: Optional[object] = None

    @property
    def successful(self) -> List[JobResult]:
        return [j for j in self.job_results if not j.failed]

    @property
    def failed_jobs(self) -> int:
        return sum(1 for j in self.job_results if j.failed)

    @property
    def avg_jct(self) -> float:
        """Mean JCT over *successful* jobs (failed jobs have no JCT)."""
        ok = self.successful
        if not ok:
            return 0.0
        return float(np.mean([j.jct for j in ok]))

    def stage_means(self) -> Dict[str, float]:
        """Mean duration per stage across successful jobs (Fig. 7a)."""
        ok = self.successful
        if not ok:
            return {}
        return {
            stage: float(
                np.mean([getattr(j, f"{stage}_stage").duration for j in ok])
            )
            for stage in ("map", "shuffle", "reduce", "result")
        }

    @property
    def shuffle_bytes_original(self) -> float:
        return float(sum(j.spec.shuffle_bytes for j in self.successful))

    @property
    def shuffle_bytes_sent(self) -> float:
        return float(sum(j.shuffle_bytes_sent for j in self.successful))

    @property
    def traffic_reduction(self) -> float:
        """Fraction of shuffle bytes kept off the wire (Table VII)."""
        orig = self.shuffle_bytes_original
        return 1.0 - self.shuffle_bytes_sent / orig if orig > 0 else 0.0

    def gc_summary(self) -> Dict[str, float]:
        """Mean GC seconds per map / reduce stage (Table VIII)."""
        ok = self.successful
        if not ok:
            return {"map": 0.0, "reduce": 0.0}
        return {
            "map": float(np.mean([j.gc_map for j in ok])),
            "reduce": float(np.mean([j.gc_reduce for j in ok])),
        }

    def completions(self) -> List[float]:
        """Job completion instants (Table V throughput windows)."""
        return sorted(j.result_stage.end for j in self.successful)


class _JobState:
    __slots__ = (
        "spec", "mapper_nodes", "reducer_nodes", "map_rec", "shuffle_rec",
        "reduce_rec", "result_rec", "gc_map", "gc_reduce", "bytes_sent",
        "failed", "map_attempts", "reduce_attempts", "round",
        "shuffle_elapsed", "reduce_elapsed", "round_start",
    )

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.mapper_nodes: Optional[np.ndarray] = None
        self.reducer_nodes: Optional[np.ndarray] = None
        self.map_rec = StageRecord()
        self.shuffle_rec = StageRecord()
        self.reduce_rec = StageRecord()
        self.result_rec = StageRecord()
        self.gc_map = 0.0
        self.gc_reduce = 0.0
        self.bytes_sent = 0.0
        self.failed = False
        self.map_attempts = 0
        self.reduce_attempts = 0
        self.round = 1
        self.shuffle_elapsed = 0.0
        self.reduce_elapsed = 0.0
        self.round_start = 0.0


class ClusterSimulator:
    """Runs a job mix over the network engine + CPU + GC models.

    Parameters
    ----------
    config:
        Cluster hardware and timing knobs.
    scheduler:
        Network scheduling policy (Swallow = FVDF with compression; the
        "without Swallow" baselines are SEBF/FIFO/FAIR without an engine).
    compression:
        Compression engine.  When present and the scheduler uses it, the
        shuffle traffic shrinks, reduce-side GC drops and the result stage
        writes compressed output — the three effects behind Fig. 7 and
        Tables VII/VIII.
    """

    def __init__(
        self,
        config: ClusterConfig,
        scheduler: Scheduler,
        compression: Optional[CompressionEngine] = None,
        obs=None,
    ):
        self.config = config
        self.nodes = [ClusterNode(i, config.node_spec) for i in range(config.num_nodes)]
        self.fabric = config.build_fabric()
        self.cpu = CpuModel(config.num_nodes, cores_per_node=config.node_spec.cores)
        if compression is None and scheduler.uses_compression:
            compression = CompressionEngine()
        self.compression = compression
        self.net = SliceSimulator(
            self.fabric,
            scheduler,
            slice_len=config.slice_len,
            cpu=self.cpu,
            compression=compression,
            sample_cpu=config.sample_cpu,
            obs=obs,
        )
        self.obs = self.net.obs
        self.net.on_coflow_complete(self._on_shuffle_done)
        self._rng = np.random.default_rng(config.seed)
        self._events: List = []
        self._seq = itertools.count()
        self._jobs: Dict[int, _JobState] = {}
        self._coflow_to_job: Dict[int, int] = {}
        self._results: List[JobResult] = []
        self._idle_chunk = max(1.0, 100 * config.slice_len)

    # -------------------------------------------------------------------- API
    @property
    def compressing(self) -> bool:
        """Whether this run compresses shuffles (the "-c" configurations)."""
        return self.compression is not None and self.net.scheduler.uses_compression

    def submit_job(self, spec: JobSpec) -> None:
        if spec.job_id in self._jobs:
            raise ConfigurationError(f"job {spec.job_id} submitted twice")
        self._jobs[spec.job_id] = _JobState(spec)
        self._push(spec.arrival, "arrival", spec.job_id)

    def submit_jobs(self, specs: List[JobSpec]) -> None:
        for s in specs:
            self.submit_job(s)

    def run(self) -> ClusterResult:
        while self._events or self.net.pending:
            if not self._events:
                # Only shuffles in flight: step the network in bounded chunks
                # so completions surface (and enqueue reduce stages) promptly.
                self.net.run(until=self.net.now + self._idle_chunk)
                continue
            t = self._events[0][0]
            if self.net.pending and self.net.now < t:
                self.net.run(until=t)
                if self._events and self._events[0][0] < t:
                    continue  # a shuffle finished and enqueued earlier work
            _, _, kind, job_id = heapq.heappop(self._events)
            tr = self.obs.events
            if tr.enabled:
                tr.emit(t, "job_stage", stage=kind, job_id=job_id)
            getattr(self, f"_on_{kind}")(t, self._jobs[job_id])
        makespan = max(
            [self.net.now] + [r.result_stage.end for r in self._results], default=0.0
        )
        rec = self.net.result().cpu_recorder
        return ClusterResult(
            job_results=list(self._results), makespan=makespan, cpu_recorder=rec
        )

    # -------------------------------------------------------------- stages
    def _push(self, t: float, kind: str, job_id: int) -> None:
        heapq.heappush(self._events, (t, next(self._seq), kind, job_id))

    def _waves(self, task_nodes: np.ndarray) -> int:
        """Execution waves: tasks beyond a node's core count queue behind
        the first wave (Spark's slot model)."""
        counts = np.bincount(task_nodes, minlength=self.config.num_nodes)
        return int(np.ceil(counts.max() / self.config.node_spec.cores))

    def _on_arrival(self, t: float, js: _JobState) -> None:
        spec = js.spec
        js.mapper_nodes = place_tasks(self._rng, spec.num_mappers, self.config.num_nodes)
        js.reducer_nodes = place_tasks(self._rng, spec.num_reducers, self.config.num_nodes)
        for n in js.mapper_nodes:
            self.cpu.claim(int(n))
        js.map_rec.start = t
        spec_hw = self.config.node_spec
        per_mapper_in = spec.input_bytes / spec.num_mappers
        # Map-side spill buffers hold the shuffle output; compressed spills
        # are smaller, which is Table VIII's map-column effect.
        per_mapper_out = spec.shuffle_bytes / spec.num_mappers
        if self.compressing:
            per_mapper_out *= spec.app.ratio
        js.gc_map = self.config.gc.gc_time(per_mapper_out)
        base_task = per_mapper_in / spec_hw.map_speed + js.gc_map
        map_time, js.map_attempts, failed = self.config.failures.stage_time(
            base_task, spec.num_mappers, self._rng
        )
        map_time *= self._waves(js.mapper_nodes)
        if failed:
            js.failed = True
        self._push(t + map_time, "map_done", spec.job_id)

    def _on_map_done(self, t: float, js: _JobState) -> None:
        for n in js.mapper_nodes:
            self.cpu.release(int(n))
        js.map_rec.end = t
        if js.failed:
            # A map task exhausted its retries: the job aborts before its
            # shuffle ever reaches the fabric.
            self._finalize(js)
            return
        js.shuffle_rec.start = t
        self._start_shuffle_round(t, js)

    def _start_shuffle_round(self, t: float, js: _JobState) -> None:
        arrival = max(t, self.net.now)
        js.round_start = arrival
        coflow = build_shuffle_coflow(
            js.spec, js.mapper_nodes, js.reducer_nodes, arrival
        )
        self._coflow_to_job[coflow.coflow_id] = js.spec.job_id
        self.net.submit(coflow)

    def _on_shuffle_done(self, cr: CoflowResult) -> None:
        job_id = self._coflow_to_job.pop(cr.coflow_id, None)
        if job_id is None:
            return  # a coflow not owned by this cluster (shared engine)
        js = self._jobs[job_id]
        t = cr.finish
        js.shuffle_elapsed += t - js.round_start
        js.bytes_sent += cr.bytes_sent
        for n in js.reducer_nodes:
            self.cpu.claim(int(n))
        js.round_start = t  # reduce phase of this round starts now
        spec, hw = js.spec, self.config.node_spec
        per_reducer_logical = spec.shuffle_bytes_per_round / spec.num_reducers
        per_reducer_physical = cr.bytes_sent / spec.num_reducers
        js.gc_reduce = self.config.gc.gc_time(per_reducer_physical)
        base_task = per_reducer_logical / hw.reduce_speed + js.gc_reduce
        if self.compression is not None and cr.bytes_sent < spec.shuffle_bytes_per_round:
            base_task += per_reducer_physical / self.compression.codec.decompression_speed
        reduce_time, attempts, failed = self.config.failures.stage_time(
            base_task, spec.num_reducers, self._rng
        )
        js.reduce_attempts += attempts
        reduce_time *= self._waves(js.reducer_nodes)
        if failed:
            js.failed = True
        self._push(t + reduce_time, "reduce_done", job_id)

    def _on_reduce_done(self, t: float, js: _JobState) -> None:
        for n in js.reducer_nodes:
            self.cpu.release(int(n))
        js.reduce_elapsed += t - js.round_start
        if js.failed:
            self._finalize(js)
            return
        if js.round < js.spec.rounds:
            # Iterative job: the next round's shuffle starts now.
            js.round += 1
            self._start_shuffle_round(t, js)
            return
        js.result_rec.start = t
        spec, hw = js.spec, self.config.node_spec
        out = spec.output_bytes
        if self.compressing:
            out *= spec.app.ratio  # Swallow writes compressed output files
        result_time = out / spec.num_reducers / hw.disk_bandwidth
        self._push(t + result_time, "result_done", spec.job_id)

    def _on_result_done(self, t: float, js: _JobState) -> None:
        js.result_rec.end = t
        self._finalize(js)

    def _finalize(self, js: _JobState) -> None:
        # Synthesize the shuffle/reduce stage records from accumulated
        # per-round time (rounds interleave, so start/end alone mislead).
        js.shuffle_rec.end = js.shuffle_rec.start + js.shuffle_elapsed
        js.reduce_rec.start = js.shuffle_rec.end
        js.reduce_rec.end = js.reduce_rec.start + js.reduce_elapsed
        self._results.append(
            JobResult(
                spec=js.spec,
                map_stage=js.map_rec,
                shuffle_stage=js.shuffle_rec,
                reduce_stage=js.reduce_rec,
                result_stage=js.result_rec,
                gc_map=js.gc_map,
                gc_reduce=js.gc_reduce,
                shuffle_bytes_sent=js.bytes_sent,
                failed=js.failed,
                map_attempts=js.map_attempts,
                reduce_attempts=js.reduce_attempts,
            )
        )
