"""Cluster deployment simulator: jobs, GC, HiBench suites (paper §VI-B)."""

from repro.cluster.cluster import ClusterConfig, ClusterResult, ClusterSimulator
from repro.cluster.failures import NO_FAILURES, FailureModel
from repro.cluster.gc_model import GcModel
from repro.cluster.hibench import (
    DEFAULT_MIX,
    SCALE_TRAFFIC,
    expected_traffic_reduction,
    hibench_suite,
    suite_shuffle_bytes,
)
from repro.cluster.job import JobResult, JobSpec, StageRecord
from repro.cluster.node import ClusterNode, NodeSpec
from repro.cluster.shuffle import build_shuffle_coflow, place_tasks

__all__ = [
    "ClusterSimulator", "ClusterConfig", "ClusterResult",
    "JobSpec", "JobResult", "StageRecord",
    "ClusterNode", "NodeSpec", "GcModel", "FailureModel", "NO_FAILURES",
    "build_shuffle_coflow", "place_tasks",
    "hibench_suite", "SCALE_TRAFFIC", "DEFAULT_MIX",
    "suite_shuffle_bytes", "expected_traffic_reduction",
]
