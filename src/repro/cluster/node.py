"""Cluster machine model.

One :class:`ClusterNode` per fabric ingress/egress port pair, mirroring the
paper's testbed (Section VI-B: 100 VMs, each with 3.1 GHz Xeon cores,
28 GB memory, gigabit Ethernet).  Processing speeds are per-core byte
throughputs of the map/reduce user code — they set stage durations in the
deployment simulation but take no part in network scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB, MB


@dataclass(frozen=True)
class NodeSpec:
    """Hardware profile shared by every node of a (homogeneous) cluster."""

    cores: int = 4
    memory: float = 28 * GB
    disk_bandwidth: float = 200 * MB  # sequential HDFS write, bytes/s
    map_speed: float = 100 * MB  # map user-code throughput per core
    reduce_speed: float = 100 * MB  # reduce user-code throughput per core

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("cores must be positive")
        for attr in ("memory", "disk_bandwidth", "map_speed", "reduce_speed"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")


@dataclass
class ClusterNode:
    """A machine: identity plus its hardware profile."""

    node_id: int
    spec: NodeSpec

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigurationError("node_id must be non-negative")
