"""HiBench-like workload suites at the paper's three scales (Table VII).

The paper divides workloads into *large*, *huge* and *gigantic* by job
input size, reporting 2.4 GB / 25.7 GB / 2.65 TB of shuffle traffic without
Swallow.  A suite here is a mix of Table I applications whose per-job
``shuffle_scale`` is calibrated so the total uncompressed shuffle volume
hits the paper's figure for that scale — which makes the Table VII
"without Swallow" column reproduce by construction and leaves the "with
Swallow" column to the compression machinery.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.job import JobSpec
from repro.errors import ConfigurationError
from repro.traces.spark import TABLE_I, AppProfile, get_profile
from repro.units import GB, TB

#: Table VII "Without Swallow" shuffle traffic per workload scale.
SCALE_TRAFFIC: Dict[str, float] = {
    "large": 2.4 * GB,
    "huge": 25.7 * GB,
    "gigantic": 2.65 * TB,
}

#: Default app mix per suite.  Chosen to span Table I's compressibility
#: range (sort/terasort ~25% up to logistic-regression ~75%) so the mix's
#: byte-weighted saving lands near the paper's reported 48.41% average.
DEFAULT_MIX = (
    "sort", "terasort", "wordcount", "pagerank", "lda", "logistic-regression",
)


def hibench_suite(
    scale: str,
    rng: np.random.Generator,
    num_jobs: int = 12,
    apps: Optional[Sequence[str]] = None,
    mappers: int = 4,
    reducers: int = 4,
    arrival_rate: Optional[float] = None,
    input_to_shuffle: float = 2.0,
    iterative: Optional[Dict[str, int]] = None,
) -> List[JobSpec]:
    """Build one suite of jobs totalling the scale's Table VII traffic.

    Parameters
    ----------
    scale:
        "large", "huge" or "gigantic".
    num_jobs:
        Jobs in the suite; traffic is split evenly across them.
    apps:
        Application mix (cycled); defaults to the shuffle-heavy HiBench set.
    arrival_rate:
        Poisson job arrival rate; ``None`` staggers jobs by 1 s to avoid a
        thundering herd while keeping the cluster saturated.
    input_to_shuffle:
        Job input size as a multiple of its shuffle size.
    iterative:
        Optional ``{app name: rounds}`` marking iterative applications
        (e.g. ``{"pagerank": 3}``); their per-round volume shrinks so each
        job's *total* shuffle traffic stays calibrated to Table VII.
    """
    if scale not in SCALE_TRAFFIC:
        raise ConfigurationError(
            f"unknown scale {scale!r}; available: {sorted(SCALE_TRAFFIC)}"
        )
    if num_jobs <= 0:
        raise ConfigurationError("num_jobs must be positive")
    profiles = [get_profile(a) for a in (apps or DEFAULT_MIX)]
    per_job = SCALE_TRAFFIC[scale] / num_jobs
    t = 0.0
    specs: List[JobSpec] = []
    for k in range(num_jobs):
        app = profiles[k % len(profiles)]
        rounds = (iterative or {}).get(app.name, 1)
        natural = mappers * reducers * app.block_uncompressed
        shuffle_scale = per_job / (natural * rounds)
        specs.append(
            JobSpec(
                app=app,
                input_bytes=per_job * input_to_shuffle,
                num_mappers=mappers,
                num_reducers=reducers,
                shuffle_scale=shuffle_scale,
                arrival=t,
                rounds=rounds,
                label=f"{scale}-{app.name}-{k}",
            )
        )
        t += rng.exponential(1.0 / arrival_rate) if arrival_rate else 1.0
    return specs


def suite_shuffle_bytes(specs: Sequence[JobSpec]) -> float:
    """Total uncompressed shuffle volume of a suite."""
    return float(sum(s.shuffle_bytes for s in specs))


def expected_traffic_reduction(specs: Sequence[JobSpec]) -> float:
    """Byte-weighted compression saving if every shuffle compresses fully."""
    raw = suite_shuffle_bytes(specs)
    comp = sum(s.shuffle_bytes * s.app.ratio for s in specs)
    return 1.0 - comp / raw if raw > 0 else 0.0
