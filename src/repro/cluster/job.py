"""Job model: map → shuffle → reduce → result, as in the paper's Fig. 7(a).

A job reads ``input_bytes``, runs map tasks (CPU-bound), shuffles the
intermediate data as one coflow (network-bound — where Swallow acts), runs
reduce tasks, and writes its output in the *result* stage ("save output as
Hadoop files").  Stage durations and per-stage GC times are recorded so the
per-stage speedups of Fig. 7(a) and the GC table (Table VIII) can be
reproduced.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.traces.spark import AppProfile

_job_ids = itertools.count()


@dataclass
class JobSpec:
    """Static description of one job.

    Parameters
    ----------
    app:
        Table I application profile (sets shuffle compressibility).
    input_bytes:
        Bytes read by the map stage (drives map duration).
    num_mappers / num_reducers:
        Task counts; also the shuffle coflow's dimensions.
    shuffle_scale:
        Multiplier on the app's per-block shuffle size (workload scales).
    output_fraction:
        Result-stage bytes as a fraction of input bytes.
    arrival:
        Job submission time, seconds.
    rounds:
        Iterations of the (shuffle → reduce) phase — 1 for batch jobs,
        >1 for iterative applications (pagerank, nweight): each round
        shuffles a fresh coflow of the job's shuffle volume.
    """

    app: AppProfile
    input_bytes: float
    num_mappers: int = 4
    num_reducers: int = 4
    shuffle_scale: float = 1.0
    output_fraction: float = 0.5
    arrival: float = 0.0
    rounds: int = 1
    label: str = ""
    job_id: int = field(default_factory=lambda: next(_job_ids))

    def __post_init__(self) -> None:
        if self.input_bytes <= 0:
            raise ConfigurationError("input_bytes must be positive")
        if self.num_mappers < 1 or self.num_reducers < 1:
            raise ConfigurationError("need at least one mapper and one reducer")
        if self.shuffle_scale <= 0:
            raise ConfigurationError("shuffle_scale must be positive")
        if not 0 <= self.output_fraction <= 10:
            raise ConfigurationError("output_fraction out of sane range")
        if self.arrival < 0:
            raise ConfigurationError("arrival must be >= 0")
        if self.rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        if not self.label:
            self.label = f"{self.app.name}-{self.job_id}"

    @property
    def shuffle_bytes_per_round(self) -> float:
        """Uncompressed shuffle volume of one iteration."""
        return (
            self.num_mappers
            * self.num_reducers
            * self.app.block_uncompressed
            * self.shuffle_scale
        )

    @property
    def shuffle_bytes(self) -> float:
        """Total uncompressed shuffle volume across all rounds."""
        return self.shuffle_bytes_per_round * self.rounds

    @property
    def output_bytes(self) -> float:
        return self.input_bytes * self.output_fraction


@dataclass
class StageRecord:
    """Observed start/end of one stage."""

    start: float = 0.0
    end: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class JobResult:
    """Everything measured about one finished job."""

    spec: JobSpec
    map_stage: StageRecord
    shuffle_stage: StageRecord
    reduce_stage: StageRecord
    result_stage: StageRecord
    gc_map: float
    gc_reduce: float
    shuffle_bytes_sent: float
    failed: bool = False
    map_attempts: int = 0
    reduce_attempts: int = 0

    @property
    def jct(self) -> float:
        """Job completion time, submission to result-stage end."""
        return self.result_stage.end - self.spec.arrival

    @property
    def shuffle_traffic_saved(self) -> float:
        return self.spec.shuffle_bytes - self.shuffle_bytes_sent
