"""Command-line interface: run experiments without writing a script.

Subcommands
-----------
``schedulers``
    List every registered scheduling policy.
``compare``
    Run a synthetic coflow workload under several policies and print the
    comparison table (avg FCT/CCT, makespan, traffic saved).
``replay``
    Replay a Facebook coflow-benchmark trace file under one or more
    policies.
``fig4``
    Print the motivating-example table against the paper's numbers.
``cluster``
    Run a HiBench suite on the cluster simulator with and without Swallow.
``trace``
    Run a scenario with the observability layer enabled and write the
    structured event trace as JSONL (read back with
    :func:`repro.analysis.read_trace`).
``bench``
    Run the hot-path scaling grid and append an entry to the
    ``BENCH_hotpath.json`` perf trajectory at the repo root;
    ``--bigtrace`` instead replays a synthetic FB-like trace (130k+
    flows) end to end against the pinned pre-columnar engine and
    appends to ``BENCH_bigtrace.json`` (``--smoke`` is the seconds-scale
    CI identity check); ``--kernels`` instead times the decision-kernel
    backends (``REPRO_KERNEL``) on the large case and appends a
    backend-labeled entry with bit-identity fingerprints.
``sweep``
    Run a (policy × bandwidth × seed) experiment grid through the
    parallel runner (:mod:`repro.runner`) with the content-addressed
    result cache; ``--smoke`` is the CI equivalence check and
    ``--bench`` the tracked ``BENCH_sweep.json`` scaling grid.
``report``
    Run a pooled sweep with per-worker telemetry attached and render the
    merged run report (per-policy decision latency, bytes sent,
    compression core claims, worker skew, cache effectiveness), writing
    the machine-readable ``report.json`` alongside.
``serve``
    Run the long-lived streaming scheduler service (:mod:`repro.service`):
    coflows arrive from a synthetic generator or a JSONL trace/stdin,
    are admitted tick by tick under bounded in-flight backpressure, and
    retired results drain to ``.npz`` shards so memory stays bounded.
    ``--checkpoint``/``--resume`` snapshot and restore the live service;
    ``--metrics-port N`` starts the live telemetry plane (``/metrics``
    Prometheus exposition, ``/snapshot`` JSON, ``/healthz``/``/readyz``
    with a stall watchdog) on a daemon thread; ``--smoke`` is the CI
    checkpoint/restore identity check (with ``--metrics-port`` it also
    polls the plane mid-run) and ``--bench`` the tracked
    ``BENCH_stream.json`` 1M-flow replay.
``top``
    Live terminal dashboard for a running ``repro serve
    --metrics-port N`` (local or remote): polls ``/snapshot`` and
    renders refreshing rate / backlog / tick-latency panels
    (``--once`` prints a single frame and exits).

Examples::

    python -m repro schedulers
    python -m repro compare --policies fifo,sebf,fvdf --coflows 40 --bandwidth 1gbps
    python -m repro replay path/to/FB2010-1Hr-150-0.txt --policies sebf,fvdf
    python -m repro fig4
    python -m repro cluster --scale large
    python -m repro trace fig4 --policy fvdf --out fig4.jsonl
    python -m repro trace synthetic --coflows 50 --profile
    python -m repro bench --check
    python -m repro bench --bigtrace --check
    python -m repro bench --bigtrace --smoke
    python -m repro bench --kernels --check
    python -m repro bench --kernels --smoke --check
    python -m repro sweep --workers 4
    python -m repro sweep --smoke
    python -m repro sweep --bench --check
    python -m repro report --workers 4 --out report.json
    python -m repro report --smoke
    python -m repro serve --rate 200 --mode bursty --coflows 5000
    python -m repro serve --input trace.jsonl --spill-dir shards/
    python -m repro serve --ticks 50 --checkpoint svc.npz
    python -m repro serve --resume svc.npz
    python -m repro serve --metrics-port 9090
    python -m repro serve --smoke
    python -m repro serve --smoke --metrics-port 0
    python -m repro serve --bench --check
    python -m repro top --port 9090
    python -m repro top --url http://scheduler-host:9090 --once
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis import (
    ExperimentSetup,
    render_table,
    run_many,
    run_policy,
    speedups_over,
)
from repro.errors import ReproError
from repro.schedulers import make_scheduler, scheduler_names
from repro.units import GBPS, MBPS, bytes_to_human, seconds_to_human


def parse_bandwidth(text: str) -> float:
    """Parse ``"100mbps"`` / ``"1gbps"`` / raw bytes-per-second."""
    t = text.strip().lower()
    try:
        if t.endswith("gbps"):
            return float(t[:-4]) * GBPS
        if t.endswith("mbps"):
            return float(t[:-4]) * MBPS
        return float(t)
    except ValueError:
        raise ReproError(f"cannot parse bandwidth {text!r}") from None


def _policies(arg: str) -> List[str]:
    names = [p.strip() for p in arg.split(",") if p.strip()]
    for n in names:
        try:
            make_scheduler(n)  # validate early, with a helpful error
        except ReproError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
    return names


def _summary_table(results) -> str:
    rows = [
        [
            name,
            seconds_to_human(res.avg_fct),
            seconds_to_human(res.avg_cct),
            seconds_to_human(res.makespan),
            f"{res.traffic_reduction * 100:.1f}%",
        ]
        for name, res in results.items()
    ]
    return render_table(
        ["policy", "avg FCT", "avg CCT", "makespan", "traffic saved"], rows
    )


def cmd_schedulers(args: argparse.Namespace) -> int:
    for name in scheduler_names():
        print(name)
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS

    rows = [
        [e.exp_id, e.title, e.bench] for e in EXPERIMENTS.values()
    ]
    print(render_table(["id", "title", "bench"], rows,
                       title="Registered experiments (paper tables/figures)"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.traces import WorkloadConfig, generate_workload, spark_flow_sizes

    rng = np.random.default_rng(args.seed)
    workload = generate_workload(
        WorkloadConfig(
            num_coflows=args.coflows,
            num_ports=args.ports,
            size_dist=spark_flow_sizes(),
            width=(1, args.max_width),
            arrival_rate=args.rate,
        ),
        rng,
    )
    setup = ExperimentSetup(
        num_ports=args.ports,
        bandwidth=parse_bandwidth(args.bandwidth),
        slice_len=args.slice,
    )
    results = run_many(args.policies, workload, setup)
    print(_summary_table(results))
    if len(results) > 1:
        ours = args.policies[-1]
        print(f"\nCCT speedup of {ours}:")
        for name, sp in sorted(speedups_over(results, ours=ours).items()):
            print(f"  over {name:12s} {sp:.2f}x")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.traces import read_csv_trace, read_facebook_trace

    if args.format == "csv" or (args.format == "auto" and args.trace.endswith(".csv")):
        coflows = read_csv_trace(args.trace)
        num_ports = 1 + max(
            max(f.src for c in coflows for f in c.flows),
            max(f.dst for c in coflows for f in c.flows),
        )
    else:
        trace = read_facebook_trace(args.trace)
        coflows, num_ports = trace.coflows, trace.num_ports
    total = sum(c.size for c in coflows)
    n_flows = sum(c.width for c in coflows)
    print(
        f"{len(coflows)} coflows, {n_flows} flows, "
        f"{bytes_to_human(total)} on {num_ports} ports"
    )
    setup = ExperimentSetup(
        num_ports=num_ports,
        bandwidth=parse_bandwidth(args.bandwidth),
        slice_len=args.slice,
    )
    results = run_many(args.policies, coflows, setup)
    print(_summary_table(results))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Run the benchmark suite that regenerates every table and figure."""
    import pytest as _pytest

    bench_dir = str(Path(__file__).resolve().parents[2] / "benchmarks")
    pytest_args = [bench_dir, "--benchmark-only", "-q"]
    if args.only:
        from repro.experiments import EXPERIMENTS

        try:
            exp = EXPERIMENTS[args.only]
        except KeyError:
            print(
                f"error: unknown experiment {args.only!r}; "
                f"see `python -m repro experiments`",
                file=sys.stderr,
            )
            return 2
        pytest_args[0] = str(Path(bench_dir) / exp.bench)
    if args.collect_only:
        pytest_args.append("--collect-only")
    rc = _pytest.main(pytest_args)
    if rc == 0 and not args.collect_only:
        from repro.analysis.collate import collate_reports

        reports = Path(bench_dir) / "reports"
        if reports.is_dir():
            out = reports / "REPORT.md"
            collate_reports(reports, out)
            print(f"\nreports written under {reports} (collated: {out})")
    return int(rc)


def cmd_fig4(args: argparse.Namespace) -> int:
    from repro.scenarios import FIG4_PAPER_NUMBERS, run_motivating_example

    rows = []
    for name in ["pff", "wss", "fifo", "pfp", "sebf", "fvdf"]:
        res = run_motivating_example(make_scheduler(name))
        p_fct, p_cct = FIG4_PAPER_NUMBERS[name]
        rows.append([name, f"{res.avg_fct:.2f}", f"{p_fct:.2f}",
                     f"{res.avg_cct:.2f}", f"{p_cct:.2f}"])
    print(render_table(
        ["policy", "FCT (ours)", "FCT (paper)", "CCT (ours)", "CCT (paper)"],
        rows, title="Fig. 4 — motivating example",
    ))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one scenario with tracing on and export the JSONL trace."""
    from repro.obs import Observability

    obs = Observability(trace=True, metrics=True, profile=args.profile)
    policy = make_scheduler(args.policy)
    if args.scenario == "fig4":
        from repro.scenarios import run_motivating_example

        res = run_motivating_example(policy, slice_len=args.slice, obs=obs)
    else:  # synthetic
        from repro.traces import WorkloadConfig, generate_workload, spark_flow_sizes

        workload = generate_workload(
            WorkloadConfig(
                num_coflows=args.coflows,
                num_ports=args.ports,
                size_dist=spark_flow_sizes(),
                width=(1, args.max_width),
                arrival_rate=args.rate,
            ),
            np.random.default_rng(args.seed),
        )
        setup = ExperimentSetup(
            num_ports=args.ports,
            bandwidth=parse_bandwidth(args.bandwidth),
            slice_len=args.slice,
        )
        res = run_policy(policy, workload, setup, obs=obs)

    if args.out == "-":
        obs.tracer.dump_jsonl(sys.stdout)
    else:
        n = obs.tracer.dump_jsonl(args.out)
        print(f"{n} trace records -> {args.out}")
    counts = obs.tracer.counts()
    rows = [[kind, str(counts[kind])] for kind in sorted(counts)]
    print(render_table(["record kind", "count"], rows,
                       title=f"{policy.name} on {args.scenario}"))
    print(
        f"decisions={res.decision_points} makespan={seconds_to_human(res.makespan)} "
        f"avg CCT={seconds_to_human(res.avg_cct)}"
    )
    print("\nmetrics:")
    print(obs.metrics.render())
    if args.profile:
        print("\nhot sections:")
        print(obs.profiler.report())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the hot-path scaling grid, append to the perf trajectory."""
    from repro.analysis import perfbench

    # --kernels wins the routing so `--kernels --smoke` reaches the
    # seconds-scale kernel identity check, not the bigtrace smoke.
    if args.kernels:
        return _bench_kernels(args)
    if args.bigtrace or args.smoke:
        return _bench_bigtrace(args)

    entry = perfbench.bench_entry(repeats=args.repeats, label=args.label)
    rows = [
        [
            c["name"],
            f"{c['num_coflows']}cf/{c['num_ports']}p/w{c['max_width']}",
            f"{c['wall_s']:.3f}s",
            str(c["decisions"]),
            f"{c['decisions_per_sec']:.0f}",
            str(c["peak_active_flows"]),
        ]
        for c in entry["cases"]
    ]
    print(render_table(
        ["case", "grid", "wall", "decisions", "dec/s", "peak flows"],
        rows, title="hot-path scaling grid (best of "
                    f"{entry['repeats']})",
    ))
    sp = entry["speedup"]
    if sp is not None:
        print(
            f"\n{sp['case']} case: reference {sp['before_s']:.3f}s -> "
            f"vectorized {sp['after_s']:.3f}s  ({sp['ratio']:.2f}x)"
        )
    out = Path(args.out) if args.out else perfbench.default_bench_path()
    if not args.dry_run:
        perfbench.append_entry(out, entry)
        print(f"trajectory appended -> {out}")
    if args.check:
        if sp is None or sp["ratio"] < perfbench.MIN_SPEEDUP:
            got = "n/a" if sp is None else f"{sp['ratio']:.2f}x"
            print(
                f"error: speedup check failed: {got} < "
                f"{perfbench.MIN_SPEEDUP:.1f}x on {perfbench.SPEEDUP_CASE}",
                file=sys.stderr,
            )
            return 1
        print(f"speedup check passed (>= {perfbench.MIN_SPEEDUP:.1f}x)")
    return 0


def _bench_kernels(args: argparse.Namespace) -> int:
    """`bench --kernels`: compare decision-kernel backends on one case.

    ``--smoke`` swaps in the seconds-scale grid case with a single
    repeat and never appends — the CI-friendly identity check.
    """
    from repro.analysis import perfbench

    smoke = getattr(args, "smoke", False)
    entry = perfbench.kernel_entry(
        repeats=1 if smoke else args.repeats,
        label=args.label or ("kernel-backends-smoke" if smoke else ""),
        case_name="small" if smoke else perfbench.KERNEL_CASE,
    )
    rows = [
        [
            r["kernel"],
            # requested -> resolved: silent fallbacks become visible
            # labels (e.g. "compiled -> threaded" without numba).
            r["kernel"] if r["resolved"] == r["kernel"]
            else f"-> {r['resolved']}",
            f"{r['wall_s']:.3f}s",
            str(r["decisions"]),
            f"{r['decisions_per_sec']:.0f}",
            r["fingerprint"][:12],
        ]
        for r in entry["runs"]
    ]
    print(render_table(
        ["backend", "resolved", "wall", "decisions", "dec/s", "fingerprint"],
        rows,
        title=f"decision-kernel backends on case "
              f"'{entry['case']['name']}' (best of {entry['repeats']}, "
              f"{entry['cores']} cores)",
    ))
    sp = entry["speedup"]
    ratio = "n/a" if sp["ratio"] is None else f"{sp['ratio']:.2f}x"
    print(
        f"\nidentical: {entry['identical']} | best non-python: "
        f"{sp['best_kernel']} at {ratio} vs python "
        f"({sp['mode']}; floor {sp['floor']:.1f}x "
        f"{'asserted' if sp['asserted'] else 'informational'})"
    )
    out = Path(args.out) if args.out else perfbench.default_bench_path()
    if not args.dry_run and not smoke:
        perfbench.append_entry(out, entry)
        print(f"trajectory appended -> {out}")
    if args.check:
        try:
            perfbench.check_kernel_entry(entry)
        except AssertionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        floor = (
            f">= {sp['floor']:.1f}x" if sp["asserted"] else "identity only"
        )
        print(f"kernel check passed ({floor})")
    return 0


def _bench_bigtrace(args: argparse.Namespace) -> int:
    """`bench --bigtrace`: the trace-scale BENCH_bigtrace.json replay."""
    from repro.analysis import bigbench

    case = bigbench.SMOKE_CASE if args.smoke else bigbench.CASE
    entry = bigbench.bench_entry(
        repeats=args.repeats, label=args.label, case=case,
        npz_out=args.npz, smoke_trace_identity=args.smoke,
    )
    tr, sp, rec = entry["trace"], entry["speedup"], entry["recorder"]
    rows = [
        [tr["case"],
         f"{tr['num_coflows']}cf/{tr['num_flows']}fl/{tr['num_ports']}p",
         tr["policy"],
         f"{sp['before_s']:.3f}s",
         f"{sp['after_s']:.3f}s",
         f"{rec['wall_s']:.3f}s",
         f"{sp['ratio']:.2f}x"],
    ]
    print(render_table(
        ["case", "trace", "policy", "pre-columnar", "columnar",
         "+recorder", "speedup"],
        rows,
        title="Trace-scale end-to-end replay (submit_many -> run -> metrics)",
    ))
    print(
        f"\nbit-identical: {entry['identical']} | decisions: "
        f"{entry['decisions']} | makespan: {entry['makespan']:.1f}s"
    )
    rec_ident = (
        f" | stream identical: {rec['identical']}"
        if "identical" in rec else ""
    )
    print(
        f"recorder: {rec['records']} records in "
        f"{rec['nbytes'] / 1e6:.1f}MB of columns | retained "
        f"{rec['retained']:.0%} of the untraced speedup"
        f"{rec_ident}"
    )
    if args.npz:
        print(f"recorder trace saved -> {args.npz}")
    if not args.smoke:
        out = Path(args.out) if args.out else bigbench.default_bigbench_path()
        if not args.dry_run:
            bigbench.append_entry(out, entry, schema=bigbench.SCHEMA)
            print(f"trajectory appended -> {out}")
    if args.check or args.smoke:
        try:
            bigbench.check_entry(entry, smoke=args.smoke)
        except AssertionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        floor = "identity" if args.smoke else f">= {bigbench.MIN_SPEEDUP:.1f}x"
        print(f"bigtrace check passed ({floor})")
    return 0


def _floats_csv(parse):
    def _parse(text: str):
        return [parse(t) for t in text.split(",") if t.strip()]
    return _parse


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a (policy × bandwidth × seed) grid through the parallel runner."""
    from repro.analysis import sweepbench
    from repro.runner import ResultCache, resolve_workers, run_specs

    if args.bench:
        return _sweep_bench(args)

    if args.smoke:
        return _sweep_smoke(args)

    defaults = sweepbench.GRID
    grid = sweepbench.SweepGrid(
        policies=tuple(args.policies),
        bandwidths=tuple(args.bandwidths) if args.bandwidths else defaults.bandwidths,
        seeds=tuple(args.seeds) if args.seeds else defaults.seeds,
        num_coflows=args.coflows,
        num_ports=args.ports,
        max_width=args.max_width,
        arrival_rate=args.rate,
        slice_len=args.slice,
    )
    # An explicit --workers wins; otherwise REPRO_PARALLEL; otherwise this
    # command (unlike the library default) goes wide — it exists to fan out.
    if args.workers is not None:
        workers = resolve_workers(args.workers)
    else:
        workers = resolve_workers(None) or resolve_workers("auto")
    cache = ResultCache(
        root=args.cache_dir, enabled=False if args.no_cache else None
    )
    specs = grid.specs()
    import time as _time

    t0 = _time.perf_counter()
    outs = run_specs(specs, workers=workers, cache=cache)
    wall = _time.perf_counter() - t0
    rows = [
        [
            out.key,
            seconds_to_human(out.summary.avg_cct),
            seconds_to_human(out.summary.makespan),
            f"{out.summary.traffic_reduction * 100:.1f}%",
            "hit" if out.cached else f"{out.wall_s:.2f}s",
        ]
        for out in outs
    ]
    print(render_table(
        ["cell", "avg CCT", "makespan", "traffic saved", "run"],
        rows,
        title=f"sweep grid — {grid.cells} cells, {workers} workers",
    ))
    stats = cache.stats()
    print(
        f"\nwall {wall:.2f}s | workers {workers} | cache "
        f"{'on' if stats['enabled'] else 'off'} "
        f"({stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['corrupt']} corrupt dropped, {stats['root']})"
    )
    return 0


def _sweep_smoke(args: argparse.Namespace) -> int:
    """Tiny pool-vs-sequential equivalence run for CI (`sweep --smoke`)."""
    import tempfile

    from repro.analysis import sweepbench
    from repro.runner import ResultCache, run_specs

    workers = 2 if args.workers is None else int(args.workers)
    specs = sweepbench.SMOKE_GRID.specs()
    seq = run_specs(specs, workers=0, cache=False)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(root=tmp, enabled=True)
        par = run_specs(specs, workers=workers, cache=cache)
        warm = run_specs(specs, workers=workers, cache=cache)
    ok_par = all(
        a.key == b.key and a.summary == b.summary for a, b in zip(seq, par)
    )
    ok_warm = all(
        a.key == b.key and a.summary == b.summary for a, b in zip(seq, warm)
    ) and all(o.cached for o in warm)
    print(
        f"sweep smoke: {len(specs)} cells, {workers} workers | "
        f"pool identical: {ok_par} | cache identical+hit: {ok_warm}"
    )
    if not (ok_par and ok_warm):
        print("error: smoke equivalence failed", file=sys.stderr)
        return 1
    return 0


def _sweep_bench(args: argparse.Namespace) -> int:
    """`sweep --bench`: the tracked BENCH_sweep.json scaling grid."""
    from repro.analysis import sweepbench

    workers = (
        sweepbench.BENCH_WORKERS if args.workers is None else int(args.workers)
    )
    entry = sweepbench.bench_entry(workers=workers, label=args.label)
    rows = [
        ["sequential", f"{entry['sequential_s']:.2f}s", "1.00x"],
        ["parallel (cold cache)", f"{entry['parallel_cold_s']:.2f}s",
         f"{entry['pool_speedup']:.2f}x"],
        ["parallel (warm cache)", f"{entry['parallel_warm_s']:.2f}s",
         f"{entry['cache_speedup']:.2f}x"],
    ]
    print(render_table(
        ["path", "wall", "speedup"],
        rows,
        title=f"sweep scaling — {entry['cells']} cells, "
              f"{entry['workers']} workers on {entry['cores']} core(s)",
    ))
    sp = entry["speedup"]
    print(
        f"\nbit-identical: {entry['identical']} | tracked figure: "
        f"{sp['ratio']:.2f}x (mode={sp['mode']}, floor {sp['floor']:.1f}x)"
    )
    out = Path(args.out) if args.out else sweepbench.default_sweep_path()
    if not args.dry_run:
        sweepbench.append_entry(out, entry)
        print(f"trajectory appended -> {out}")
    if args.check:
        try:
            sweepbench.check_entry(entry)
        except AssertionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"sweep check passed (>= {sweepbench.MIN_SPEEDUP:.1f}x)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run a pooled sweep with telemetry and render the merged report."""
    import time as _time

    from repro.analysis import report as report_mod
    from repro.analysis import sweepbench
    from repro.runner import ResultCache, RunTelemetry, resolve_workers, run_specs

    if args.smoke:
        grid = sweepbench.SMOKE_GRID
        workers = 2 if args.workers is None else resolve_workers(args.workers)
    else:
        defaults = sweepbench.GRID
        grid = sweepbench.SweepGrid(
            policies=tuple(args.policies),
            bandwidths=(
                tuple(args.bandwidths) if args.bandwidths
                else defaults.bandwidths
            ),
            seeds=tuple(args.seeds) if args.seeds else defaults.seeds,
            num_coflows=args.coflows,
            num_ports=args.ports,
            max_width=args.max_width,
            arrival_rate=args.rate,
            slice_len=args.slice,
        )
        if args.workers is not None:
            workers = resolve_workers(args.workers)
        else:
            workers = resolve_workers(None) or resolve_workers("auto")
    cache = ResultCache(
        root=args.cache_dir, enabled=False if args.no_cache else None
    )
    specs = grid.specs(telemetry=True)
    t0 = _time.perf_counter()
    outs = run_specs(specs, workers=workers, cache=cache)
    wall = _time.perf_counter() - t0
    telemetry = RunTelemetry.collect(
        outs, workers=workers, wall_s=wall, cache=cache
    )
    report = report_mod.build_report(
        telemetry, grid.describe(), label=args.label
    )
    print(report_mod.render_report(report))
    out_path = report_mod.write_report(report, args.out)
    print(f"report written -> {out_path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the streaming scheduler service against an arrival stream."""
    import json as _json

    from repro.obs import Observability
    from repro.service import SourceSpec, StreamDriver, restore_driver

    if args.bench:
        return _serve_bench(args)
    if args.smoke:
        return _serve_smoke(args)

    obs = Observability(trace=False, metrics=True)
    if args.resume:
        driver = restore_driver(
            args.resume,
            obs=obs,
            spill_dir=args.spill_dir,
            keep_shards=args.spill_dir is None,
            checkpoint_path=args.checkpoint,
            checkpoint_every_ticks=args.checkpoint_every,
        )
        print(f"resumed from {args.resume} at t={driver.sim.now:.2f}s "
              f"({driver.stats.coflows_done} coflows already done)")
    else:
        limit = args.coflows
        if args.input is None and limit is None and args.flows is None and args.ticks is None:
            limit = 1000  # an unbounded synthetic stream needs *some* bound
        if args.input is not None:
            spec = SourceSpec(kind="jsonl", path=args.input, limit=limit)
        else:
            spec = SourceSpec(
                rate=args.rate,
                num_ports=args.ports,
                width=(1, args.max_width),
                seed=args.seed,
                mode=args.mode,
                limit=limit,
            )
        setup = ExperimentSetup(
            num_ports=args.ports,
            bandwidth=parse_bandwidth(args.bandwidth),
            slice_len=args.slice,
        )
        sim = setup.build_simulator(make_scheduler(args.policy), obs=obs)
        driver = StreamDriver(
            sim,
            spec.build(),
            tick=args.tick,
            max_in_flight=args.max_in_flight,
            drain_every=args.drain_every,
            spill_dir=args.spill_dir,
            keep_shards=args.spill_dir is None,
            checkpoint_path=args.checkpoint,
            checkpoint_every_ticks=args.checkpoint_every,
            setup=setup,
            source_spec=spec,
            policy=args.policy,
        )
    plane = None
    if args.metrics_port is not None:
        from repro.obs.exposition import TelemetryPlane

        plane = TelemetryPlane(driver, watchdog_s=args.watchdog)
        port = plane.start(args.metrics_port)
        print(
            f"telemetry plane -> http://127.0.0.1:{port} "
            f"(/metrics /snapshot /healthz /readyz; `repro top --port {port}`)"
        )
    try:
        stats = driver.run(max_ticks=args.ticks, max_flows=args.flows)
    finally:
        if plane is not None:
            plane.stop()
    rows = [
        ["coflows done", str(stats.coflows_done)],
        ["flows done", str(stats.flows_done)],
        ["avg FCT", seconds_to_human(stats.avg_fct)],
        ["avg CCT", seconds_to_human(stats.avg_cct)],
        ["traffic saved", f"{stats.traffic_reduction * 100:.1f}%"],
        ["restamped (backpressure)", str(stats.restamped)],
        ["peak in-flight flows", str(stats.peak_in_flight)],
        ["peak engine rows", str(stats.peak_live_rows)],
        ["ticks / drains", f"{stats.ticks} / {stats.drains}"],
        ["simulated time", seconds_to_human(driver.sim.now)],
        ["wall", f"{stats.wall_s:.2f}s"],
        ["throughput", f"{stats.flows_done / stats.wall_s:,.0f} flows/s"
         if stats.wall_s else "n/a"],
    ]
    print(render_table(
        ["metric", "value"], rows,
        title=f"serve — {driver.policy} @ tick {driver.tick}s",
    ))
    if driver.shard_paths:
        print(f"{len(driver.shard_paths)} result shards -> {driver.spill_dir}")
    if args.checkpoint and driver.sim.pending:
        driver.checkpoint(args.checkpoint)
        print(f"checkpoint (resumable) -> {args.checkpoint}")
    if args.report:
        report = driver.telemetry_report(label=args.label or "serve")
        Path(args.report).write_text(_json.dumps(report, indent=2) + "\n")
        print(f"report written -> {args.report}")
    return 0


def _smoke_run_with_plane(driver, args: argparse.Namespace,
                          probe: Dict[str, Any]):
    """Run a smoke leg with the telemetry plane attached, polling
    ``/metrics``, ``/snapshot`` and ``/healthz`` from a second thread
    while admission runs at full rate — the endpoints must answer
    mid-run, not just after the stream drains."""
    import json as _json
    import threading
    import urllib.request

    from repro.obs.exposition import TelemetryPlane

    plane = TelemetryPlane(driver, watchdog_s=args.watchdog)
    port = plane.start(args.metrics_port)
    base = f"http://127.0.0.1:{port}"
    stop = threading.Event()

    def poll():
        while not stop.is_set():
            try:
                with urllib.request.urlopen(
                    base + "/metrics", timeout=2
                ) as r:
                    probe["metrics"] = r.read().decode()
                with urllib.request.urlopen(
                    base + "/snapshot", timeout=2
                ) as r:
                    probe["snapshot"] = _json.loads(r.read().decode())
                with urllib.request.urlopen(
                    base + "/healthz", timeout=2
                ) as r:
                    probe["healthz"] = r.status
                probe["polls"] = probe.get("polls", 0) + 1
            except (OSError, ValueError):
                pass  # plane still warming up; keep polling
            stop.wait(0.02)

    poller = threading.Thread(target=poll, daemon=True)
    poller.start()
    try:
        stats = driver.run()
    finally:
        stop.set()
        poller.join(timeout=5)
        plane.stop()
    probe["serving_after_stop"] = plane.serving
    return stats


def _serve_smoke(args: argparse.Namespace) -> int:
    """`serve --smoke`: bounded 10k-flow stream + checkpoint/restore
    round trip + JSONL block-parser replay, asserting bit-identical
    downstream results on all three legs."""
    import json as _json
    import tempfile

    from repro.core.results import concat_stores
    from repro.service import (
        JsonlSource,
        SourceSpec,
        StreamDriver,
        coflow_to_json,
        restore_driver,
    )
    from repro.traces.distributions import LogNormalSizes
    from repro.units import KB

    total_flows = args.flows or 10_000
    spec = SourceSpec(
        rate=500.0,
        num_ports=8,
        width=2,
        size_dist=LogNormalSizes(median=50 * KB, sigma=1.0),
        seed=11,
        limit=total_flows // 2,
    )
    setup = ExperimentSetup(
        num_ports=8, bandwidth=parse_bandwidth("1gbps"), slice_len=0.05
    )

    def fresh() -> StreamDriver:
        sim = setup.build_simulator(make_scheduler(args.policy))
        return StreamDriver(
            sim, spec.build(), tick=0.5, max_in_flight=2_000,
            setup=setup, source_spec=spec, policy=args.policy,
        )

    a = fresh()
    probe: Dict[str, Any] = {}
    if args.metrics_port is not None:
        stats_a = _smoke_run_with_plane(a, args, probe)
    else:
        stats_a = a.run()
    store_a = a.result_store()

    b = fresh()
    b.run(max_ticks=max(1, stats_a.ticks // 2))
    with tempfile.TemporaryDirectory() as tmp:
        ck = str(Path(tmp) / "serve-smoke.npz")
        b.checkpoint(ck)
        pre_shards = list(b.shards)
        b2 = restore_driver(ck)
        stats_b = b2.run()
    store_b = concat_stores(pre_shards + b2.shards)

    # Third leg: dump the stream to JSONL and replay it through the
    # block-columnar parser (JsonlSource.pop_block -> submit_block); the
    # same arrivals must produce bit-identical downstream results.
    with tempfile.TemporaryDirectory() as tmp:
        jsonl = Path(tmp) / "stream.jsonl"
        dump = spec.build()
        with jsonl.open("w") as fh:
            while dump.peek() is not None:
                fh.write(_json.dumps(coflow_to_json(dump.pop())) + "\n")
        sim_c = setup.build_simulator(make_scheduler(args.policy))
        c = StreamDriver(
            sim_c, JsonlSource(str(jsonl)), tick=0.5, max_in_flight=2_000,
            setup=setup, policy=args.policy,
        )
        stats_c = c.run()
    store_c = c.result_store()

    content_flow = ("src", "dst", "size", "arrival", "start", "finish",
                    "finish_phys", "bytes_sent", "comp_in", "comp_out")
    content_cf = ("cf_arrival", "cf_finish", "cf_finish_phys", "cf_size",
                  "cf_width", "cf_bytes_sent")

    def diff(other):
        bad = [
            name
            for name in content_flow + content_cf
            if not np.array_equal(getattr(store_a, name), getattr(other, name))
        ]
        if list(store_a.cf_label) != list(other.cf_label):
            bad.append("cf_label")
        return bad

    mismatch = diff(store_b)
    mismatch_jsonl = diff(store_c)
    bounded = stats_a.peak_live_rows <= 4 * 2_000  # backlog-sized, not stream-sized
    plane_ok = True
    plane_note = ""
    if args.metrics_port is not None:
        snap = probe.get("snapshot") or {}
        metrics_text = probe.get("metrics") or ""
        # Prometheus rejects a scrape wholesale on a duplicated sample
        # (same name + labelset), so uniqueness is part of well-formed.
        sample_keys = [
            line.rsplit(" ", 1)[0]
            for line in metrics_text.splitlines()
            if line and not line.startswith("#")
        ]
        plane_checks = {
            "polled mid-run": probe.get("polls", 0) >= 1,
            "exposition well-formed": (
                "# TYPE repro_stream_in_flight gauge" in metrics_text
                and "repro_stream_tick_wall_s_bucket{" in metrics_text
                and 'le="+Inf"' in metrics_text
            ),
            "samples unique": (
                len(sample_keys) > 0
                and len(sample_keys) == len(set(sample_keys))
            ),
            "snapshot schema": snap.get("schema") == "repro-live-v1",
            "healthz 200": probe.get("healthz") == 200,
            "clean shutdown": not probe.get("serving_after_stop", True),
        }
        plane_ok = all(plane_checks.values())
        plane_note = (
            f" | plane ok: {plane_ok} ({probe.get('polls', 0)} polls)"
        )
        if not plane_ok:
            failed = [k for k, v in plane_checks.items() if not v]
            print(f"error: telemetry plane checks failed: {failed}",
                  file=sys.stderr)
    print(
        f"serve smoke: {stats_a.flows_done} flows, {stats_a.coflows_done} "
        f"coflows | restamped {stats_a.restamped} | peak rows "
        f"{stats_a.peak_live_rows} (bounded: {bounded}) | resume at tick "
        f"{max(1, stats_a.ticks // 2)}/{stats_a.ticks} | identical: "
        f"{not mismatch} | jsonl replay identical: {not mismatch_jsonl}"
        f"{plane_note}"
    )
    if mismatch or mismatch_jsonl or stats_a.flows_done != total_flows \
            or not bounded or stats_b.flows_done != stats_a.flows_done \
            or stats_c.flows_done != stats_a.flows_done or not plane_ok:
        if mismatch:
            print(f"error: columns differ after restore: {mismatch}",
                  file=sys.stderr)
        if mismatch_jsonl:
            print(
                f"error: columns differ on JSONL block replay: "
                f"{mismatch_jsonl}", file=sys.stderr,
            )
        if not (mismatch or mismatch_jsonl or not plane_ok):
            print("error: smoke stream incomplete or unbounded", file=sys.stderr)
        return 1
    return 0


def _serve_bench(args: argparse.Namespace) -> int:
    """`serve --bench`: the tracked BENCH_stream.json streamed replay."""
    from repro.analysis import streambench

    case = streambench.SMOKE_CASE if args.smoke else streambench.CASE
    entry = streambench.bench_entry(label=args.label, case=case)
    rows = [
        ["flows streamed", f"{entry['flows_done']:,}"],
        ["wall", f"{entry['wall_s']:.2f}s"],
        ["throughput", f"{entry['throughput_flows_per_s']:,.0f} flows/s"],
        ["steady-state", f"{entry['steady_flows_per_s']:,.0f} flows/s"],
        ["peak engine rows", f"{entry['peak_live_rows']:,} "
         f"({entry['live_row_fraction']:.1%} of stream)"],
        ["RSS growth 25%→end", f"{entry['rss_growth']:.3f}x"
         if entry["rss_25_kb"] else "n/a (/proc unavailable)"],
    ]
    print(render_table(
        ["metric", "value"], rows,
        title=f"stream scaling — {entry['label']}, "
              f"{entry['ticks']} ticks",
    ))
    if not args.smoke and not args.dry_run:
        out = Path(args.out) if args.out else streambench.default_stream_path()
        streambench.append_entry(out, entry, schema=streambench.SCHEMA)
        print(f"trajectory appended -> {out}")
    if args.check:
        try:
            streambench.check_entry(entry, case=case)
        except AssertionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print("stream check passed (throughput + bounded memory)")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live ANSI dashboard over a running ``serve --metrics-port``."""
    import json as _json
    import time as _time
    import urllib.request

    from repro.obs.exposition import render_dashboard

    base = (args.url.rstrip("/") if args.url
            else f"http://{args.host}:{args.port}")
    color = not args.no_color

    def fetch():
        with urllib.request.urlopen(
            base + "/snapshot", timeout=args.timeout
        ) as r:
            return _json.loads(r.read().decode())

    if args.once:
        try:
            snap = fetch()
        except (OSError, ValueError) as exc:
            print(f"error: cannot reach {base}/snapshot: {exc}",
                  file=sys.stderr)
            return 1
        print(render_dashboard(snap, color=color))
        return 0

    try:
        while True:
            try:
                snap = fetch()
            except (OSError, ValueError) as exc:
                # Transient: the plane restarts with its driver on resume.
                print(f"waiting for {base}/snapshot ... ({exc})")
            else:
                if color:
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(render_dashboard(snap, color=color))
                if snap.get("finished"):
                    print("stream finished; exiting")
                    return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterConfig, ClusterSimulator, hibench_suite

    def run_once(policy: str):
        cfg = ClusterConfig(
            num_nodes=args.nodes,
            bandwidth=parse_bandwidth(args.bandwidth),
            slice_len=args.slice,
        )
        sim = ClusterSimulator(cfg, make_scheduler(policy))
        sim.submit_jobs(
            hibench_suite(args.scale, np.random.default_rng(args.seed),
                          num_jobs=args.jobs)
        )
        return sim.run()

    base, swallow = run_once("sebf"), run_once("fvdf")
    rows = [
        ["avg JCT", seconds_to_human(base.avg_jct), seconds_to_human(swallow.avg_jct),
         f"{base.avg_jct / swallow.avg_jct:.2f}x"],
        ["shuffle traffic", bytes_to_human(base.shuffle_bytes_sent),
         bytes_to_human(swallow.shuffle_bytes_sent),
         f"{swallow.traffic_reduction * 100:.1f}% saved"],
    ]
    print(render_table(
        ["metric", "without Swallow", "with Swallow", "improvement"], rows,
        title=f"HiBench {args.scale} on {args.nodes} nodes",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Swallow (IPDPS'18) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schedulers", help="list scheduling policies").set_defaults(
        fn=cmd_schedulers
    )
    sub.add_parser(
        "experiments", help="list the paper's tables/figures and their benches"
    ).set_defaults(fn=cmd_experiments)

    p = sub.add_parser("compare", help="compare policies on a synthetic workload")
    p.add_argument("--policies", type=_policies, default=["fifo", "sebf", "fvdf"])
    p.add_argument("--coflows", type=int, default=40)
    p.add_argument("--ports", type=int, default=16)
    p.add_argument("--max-width", type=int, default=8)
    p.add_argument("--rate", type=float, default=4.0)
    p.add_argument("--bandwidth", default="100mbps")
    p.add_argument("--slice", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser(
        "replay", help="replay a coflow trace (FB benchmark or CSV format)"
    )
    p.add_argument("trace")
    p.add_argument("--format", choices=["auto", "fb", "csv"], default="auto")
    p.add_argument("--policies", type=_policies, default=["sebf", "fvdf"])
    p.add_argument("--bandwidth", default="100mbps")
    p.add_argument("--slice", type=float, default=0.01)
    p.set_defaults(fn=cmd_replay)

    sub.add_parser("fig4", help="the paper's motivating example").set_defaults(
        fn=cmd_fig4
    )

    p = sub.add_parser(
        "reproduce", help="regenerate the paper's tables/figures (runs pytest)"
    )
    p.add_argument("--only", help="experiment id (see `experiments`)")
    p.add_argument("--collect-only", action="store_true",
                   help="list the bench tests without running them")
    p.set_defaults(fn=cmd_reproduce)

    p = sub.add_parser(
        "trace", help="run a scenario with tracing enabled and export JSONL"
    )
    p.add_argument("scenario", choices=["fig4", "synthetic"])
    p.add_argument("--policy", default="fvdf",
                   help="scheduling policy (see `schedulers`)")
    p.add_argument("--out", default="trace.jsonl",
                   help="output JSONL path ('-' for stdout)")
    p.add_argument("--profile", action="store_true",
                   help="also profile the schedule/integrate hot paths")
    p.add_argument("--coflows", type=int, default=40)
    p.add_argument("--ports", type=int, default=16)
    p.add_argument("--max-width", type=int, default=8)
    p.add_argument("--rate", type=float, default=4.0)
    p.add_argument("--bandwidth", default="100mbps")
    p.add_argument("--slice", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "bench", help="run the hot-path scaling grid (perf trajectory)"
    )
    p.add_argument("--repeats", type=int, default=3,
                   help="best-of-N timing repeats (default 3)")
    p.add_argument("--label", default="",
                   help="entry label recorded in the trajectory")
    p.add_argument("--out", default=None,
                   help="trajectory path (default: BENCH_hotpath.json at "
                        "the repo root)")
    p.add_argument("--dry-run", action="store_true",
                   help="print results without touching the trajectory file")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero unless the large-grid speedup is "
                        ">= 3x over the pinned reference")
    p.add_argument("--bigtrace", action="store_true",
                   help="run the trace-scale ingest/retire replay instead "
                        "and append to BENCH_bigtrace.json")
    p.add_argument("--kernels", action="store_true",
                   help="time the decision-kernel backends on the large "
                        "case instead and append a backend-labeled entry "
                        "(identity always asserted with --check; the 1.5x "
                        "floor only on 4+-core hosts)")
    p.add_argument("--smoke", action="store_true",
                   help="with --bigtrace or --kernels: seconds-scale CI "
                        "case — verify bit-identity, skip the speedup "
                        "floor, no append")
    p.add_argument("--npz", default=None,
                   help="with --bigtrace: save the recorder arm's columnar "
                        "trace to this .npz path")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "sweep",
        help="run a (policy x bandwidth x seed) grid through the parallel "
             "runner with the content-addressed result cache",
    )
    p.add_argument("--policies", type=_policies,
                   default=["sebf", "scf", "ncf", "lcf", "pff", "pfp", "fvdf"])
    p.add_argument("--bandwidths", type=_floats_csv(parse_bandwidth),
                   default=None,
                   help="comma list, e.g. 100mbps,1gbps,10gbps (the default)")
    p.add_argument("--seeds", type=_floats_csv(int), default=None,
                   help="comma list of workload seeds (default 14,15,16)")
    p.add_argument("--coflows", type=int, default=60)
    p.add_argument("--ports", type=int, default=16)
    p.add_argument("--max-width", type=int, default=8)
    p.add_argument("--rate", type=float, default=2.0)
    p.add_argument("--slice", type=float, default=0.01)
    p.add_argument("--workers", default=None,
                   help="pool size (int or 'auto'; default: REPRO_PARALLEL "
                        "or 'auto', --smoke defaults to 2, --bench to 4)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the .repro-cache result cache entirely")
    p.add_argument("--cache-dir", default=None,
                   help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny pool-vs-sequential equivalence run (CI)")
    p.add_argument("--bench", action="store_true",
                   help="run the tracked sweep-scaling grid and append an "
                        "entry to BENCH_sweep.json")
    p.add_argument("--check", action="store_true",
                   help="with --bench: exit non-zero unless the suite-level "
                        "speedup clears the 2.5x floor")
    p.add_argument("--label", default="",
                   help="with --bench: entry label recorded in the trajectory")
    p.add_argument("--out", default=None,
                   help="with --bench: trajectory path (default: "
                        "BENCH_sweep.json at the repo root)")
    p.add_argument("--dry-run", action="store_true",
                   help="with --bench: print without touching the trajectory")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "report",
        help="run a pooled sweep with per-worker telemetry and render the "
             "merged run report (writes report.json)",
    )
    p.add_argument("--policies", type=_policies,
                   default=["sebf", "scf", "ncf", "lcf", "pff", "pfp", "fvdf"])
    p.add_argument("--bandwidths", type=_floats_csv(parse_bandwidth),
                   default=None,
                   help="comma list, e.g. 100mbps,1gbps,10gbps (the default)")
    p.add_argument("--seeds", type=_floats_csv(int), default=None,
                   help="comma list of workload seeds (default 14,15,16,17)")
    p.add_argument("--coflows", type=int, default=60)
    p.add_argument("--ports", type=int, default=16)
    p.add_argument("--max-width", type=int, default=8)
    p.add_argument("--rate", type=float, default=2.0)
    p.add_argument("--slice", type=float, default=0.01)
    p.add_argument("--workers", default=None,
                   help="pool size (int or 'auto'; default: REPRO_PARALLEL "
                        "or 'auto'; --smoke defaults to 2)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the .repro-cache result cache entirely")
    p.add_argument("--cache-dir", default=None,
                   help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)")
    p.add_argument("--smoke", action="store_true",
                   help="run the tiny CI grid instead of the full sweep")
    p.add_argument("--label", default="", help="label recorded in report.json")
    p.add_argument("--out", default="report.json",
                   help="report output path (default report.json)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "serve", help="long-lived streaming scheduler service"
    )
    p.add_argument("--policy", default="fvdf",
                   help="scheduling policy (see `schedulers`)")
    p.add_argument("--rate", type=float, default=50.0,
                   help="mean coflow arrival rate (synthetic source)")
    p.add_argument("--mode", choices=["steady", "bursty", "diurnal"],
                   default="steady", help="synthetic arrival process")
    p.add_argument("--coflows", type=int, default=None,
                   help="stop the source after N coflows")
    p.add_argument("--flows", type=int, default=None,
                   help="stop admitting after ~N flows, then run the backlog")
    p.add_argument("--ticks", type=int, default=None,
                   help="stop after N service ticks (checkpoint to continue)")
    p.add_argument("--ports", type=int, default=16)
    p.add_argument("--max-width", type=int, default=8)
    p.add_argument("--bandwidth", default="1gbps")
    p.add_argument("--slice", type=float, default=0.01)
    p.add_argument("--tick", type=float, default=1.0,
                   help="service tick length in simulated seconds")
    p.add_argument("--max-in-flight", type=int, default=10_000,
                   help="backpressure bound on submitted-but-unfinished flows")
    p.add_argument("--drain-every", type=int, default=1,
                   help="drain retired coflows every N ticks (0 = never)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--input", default=None, metavar="JSONL",
                   help="read coflows from a JSONL trace ('-' for stdin) "
                        "instead of the synthetic source")
    p.add_argument("--spill-dir", default=None,
                   help="write drained result shards as .npz files here")
    p.add_argument("--checkpoint", default=None, metavar="NPZ",
                   help="checkpoint path (written at exit when work remains, "
                        "and periodically with --checkpoint-every)")
    p.add_argument("--checkpoint-every", type=int, default=None, metavar="TICKS")
    p.add_argument("--resume", default=None, metavar="NPZ",
                   help="resume from a checkpoint written by --checkpoint")
    p.add_argument("--report", default=None, metavar="JSON",
                   help="write a repro-report-v1 telemetry report here")
    p.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                   help="serve /metrics, /snapshot, /healthz and /readyz on "
                        "this port while running (0 = pick an ephemeral "
                        "port; default: telemetry plane off)")
    p.add_argument("--watchdog", type=float, default=10.0, metavar="SECONDS",
                   help="with --metrics-port: /healthz turns 503 when no "
                        "tick completed within this wall-clock window "
                        "(default 10s)")
    p.add_argument("--smoke", action="store_true",
                   help="CI check: 10k-flow stream with a mid-stream "
                        "checkpoint/restore round trip (bit-identical)")
    p.add_argument("--bench", action="store_true",
                   help="tracked BENCH_stream.json 1M-flow replay "
                        "(with --smoke: the seconds-scale case, no append)")
    p.add_argument("--check", action="store_true",
                   help="with --bench: assert throughput/memory floors")
    p.add_argument("--label", default="")
    p.add_argument("--out", default=None,
                   help="with --bench: trajectory file to append to")
    p.add_argument("--dry-run", action="store_true",
                   help="with --bench: do not append to the trajectory")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "top", help="live dashboard for a running `serve --metrics-port`"
    )
    p.add_argument("--url", default=None,
                   help="base URL of the telemetry plane (overrides "
                        "--host/--port), e.g. http://host:9090")
    p.add_argument("--host", default="127.0.0.1",
                   help="telemetry plane host (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=9090,
                   help="telemetry plane port (default 9090)")
    p.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                   help="refresh interval (default 1s)")
    p.add_argument("--timeout", type=float, default=2.0, metavar="SECONDS",
                   help="per-request timeout (default 2s)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (no screen clear)")
    p.add_argument("--no-color", action="store_true",
                   help="plain-text rendering (no ANSI colors)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("cluster", help="HiBench cluster run with/without Swallow")
    p.add_argument("--scale", default="large", choices=["large", "huge", "gigantic"])
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--jobs", type=int, default=12)
    p.add_argument("--bandwidth", default="1gbps")
    p.add_argument("--slice", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_cluster)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
