"""The giant non-blocking switch abstraction (paper Fig. 3).

The datacenter fabric is modelled as one logical switch interconnecting all
machines: machine *i*'s uplink is ingress port *i*, its downlink egress port
*i*.  The fabric core is non-blocking, so the only constraints on a rate
allocation are the per-port capacities:

    sum of rates of flows with src == p  <=  ingress capacity of p
    sum of rates of flows with dst == p  <=  egress capacity of p

This is the standard model of Varys, Aalo and the coflow literature.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, SchedulingError
from repro.fabric.ports import ArrayLike, PortSet, port_loads

#: Relative tolerance accepted on port-capacity feasibility checks.
FEASIBILITY_RTOL = 1e-6


class BigSwitch:
    """An ``n_in x n_out`` non-blocking fabric with per-port capacities.

    Parameters
    ----------
    num_ports:
        Number of machines; creates symmetric ingress/egress sides.
    bandwidth:
        Scalar or per-port link speed, bytes/s.  Applied to both sides
        unless ``egress_bandwidth`` is given.
    egress_bandwidth:
        Optional distinct egress-side capacity.
    num_egress_ports:
        Optional distinct egress port count (asymmetric fabrics, e.g. the
        ``m x r`` shuffle view).
    """

    def __init__(
        self,
        num_ports: int,
        bandwidth: ArrayLike,
        egress_bandwidth: Optional[ArrayLike] = None,
        num_egress_ports: Optional[int] = None,
    ):
        self.ingress = PortSet(num_ports, bandwidth)
        self.egress = PortSet(
            num_egress_ports if num_egress_ports is not None else num_ports,
            egress_bandwidth if egress_bandwidth is not None else bandwidth,
        )

    @property
    def num_ingress(self) -> int:
        return len(self.ingress)

    @property
    def num_egress(self) -> int:
        return len(self.egress)

    def validate_endpoints(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Raise if any flow references a non-existent port."""
        if len(src) and (src.min() < 0 or src.max() >= self.num_ingress):
            raise ConfigurationError("flow src out of range for fabric")
        if len(dst) and (dst.min() < 0 or dst.max() >= self.num_egress):
            raise ConfigurationError("flow dst out of range for fabric")

    def check_feasible(self, src: np.ndarray, dst: np.ndarray, rates: np.ndarray) -> None:
        """Verify a rate vector respects every port capacity.

        Raises
        ------
        SchedulingError
            If any ingress or egress port is oversubscribed beyond
            :data:`FEASIBILITY_RTOL`.
        """
        if len(rates) == 0:
            return
        if np.any(rates < 0):
            raise SchedulingError("negative rate in allocation")
        in_load = port_loads(src, rates, self.num_ingress)
        out_load = port_loads(dst, rates, self.num_egress)
        in_cap = self.ingress.capacity
        out_cap = self.egress.capacity
        in_over = in_load > in_cap * (1 + FEASIBILITY_RTOL)
        out_over = out_load > out_cap * (1 + FEASIBILITY_RTOL)
        if np.any(in_over):
            p = int(np.argmax(in_load - in_cap))
            raise SchedulingError(
                f"ingress port {p} oversubscribed: {in_load[p]:.6g} > {in_cap[p]:.6g} B/s"
            )
        if np.any(out_over):
            p = int(np.argmax(out_load - out_cap))
            raise SchedulingError(
                f"egress port {p} oversubscribed: {out_load[p]:.6g} > {out_cap[p]:.6g} B/s"
            )

    def flow_link_cap(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Per-flow end-to-end link capacity ``min(B_s, B_r)`` (Eq. 2)."""
        return np.minimum(self.ingress.capacity[src], self.egress.capacity[dst])

    def fresh_extra(self, src: np.ndarray, dst: np.ndarray) -> list:
        """Additional capacity dimensions beyond the two port sides.

        The ideal big switch has none; oversubscribed fabrics
        (:class:`repro.fabric.twotier.TwoTierFabric`) return their rack
        uplink/downlink constraints here, as writable fresh copies.
        """
        return []
