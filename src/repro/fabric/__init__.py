"""Datacenter network substrate: the big-switch fabric model (paper Fig. 3)."""

from repro.fabric.bigswitch import BigSwitch, FEASIBILITY_RTOL
from repro.fabric.ports import PortSet, port_loads
from repro.fabric.twotier import TwoTierFabric

__all__ = ["BigSwitch", "TwoTierFabric", "PortSet", "port_loads", "FEASIBILITY_RTOL"]
