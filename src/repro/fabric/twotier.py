"""Two-tier oversubscribed fabric (extension beyond the paper).

The paper analyses the ideal *giant switch*; production datacenters are
usually leaf-spine with **oversubscribed** rack uplinks — the very
bandwidth scarcity that motivates compression.  This fabric groups hosts
into racks: intra-rack flows see only their host links, while inter-rack
flows additionally traverse the source rack's uplink and the destination
rack's downlink, each of capacity ``uplink_bandwidth``.

With ``hosts_per_rack · host_bw / uplink_bw = k``, the fabric is "k:1
oversubscribed"; ``k = 1`` degenerates to the big switch for inter-rack
traffic.  All scheduling policies honour the extra constraints through the
generalised allocation dimensions (see
:mod:`repro.core.rate_allocation`), and
``benchmarks/bench_ext_oversubscription.py`` shows compression gains grow
with oversubscription.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.rate_allocation import Dimension
from repro.errors import ConfigurationError, SchedulingError
from repro.fabric.bigswitch import FEASIBILITY_RTOL, BigSwitch
from repro.fabric.ports import ArrayLike, PortSet, port_loads


class TwoTierFabric(BigSwitch):
    """Racks of hosts behind shared uplinks.

    Parameters
    ----------
    num_racks:
        Number of racks (leaf switches).
    hosts_per_rack:
        Hosts per rack; total ports = ``num_racks * hosts_per_rack``.
    bandwidth:
        Host link speed (both directions), bytes/s.
    uplink_bandwidth:
        Rack uplink/downlink capacity, bytes/s.
    """

    def __init__(
        self,
        num_racks: int,
        hosts_per_rack: int,
        bandwidth: ArrayLike,
        uplink_bandwidth: ArrayLike,
    ):
        if num_racks <= 0 or hosts_per_rack <= 0:
            raise ConfigurationError("num_racks and hosts_per_rack must be positive")
        super().__init__(num_racks * hosts_per_rack, bandwidth)
        self.num_racks = num_racks
        self.hosts_per_rack = hosts_per_rack
        self.uplink = PortSet(num_racks, uplink_bandwidth)
        self.downlink = PortSet(num_racks, uplink_bandwidth)

    @property
    def oversubscription(self) -> float:
        """Worst-case rack oversubscription ratio (host bytes per uplink byte)."""
        host_total = float(self.ingress.capacity.max()) * self.hosts_per_rack
        return host_total / float(self.uplink.capacity.min())

    def rack_of(self, ports: np.ndarray) -> np.ndarray:
        """Rack index of each host port."""
        return np.asarray(ports) // self.hosts_per_rack

    def _rack_groups(self, src: np.ndarray, dst: np.ndarray):
        """(uplink groups, downlink groups); −1 for intra-rack flows."""
        src_rack = self.rack_of(src)
        dst_rack = self.rack_of(dst)
        inter = src_rack != dst_rack
        up = np.where(inter, src_rack, -1).astype(np.intp)
        down = np.where(inter, dst_rack, -1).astype(np.intp)
        return up, down

    def fresh_extra(self, src: np.ndarray, dst: np.ndarray) -> List[Dimension]:
        up, down = self._rack_groups(src, dst)
        return [(up, self.uplink.remaining()), (down, self.downlink.remaining())]

    def check_feasible(self, src: np.ndarray, dst: np.ndarray, rates: np.ndarray) -> None:
        super().check_feasible(src, dst, rates)
        if len(rates) == 0:
            return
        up, down = self._rack_groups(src, dst)
        for label, groups, caps in (
            ("uplink", up, self.uplink.capacity),
            ("downlink", down, self.downlink.capacity),
        ):
            member = groups >= 0
            if not member.any():
                continue
            load = np.bincount(
                groups[member], weights=rates[member], minlength=self.num_racks
            )
            over = load > caps * (1 + FEASIBILITY_RTOL)
            if np.any(over):
                r = int(np.argmax(load - caps))
                raise SchedulingError(
                    f"rack {r} {label} oversubscribed: "
                    f"{load[r]:.6g} > {caps[r]:.6g} B/s"
                )

    def flow_link_cap(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        cap = super().flow_link_cap(src, dst)
        up, down = self._rack_groups(src, dst)
        inter = up >= 0
        cap = cap.copy()
        cap[inter] = np.minimum(cap[inter], self.uplink.capacity[up[inter]])
        cap[inter] = np.minimum(cap[inter], self.downlink.capacity[down[inter]])
        return cap
