"""Port-capacity bookkeeping for the big-switch fabric.

A :class:`PortSet` is one side (ingress or egress) of the fabric: an array
of link capacities plus transient *remaining capacity* used while building a
rate allocation.  Rate-allocation policies consume capacity from two port
sets (sender side and receiver side) as they hand out rates.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

ArrayLike = Union[float, Sequence[float], np.ndarray]


class PortSet:
    """Capacities of one side of the fabric.

    Parameters
    ----------
    num_ports:
        Number of ports on this side.
    capacity:
        Either a scalar (homogeneous links) or a per-port array, in bytes/s.
    """

    def __init__(self, num_ports: int, capacity: ArrayLike):
        if num_ports <= 0:
            raise ConfigurationError(f"num_ports must be positive, got {num_ports}")
        cap = np.broadcast_to(np.asarray(capacity, dtype=np.float64), (num_ports,)).copy()
        if np.any(cap <= 0):
            raise ConfigurationError("all port capacities must be positive")
        self._capacity = cap
        self._capacity.setflags(write=False)

    def __len__(self) -> int:
        return len(self._capacity)

    @property
    def capacity(self) -> np.ndarray:
        """Read-only per-port capacity array (bytes/s)."""
        return self._capacity

    def remaining(self) -> np.ndarray:
        """A fresh writable copy of the capacities, for allocation passes."""
        return self._capacity.copy()

    def set_capacity(self, port: int, value: float) -> None:
        """Change one port's capacity (dynamic bandwidth — e.g. background
        traffic measured by the Swallow daemons).  The engine applies such
        changes only at slice boundaries."""
        if not 0 <= port < len(self._capacity):
            raise ConfigurationError(f"port {port} out of range")
        if value <= 0:
            raise ConfigurationError("capacity must stay positive")
        cap = self._capacity.copy()
        cap[port] = value
        cap.setflags(write=False)
        self._capacity = cap


def port_loads(ports: np.ndarray, amounts: np.ndarray, num_ports: int) -> np.ndarray:
    """Sum ``amounts`` by port index (vectorised ``bincount``).

    Used to compute per-port byte loads (for SEBF's bottleneck ``Γ``) and
    per-port allocated-rate sums (for feasibility checks).
    """
    return np.bincount(ports, weights=amounts, minlength=num_ports).astype(np.float64)
