"""Calibrate the codec model against real codecs available in the stdlib.

The paper measured LZ4/LZO/Snappy/LZF/Zstandard on its testbed (Table II).
Those codecs are not importable here, but ``zlib``/``bz2``/``lzma`` are, so
we can sanity-check the *model shape* — compression ratio improving with
input size and saturating (Table III) — and produce a real, locally-measured
:class:`~repro.compression.codecs.Codec` for benchmarks that want one.

The synthetic corpus mixes structured text and low-entropy runs with random
bytes so that ratios land in the same regime as shuffle payloads
(roughly 25–65% depending on size), not at degenerate extremes.
"""

from __future__ import annotations

import bz2
import lzma
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.compression.codecs import Codec
from repro.errors import ConfigurationError

_BACKENDS: Dict[str, Tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]] = {
    "zlib": (lambda b: zlib.compress(b, 1), zlib.decompress),
    "bz2": (lambda b: bz2.compress(b, 1), bz2.decompress),
    "lzma": (lambda b: lzma.compress(b, preset=0), lzma.decompress),
}


def synthetic_payload(size: int, rng: np.random.Generator, entropy: float = 0.5) -> bytes:
    """A payload of ``size`` bytes with tunable compressibility.

    ``entropy=0`` yields a constant run (maximally compressible);
    ``entropy=1`` yields uniform random bytes (incompressible).  Values in
    between interleave a repeating structured record with random noise, the
    texture of serialized shuffle data.
    """
    if size <= 0:
        raise ConfigurationError("payload size must be positive")
    if not 0 <= entropy <= 1:
        raise ConfigurationError("entropy must lie in [0, 1]")
    record = b"key=%08d\tvalue=%016x\tflag=Y\n"
    n_random = int(size * entropy)
    noise = rng.integers(0, 256, size=n_random, dtype=np.uint8).tobytes()
    structured = bytearray()
    i = 0
    while len(structured) < size - n_random:
        structured += record % (i, i * 2654435761 % (1 << 64))
        i += 1
    return bytes(structured[: size - n_random]) + noise


@dataclass
class CalibrationPoint:
    """One measured (size -> speed/ratio) sample."""

    backend: str
    size: int
    ratio: float
    compress_speed: float  # input bytes / second
    decompress_speed: float  # output bytes / second


def measure_backend(
    backend: str,
    size: int,
    rng: np.random.Generator,
    entropy: float = 0.5,
    repeats: int = 3,
) -> CalibrationPoint:
    """Measure one stdlib codec on one synthetic payload size."""
    try:
        comp, decomp = _BACKENDS[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {backend!r}; available: {sorted(_BACKENDS)}"
        ) from None
    payload = synthetic_payload(size, rng, entropy)
    best_c = best_d = float("inf")
    blob = comp(payload)
    for _ in range(repeats):
        t0 = time.perf_counter()
        blob = comp(payload)
        best_c = min(best_c, time.perf_counter() - t0)
        t0 = time.perf_counter()
        out = decomp(blob)
        best_d = min(best_d, time.perf_counter() - t0)
    assert out == payload, "round-trip mismatch"
    return CalibrationPoint(
        backend=backend,
        size=size,
        ratio=len(blob) / len(payload),
        compress_speed=len(payload) / max(best_c, 1e-9),
        decompress_speed=len(payload) / max(best_d, 1e-9),
    )


def calibrated_codec(
    backend: str = "zlib",
    size: int = 4 * 1024 * 1024,
    entropy: float = 0.5,
    seed: int = 0,
) -> Codec:
    """Build a :class:`Codec` from a live measurement of a stdlib backend."""
    point = measure_backend(backend, size, np.random.default_rng(seed), entropy)
    ratio = min(max(point.ratio, 0.02), 0.98)
    return Codec(
        name=f"{backend}-measured",
        speed=point.compress_speed,
        decompression_speed=point.decompress_speed,
        ratio=ratio,
    )
