"""Size-dependent compression-ratio model (paper Table III).

Table III measures the Sort workload's compression ratio as a function of
flow size: tiny flows compress poorly (66% at 10 KB — headers and dictionary
warm-up dominate) and the ratio converges to ~25% beyond ~100 MB.  The paper
uses this to argue that compression parameters can be pre-profiled.

We reproduce the table exactly at its anchor points by interpolating the
ratio linearly in ``log10(size)``, with flat extrapolation outside the
measured range.  Per-codec curves shift the anchor curve additively so that
the large-flow asymptote equals the codec's Table II ratio, clipped to a
physical range.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.compression.codecs import Codec
from repro.errors import ConfigurationError
from repro.units import GB, KB, MB

#: Table III anchors: (flow size in bytes, compression ratio).
TABLE_III_ANCHORS = (
    (10 * KB, 0.6646),
    (50 * KB, 0.5870),
    (100 * KB, 0.5629),
    (1 * MB, 0.4124),
    (10 * MB, 0.2744),
    (100 * MB, 0.2533),
    (1 * GB, 0.2511),
    (10 * GB, 0.2507),
)

#: Asymptotic ratio of the anchor curve (its largest-size measurement).
_ANCHOR_ASYMPTOTE = TABLE_III_ANCHORS[-1][1]

#: Physical clipping bounds for effective ratios.
RATIO_MIN, RATIO_MAX = 0.02, 0.98


class SizeDependentRatio:
    """Effective compression ratio ``xi(size)`` for a codec.

    ``xi(size) = clip(codec.ratio + (anchor(size) - anchor_asymptote))``

    i.e. the Table III *shape* (how much worse small flows compress) shifted
    so that large flows hit the codec's own Table II ratio.  With
    ``anchors=None`` and a codec whose ratio equals the anchor asymptote,
    this reproduces Table III exactly.

    Parameters
    ----------
    codec:
        The codec whose reference ratio sets the asymptote.
    anchors:
        Optional override for the (size, ratio) anchor table.
    """

    def __init__(
        self,
        codec: Codec,
        anchors: Optional[Sequence] = None,
    ):
        pts = sorted(anchors if anchors is not None else TABLE_III_ANCHORS)
        if len(pts) < 2:
            raise ConfigurationError("need at least two anchor points")
        sizes = np.asarray([p[0] for p in pts], dtype=np.float64)
        ratios = np.asarray([p[1] for p in pts], dtype=np.float64)
        if np.any(sizes <= 0):
            raise ConfigurationError("anchor sizes must be positive")
        if np.any((ratios <= 0) | (ratios >= 1)):
            raise ConfigurationError("anchor ratios must lie in (0, 1)")
        self.codec = codec
        self._log_sizes = np.log10(sizes)
        self._ratios = ratios
        self._shift = codec.ratio - ratios[-1]

    def __call__(self, size: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Effective ratio for flow(s) of the given original size (bytes)."""
        s = np.asarray(size, dtype=np.float64)
        if np.any(s <= 0):
            raise ConfigurationError("flow size must be positive")
        base = np.interp(np.log10(s), self._log_sizes, self._ratios)
        out = np.clip(base + self._shift, RATIO_MIN, RATIO_MAX)
        return float(out) if np.isscalar(size) or s.ndim == 0 else out

    def disposal_speed(self, size: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Net volume drain ``R * (1 - xi(size))`` for flows of this size."""
        return self.codec.speed * (1.0 - self.__call__(size))


def table3_ratio(size: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """The raw Table III anchor curve (the Sort workload's measured codec)."""
    s = np.asarray(size, dtype=np.float64)
    log_sizes = np.log10(np.asarray([p[0] for p in TABLE_III_ANCHORS]))
    ratios = np.asarray([p[1] for p in TABLE_III_ANCHORS])
    out = np.interp(np.log10(s), log_sizes, ratios)
    return float(out) if np.isscalar(size) or s.ndim == 0 else out
