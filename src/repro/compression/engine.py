"""Compression engine: turns codec + ratio model into per-flow parameters.

The simulation engine integrates flow volumes itself; this class answers the
questions schedulers and the engine ask about compression:

* what is the effective ratio ``xi`` for a flow of a given original size?
* at what speed does one core compress (``R``), and what is the net volume
  disposal speed ``R (1 - xi)``?
* given a wish-list of flows to compress and the free cores per node, which
  flows actually get a core (Pseudocode 1 line 4)?
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.compression.codecs import Codec, default_codec, get_codec
from repro.compression.model import SizeDependentRatio


class CompressionEngine:
    """Scheduling-facing view of a compression codec.

    Parameters
    ----------
    codec:
        A :class:`~repro.compression.codecs.Codec` or registry name.
        Defaults to LZ4 (the paper's default).
    size_dependent:
        When ``True`` (default) the effective ratio follows the Table III
        curve shifted to the codec's reference ratio; when ``False`` the
        flat Table II ratio applies to every flow.
    speed_scale:
        Multiplier on the codec's per-core speed (models slower/faster CPUs
        than the paper's testbed Xeons).
    """

    def __init__(
        self,
        codec: Union[Codec, str, None] = None,
        size_dependent: bool = True,
        speed_scale: float = 1.0,
    ):
        if codec is None:
            codec = default_codec()
        elif isinstance(codec, str):
            codec = get_codec(codec)
        self.codec = codec
        self.speed_scale = float(speed_scale)
        self._ratio_model: Optional[SizeDependentRatio] = (
            SizeDependentRatio(codec) if size_dependent else None
        )

    @property
    def speed(self) -> float:
        """Input bytes compressed per second by one core."""
        return self.codec.speed * self.speed_scale

    def ratio(self, size: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Effective compression ratio for flows of ``size`` original bytes."""
        if self._ratio_model is None:
            s = np.asarray(size, dtype=np.float64)
            out = np.full_like(s, self.codec.ratio)
            return float(out) if out.ndim == 0 else out
        return self._ratio_model(size)

    def disposal_speed(self, size: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Net volume drain of compressing, ``R (1 - xi(size))`` (Eq. 1)."""
        return self.speed * (1.0 - np.asarray(self.ratio(size)))

    def beats_bandwidth(
        self, size: Union[float, np.ndarray], bandwidth: Union[float, np.ndarray]
    ) -> Union[bool, np.ndarray]:
        """Eq. 3 test per flow: is compressing faster than transmitting?"""
        out = np.asarray(self.disposal_speed(size)) > np.asarray(bandwidth)
        return bool(out) if out.ndim == 0 else out

    def grant_cores(
        self,
        want: np.ndarray,
        src: np.ndarray,
        free_cores: np.ndarray,
        priority: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Resolve compression wishes against per-node core budgets.

        Parameters
        ----------
        want:
            Boolean mask of flows that would like to compress.
        src:
            Per-flow source node indices.
        free_cores:
            Cores available for compression per node.
        priority:
            Optional flow ordering (indices, most important first) used to
            break ties when a node has fewer cores than requests; defaults
            to ascending flow index.

        Returns
        -------
        numpy.ndarray
            Boolean mask of flows actually granted a core (one core per
            flow, never exceeding ``free_cores`` on any node).
        """
        granted = np.zeros(len(want), dtype=bool)
        budget = np.asarray(free_cores, dtype=np.int64).copy()
        order = priority if priority is not None else np.arange(len(want))
        for i in order:
            if not want[i]:
                continue
            node = src[i]
            if budget[node] > 0:
                granted[i] = True
                budget[node] -= 1
        return granted
