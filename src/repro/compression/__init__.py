"""Compression substrate: codecs (Table II), ratio model (Table III), engine."""

from repro.compression.calibrate import calibrated_codec, measure_backend, synthetic_payload
from repro.compression.codecs import (
    DEFAULT_CODEC_NAME,
    TABLE_II,
    Codec,
    default_codec,
    get_codec,
    register_codec,
)
from repro.compression.engine import CompressionEngine
from repro.compression.model import TABLE_III_ANCHORS, SizeDependentRatio, table3_ratio

__all__ = [
    "Codec", "get_codec", "default_codec", "register_codec",
    "TABLE_II", "DEFAULT_CODEC_NAME",
    "SizeDependentRatio", "table3_ratio", "TABLE_III_ANCHORS",
    "CompressionEngine",
    "calibrated_codec", "measure_backend", "synthetic_payload",
]
