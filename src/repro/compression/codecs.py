"""Codec registry parameterised with the paper's measurements (Table II).

The scheduler consumes exactly two numbers per codec: the compression speed
``R`` (bytes of *input* consumed per second per core) and the compression
ratio ``xi`` (compressed size / original size; smaller is better).  Table II
of the paper measured these for five codecs; we inject those values so the
FVDF decision rule ``R * (1 - xi) > B`` (Eq. 3) behaves as in the paper.

Decompression speed is carried for completeness but — as the paper notes —
omitted from completion-time accounting because decompression is several
times faster than compression and overlaps with receiving.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.units import MB

_MBs = MB  # 1 MB/s in bytes/s


@dataclass(frozen=True)
class Codec:
    """A compression algorithm's scheduling-relevant parameters.

    Attributes
    ----------
    name:
        Registry key (lower case).
    speed:
        Compression throughput, bytes of input per second per core.
    decompression_speed:
        Decompression throughput, bytes of output per second per core.
    ratio:
        Reference compression ratio (compressed/original) at large flow
        sizes.  The effective ratio for a given flow size comes from
        :class:`repro.compression.model.SizeDependentRatio`.
    """

    name: str
    speed: float
    decompression_speed: float
    ratio: float

    def __post_init__(self) -> None:
        if self.speed <= 0 or self.decompression_speed <= 0:
            raise ConfigurationError(f"codec {self.name}: speeds must be positive")
        if not 0 < self.ratio < 1:
            raise ConfigurationError(
                f"codec {self.name}: ratio must lie in (0, 1), got {self.ratio}"
            )

    @property
    def disposal_speed(self) -> float:
        """Net volume drain per second of compression: ``R * (1 - xi)`` (Eq. 1)."""
        return self.speed * (1.0 - self.ratio)

    def beats_bandwidth(self, bandwidth: float) -> bool:
        """Eq. 3: compression outruns transmission iff ``R (1 - xi) > B``."""
        return self.disposal_speed > bandwidth

    def with_ratio(self, ratio: float) -> "Codec":
        """A copy of this codec with a different reference ratio."""
        return replace(self, ratio=ratio)


#: Table II of the paper, verbatim (speeds per core; ratios on the paper's
#: reference corpus).
TABLE_II: Dict[str, Codec] = {
    "lz4": Codec("lz4", speed=785 * _MBs, decompression_speed=2601 * _MBs, ratio=0.6215),
    "lzo": Codec("lzo", speed=424 * _MBs, decompression_speed=560 * _MBs, ratio=0.5030),
    "snappy": Codec("snappy", speed=327 * _MBs, decompression_speed=1075 * _MBs, ratio=0.4819),
    "lzf": Codec("lzf", speed=251 * _MBs, decompression_speed=565 * _MBs, ratio=0.4814),
    "zstd": Codec("zstd", speed=330 * _MBs, decompression_speed=930 * _MBs, ratio=0.3477),
}

#: The paper's default (`swallow.smartCompress` ships LZ4 by default).
DEFAULT_CODEC_NAME = "lz4"


def get_codec(name: str) -> Codec:
    """Look up a codec by name (case-insensitive).

    Raises
    ------
    ConfigurationError
        For unknown codec names, listing the available ones.
    """
    key = name.lower()
    # Tolerate the paper's own typo ("Sanppy") and common aliases.
    aliases = {"sanppy": "snappy", "zstandard": "zstd", "lz-4": "lz4"}
    key = aliases.get(key, key)
    try:
        return TABLE_II[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown codec {name!r}; available: {sorted(TABLE_II)}"
        ) from None


def default_codec() -> Codec:
    return TABLE_II[DEFAULT_CODEC_NAME]


def register_codec(codec: Codec, overwrite: bool = False) -> None:
    """Add a custom codec to the registry (e.g. calibrated from zlib)."""
    if codec.name in TABLE_II and not overwrite:
        raise ConfigurationError(f"codec {codec.name!r} already registered")
    TABLE_II[codec.name] = codec
