"""repro — a reproduction of *Swallow: Joint Online Scheduling and Coflow
Compression in Datacenter Networks* (Zhou et al., IPDPS 2018).

The package implements, in pure Python/NumPy:

* the big-switch datacenter fabric, CPU and compression substrates;
* a slice-granular coflow simulation engine;
* the paper's FVDF scheduler and every baseline it compares against
  (FIFO, FAIR, SRTF, PFP, WSS, PFF, SEBF/Varys, SCF, NCF, LCF);
* workload generators and the public Facebook coflow-trace format;
* a Spark-like cluster simulator (HiBench workloads, GC model) standing in
  for the paper's 100-VM deployment;
* the Swallow master/worker system layer with the Table IV API.

Quickstart::

    import repro
    from repro.units import MB, gbps

    fabric = repro.BigSwitch(num_ports=3, bandwidth=gbps(1))
    coflow = repro.Coflow([
        repro.Flow(src=0, dst=1, size=400 * MB),
        repro.Flow(src=1, dst=2, size=200 * MB),
    ])
    sim = repro.SliceSimulator(fabric, repro.FVDFScheduler())
    sim.submit(coflow)
    result = sim.run()
    print(result.avg_cct, result.traffic_reduction)
"""

from repro.compression import Codec, CompressionEngine, default_codec, get_codec
from repro.core import (
    Allocation,
    Coflow,
    CoflowResult,
    Flow,
    FlowResult,
    FVDFConfig,
    FVDFScheduler,
    Scheduler,
    SchedulerView,
    SimulationResult,
    SliceSimulator,
)
from repro.cpu import CpuModel, UtilizationRecorder
from repro.fabric import BigSwitch
from repro.schedulers import make_scheduler, scheduler_names

__version__ = "1.7.0"

__all__ = [
    "Flow", "FlowResult", "Coflow", "CoflowResult",
    "BigSwitch", "CpuModel", "UtilizationRecorder",
    "Codec", "CompressionEngine", "get_codec", "default_codec",
    "Scheduler", "SchedulerView", "Allocation",
    "SliceSimulator", "SimulationResult",
    "FVDFScheduler", "FVDFConfig",
    "make_scheduler", "scheduler_names",
    "__version__",
]
