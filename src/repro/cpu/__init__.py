"""CPU substrate: per-node cores, background load and utilisation monitoring."""

from repro.cpu.cores import CpuModel, PiecewiseConstantBackground, random_background
from repro.cpu.monitor import CpuReport, UtilizationRecorder

__all__ = [
    "CpuModel",
    "PiecewiseConstantBackground",
    "random_background",
    "UtilizationRecorder",
    "CpuReport",
]
