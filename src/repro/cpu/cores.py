"""Per-node CPU model.

Each machine behind an ingress port has a fixed number of cores.  Two things
occupy them:

* **background load** — computation tasks (map/reduce work in the cluster
  simulator, or a synthetic utilisation trace), expressed as a busy
  fraction per node as a function of time, and
* **compression claims** — whole cores claimed by the engine while a flow
  is being compressed (Pseudocode 1 line 4: "if CPU resources are enough").

The paper's motivation (Fig. 2) is that background load leaves frequent idle
periods; Swallow spends exactly those on compression.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

BackgroundFn = Callable[[float], Union[float, np.ndarray]]


class PiecewiseConstantBackground:
    """Busy-fraction trace: per-node step function of time.

    Parameters
    ----------
    times:
        Sorted breakpoints (seconds); ``values[i]`` holds on
        ``[times[i], times[i+1])``.  Before ``times[0]`` and after the last
        breakpoint the edge values hold.
    values:
        Array of shape ``(len(times), num_nodes)`` or ``(len(times),)``
        (same load on every node), entries in ``[0, 1]``.
    """

    def __init__(self, times: Sequence[float], values: np.ndarray):
        self.times = np.asarray(times, dtype=np.float64)
        self.values = np.asarray(values, dtype=np.float64)
        if len(self.times) == 0:
            raise ConfigurationError("need at least one breakpoint")
        if np.any(np.diff(self.times) < 0):
            raise ConfigurationError("breakpoints must be sorted")
        if self.values.shape[0] != self.times.shape[0]:
            raise ConfigurationError("values must have one row per breakpoint")
        if np.any(self.values < 0) or np.any(self.values > 1):
            raise ConfigurationError("busy fractions must lie in [0, 1]")

    def __call__(self, t: float) -> np.ndarray:
        i = int(np.searchsorted(self.times, t, side="right")) - 1
        i = min(max(i, 0), len(self.times) - 1)
        return self.values[i]


def random_background(
    rng: np.random.Generator,
    num_nodes: int,
    horizon: float,
    busy_level: float = 0.6,
    mean_period: float = 5.0,
) -> PiecewiseConstantBackground:
    """Synthetic bursty background load (alternating busy/idle periods).

    Produces the Fig.-2-style pattern: nodes oscillate between busy spells
    (fraction ``busy_level``) and idle spells, with exponentially
    distributed period lengths of mean ``mean_period`` seconds.
    """
    if not 0 <= busy_level <= 1:
        raise ConfigurationError("busy_level must lie in [0, 1]")
    n_steps = max(2, int(np.ceil(horizon / mean_period * 2)) + 1)
    durations = rng.exponential(mean_period, size=n_steps)
    times = np.concatenate([[0.0], np.cumsum(durations)[:-1]])
    # Independent busy/idle phase per node per step.
    busy = rng.random((n_steps, num_nodes)) < 0.5
    jitter = rng.uniform(0.8, 1.2, size=(n_steps, num_nodes))
    values = np.where(busy, np.clip(busy_level * jitter, 0, 1), 0.0)
    return PiecewiseConstantBackground(times, values)


class CpuModel:
    """Cores per node + background load + dynamic compression claims.

    Parameters
    ----------
    num_nodes:
        One node per ingress port of the fabric.
    cores_per_node:
        Physical cores per machine.
    background:
        Optional callable ``t -> busy fraction`` (scalar or per-node array).
        Defaults to always idle.
    """

    def __init__(
        self,
        num_nodes: int,
        cores_per_node: int = 4,
        background: Optional[BackgroundFn] = None,
    ):
        if num_nodes <= 0 or cores_per_node <= 0:
            raise ConfigurationError("num_nodes and cores_per_node must be positive")
        self.num_nodes = num_nodes
        self.cores_per_node = cores_per_node
        self._background = background
        self._claimed = np.zeros(num_nodes, dtype=np.int64)

    # -- background -----------------------------------------------------------
    def background_busy(self, t: float) -> np.ndarray:
        """Background busy fraction per node at time ``t``."""
        if self._background is None:
            return np.zeros(self.num_nodes)
        b = np.asarray(self._background(t), dtype=np.float64)
        return np.broadcast_to(np.clip(b, 0.0, 1.0), (self.num_nodes,))

    # -- claims ---------------------------------------------------------------
    @property
    def claimed(self) -> np.ndarray:
        """Cores currently claimed for compression, per node."""
        return self._claimed.copy()

    def claim(self, node: int, n: int = 1) -> None:
        """Claim ``n`` cores on ``node``; caller must have checked headroom."""
        self._claimed[node] += n

    def release(self, node: int, n: int = 1) -> None:
        self._claimed[node] -= n
        if self._claimed[node] < 0:
            raise ConfigurationError(f"released more cores than claimed on node {node}")

    def release_all(self) -> None:
        self._claimed[:] = 0

    # -- queries ---------------------------------------------------------------
    def free_cores(self, t: float) -> np.ndarray:
        """Whole cores available for compression per node at time ``t``.

        Background load occupies ``busy * cores`` (rounded up — partial use
        of a core blocks it for the exclusive compression claim), then
        current claims are subtracted.
        """
        bg_cores = np.ceil(self.background_busy(t) * self.cores_per_node - 1e-9)
        free = self.cores_per_node - bg_cores.astype(np.int64) - self._claimed
        return np.maximum(free, 0)

    def busy_fraction(self, t: float) -> np.ndarray:
        """Total busy fraction per node (background + compression claims)."""
        total = self.background_busy(t) + self._claimed / self.cores_per_node
        return np.clip(total, 0.0, 1.0)
