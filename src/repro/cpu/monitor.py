"""CPU-utilisation measurement (paper Fig. 2 and the Swallow daemons).

The Swallow worker daemon periodically reports node status to the master;
this module is the measurement side: a :class:`UtilizationRecorder` samples
busy fractions over time and derives the idle statistics the paper quotes
("more than 30.77% of CPU time is wasted at 10 Gbps, 69.23% at 100 Mbps").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cpu.cores import CpuModel
from repro.errors import ConfigurationError


class UtilizationRecorder:
    """Collects (time, per-node busy fraction) samples."""

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self._times: List[float] = []
        self._samples: List[np.ndarray] = []

    def sample(self, t: float, busy: np.ndarray) -> None:
        busy = np.broadcast_to(np.asarray(busy, dtype=np.float64), (self.num_nodes,))
        self._times.append(float(t))
        self._samples.append(busy.copy())

    def sample_model(self, t: float, cpu: CpuModel) -> None:
        self.sample(t, cpu.busy_fraction(t))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def busy(self) -> np.ndarray:
        """Array of shape ``(num_samples, num_nodes)``."""
        if not self._samples:
            return np.zeros((0, self.num_nodes))
        return np.vstack(self._samples)

    # -- statistics ------------------------------------------------------------
    def mean_utilization(self) -> float:
        """Average busy fraction over all samples and nodes."""
        b = self.busy
        return float(b.mean()) if b.size else 0.0

    def idle_time_fraction(self, threshold: float = 0.05) -> float:
        """Fraction of (sample, node) points with busy fraction <= threshold.

        This is the paper's "wasted CPU time" metric: the share of time a
        CPU sits (nearly) idle and could be compressing instead.
        """
        b = self.busy
        if not b.size:
            return 0.0
        return float((b <= threshold).mean())

    def node_timeline(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """(times, busy fraction) series for one node — Fig. 2 panels."""
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(f"node {node} out of range")
        return self.times, self.busy[:, node]

    def idle_periods(self, node: int, threshold: float = 0.05) -> List[Tuple[float, float]]:
        """Contiguous idle intervals ``(start, end)`` for one node.

        These are the "blank areas" of Fig. 2.
        """
        times, busy = self.node_timeline(node)
        periods: List[Tuple[float, float]] = []
        start: Optional[float] = None
        for t, b in zip(times, busy):
            if b <= threshold:
                if start is None:
                    start = t
            else:
                if start is not None:
                    periods.append((start, t))
                    start = None
        if start is not None and len(times):
            periods.append((start, float(times[-1])))
        return periods


@dataclass
class CpuReport:
    """Summary a Swallow daemon ships to the master (Section III-B)."""

    node: int
    time: float
    busy_fraction: float
    free_cores: int

    @classmethod
    def measure(cls, cpu: CpuModel, node: int, t: float) -> "CpuReport":
        return cls(
            node=node,
            time=t,
            busy_fraction=float(cpu.busy_fraction(t)[node]),
            free_cores=int(cpu.free_cores(t)[node]),
        )
