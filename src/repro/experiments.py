"""Experiment registry: every paper table/figure → its benchmark target.

This is the machine-readable version of DESIGN.md's per-experiment index.
A test asserts that every registered bench file exists and every bench
file is registered, so the documentation cannot silently drift from the
code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Experiment:
    """One reproducible evaluation artefact of the paper."""

    exp_id: str  # paper's table/figure id, e.g. "fig6e"
    title: str
    workload: str
    modules: Tuple[str, ...]
    bench: str  # file under benchmarks/


_E = Experiment

EXPERIMENTS: Dict[str, Experiment] = {
    e.exp_id: e
    for e in [
        _E("fig1", "Flow properties: heavy-tailed size/byte CDFs",
           "truncated-Pareto samples calibrated to Fig. 1",
           ("repro.traces.distributions", "repro.analysis"),
           "bench_fig1_flow_properties.py"),
        _E("fig2", "CPU idle periods vs bandwidth",
           "HiBench large suite on the cluster simulator, SEBF",
           ("repro.cluster", "repro.cpu.monitor"),
           "bench_fig2_cpu_utilization.py"),
        _E("table1", "Intermediate data of one shuffle block per app",
           "one shuffle per Table I app through FVDF on a thin link",
           ("repro.traces.spark", "repro.compression"),
           "bench_table1_intermediate_data.py"),
        _E("table2", "Codec compression parameters",
           "registry echo + live zlib measurement",
           ("repro.compression.codecs", "repro.compression.calibrate"),
           "bench_table2_codecs.py"),
        _E("table3", "Compression ratio vs flow size",
           "size-model sweep 10 KB → 10 GB + live zlib shape check",
           ("repro.compression.model",),
           "bench_table3_ratio_vs_size.py"),
        _E("fig4", "Motivating example: 6 policies on the 3×3 fabric",
           "C1 = {4,4,2}, C2 = {2,3} data units (exact baseline match)",
           ("repro.scenarios", "repro.schedulers", "repro.core.simulator"),
           "bench_fig4_motivating_example.py"),
        _E("fig6a", "Avg-FCT speedup per trace percentile",
           "300 singleton flows, log-normal sizes, 200 Mbps",
           ("repro.core.fvdf", "repro.schedulers.flow_level"),
           "bench_fig6a_fct_percentiles.py"),
        _E("fig6b", "Avg-FCT speedup per flow-size class",
           "same flow trace, 3 size classes",
           ("repro.core.metrics",),
           "bench_fig6b_fct_by_size.py"),
        _E("fig6c", "Avg-FCT speedup vs parallel-flow count",
           "batches of 30/100/300 simultaneous flows",
           ("repro.traces.generator",),
           "bench_fig6c_parallel_flows.py"),
        _E("fig6d", "CDF of FCT per algorithm",
           "same flow trace; completion-of-all-flows metric",
           ("repro.analysis",),
           "bench_fig6d_fct_cdf.py"),
        _E("fig6e", "CCT speedup vs bandwidth (6 coflow baselines)",
           "40 coflows, width 1–8, 100 Mbps → 10 Gbps sweep",
           ("repro.schedulers.coflow_level",),
           "bench_fig6e_cct_bandwidth.py"),
        _E("fig6f", "Speedup over SEBF per compression format",
           "same coflow trace, LZ4/Snappy/LZF/LZO/Zstd",
           ("repro.compression.codecs",),
           "bench_fig6f_codecs.py"),
        _E("table5", "Job throughput per time unit",
           "150 ten-flow jobs, backlogged fabric, 25 s windows",
           ("repro.core.metrics",),
           "bench_table5_throughput.py"),
        _E("table6", "Absolute CCT / job duration per algorithm",
           "coflow trace at 100 Mbps",
           ("repro.schedulers",),
           "bench_table6_cct.py"),
        _E("fig7a", "Per-stage JCT improvement",
           "HiBench large suite, SEBF vs FVDF cluster runs",
           ("repro.cluster",),
           "bench_fig7a_jct_stages.py"),
        _E("fig7b+table7", "Shuffle traffic with/without Swallow",
           "HiBench large/huge/gigantic suites",
           ("repro.cluster.hibench",),
           "bench_fig7b_table7_traffic.py"),
        _E("table8", "GC time per stage with/without compression",
           "HiBench suites through the GC model",
           ("repro.cluster.gc_model",),
           "bench_table8_gc.py"),
        _E("fig7c", "CCT vs time-slice length",
           "coflow trace at 100 Mbps, δ ∈ {10 ms, 100 ms, 1 s}",
           ("repro.core.simulator",),
           "bench_fig7c_time_slice.py"),
        _E("ablation-aging", "Starvation-freedom aging policies",
           "large coflow + small-coflow stream",
           ("repro.core.fvdf",),
           "bench_ablation_aging.py"),
        _E("ablation-compression", "Ordering vs compression decomposition",
           "coflow trace across bandwidths",
           ("repro.core.fvdf",),
           "bench_ablation_compression.py"),
        _E("ablation-rate-policy", "Minimal vs greedy vs MADD allocation",
           "coflow trace at 100 Mbps",
           ("repro.core.rate_allocation",),
           "bench_ablation_rate_policy.py"),
        _E("ablation-decompression", "Receiver-side decompression overhead",
           "coflow trace at 100 Mbps, three codecs",
           ("repro.core.simulator", "repro.compression.codecs"),
           "bench_ablation_decompression.py"),
        _E("ext-oversubscription", "FVDF vs SEBF on a two-tier fabric",
           "coflow trace on 4 racks × 4 hosts, uplink 1:1 → 8:1",
           ("repro.fabric.twotier",),
           "bench_ext_oversubscription.py"),
        _E("ext-failures", "Swallow under failures and stragglers",
           "HiBench large suite, healthy/flaky/hostile churn",
           ("repro.cluster.failures",),
           "bench_ext_failures.py"),
        _E("ext-bins", "CCT speedup per Short/Long x Narrow/Wide bin",
           "60 coflows at 100 Mbps, Varys-style bins",
           ("repro.traces.classify",),
           "bench_ext_bins.py"),
        _E("ext-agnostic", "Knowledge spectrum: FIFO/D-CLAS/SEBF/FVDF",
           "5 seeded coflow traces at 100 Mbps",
           ("repro.schedulers.aalo", "repro.analysis.seeds"),
           "bench_ext_agnostic.py"),
        _E("ext-deadlines", "Deadline guarantees: EDF admission control",
           "40 deadline coflows at ~1.5x load, 100 Mbps",
           ("repro.schedulers.deadline",),
           "bench_ext_deadlines.py"),
        _E("microbench", "Engine and allocation-primitive throughput",
           "2000 flows / 64 ports primitives; 200-coflow end-to-end run",
           ("repro.core",),
           "bench_engine_microbench.py"),
        _E("hotpath", "Decision-point hot-path scaling grid",
           "flows x coflows x ports grid vs the pinned scalar reference; "
           "appends to BENCH_hotpath.json and asserts the 3x speedup floor",
           ("repro.analysis.perfbench", "repro.core.reference"),
           "bench_hotpath_scale.py"),
        _E("sweep", "Parallel sweep-runner scaling grid",
           "fig6e-shaped policy x bandwidth x seed grid: sequential vs "
           "4-worker pool vs warm result cache; appends to BENCH_sweep.json "
           "and asserts the 2.5x suite-level floor + bit-identity",
           ("repro.runner", "repro.analysis.sweepbench"),
           "bench_sweep_scale.py"),
        _E("bigtrace", "Trace-scale end-to-end replay",
           "131k-flow synthetic FB trace: columnar ingest/retire/results "
           "vs the pinned pre-columnar engine; appends to "
           "BENCH_bigtrace.json and asserts the 3x floor + bit-identity",
           ("repro.analysis.bigbench", "repro.core.results",
            "repro.core.reference"),
           "bench_bigtrace_scale.py"),
        _E("stream", "Streaming-service steady-state replay",
           "1M flows through the long-lived service driver (tick-batched "
           "admission, bounded in-flight window, incremental drain); "
           "appends to BENCH_stream.json and asserts the throughput floor "
           "and bounded-memory ceilings",
           ("repro.service", "repro.analysis.streambench"),
           "bench_stream_scale.py"),
    ]
}


def get_experiment(exp_id: str) -> Experiment:
    return EXPERIMENTS[exp_id]
