"""Lineage analysis: split an RDD chain into shuffle-bounded stages.

Walking from an action's RDD back to its source yields alternating runs of
narrow transformations separated by shuffle dependencies — exactly Spark's
stage construction for linear lineages (sparklite does not implement
multi-parent joins, so the DAG is a chain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sparklite.rdd import RDD, MappedRDD, ShuffledRDD, SourceRDD


@dataclass
class StagePlan:
    """One executable stage.

    Attributes
    ----------
    shuffle:
        The shuffle dependency feeding this stage (``None`` for the first
        stage, which reads the source partitions directly).
    transforms:
        Narrow per-partition record functions, applied in order after the
        stage's input is materialised.
    """

    shuffle: Optional[ShuffledRDD]
    transforms: List[Callable] = field(default_factory=list)


def build_stages(rdd: RDD) -> Tuple[SourceRDD, List[StagePlan]]:
    """Decompose a lineage chain into (source, ordered stage plans)."""
    # Walk to the root, collecting nodes in reverse order.
    chain: List[RDD] = []
    node: Optional[RDD] = rdd
    while node is not None:
        chain.append(node)
        node = node.parent
    chain.reverse()
    if not isinstance(chain[0], SourceRDD):
        raise ConfigurationError(
            f"lineage must start at a parallelized source, found {chain[0]!r}"
        )
    source = chain[0]
    plans: List[StagePlan] = [StagePlan(shuffle=None)]
    for node in chain[1:]:
        if isinstance(node, ShuffledRDD):
            plans.append(StagePlan(shuffle=node))
        elif isinstance(node, MappedRDD):
            plans[-1].transforms.append(node.transform)
        else:
            raise ConfigurationError(f"unexpected lineage node {node!r}")
    return source, plans


def num_stages(rdd: RDD) -> int:
    """How many stages an action on ``rdd`` will run."""
    return len(build_stages(rdd)[1])
