"""Partitions and partitioners for the sparklite mini-framework.

A partition is just a list of records; a partitioner maps a key to a
reducer partition index.  Hash partitioning uses a stable (non-salted)
hash so runs are reproducible across processes.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Hashable, List, Sequence

from repro.errors import ConfigurationError

Record = Any


def stable_hash(key: Hashable) -> int:
    """Deterministic hash (Python's builtin is salted per process)."""
    data = repr(key).encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class HashPartitioner:
    """Assign keys to ``num_partitions`` buckets by stable hash."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        self.num_partitions = num_partitions

    def __call__(self, key: Hashable) -> int:
        return stable_hash(key) % self.num_partitions

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, HashPartitioner)
            and other.num_partitions == self.num_partitions
        )


class RangePartitioner:
    """Assign keys to ordered buckets via precomputed boundaries.

    ``bounds`` are the upper-exclusive boundaries of the first n−1 buckets
    (Spark's sortByKey partitioner).  Keys must be mutually comparable.
    """

    def __init__(self, bounds: Sequence[Hashable]):
        self.bounds = list(bounds)
        self.num_partitions = len(self.bounds) + 1

    @classmethod
    def from_keys(cls, keys: Sequence[Hashable], num_partitions: int) -> "RangePartitioner":
        if num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        ordered = sorted(keys)
        if not ordered or num_partitions == 1:
            return cls([])
        step = len(ordered) / num_partitions
        bounds = [ordered[int(step * i)] for i in range(1, num_partitions)]
        return cls(bounds)

    def __call__(self, key: Hashable) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if key < self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo


def split_evenly(records: Sequence[Record], num_partitions: int) -> List[List[Record]]:
    """Deal records round-robin into partitions (parallelize())."""
    if num_partitions <= 0:
        raise ConfigurationError("num_partitions must be positive")
    parts: List[List[Record]] = [[] for _ in range(num_partitions)]
    for i, r in enumerate(records):
        parts[i % num_partitions].append(r)
    return parts


def bucket_by_key(
    records: Sequence[Record], partitioner: Callable[[Hashable], int], n: int
) -> List[List[Record]]:
    """Split key-value records into shuffle buckets by key."""
    buckets: List[List[Record]] = [[] for _ in range(n)]
    for rec in records:
        try:
            key = rec[0]
        except (TypeError, IndexError):
            raise ConfigurationError(
                f"shuffle requires (key, value) records, got {rec!r}"
            ) from None
        buckets[partitioner(key)].append(rec)
    return buckets
