"""The sparklite driver: execute lineages, shuffling through Swallow.

This is the reproduction's analogue of the paper's Spark-2.2.0
integration: a working data-parallel framework whose *computation* runs in
plain Python but whose *shuffles* are real — each map task's output is
partitioned, serialized and pushed block-by-block through the
:class:`~repro.swallow.context.SwallowContext`, which schedules the
resulting coflow with FVDF (compressing payloads when worthwhile) on the
simulated fabric.  Simulated time advances exactly by the network
transfers; per-shuffle timings and byte counts come back in
:attr:`SparkLiteContext.shuffle_reports`.

Results are *correct* end to end: a wordcount through sparklite equals a
wordcount in plain Python, with every shuffled byte having crossed the
(simulated) datacenter.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.flow import Flow
from repro.errors import ConfigurationError
from repro.sparklite.partition import (
    HashPartitioner,
    RangePartitioner,
    bucket_by_key,
    split_evenly,
)
from repro.sparklite.rdd import RDD, ShuffledRDD, SourceRDD
from repro.sparklite.serializer import deserialize_block, serialize_block
from repro.sparklite.stages import build_stages
from repro.swallow.context import SwallowContext
from repro.swallow.messages import BlockId, FlowInfo
from repro.units import gbps


@dataclass
class ShuffleReport:
    """What one shuffle cost on the fabric."""

    label: str
    start: float
    end: float
    payload_bytes: int
    wire_bytes: float
    num_flows: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def traffic_reduction(self) -> float:
        if self.payload_bytes <= 0:
            return 0.0
        return 1.0 - self.wire_bytes / self.payload_bytes


class SparkLiteContext:
    """Driver + cluster: the entry point of the mini-framework.

    Parameters
    ----------
    num_nodes:
        Executors (one per fabric port); task *p* of a stage runs on node
        ``p % num_nodes``.
    bandwidth:
        Fabric port speed, bytes/s.
    smart_compress:
        Swallow's compression switch.
    real_compression:
        Run shuffle payload bytes through a real codec in the workers.
    """

    def __init__(
        self,
        num_nodes: int = 4,
        bandwidth: float = gbps(1),
        smart_compress: bool = True,
        real_compression: bool = True,
        slice_len: float = 0.01,
        default_parallelism: Optional[int] = None,
    ):
        self.swallow = SwallowContext(
            num_nodes=num_nodes,
            bandwidth=bandwidth,
            smart_compress=smart_compress,
            slice_len=slice_len,
            real_compression=real_compression,
        )
        self.num_nodes = num_nodes
        self.default_parallelism = default_parallelism or num_nodes
        self.shuffle_reports: List[ShuffleReport] = []
        self._job_seq = 0

    # ------------------------------------------------------------------ API
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.swallow.engine.now

    def parallelize(self, records: Sequence[Any], num_partitions: Optional[int] = None) -> SourceRDD:
        """Distribute an in-memory collection."""
        n = self.default_parallelism if num_partitions is None else num_partitions
        return SourceRDD(self, split_evenly(list(records), n))

    def text_file(self, path, num_partitions: Optional[int] = None) -> SourceRDD:
        """Read a text file into an RDD of lines (no trailing newlines)."""
        from pathlib import Path as _P

        lines = _P(path).read_text().splitlines()
        return self.parallelize(lines, num_partitions)

    def union(self, *rdds: RDD) -> SourceRDD:
        """Concatenate datasets into one (eager: runs each lineage now).

        sparklite lineages are single-parent chains, so union materialises
        its inputs — each input's shuffles run (advancing simulated time)
        before the combined dataset is re-parallelized.
        """
        if not rdds:
            raise ConfigurationError("union() needs at least one RDD")
        records: List[Any] = []
        for r in rdds:
            records.extend(self.run(r))
        return self.parallelize(records)

    def join(
        self, left: RDD, right: RDD, num_partitions: Optional[int] = None
    ) -> SourceRDD:
        """Inner join of two key-value datasets (eager, like union()).

        Both lineages run; the tagged union is shuffled once by key and
        matching (left, right) value pairs are emitted — the classic
        reduce-side join, with the join shuffle crossing the fabric.
        """
        n = num_partitions or self.default_parallelism
        tagged = [("L", kv) for kv in self.run(left)] + [
            ("R", kv) for kv in self.run(right)
        ]
        grouped = (
            self.parallelize(tagged, n)
            .map(lambda t: (t[1][0], (t[0], t[1][1])))
            .group_by_key(n)
            .flat_map(
                lambda kv: [
                    (kv[0], (lv, rv))
                    for side_l, lv in kv[1]
                    if side_l == "L"
                    for side_r, rv in kv[1]
                    if side_r == "R"
                ]
            )
        )
        return self.parallelize(grouped.collect(), n)

    def run(self, rdd: RDD) -> List[Any]:
        """Execute an action: run every stage, shuffling between them."""
        source, plans = build_stages(rdd)
        partitions = [list(p) for p in source.partitions]
        self._job_seq += 1
        for stage_idx, plan in enumerate(plans):
            if plan.shuffle is not None:
                partitions = self._shuffle(
                    partitions, plan.shuffle,
                    label=f"job{self._job_seq}-stage{stage_idx}",
                )
            for fn in plan.transforms:
                partitions = [fn(p) for p in partitions]
        return [r for p in partitions for r in p]

    # ------------------------------------------------------------- internals
    def _node_of(self, task: int) -> int:
        return task % self.num_nodes

    def _combine(self, sh: ShuffledRDD, records: List[Any]) -> List[Any]:
        """Map-side combining (Spark's combiners) when a reduce fn exists."""
        if sh.reduce_fn is None:
            return records
        acc: Dict[Any, Any] = {}
        for k, v in records:
            acc[k] = sh.reduce_fn(acc[k], v) if k in acc else v
        return list(acc.items())

    def _merge(self, sh: ShuffledRDD, records: List[Any]) -> List[Any]:
        """Reduce-side merge: fold, group, or sort."""
        if sh.reduce_fn is not None:
            acc: Dict[Any, Any] = {}
            for k, v in records:
                acc[k] = sh.reduce_fn(acc[k], v) if k in acc else v
            return list(acc.items())
        if sh.sort:
            return sorted(records, key=lambda r: r[0])
        grouped: Dict[Any, List[Any]] = {}
        for k, v in records:
            grouped.setdefault(k, []).append(v)
        return list(grouped.items())

    def _shuffle(
        self, map_parts: List[List[Any]], sh: ShuffledRDD, label: str
    ) -> List[List[Any]]:
        n_reduce = sh.num_partitions
        combined = [self._combine(sh, p) for p in map_parts]
        if sh.sort:
            all_keys = [r[0] for p in combined for r in p]
            partitioner = RangePartitioner.from_keys(all_keys, n_reduce)
        else:
            partitioner = sh.partitioner
        # bucket[m][r]: records from map task m bound for reduce task r.
        buckets = [bucket_by_key(p, partitioner, n_reduce) for p in combined]

        # Serialize non-empty buckets and describe them as flows.  Each
        # block's *measured* compressibility (a quick zlib probe — the
        # profiling pass the paper describes in Section IV-B1) rides along
        # as the flow's ratio_override, so the fabric-level accounting
        # matches the data's actual entropy rather than a generic curve.
        blobs: List[Tuple[int, int, bytes]] = []
        flows: List[Flow] = []
        for m, row in enumerate(buckets):
            for r, records in enumerate(row):
                if not records:
                    continue
                blob = serialize_block(records)
                blobs.append((m, r, blob))
                ratio = min(max(len(zlib.compress(blob, 1)) / len(blob), 0.02), 0.98)
                flows.append(
                    Flow(src=self._node_of(m), dst=self._node_of(r),
                         size=float(len(blob)), ratio_override=ratio)
                )
        out: List[List[Any]] = [[] for _ in range(n_reduce)]
        if not flows:
            return out

        sc = self.swallow
        start = sc.engine.now
        infos = [
            FlowInfo(flow_id=f.flow_id, src=f.src, dst=f.dst, size=f.size,
                     compressible=f.compressible,
                     ratio_override=f.ratio_override)
            for f in flows
        ]
        ref = sc.add(sc.aggregate(infos, label=label))
        sc.heartbeat()
        sc.alloc(sc.scheduling([ref]))
        block_ids: Dict[Tuple[int, int], BlockId] = {}
        wire = 0.0
        for (m, r, blob) in blobs:  # push order matches flow order (FIFO)
            bid = BlockId()
            msg = sc.push(ref, bid, blob)
            wire += msg.payload_size
            block_ids[(m, r)] = bid
        for (m, r, _blob) in blobs:
            out[r].extend(deserialize_block(sc.pull(ref, block_ids[(m, r)])))
        sc.remove(ref)
        # Wire bytes as scheduled by the fabric (model-level accounting).
        cres = next(
            c for c in sc.results().coflow_results if c.label == label
        )
        self.shuffle_reports.append(
            ShuffleReport(
                label=label,
                start=start,
                end=sc.engine.now,
                payload_bytes=sum(len(b) for _, _, b in blobs),
                wire_bytes=cres.bytes_sent,
                num_flows=len(flows),
            )
        )
        return [self._merge(sh, p) for p in out]
