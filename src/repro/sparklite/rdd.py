"""RDD lineage: lazy, immutable datasets with narrow and shuffle deps.

A tiny but genuine subset of the Spark programming model — enough to write
the HiBench-style applications the paper motivates (wordcount, sort,
pagerank-ish aggregations) and run their shuffles through Swallow:

* narrow transformations (``map``, ``filter``, ``flat_map``,
  ``map_values``) chain within one stage and are pipelined per partition;
* ``reduce_by_key`` / ``group_by_key`` / ``sort_by_key`` introduce a
  shuffle dependency — a stage boundary whose data movement becomes a
  coflow;
* actions (``collect``, ``count``) hand the lineage to a
  :class:`~repro.sparklite.engine.SparkLiteContext` for execution.

RDDs are pure lineage descriptions; nothing computes until an action runs.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sparklite.partition import HashPartitioner

_rdd_ids = itertools.count()


class RDD:
    """A node in the lineage DAG.

    Attributes
    ----------
    parent:
        Upstream RDD (None for data sources).
    num_partitions:
        Parallelism of this dataset.
    """

    def __init__(self, ctx, parent: Optional["RDD"], num_partitions: int):
        if num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        self.ctx = ctx
        self.parent = parent
        self.num_partitions = num_partitions
        self.rdd_id = next(_rdd_ids)

    # -- narrow transformations -------------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        """Apply ``fn`` to every record."""
        return MappedRDD(self, lambda recs: [fn(r) for r in recs])

    def flat_map(self, fn: Callable[[Any], Sequence[Any]]) -> "RDD":
        """Apply ``fn`` and flatten the resulting sequences."""
        return MappedRDD(self, lambda recs: [x for r in recs for x in fn(r)])

    def filter(self, pred: Callable[[Any], bool]) -> "RDD":
        """Keep records satisfying ``pred``."""
        return MappedRDD(self, lambda recs: [r for r in recs if pred(r)])

    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        """Apply ``fn`` to the value of every (key, value) record."""
        return MappedRDD(self, lambda recs: [(k, fn(v)) for k, v in recs])

    # -- shuffle transformations --------------------------------------------------
    def reduce_by_key(
        self, fn: Callable[[Any, Any], Any], num_partitions: Optional[int] = None
    ) -> "RDD":
        """Combine values per key with ``fn`` (map-side pre-aggregation +
        shuffle + reduce-side merge, like Spark's combiners)."""
        return ShuffledRDD(
            self, num_partitions or self.num_partitions, reduce_fn=fn
        )

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        """Collect all values per key into a list."""
        return ShuffledRDD(
            self, num_partitions or self.num_partitions, reduce_fn=None
        )

    def sort_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        """Globally sort (key, value) records by key (shuffle + local sort)."""
        return ShuffledRDD(
            self, num_partitions or self.num_partitions, reduce_fn=None,
            sort=True,
        )

    # -- composites ------------------------------------------------------------------
    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        """Remove duplicate records (hashable), via a shuffle."""
        return (
            self.map(lambda r: (r, None))
            .reduce_by_key(lambda a, b: a, num_partitions)
            .map(lambda kv: kv[0])
        )

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Deterministic pseudo-random subsample (keeps ~``fraction``)."""
        if not 0 <= fraction <= 1:
            raise ConfigurationError("fraction must lie in [0, 1]")
        from repro.sparklite.partition import stable_hash

        threshold = int(fraction * (1 << 32))
        return self.filter(
            lambda r: stable_hash((seed, r)) % (1 << 32) < threshold
        )

    # -- actions -------------------------------------------------------------------
    def collect(self) -> List[Any]:
        """Execute the lineage and return all records."""
        return self.ctx.run(self)

    def count(self) -> int:
        """Execute the lineage and return the record count."""
        return len(self.collect())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} id={self.rdd_id} parts={self.num_partitions}>"


class SourceRDD(RDD):
    """A parallelized in-memory collection."""

    def __init__(self, ctx, partitions: List[List[Any]]):
        super().__init__(ctx, parent=None, num_partitions=len(partitions))
        self.partitions = partitions


class MappedRDD(RDD):
    """A narrow transformation: per-partition record function."""

    def __init__(self, parent: RDD, transform: Callable[[List[Any]], List[Any]]):
        super().__init__(parent.ctx, parent, parent.num_partitions)
        self.transform = transform


class ShuffledRDD(RDD):
    """A shuffle dependency (stage boundary).

    ``reduce_fn`` enables map-side combining and reduce-side merging; when
    ``None``, values are grouped into lists (``sort=True`` instead sorts
    raw records by key).
    """

    def __init__(
        self,
        parent: RDD,
        num_partitions: int,
        reduce_fn: Optional[Callable[[Any, Any], Any]],
        sort: bool = False,
    ):
        super().__init__(parent.ctx, parent, num_partitions)
        self.reduce_fn = reduce_fn
        self.sort = sort
        self.partitioner = HashPartitioner(num_partitions)
