"""Record serialization for shuffle blocks (the Kryo stand-in).

Swallow moves *bytes*; sparklite's shuffle blocks are real serialized
record lists, so flow sizes in the simulated network equal the true
payload sizes and the (optional) byte-level compression in the Swallow
workers operates on genuine data.
"""

from __future__ import annotations

import pickle
from typing import Any, List

from repro.errors import TraceFormatError


def serialize_block(records: List[Any]) -> bytes:
    """Serialize one shuffle bucket."""
    return pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL)


def deserialize_block(blob: bytes) -> List[Any]:
    """Inverse of :func:`serialize_block`."""
    try:
        records = pickle.loads(blob)
    except Exception as exc:  # corrupted payload is a protocol failure
        raise TraceFormatError(f"corrupt shuffle block: {exc}") from exc
    if not isinstance(records, list):
        raise TraceFormatError(
            f"shuffle block decoded to {type(records).__name__}, expected list"
        )
    return records
