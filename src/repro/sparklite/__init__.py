"""sparklite: a mini data-parallel framework shuffling through Swallow.

The reproduction's analogue of the paper's Spark-2.2.0 integration —
see :class:`~repro.sparklite.engine.SparkLiteContext`.
"""

from repro.sparklite.engine import ShuffleReport, SparkLiteContext
from repro.sparklite.partition import (
    HashPartitioner,
    RangePartitioner,
    bucket_by_key,
    split_evenly,
    stable_hash,
)
from repro.sparklite.rdd import RDD, MappedRDD, ShuffledRDD, SourceRDD
from repro.sparklite.serializer import deserialize_block, serialize_block
from repro.sparklite.stages import StagePlan, build_stages, num_stages

__all__ = [
    "SparkLiteContext", "ShuffleReport",
    "RDD", "SourceRDD", "MappedRDD", "ShuffledRDD",
    "HashPartitioner", "RangePartitioner", "stable_hash",
    "split_evenly", "bucket_by_key",
    "serialize_block", "deserialize_block",
    "StagePlan", "build_stages", "num_stages",
]
