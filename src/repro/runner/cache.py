"""Content-addressed result cache for the parallel sweep runner.

Layout: ``<root>/<aa>/<digest>.json`` for compact summaries and
``<root>/<aa>/<digest>.pkl`` for full ``SimulationResult`` payloads, where
``aa`` is the first two hex chars of the digest (one level of sharding
keeps directories small on big sweeps).  The digest is computed by
:meth:`repro.runner.spec.RunSpec.digest` over the spec *content* — see
that module for what is and is not part of the key.

Array-bearing summaries (``RunSpec(arrays=True)``) split in two: the
``.json`` keeps the scalars plus an ``__arrays__`` manifest, and the
per-flow/per-coflow columns live in an uncompressed ``<digest>.npz``
sidecar.  Warm reads map the sidecar with ``mmap_mode="r"`` semantics —
``np.load`` silently ignores ``mmap_mode`` for zip archives, so member
offsets are parsed directly and each column becomes a read-only
``np.memmap`` — meaning a warm sweep never re-deserializes (or even
faults in) columns nobody touches.

Writes are crash-safe: payloads go to a same-directory temp file that is
fsynced before the atomic rename, and the directory entry is fsynced
after it, so a power cut can leave a stale miss but never a
truncated-but-renamed entry (the corrupt-unlink path below then only
ever fires on real corruption).

Controls:

* ``REPRO_CACHE=0`` (env) or ``ResultCache(enabled=False)`` disables all
  reads and writes;
* ``REPRO_CACHE_DIR`` (env) or ``ResultCache(root=...)`` relocates the
  store (default ``.repro-cache/`` under the current directory);
* a corrupt or truncated cache file is treated as a miss and removed —
  the cache is an accelerator, never a source of errors.

Cached *full* results replay the pickled ``SimulationResult`` of the run
that produced them: metrics are identical by construction, but the
``flow_id``/``coflow_id`` values inside are those of the original run
(identifiers come from global counters and are deliberately not part of
the cache key).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.simulator import SimulationResult
from repro.runner.spec import ResultSummary, RunSpec

#: Environment switches.
ENV_CACHE = "REPRO_CACHE"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default store location (relative to the working directory).
DEFAULT_DIRNAME = ".repro-cache"


def cache_enabled_by_env() -> bool:
    return os.environ.get(ENV_CACHE, "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def default_cache_root() -> Path:
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_DIRNAME)


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives a crash."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _load_npz_mmap(path: Path) -> Dict[str, np.ndarray]:
    """Read-only memory-mapped arrays from an uncompressed NPZ.

    ``np.load(..., mmap_mode="r")`` silently falls back to a full read
    for zip archives, so this walks the zip members itself: skip each
    member's local file header, parse the ``.npy`` header, and map the
    raw data region with ``np.memmap``.  Raises on anything unexpected
    (compressed member, object dtype, unknown npy version) — the caller
    falls back to a plain ``np.load``.
    """
    from numpy.lib import format as npformat

    out: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf:
        infos = list(zf.infolist())
    with path.open("rb") as fh:
        for info in infos:
            key = info.filename
            if key.endswith(".npy"):
                key = key[:-4]
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError("compressed NPZ member")
            fh.seek(info.header_offset)
            local = fh.read(30)
            if len(local) != 30 or local[:4] != b"PK\x03\x04":
                raise ValueError("bad zip local header")
            nlen = int.from_bytes(local[26:28], "little")
            elen = int.from_bytes(local[28:30], "little")
            fh.seek(info.header_offset + 30 + nlen + elen)
            version = npformat.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = npformat.read_array_header_1_0(fh)
            elif version == (2, 0):
                shape, fortran, dtype = npformat.read_array_header_2_0(fh)
            else:
                raise ValueError(f"unsupported npy version {version}")
            if dtype.hasobject:
                raise ValueError("object arrays cannot be mapped")
            if any(s == 0 for s in shape):
                out[key] = np.empty(shape, dtype=dtype)
                continue
            out[key] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=fh.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    return out


def _load_sidecar(path: Path) -> Dict[str, np.ndarray]:
    try:
        return _load_npz_mmap(path)
    except FileNotFoundError:
        raise
    except Exception:
        # Unexpected layout (future numpy, exotic dtype): plain read.
        with np.load(path, allow_pickle=False) as z:
            return {k: z[k] for k in z.files}


class ResultCache:
    """Content-addressed store of summaries / full results, keyed by digest."""

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        enabled: Optional[bool] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.enabled = cache_enabled_by_env() if enabled is None else bool(enabled)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    @classmethod
    def resolve(cls, cache) -> "ResultCache":
        """Coerce a user-facing ``cache=`` argument into a ResultCache.

        ``None`` → env-controlled default; ``True``/``False`` → forced
        on/off at the default root; a path → enabled at that root; a
        ResultCache passes through.
        """
        if isinstance(cache, cls):
            return cache
        if cache is None:
            return cls()
        if isinstance(cache, bool):
            return cls(enabled=cache and cache_enabled_by_env())
        return cls(root=cache)

    # -- paths ---------------------------------------------------------------
    def _path(self, digest: str, full: bool) -> Path:
        ext = "pkl" if full else "json"
        return self.root / digest[:2] / f"{digest}.{ext}"

    @staticmethod
    def _sidecar(path: Path) -> Path:
        return path.with_suffix(".npz")

    # -- lookup --------------------------------------------------------------
    def get(self, spec: RunSpec):
        """The cached payload for ``spec``, or ``None`` on a miss."""
        if not self.enabled:
            return None
        digest = spec.digest()
        if digest is None:
            return None
        path = self._path(digest, spec.full)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            if spec.full:
                with path.open("rb") as fh:
                    payload = pickle.load(fh)
                if not isinstance(payload, SimulationResult):
                    raise ValueError("unexpected payload type")
            else:
                d = json.loads(path.read_text())
                manifest = d.pop("__arrays__", None)
                payload = ResultSummary.from_json(d)
                if manifest:
                    arrays = _load_sidecar(self._sidecar(path))
                    for name in manifest:
                        setattr(payload, name, arrays[name])
        except Exception:
            # Corrupt/truncated/stale-format entry (or an entry whose
            # array sidecar went missing): drop it whole, treat as miss.
            for victim in (path, self._sidecar(path)):
                try:
                    victim.unlink()
                except OSError:
                    pass
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    # -- store ---------------------------------------------------------------
    def put(self, spec: RunSpec, payload) -> bool:
        """Store a run's payload; returns whether anything was written."""
        if not self.enabled:
            return False
        digest = spec.digest()
        if digest is None:
            return False
        path = self._path(digest, spec.full)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            if spec.full:
                self._write_atomic(
                    path,
                    lambda fh: pickle.dump(
                        payload, fh, protocol=pickle.HIGHEST_PROTOCOL
                    ),
                )
            else:
                arrays = {
                    name: np.asarray(getattr(payload, name))
                    for name in ResultSummary._ARRAYS
                    if getattr(payload, name) is not None
                }
                d = {
                    f.name: getattr(payload, f.name)
                    for f in dataclasses.fields(payload)
                    if f.name not in ResultSummary._ARRAYS
                }
                for name in ResultSummary._ARRAYS:
                    d[name] = None
                if arrays:
                    d["__arrays__"] = sorted(arrays)
                    # Sidecar lands (and is durable) before the json that
                    # references it: a crash in between leaves an orphan
                    # sidecar, never a dangling manifest.
                    self._write_atomic(
                        self._sidecar(path), lambda fh: np.savez(fh, **arrays)
                    )
                blob = json.dumps(d)
                self._write_atomic(
                    path, lambda fh: fh.write(blob.encode("utf-8"))
                )
            _fsync_dir(path.parent)
        except Exception:
            return False
        return True

    @staticmethod
    def _write_atomic(path: Path, write) -> None:
        """Write via fsynced temp file + atomic rename.

        A pid-suffixed temp name is NOT unique across threads sharing a
        process (in-process pools, nested runners): two writers would
        interleave into the same temp file and publish garbage.  mkstemp
        gives each writer its own file in the destination directory, so
        os.replace stays atomic and same-filesystem; the pre-rename fsync
        guarantees the renamed entry is never a truncated shell.
        """
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "wb") as fh:
                write(fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)  # atomic: readers never see partial files
        except Exception:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "root": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
        }

    def record_metrics(self, metrics) -> None:
        """Publish the hit/miss/corrupt counters into an obs
        :class:`~repro.obs.metrics.MetricsRegistry` (standard names
        ``cache.hits`` / ``cache.misses`` / ``cache.corrupt_dropped``)."""
        metrics.counter("cache.hits").inc(self.hits)
        metrics.counter("cache.misses").inc(self.misses)
        metrics.counter("cache.corrupt_dropped").inc(self.corrupt)
