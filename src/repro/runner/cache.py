"""Content-addressed result cache for the parallel sweep runner.

Layout: ``<root>/<aa>/<digest>.json`` for compact summaries and
``<root>/<aa>/<digest>.pkl`` for full ``SimulationResult`` payloads, where
``aa`` is the first two hex chars of the digest (one level of sharding
keeps directories small on big sweeps).  The digest is computed by
:meth:`repro.runner.spec.RunSpec.digest` over the spec *content* — see
that module for what is and is not part of the key.

Controls:

* ``REPRO_CACHE=0`` (env) or ``ResultCache(enabled=False)`` disables all
  reads and writes;
* ``REPRO_CACHE_DIR`` (env) or ``ResultCache(root=...)`` relocates the
  store (default ``.repro-cache/`` under the current directory);
* a corrupt or truncated cache file is treated as a miss and removed —
  the cache is an accelerator, never a source of errors.

Cached *full* results replay the pickled ``SimulationResult`` of the run
that produced them: metrics are identical by construction, but the
``flow_id``/``coflow_id`` values inside are those of the original run
(identifiers come from global counters and are deliberately not part of
the cache key).
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.core.simulator import SimulationResult
from repro.runner.spec import ResultSummary, RunSpec

#: Environment switches.
ENV_CACHE = "REPRO_CACHE"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default store location (relative to the working directory).
DEFAULT_DIRNAME = ".repro-cache"


def cache_enabled_by_env() -> bool:
    return os.environ.get(ENV_CACHE, "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def default_cache_root() -> Path:
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_DIRNAME)


class ResultCache:
    """Content-addressed store of summaries / full results, keyed by digest."""

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        enabled: Optional[bool] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.enabled = cache_enabled_by_env() if enabled is None else bool(enabled)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    @classmethod
    def resolve(cls, cache) -> "ResultCache":
        """Coerce a user-facing ``cache=`` argument into a ResultCache.

        ``None`` → env-controlled default; ``True``/``False`` → forced
        on/off at the default root; a path → enabled at that root; a
        ResultCache passes through.
        """
        if isinstance(cache, cls):
            return cache
        if cache is None:
            return cls()
        if isinstance(cache, bool):
            return cls(enabled=cache and cache_enabled_by_env())
        return cls(root=cache)

    # -- paths ---------------------------------------------------------------
    def _path(self, digest: str, full: bool) -> Path:
        ext = "pkl" if full else "json"
        return self.root / digest[:2] / f"{digest}.{ext}"

    # -- lookup --------------------------------------------------------------
    def get(self, spec: RunSpec):
        """The cached payload for ``spec``, or ``None`` on a miss."""
        if not self.enabled:
            return None
        digest = spec.digest()
        if digest is None:
            return None
        path = self._path(digest, spec.full)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            if spec.full:
                with path.open("rb") as fh:
                    payload = pickle.load(fh)
                if not isinstance(payload, SimulationResult):
                    raise ValueError("unexpected payload type")
            else:
                payload = ResultSummary.from_json(
                    json.loads(path.read_text())
                )
        except Exception:
            # Corrupt/truncated/stale-format entry: drop it, treat as miss.
            try:
                path.unlink()
            except OSError:
                pass
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    # -- store ---------------------------------------------------------------
    def put(self, spec: RunSpec, payload) -> bool:
        """Store a run's payload; returns whether anything was written."""
        if not self.enabled:
            return False
        digest = spec.digest()
        if digest is None:
            return False
        path = self._path(digest, spec.full)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A pid-suffixed temp name is NOT unique across threads sharing a
        # process (in-process pools, nested runners): two writers would
        # interleave into the same temp file and publish garbage.  mkstemp
        # gives each writer its own file in the destination directory, so
        # os.replace stays atomic and same-filesystem.
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        tmp = Path(tmp_name)
        try:
            if spec.full:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            else:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(json.dumps(payload.to_json()))
            os.replace(tmp, path)  # atomic: readers never see partial files
        except Exception:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        return True

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "root": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
        }

    def record_metrics(self, metrics) -> None:
        """Publish the hit/miss/corrupt counters into an obs
        :class:`~repro.obs.metrics.MetricsRegistry` (standard names
        ``cache.hits`` / ``cache.misses`` / ``cache.corrupt_dropped``)."""
        metrics.counter("cache.hits").inc(self.hits)
        metrics.counter("cache.misses").inc(self.misses)
        metrics.counter("cache.corrupt_dropped").inc(self.corrupt)
