"""Parallel experiment execution with a content-addressed result cache.

The evaluation surface of the paper is a grid of (policy × workload ×
setup) simulation runs; this subsystem makes that grid cheap twice over:

* **fan-out** — :func:`run_specs` executes a grid of picklable
  :class:`RunSpec` cells over a ``ProcessPoolExecutor``, bit-identically
  to the sequential loop it replaces;
* **memoisation** — a content-addressed cache under ``.repro-cache/``
  (:class:`ResultCache`) returns unchanged cells near-instantly on
  re-runs; disable with ``REPRO_CACHE=0`` or ``cache=False``.

Most callers never touch this package directly: ``run_many``/``run_seeds``
in :mod:`repro.analysis` grow a ``parallel=`` argument (defaulting to the
``REPRO_PARALLEL`` env var) that routes through it, and ``python -m repro
sweep`` drives full grids from the command line.
"""

from repro.runner.cache import ResultCache, cache_enabled_by_env, default_cache_root
from repro.runner.pool import (
    RunOutcome,
    execute_spec,
    resolve_workers,
    run_specs,
    usable_cores,
)
from repro.runner.spec import (
    CACHE_SCHEMA,
    SUMMARY_METRICS,
    ResultSummary,
    RunSpec,
    ServeSpec,
    WorkloadSpec,
)
from repro.runner.telemetry import RunTelemetry, TelemetrySnapshot

__all__ = [
    "RunSpec", "ServeSpec", "WorkloadSpec", "ResultSummary", "RunOutcome",
    "run_specs", "execute_spec", "resolve_workers", "usable_cores",
    "ResultCache", "cache_enabled_by_env", "default_cache_root",
    "CACHE_SCHEMA", "SUMMARY_METRICS",
    "RunTelemetry", "TelemetrySnapshot",
]
