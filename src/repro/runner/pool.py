"""Process-pool fan-out of :class:`~repro.runner.spec.RunSpec` grids.

Execution model
---------------
:func:`run_specs` is the single entry point.  For every spec it first
consults the :class:`~repro.runner.cache.ResultCache` (in the parent —
lookups are cheap, and keeping the cache single-writer makes it race-free);
the remaining cold cells are executed either inline (``workers=0``, the
sequential path) or on a ``ProcessPoolExecutor``.  Workers rebuild the
workload from the spec (inline coflows unpickle; generated/callable specs
re-run their seeded generator, so large traces never cross the pipe),
construct a **fresh** scheduler, run the simulation, and send back a
compact :class:`~repro.runner.spec.ResultSummary` — or the full
:class:`~repro.core.simulator.SimulationResult` when the spec asks for it.

Array-bearing summaries (``arrays=True``, not ``full``) do not pickle
their per-flow/per-coflow columns through the result pipe: workers export
them to a ``multiprocessing.shared_memory`` segment and ship a
header-only descriptor instead (see :mod:`repro.runner.shm`); the parent
reattaches the columns before caching.  Transport never changes values —
the pooled results stay bit-identical to sequential at any worker count.

Determinism: the engine is deterministic given a workload, workloads are
regenerated from per-spec seeds with ``np.random.default_rng``, and
worker processes run the same interpreter + numpy as the parent, so
pooled results are **bit-identical** to the sequential path at any worker
count (asserted by ``tests/test_runner_equivalence.py``).

``REPRO_PARALLEL`` (env) supplies the default worker count for the
``parallel=None`` paths in :func:`repro.analysis.harness.run_many` /
:func:`repro.analysis.seeds.run_seeds`; ``auto`` means one worker per
usable core.  Inside a pool worker the variable is forced to ``0`` so
nested calls never spawn pools-within-pools.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.spec import ResultSummary, RunSpec
from repro.runner.telemetry import TelemetrySnapshot, _Stopwatch

ENV_PARALLEL = "REPRO_PARALLEL"
_ENV_IN_WORKER = "REPRO_IN_WORKER"


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def resolve_workers(parallel: Union[None, int, str] = None) -> int:
    """Worker count for a ``parallel=`` argument.

    ``None`` defers to ``REPRO_PARALLEL`` (unset/empty → 0, i.e. the
    plain sequential path); ``"auto"`` → one worker per usable core;
    otherwise the integer itself (0 → sequential).  Always 0 inside a
    pool worker.
    """
    if os.environ.get(_ENV_IN_WORKER):
        return 0
    if parallel is None:
        parallel = os.environ.get(ENV_PARALLEL, "").strip() or 0
    if isinstance(parallel, str):
        if parallel.strip().lower() == "auto":
            return usable_cores()
        try:
            parallel = int(parallel)
        except ValueError:
            raise ConfigurationError(
                f"cannot parse worker count {parallel!r} "
                f"(expected an integer or 'auto')"
            ) from None
    return max(0, int(parallel))


@dataclass
class RunOutcome:
    """One executed (or cache-served) spec."""

    key: str
    summary: Optional[ResultSummary] = None
    #: populated for ``full=True`` specs (a SimulationResult).
    result: Optional[object] = None
    cached: bool = False
    wall_s: float = 0.0
    #: populated for ``telemetry=True`` specs that actually executed
    #: (cache-served cells ran nothing, so they carry no snapshot).
    telemetry: Optional[object] = None
    #: shared-memory descriptor for the summary's array columns, set by
    #: the pooled wrapper in the worker and consumed (attached + cleared)
    #: by the parent's collection loop — never survives run_specs.
    shm: Optional[object] = None
    #: collection-path evidence left behind by ``_reattach``: whether this
    #: cell's arrays came home over shared memory, and how many segment
    #: bytes that moved off the pickle pipe.
    shm_collected: bool = False
    shm_bytes: int = 0

    @property
    def payload(self):
        return self.result if self.result is not None else self.summary


def _mark_worker() -> None:
    """Pool initializer: forbid nested pools inside workers."""
    os.environ[_ENV_IN_WORKER] = "1"


def execute_spec(spec: RunSpec) -> RunOutcome:
    """Run one spec to completion in the current process."""
    from repro.analysis.harness import run_policy

    coflows = spec.workload.build()
    scheduler = spec.build_scheduler()
    obs = None
    if spec.telemetry:
        from repro.obs import Observability

        # Metrics only: no per-record tracer (it would force the engine's
        # eager per-flow path), no recorder (nothing consumes the trace).
        obs = Observability(trace=False, metrics=True)
    with _Stopwatch() as clock:
        result = run_policy(scheduler, coflows, spec.setup, obs=obs)
    key = spec.key or scheduler.name
    snapshot = None
    if spec.telemetry:
        from repro.core import kernels

        # Record the *resolved* backend, not the request: "auto" pins
        # down, and a compiled request without numba reports the
        # threaded fallback it actually ran on.
        snapshot = TelemetrySnapshot.capture(
            key, scheduler.name, obs, clock.wall_s, clock.cpu_s,
            kernel=kernels.resolved_name(getattr(scheduler, "kernel", None)),
        )
    if spec.full:
        return RunOutcome(
            key=key, result=result, wall_s=clock.wall_s, telemetry=snapshot
        )
    summary = ResultSummary.from_result(
        scheduler.name, result, arrays=spec.arrays
    )
    return RunOutcome(
        key=key, summary=summary, wall_s=clock.wall_s, telemetry=snapshot
    )


def _execute_spec_pooled(spec: RunSpec) -> RunOutcome:
    """Worker-side wrapper: run the spec, move array columns to shm.

    Only array-bearing summaries are rewritten — full results and plain
    summaries pickle as before.  If the export itself fails the segment
    is already unlinked (``export_arrays`` guarantees it) and the
    summary ships whole over the pipe, so the fallback is silent and
    value-identical.
    """
    out = execute_spec(spec)
    if spec.arrays and not spec.full and out.summary is not None:
        from repro.runner import shm as shm_mod

        summary = out.summary
        arrays = {
            name: getattr(summary, name)
            for name in summary._ARRAYS
            if getattr(summary, name) is not None
        }
        if arrays:
            try:
                block = shm_mod.export_arrays(arrays)
            except OSError:
                block = None  # no usable /dev/shm: pickle the arrays
            if block is not None:
                for name in arrays:
                    setattr(summary, name, None)
                out.shm = block
    return out


def _reattach(out: RunOutcome) -> RunOutcome:
    """Parent-side: restore array columns from the outcome's shm block."""
    if out.shm is not None:
        from repro.runner import shm as shm_mod

        block, out.shm = out.shm, None
        try:
            arrays = shm_mod.attach_arrays(block)
        except BaseException:
            shm_mod.discard(block)
            raise
        for name, arr in arrays.items():
            setattr(out.summary, name, arr)
        out.shm_collected = True
        out.shm_bytes = block.size
    return out


def run_specs(
    specs: Sequence[RunSpec],
    workers: Union[None, int, str] = None,
    cache=None,
) -> List[RunOutcome]:
    """Execute a grid of specs; results come back in spec order.

    Parameters
    ----------
    specs:
        The grid cells.
    workers:
        Pool size (see :func:`resolve_workers`); 0 runs inline,
        sequentially, in this process — the reference path the pool must
        reproduce bit-identically.
    cache:
        ``None`` (env-controlled default), ``True``/``False``, a cache
        directory, or a :class:`ResultCache`.
    """
    specs = list(specs)
    n_workers = resolve_workers(workers)
    store = ResultCache.resolve(cache)

    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    cold: List[int] = []
    for i, spec in enumerate(specs):
        payload = store.get(spec)
        if payload is None:
            cold.append(i)
        elif spec.full:
            outcomes[i] = RunOutcome(
                key=spec.key or str(spec.policy),
                result=payload, cached=True,
            )
        else:
            outcomes[i] = RunOutcome(
                key=spec.key or payload.policy, summary=payload, cached=True,
            )

    if n_workers <= 0 or len(cold) <= 1:
        for i in cold:
            out = execute_spec(specs[i])
            store.put(specs[i], out.payload)
            outcomes[i] = out
        return outcomes  # type: ignore[return-value]

    # Bounded-queue submission: at most ~2 pending tasks per worker, so a
    # multi-thousand-cell sweep never materialises all spec pickles at once.
    with ProcessPoolExecutor(
        max_workers=n_workers, initializer=_mark_worker
    ) as pool:
        pending = {}
        queue = iter(cold)
        exhausted = False
        try:
            while pending or not exhausted:
                while not exhausted and len(pending) < 2 * n_workers:
                    i = next(queue, None)
                    if i is None:
                        exhausted = True
                        break
                    pending[pool.submit(_execute_spec_pooled, specs[i])] = i
                if not pending:
                    break
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    i = pending.pop(fut)
                    out = _reattach(fut.result())  # re-raises worker exceptions
                    store.put(specs[i], out.payload)
                    outcomes[i] = out
        except BaseException:
            # A failing cell must not strand segments exported by cells
            # that already finished: drain whatever completed and discard
            # their unconsumed blocks before propagating.
            from repro.runner import shm as shm_mod

            done, _ = wait(pending)
            for fut in done:
                try:
                    leftover = fut.result()
                except BaseException:
                    continue
                if leftover.shm is not None:
                    shm_mod.discard(leftover.shm)
            raise
    return outcomes  # type: ignore[return-value]
