"""Zero-copy result collection over POSIX shared memory.

The pool's result path used to pickle whole :class:`ResultSummary`
objects — including the per-flow/per-coflow arrays requested with
``RunSpec(arrays=True)`` — through the executor's result pipe.  For
array-bearing summaries that pickle dominates collection cost: every
byte is serialized in the worker, squeezed through a pipe, and
deserialized in the parent.

This module moves the array payload out of band.  The worker packs the
summary's array columns into one :class:`multiprocessing.shared_memory`
segment and sends only a header-sized :class:`ShmBlock` *descriptor*
(segment name + per-column dtype/shape/offset) over the pipe; the parent
attaches the segment, copies the columns back onto the summary, and
unlinks it.  "Zero-copy" refers to the pipe — nothing is serialized —
with exactly one deliberate memcpy at attach time so the parent never
holds references into a segment it is about to unlink (leak-robustness
beats saving the last copy; the pickle round trip was the 10x cost).

Ownership protocol (the part that keeps ``/dev/shm`` clean):

* the worker creates the segment under an explicit ``repro-shm-*`` name,
  copies the columns in, closes its mapping, and *unregisters* the
  segment from its own ``resource_tracker`` — ownership transfers to the
  parent with the descriptor;
* the parent attaches by name, copies, closes, and unlinks — normally
  right in the collection loop (``unlink`` also clears the registration
  CPython adds on attach);
* a worker that dies *before* export never created a segment; a worker
  that dies *after* export has already transferred ownership, and the
  parent-side attach failure path still unlinks.  Either way no segment
  outlives the pool.

The process decision kernel (:mod:`repro.core.kernels.process`) reuses
the same descriptors in the opposite direction — the *parent* exports
shard inputs and keeps ownership for the round trip while workers attach
with ``consume=False`` (copy out, close, unregister, never unlink); the
parent :func:`discard`\\ s the input segments once the shard results are
home.  That non-consuming read is the "pool-lifetime attach mode".

``REPRO_SHM=0`` disables the transport (summaries pickle whole, exactly
the pre-shm behaviour) — an escape hatch for platforms with a broken or
missing ``/dev/shm``.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Environment variable: set to ``0``/``false``/``off`` to disable the
#: shared-memory result transport.
ENV_SHM = "REPRO_SHM"

#: Name prefix for every segment this module creates; tests sweep
#: ``/dev/shm`` for leftovers matching it.
SHM_PREFIX = "repro-shm-"

#: Column offsets are aligned to this many bytes inside a segment.
_ALIGN = 64

#: Parent-side attach counter (monotone, per process) — bench evidence
#: that collection actually went through shared memory.
ATTACHED = 0


def shm_enabled() -> bool:
    """Whether the shared-memory transport is enabled for this process."""
    val = os.environ.get(ENV_SHM, "").strip().lower()
    if val in ("0", "false", "off", "no"):
        return False
    try:  # pragma: no cover - import always succeeds on CPython >= 3.8
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover
        return False
    return True


@dataclass(frozen=True)
class ShmColumn:
    """Location of one array inside a shared segment."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ShmBlock:
    """Header-only descriptor of one exported segment.

    This is the only thing that crosses the executor's result pipe for
    the array payload; it pickles to a few hundred bytes regardless of
    how many million elements the columns hold.
    """

    name: str
    size: int
    columns: List[ShmColumn] = field(default_factory=list)


def _layout(arrays: Dict[str, np.ndarray]) -> Tuple[List[ShmColumn], int]:
    cols: List[ShmColumn] = []
    offset = 0
    for key, arr in arrays.items():
        offset = -(-offset // _ALIGN) * _ALIGN
        cols.append(
            ShmColumn(
                key=key,
                dtype=arr.dtype.str,
                shape=tuple(arr.shape),
                offset=offset,
            )
        )
        offset += arr.nbytes
    return cols, max(offset, 1)


def export_arrays(arrays: Dict[str, np.ndarray]) -> Optional[ShmBlock]:
    """Copy ``arrays`` into a fresh shared segment (worker side).

    Returns the descriptor, or ``None`` when there is nothing to export
    or the transport is disabled.  On any failure the segment is
    unlinked before re-raising, so a crashing export never leaks.
    """
    arrays = {
        k: np.ascontiguousarray(v) for k, v in arrays.items() if v is not None
    }
    if not arrays or not shm_enabled():
        return None
    from multiprocessing import shared_memory

    cols, size = _layout(arrays)
    name = f"{SHM_PREFIX}{os.getpid()}-{secrets.token_hex(8)}"
    seg = shared_memory.SharedMemory(name=name, create=True, size=size)
    try:
        for col in cols:
            arr = arrays[col.key]
            dst = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=col.offset
            )
            dst[...] = arr
            del dst  # release the exported buffer before seg.close()
    except BaseException:
        seg.close()
        seg.unlink()
        raise
    seg.close()
    _disown(seg)
    return ShmBlock(name=name, size=size, columns=cols)


def attach_arrays(block: ShmBlock, consume: bool = True) -> Dict[str, np.ndarray]:
    """Copy columns out of ``block``'s segment; destroy it iff ``consume``.

    The copy is deliberate: returned arrays own their memory, so the
    segment can be unlinked immediately and nothing downstream can pin
    ``/dev/shm`` pages alive.

    ``consume=False`` is the **pool-lifetime attach mode** used by the
    process decision kernel: a reader (typically a pool worker) copies
    the columns out of a segment it does *not* own and leaves the
    segment alive for its owner — the parent that exported it — to
    :func:`discard` after the round trip.  The reader's attach-time
    resource-tracker registration is dropped (same handoff rule as
    :func:`_disown`), otherwise a worker exiting would unlink a segment
    the parent still owns and the tracker would log a spurious leak.
    """
    global ATTACHED
    from multiprocessing import shared_memory

    # Attaching registers the segment with this process's resource
    # tracker on CPython <= 3.12; ``unlink()`` below unregisters it, so
    # no extra bookkeeping is needed here (an explicit unregister would
    # make unlink's one a double — the tracker logs a KeyError per
    # segment for those).  The non-consuming path never unlinks, so it
    # must unregister explicitly instead.
    seg = shared_memory.SharedMemory(name=block.name, create=False)
    try:
        out: Dict[str, np.ndarray] = {}
        for col in block.columns:
            src = np.ndarray(
                col.shape,
                dtype=np.dtype(col.dtype),
                buffer=seg.buf,
                offset=col.offset,
            )
            out[col.key] = src.copy()
            del src
    finally:
        seg.close()
        if consume:
            seg.unlink()
        else:
            _disown(seg)
    ATTACHED += 1
    return out


def discard(block: ShmBlock) -> None:
    """Unlink a block without reading it (error-path cleanup)."""
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=block.name, create=False)
    except FileNotFoundError:
        return
    seg.close()
    seg.unlink()  # unlink unregisters the attach-time registration


def _disown(seg) -> None:
    """Drop ``seg`` from this process's resource tracker (worker side).

    The creating worker hands the segment to the parent by descriptor;
    without this, the worker's resource tracker would unlink it at
    worker exit (racing the parent's read) and warn about a "leak" that
    is actually a handoff.  Only the exporting worker calls this: on the
    parent side ``unlink()`` already unregisters the attach-time
    registration, and unregistering twice makes the tracker process log
    a KeyError per segment.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
