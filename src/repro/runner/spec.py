"""Picklable experiment specifications and compact result summaries.

The parallel runner fans work out over a process pool, so everything that
crosses the process boundary is described here:

* :class:`WorkloadSpec` — how a worker obtains its workload.  Small traces
  travel *inline* (the coflows are pickled into the spec); seeded traces
  travel as a *generation recipe* (a :class:`~repro.traces.generator.
  WorkloadConfig` plus a seed, or a picklable ``factory(seed)`` callable)
  and are regenerated inside the worker, so large workloads never transit
  the pipe.
* :class:`RunSpec` — one experiment cell: a policy (registry name + params,
  or a live :class:`~repro.core.scheduler.Scheduler`), a workload spec and
  an :class:`~repro.analysis.harness.ExperimentSetup`.
* :class:`ResultSummary` — the compact record a worker sends back instead
  of pickling a whole :class:`~repro.core.simulator.SimulationResult`
  (set ``RunSpec.full=True`` when a consumer needs per-flow results).

Cache keys
----------
:meth:`RunSpec.digest` derives the content-addressed cache key: a SHA-256
over a canonical JSON rendering of (schema, package version, numpy
version, policy name + params, workload content, setup).  Identifier
fields that cannot affect metrics (``flow_id`` / ``coflow_id``, which come
from global counters) are excluded, so the same *content* generated twice
in one process hits the same cache cell.  Specs that embed arbitrary live
objects (a scheduler instance, a setup with a ``background`` callable, a
factory callable without an explicit ``tag``) are *uncacheable* —
``digest()`` returns ``None`` and the runner simply executes them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

import repro
from repro.analysis.harness import ExperimentSetup
from repro.core.coflow import Coflow
from repro.core.scheduler import Scheduler
from repro.core.simulator import SimulationResult
from repro.errors import ConfigurationError
from repro.traces.generator import (
    WorkloadConfig,
    generate_flow_workload,
    generate_workload,
)

#: Version tag folded into every cache digest; bump on any change that can
#: alter simulation results for an unchanged spec.
CACHE_SCHEMA = "repro-runner-v1"


class _Uncacheable(Exception):
    """Internal: the spec contains an object with no canonical rendering."""


def _canon(obj):
    """Canonical JSON-able rendering of a spec fragment (or raise)."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return [_canon(x) for x in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__type__": type(obj).__name__,
            **{
                f.name: _canon(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, (list, tuple)):
        return [_canon(x) for x in obj]
    if isinstance(obj, Mapping):
        return {str(k): _canon(obj[k]) for k in sorted(obj, key=str)}
    raise _Uncacheable(f"no canonical form for {type(obj).__name__}")


def _coflow_token(c: Coflow) -> Dict:
    """Content of one coflow, minus the global-counter identifiers."""
    return {
        "arrival": c.arrival,
        "label": c.label,
        "deadline": c.deadline,
        "flows": [
            (f.src, f.dst, f.size, bool(f.compressible), f.ratio_override)
            for f in c.flows
        ],
    }


@dataclass(frozen=True)
class WorkloadSpec:
    """Picklable description of how a worker obtains its workload.

    Exactly one of three shapes (use the classmethod constructors):

    * ``inline`` — the coflows themselves ride in the spec;
    * ``generated`` — a :class:`WorkloadConfig` + seed, rebuilt in-worker
      via :func:`generate_workload` / :func:`generate_flow_workload`;
    * ``callable`` — an arbitrary picklable ``factory(seed)``; cacheable
      only when an explicit content ``tag`` is supplied, since the runner
      cannot see inside the callable.
    """

    kind: str = "generated"  # "inline" | "generated" | "callable"
    seed: Optional[int] = None
    config: Optional[WorkloadConfig] = None
    flow_level: bool = False
    coflows: Optional[Tuple[Coflow, ...]] = None
    factory: Optional[Callable[[int], Sequence[Coflow]]] = None
    tag: Optional[str] = None

    @classmethod
    def inline(cls, coflows: Sequence[Coflow]) -> "WorkloadSpec":
        return cls(kind="inline", coflows=tuple(coflows))

    @classmethod
    def generated(
        cls, config: WorkloadConfig, seed: int, flow_level: bool = False
    ) -> "WorkloadSpec":
        return cls(
            kind="generated", config=config, seed=int(seed),
            flow_level=flow_level,
        )

    @classmethod
    def from_callable(
        cls,
        factory: Callable[[int], Sequence[Coflow]],
        seed: int,
        tag: Optional[str] = None,
    ) -> "WorkloadSpec":
        return cls(kind="callable", factory=factory, seed=int(seed), tag=tag)

    def build(self) -> List[Coflow]:
        """Materialise the workload (in the worker process)."""
        if self.kind == "inline":
            return list(self.coflows)
        if self.kind == "generated":
            gen = generate_flow_workload if self.flow_level else generate_workload
            return list(gen(self.config, np.random.default_rng(self.seed)))
        if self.kind == "callable":
            return list(self.factory(self.seed))
        raise ConfigurationError(f"unknown workload kind {self.kind!r}")

    def token(self):
        """Canonical cache-key fragment (raises ``_Uncacheable``)."""
        if self.kind == "inline":
            return {
                "kind": "inline",
                "coflows": [_coflow_token(c) for c in self.coflows],
            }
        if self.kind == "generated":
            return {
                "kind": "generated",
                "seed": self.seed,
                "flow_level": self.flow_level,
                "config": _canon(self.config),
            }
        # A callable is opaque: cacheable only with a caller-supplied tag.
        if self.tag is None:
            raise _Uncacheable("callable workload factory without a tag")
        return {"kind": "callable", "tag": self.tag, "seed": self.seed}


def _setup_token(setup: ExperimentSetup):
    if setup.background is not None:
        raise _Uncacheable("setup.background callables are not digestable")
    d = dataclasses.asdict(setup)
    d.pop("background")
    return _canon(d)


@dataclass(frozen=True)
class RunSpec:
    """One experiment cell of a sweep grid.

    ``policy`` is normally a registry name (see :func:`repro.schedulers.
    make_scheduler`) with optional constructor ``params``; a live
    :class:`Scheduler` instance also works (it is pickled to the worker
    and :meth:`~repro.core.scheduler.Scheduler.fresh`-ed there) but makes
    the spec uncacheable.
    """

    policy: Union[str, Scheduler]
    workload: WorkloadSpec
    setup: ExperimentSetup = field(default_factory=ExperimentSetup)
    params: Optional[Mapping] = None
    key: Optional[str] = None
    #: return the entire SimulationResult instead of a ResultSummary.
    full: bool = False
    #: include per-flow/per-coflow arrays in the summary.
    arrays: bool = False
    #: run with a metrics registry attached and ship a TelemetrySnapshot
    #: back on the RunOutcome.  Deliberately *not* part of the cache
    #: digest: telemetry observes the run, it cannot change its results.
    telemetry: bool = False
    #: decision-kernel backend for this cell (``repro.core.kernels``;
    #: ``None`` defers to ``$REPRO_KERNEL``).  Like ``telemetry``,
    #: deliberately *not* part of the cache digest: backends are
    #: bit-identical, so the same digest must hit whichever backend
    #: produced the cached entry.
    kernel: Optional[str] = None

    def build_scheduler(self) -> Scheduler:
        from repro.schedulers import make_scheduler

        if isinstance(self.policy, str):
            return make_scheduler(
                self.policy, kernel=self.kernel, **dict(self.params or {})
            )
        sched = self.policy.fresh()
        if self.kernel is not None:
            sched.kernel = self.kernel
        return sched

    def digest(self) -> Optional[str]:
        """Content-addressed cache key, or ``None`` when uncacheable."""
        try:
            token = {
                "schema": CACHE_SCHEMA,
                "version": repro.__version__,
                "numpy": np.__version__,
                "policy": self._policy_token(),
                "params": _canon(dict(self.params)) if self.params else None,
                "workload": self.workload.token(),
                "setup": _setup_token(self.setup),
                "full": self.full,
                "arrays": self.arrays,
            }
        except _Uncacheable:
            return None
        blob = json.dumps(token, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _policy_token(self):
        if isinstance(self.policy, str):
            return self.policy.lower()
        raise _Uncacheable("live Scheduler instances are not digestable")


@dataclass
class ServeSpec:
    """One streamed (serve-mode) run: a policy against an arrival source.

    The streaming analogue of :class:`RunSpec`, executed by
    :func:`repro.service.run_serve_spec`.  ``source`` is normally a
    :class:`repro.service.SourceSpec` (declarative, cacheable); a live
    :class:`~repro.service.ArrivalSource` also works but makes the spec
    uncacheable, like a live scheduler does.

    Unlike telemetry, the service shape knobs (``tick``,
    ``max_in_flight``, ``drain_every``, ``max_flows``) ARE part of the
    digest: tick horizons add decision points and backpressure restamps
    arrivals, so they all change results.
    """

    policy: Union[str, Scheduler]
    source: object
    setup: ExperimentSetup = field(default_factory=ExperimentSetup)
    params: Optional[Mapping] = None
    tick: float = 1.0
    max_in_flight: int = 10_000
    drain_every: int = 1
    max_flows: Optional[int] = None
    key: Optional[str] = None
    #: serve-mode caches summaries only; kept for ResultCache path compat.
    full: bool = False
    telemetry: bool = False

    def build_scheduler(self) -> Scheduler:
        from repro.schedulers import make_scheduler

        if isinstance(self.policy, str):
            return make_scheduler(self.policy, **dict(self.params or {}))
        return self.policy.fresh()

    def build_driver(self, obs=None, **extra):
        """Fresh :class:`~repro.service.StreamDriver` for this spec.

        ``extra`` passes through output plumbing (``spill_dir``,
        ``keep_shards``, checkpoint settings) that is not part of the
        spec's identity.
        """
        from repro.service import StreamDriver

        sim = self.setup.build_simulator(self.build_scheduler(), obs=obs)
        if hasattr(self.source, "build"):
            source, source_spec = self.source.build(), self.source
        else:
            source, source_spec = self.source, None
        return StreamDriver(
            sim,
            source,
            tick=self.tick,
            max_in_flight=self.max_in_flight,
            drain_every=self.drain_every,
            setup=self.setup,
            source_spec=source_spec,
            policy=self.policy if isinstance(self.policy, str) else self.policy.name,
            **extra,
        )

    def digest(self) -> Optional[str]:
        """Content-addressed cache key, or ``None`` when uncacheable."""
        if self.full:
            return None  # no single picklable result exists for a stream
        try:
            token = {
                "schema": CACHE_SCHEMA,
                "version": repro.__version__,
                "numpy": np.__version__,
                "mode": "serve",
                "policy": self._policy_token(),
                "params": _canon(dict(self.params)) if self.params else None,
                "source": _canon(self.source),
                "setup": _setup_token(self.setup),
                "tick": self.tick,
                "max_in_flight": self.max_in_flight,
                "drain_every": self.drain_every,
                "max_flows": self.max_flows,
            }
        except _Uncacheable:
            return None
        blob = json.dumps(token, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _policy_token(self):
        if isinstance(self.policy, str):
            return self.policy.lower()
        raise _Uncacheable("live Scheduler instances are not digestable")


#: Scalar metrics available on a ResultSummary (run_seeds uses this to
#: decide whether the compact summary carries the requested metric).
SUMMARY_METRICS = (
    "avg_fct", "avg_cct", "makespan", "decision_points",
    "traffic_reduction", "total_bytes_sent", "total_bytes_original",
)


@dataclass
class ResultSummary:
    """Compact per-run record returned by pool workers.

    Scalar fields mirror the :class:`SimulationResult` properties the
    sweep-shaped benches consume; the optional arrays (requested with
    ``RunSpec(arrays=True)``) carry enough per-flow/per-coflow columns for
    percentile/CDF/size-bin analyses without shipping FlowResult objects.
    """

    policy: str
    avg_fct: float
    avg_cct: float
    makespan: float
    decision_points: int
    traffic_reduction: float
    num_flows: int
    num_coflows: int
    total_bytes_sent: float
    total_bytes_original: float
    fct: Optional[np.ndarray] = None
    flow_size: Optional[np.ndarray] = None
    cct: Optional[np.ndarray] = None
    coflow_finish: Optional[np.ndarray] = None

    _ARRAYS = ("fct", "flow_size", "cct", "coflow_finish")

    @classmethod
    def from_result(
        cls, policy: str, result: SimulationResult, arrays: bool = False
    ) -> "ResultSummary":
        # Everything here reads the result's cached columnar arrays —
        # no FlowResult/CoflowResult dataclasses are materialized, so a
        # lazy (ResultStore-backed) result stays lazy through the pool.
        fct = result.fct_array
        cct = result.cct_array
        out = cls(
            policy=policy,
            avg_fct=result.avg_fct,
            avg_cct=result.avg_cct,
            makespan=result.makespan,
            decision_points=result.decision_points,
            traffic_reduction=result.traffic_reduction,
            num_flows=int(fct.size),
            num_coflows=int(cct.size),
            total_bytes_sent=result.total_bytes_sent,
            total_bytes_original=result.total_bytes_original,
        )
        if arrays:
            out.fct = fct
            out.flow_size = result.size_array
            out.cct = cct
            out.coflow_finish = result.finish_array
        return out

    #: Short alias used by bench/analysis code: ``ResultSummary.of(...)``.
    of = from_result

    def to_json(self) -> Dict:
        d = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in self._ARRAYS
        }
        for name in self._ARRAYS:
            arr = getattr(self, name)
            d[name] = None if arr is None else np.asarray(arr).tolist()
        return d

    @classmethod
    def from_json(cls, d: Mapping) -> "ResultSummary":
        kw = dict(d)
        for name in cls._ARRAYS:
            if kw.get(name) is not None:
                kw[name] = np.asarray(kw[name], dtype=np.float64)
        return cls(**kw)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ResultSummary):
            return NotImplemented
        for f in dataclasses.fields(self):
            a, b = getattr(self, f.name), getattr(other, f.name)
            if f.name in self._ARRAYS:
                if (a is None) != (b is None):
                    return False
                if a is not None and not np.array_equal(a, b):
                    return False
            elif a != b:
                return False
        return True
