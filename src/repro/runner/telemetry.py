"""Pool-wide telemetry: per-worker snapshots merged into a run report.

A sweep that fans out over a process pool is observable only if each
worker ships its measurements home.  The unit shipped is a
:class:`TelemetrySnapshot` — one executed spec's metrics registry dump
(typed, mergeable — see :meth:`repro.obs.metrics.MetricsRegistry.dump`),
the worker's pid, wall/CPU time and peak RSS, and an optional flight
recorder summary.  Snapshots are plain dataclasses of JSON-able values,
so they pickle compactly across the result pipe and serialize straight
into ``report.json``.

The parent folds every snapshot (plus the parent-side cache counters —
workers never touch the cache) into a :class:`RunTelemetry`, which is
what ``python -m repro report`` renders: merged metrics, per-policy
aggregates, per-worker load skew, cache effectiveness.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry

__all__ = ["RunTelemetry", "TelemetrySnapshot"]


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB (0 if unknown)."""
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak //= 1024
    return int(peak)


@dataclass
class TelemetrySnapshot:
    """One executed spec's worth of worker-side measurements."""

    key: str
    policy: str
    pid: int
    wall_s: float
    cpu_s: float
    peak_rss_kb: int
    #: the *resolved* decision-kernel backend the run executed under —
    #: what ``auto`` pinned down to, or what a ``compiled`` request
    #: silently fell back to (``None`` on pre-kernel snapshots).
    kernel: Optional[str] = None
    #: typed metrics dump (see ``MetricsRegistry.dump``).
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: ``FlightRecorder.summary()`` when a recorder was attached.
    recorder: Optional[Dict[str, Any]] = None

    @classmethod
    def capture(
        cls,
        key: str,
        policy: str,
        obs: Observability,
        wall_s: float,
        cpu_s: float,
        kernel: Optional[str] = None,
    ) -> "TelemetrySnapshot":
        """Snapshot an observability bundle after a run."""
        return cls(
            key=key,
            policy=policy,
            pid=os.getpid(),
            wall_s=float(wall_s),
            cpu_s=float(cpu_s),
            peak_rss_kb=_peak_rss_kb(),
            kernel=kernel,
            metrics=obs.metrics.dump(),
            recorder=(
                obs.recorder.summary() if obs.recorder.enabled else None
            ),
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "policy": self.policy,
            "pid": self.pid,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_rss_kb": self.peak_rss_kb,
            "kernel": self.kernel,
            "metrics": self.metrics,
            "recorder": self.recorder,
        }


@dataclass
class RunTelemetry:
    """Everything observed about one pooled sweep, merged parent-side."""

    snapshots: List[TelemetrySnapshot] = field(default_factory=list)
    workers: int = 0
    wall_s: float = 0.0
    cells: int = 0
    cached_cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt: int = 0
    #: cells whose array columns came home over shared memory, and the
    #: total segment bytes that never touched the pickle pipe.
    shm_cells: int = 0
    shm_bytes: int = 0

    @classmethod
    def collect(
        cls,
        outcomes,
        workers: int,
        wall_s: float,
        cache=None,
    ) -> "RunTelemetry":
        """Fold a ``run_specs`` outcome list (+ the parent's cache)."""
        tele = cls(workers=int(workers), wall_s=float(wall_s))
        for out in outcomes:
            tele.cells += 1
            if out.cached:
                tele.cached_cells += 1
            if getattr(out, "shm_collected", False):
                tele.shm_cells += 1
                tele.shm_bytes += int(getattr(out, "shm_bytes", 0))
            if out.telemetry is not None:
                tele.snapshots.append(out.telemetry)
        if cache is not None:
            stats = cache.stats()
            tele.cache_hits = stats["hits"]
            tele.cache_misses = stats["misses"]
            tele.cache_corrupt = stats.get("corrupt", 0)
        return tele

    # ---------------------------------------------------------- aggregates
    def merged_metrics(self) -> MetricsRegistry:
        """One registry holding every worker's metrics, merged in spec
        order (counters add, gauges max, histograms combine)."""
        reg = MetricsRegistry(enabled=True)
        for snap in self.snapshots:
            reg.merge(snap.metrics)
        return reg

    def by_policy(self) -> Dict[str, List[TelemetrySnapshot]]:
        out: Dict[str, List[TelemetrySnapshot]] = {}
        for snap in self.snapshots:
            out.setdefault(snap.policy, []).append(snap)
        return out

    def worker_stats(self) -> Dict[int, Dict[str, float]]:
        """Per-worker-process load: cells executed, wall/CPU, peak RSS."""
        out: Dict[int, Dict[str, float]] = {}
        for snap in self.snapshots:
            w = out.setdefault(
                snap.pid,
                {"cells": 0, "wall_s": 0.0, "cpu_s": 0.0, "peak_rss_kb": 0},
            )
            w["cells"] += 1
            w["wall_s"] += snap.wall_s
            w["cpu_s"] += snap.cpu_s
            w["peak_rss_kb"] = max(w["peak_rss_kb"], snap.peak_rss_kb)
        return out

    def skew(self) -> float:
        """Load imbalance: max worker busy-time over the mean (1.0 =
        perfectly balanced; 0.0 when nothing executed)."""
        stats = self.worker_stats()
        if not stats:
            return 0.0
        walls = [w["wall_s"] for w in stats.values()]
        mean = sum(walls) / len(walls)
        return max(walls) / mean if mean > 0 else 0.0


class _Stopwatch:
    """Wall + process-CPU timer for one executed spec."""

    __slots__ = ("wall0", "cpu0", "wall_s", "cpu_s")

    def __enter__(self) -> "_Stopwatch":
        self.wall0 = time.perf_counter()
        self.cpu0 = time.process_time()
        return self

    def __exit__(self, *exc) -> None:
        self.wall_s = time.perf_counter() - self.wall0
        self.cpu_s = time.process_time() - self.cpu0
