"""Shared machinery for the baseline scheduling policies.

Most baselines are "order the work, then fill greedily": flow-level
policies order individual flows, coflow-level policies order coflows and
serve all flows of a higher-priority coflow before any flow of a lower one.
The two base classes here factor that out so each concrete policy is just a
key function.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core import rate_allocation as ra
from repro.core.scheduler import Allocation, CoflowState, Scheduler, SchedulerView
from repro.errors import ConfigurationError


class OrderedFlowScheduler(Scheduler):
    """Greedy priority filling over a per-flow ordering.

    Subclasses implement :meth:`flow_keys` returning one or more key arrays
    (least-significant last, as for :func:`numpy.lexsort` reversed); flows
    are served in ascending key order, each taking all the port capacity it
    can.
    """

    def flow_keys(self, view: SchedulerView) -> List[np.ndarray]:
        raise NotImplementedError

    def schedule(self, view: SchedulerView) -> Allocation:
        n = view.num_flows
        if n == 0:
            return Allocation.idle(0)
        keys = self.flow_keys(view)
        # lexsort sorts by the *last* key primarily.
        order = np.lexsort(tuple(reversed(keys)))
        rem_in, rem_out = view.fresh_capacity()
        rates = ra.greedy_priority(
            order, view.src, view.dst, rem_in, rem_out, extra=view.fresh_extra()
        )
        return Allocation(rates=rates)


class OrderedCoflowScheduler(Scheduler):
    """Strict coflow-priority policies (SEBF, SCF, NCF, LCF, coflow-FIFO).

    Subclasses implement :meth:`coflow_key`; coflows are served in ascending
    key order (ties broken by arrival, then id).  Within a coflow, flows are
    served in index order.  ``rate_policy`` selects between work-conserving
    strict priority ("greedy", the default — matches the paper's Fig. 4
    numbers) and Varys' MADD ("madd").
    """

    def __init__(self, rate_policy: str = "greedy"):
        if rate_policy not in ("greedy", "madd"):
            raise ConfigurationError(f"unknown rate_policy {rate_policy!r}")
        self.rate_policy = rate_policy

    def coflow_key(self, view: SchedulerView, cs: CoflowState) -> float:
        raise NotImplementedError

    def schedule(self, view: SchedulerView) -> Allocation:
        n = view.num_flows
        if n == 0:
            return Allocation.idle(0)
        ordered = sorted(
            view.coflows,
            key=lambda cs: (
                self.coflow_key(view, cs),
                cs.coflow.arrival,
                cs.coflow_id,
            ),
        )
        rem_in, rem_out = view.fresh_capacity()
        extra = view.fresh_extra()
        if self.rate_policy == "madd":
            groups = [cs.flow_idx for cs in ordered]
            rates = ra.madd(
                groups, view.src, view.dst, view.volume, rem_in, rem_out,
                extra=extra,
            )
        else:
            order = np.concatenate([cs.flow_idx for cs in ordered])
            rates = ra.greedy_priority(
                order, view.src, view.dst, rem_in, rem_out, extra=extra
            )
        return Allocation(rates=rates)
