"""Deadline-aware coflow scheduling (Varys-style extension).

Varys' second objective — which the Swallow paper inherits the machinery
for but does not evaluate — is *guaranteed coflow completion within
deadline*: a coflow is **admitted** only if the minimum rates that finish
it by its deadline fit into the capacity left over by previously admitted
coflows; admitted coflows then receive exactly those rates
(earliest-deadline-first), and leftover bandwidth serves best-effort
traffic.

Deadlines are per-coflow (``Coflow.deadline``, seconds after arrival);
coflows without one are best-effort and scheduled SEBF-style behind the
admitted set.  Rejected coflows are not dropped (the simulator must finish
them) — they are demoted to best-effort, mirroring Varys' practice of
running rejected coflows without guarantees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.core import rate_allocation as ra
from repro.core.scheduler import Allocation, CoflowState, Scheduler, SchedulerView


class DeadlineEDF(Scheduler):
    """Earliest-deadline-first with Varys-style admission control.

    Parameters
    ----------
    admission:
        When ``True`` (default), a newly arrived deadline coflow is
        admitted only if its required rates fit the residual capacity; when
        ``False`` every deadline coflow is treated as admitted (EDF without
        guarantees — the classic comparison point).
    """

    name = "edf-deadline"

    def __init__(self, admission: bool = True):
        self.admission = admission
        self._admitted: Set[int] = set()
        self._rejected: Set[int] = set()

    def reset(self) -> None:
        self._admitted.clear()
        self._rejected.clear()

    # ------------------------------------------------------------------ state
    def was_admitted(self, coflow_id: int) -> bool:
        return coflow_id in self._admitted

    @property
    def rejected_count(self) -> int:
        return len(self._rejected)

    # -------------------------------------------------------------- mechanics
    def _required_rates(
        self, view: SchedulerView, cs: CoflowState
    ) -> np.ndarray:
        """Minimum per-flow rates finishing the coflow by its deadline.

        Targets one slice *before* the deadline: completions are observed
        only at slice boundaries, so a flow draining exactly at its
        deadline would be reported one slice late and counted as a miss.
        """
        deadline_abs = cs.coflow.arrival + float(cs.coflow.deadline)
        remaining = max(deadline_abs - view.time - view.slice_len, view.slice_len)
        return view.volume[cs.flow_idx] / remaining

    def _try_admit(self, view, cs, dims) -> bool:
        """Check the newcomer's demands against residual capacity.

        ``dims`` already has every admitted coflow's demand subtracted; the
        newcomer fits iff *all* of its flows find their required rates
        simultaneously — so the check consumes on a scratch copy (two flows
        of one coflow may share a port).
        """
        scratch = [(groups, caps.copy()) for groups, caps in dims]
        req = self._required_rates(view, cs)
        for i, r in zip(cs.flow_idx, req):
            if ra.flow_headroom(int(i), scratch) < r * (1 - 1e-9):
                return False
            ra.consume(int(i), float(r), scratch)
        return True

    def schedule(self, view: SchedulerView) -> Allocation:
        n = view.num_flows
        if n == 0:
            return Allocation.idle(0)
        rem_in, rem_out = view.fresh_capacity()
        extra = view.fresh_extra()
        dims = ra.build_dims(view.src, view.dst, rem_in, rem_out, extra)
        rates = np.zeros(n)

        with_deadline = [
            cs for cs in view.coflows if cs.coflow.deadline is not None
        ]
        best_effort = [cs for cs in view.coflows if cs.coflow.deadline is None]
        with_deadline.sort(key=lambda cs: cs.coflow.arrival + cs.coflow.deadline)

        # Serve the already-admitted set first (EDF), consuming capacity.
        newcomers: List[CoflowState] = []
        for cs in with_deadline:
            if not self.admission:
                self._admitted.add(cs.coflow_id)
            if cs.coflow_id in self._admitted:
                req = self._required_rates(view, cs)
                for i, r in zip(cs.flow_idx, req):
                    r = min(float(r), ra.flow_headroom(int(i), dims))
                    rates[i] = r
                    ra.consume(int(i), r, dims)
            elif cs.coflow_id not in self._rejected:
                newcomers.append(cs)

        # Admission decisions for newcomers, earliest deadline first.
        for cs in newcomers:
            if self._try_admit(view, cs, dims):
                self._admitted.add(cs.coflow_id)
                req = self._required_rates(view, cs)
                for i, r in zip(cs.flow_idx, req):
                    rates[i] = float(r)
                    ra.consume(int(i), float(r), dims)
            else:
                self._rejected.add(cs.coflow_id)
                best_effort.append(cs)

        # Rejected + deadline-less coflows share the leftovers, smallest
        # remaining volume first, then everything backfills work-conservingly.
        best_effort.sort(key=lambda cs: float(view.volume[cs.flow_idx].sum()))
        for group in (best_effort, with_deadline):
            for cs in group:
                for i in cs.flow_idx:
                    room = ra.flow_headroom(int(i), dims)
                    if room <= 0 or view.volume[i] <= 0:
                        continue
                    rates[i] += room
                    ra.consume(int(i), room, dims)
        return Allocation(rates=rates)


def deadline_stats(coflow_results) -> Dict[str, float]:
    """Fraction of deadline coflows that met their deadline, plus counts."""
    with_deadline = [c for c in coflow_results if c.deadline is not None]
    met = sum(1 for c in with_deadline if c.met_deadline)
    return {
        "with_deadline": len(with_deadline),
        "met": met,
        "met_fraction": met / len(with_deadline) if with_deadline else 1.0,
    }
