"""Flow-level baselines: FIFO, FAIR, SRTF, PFP, WSS.

These are the paper's flow-granularity comparison points (Fig. 4, Fig. 6a–d):

* **FIFO** — Spark's default: flows served strictly in arrival order
  (head-of-line blocking included free of charge).
* **FAIR** — Spark's fair scheduler / Per-Flow Fairness: max-min fair
  rates across all active flows.
* **SRTF** — Shortest-Remaining-Time-First, the provably optimal policy
  for average FCT on a single link (Section IV-A4).
* **PFP** — Per-Flow Prioritization à la pFabric: smallest *original* flow
  size first (a static priority, unlike SRTF's dynamic remaining size).
* **WSS** — Orchestra's Weighted Shuffle Scheduling: max-min with weights
  proportional to flow size, so flows of one shuffle finish together.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core import rate_allocation as ra
from repro.core.scheduler import Allocation, Scheduler, SchedulerView
from repro.schedulers.base import OrderedFlowScheduler


class FlowFIFO(OrderedFlowScheduler):
    """First-In First-Out over flows (arrival time, then flow id)."""

    name = "fifo"

    def flow_keys(self, view: SchedulerView) -> List[np.ndarray]:
        return [view.arrival, view.flow_ids.astype(np.float64)]


class FlowSRTF(OrderedFlowScheduler):
    """Shortest-Remaining-Time-First (remaining volume ascending)."""

    name = "srtf"

    def flow_keys(self, view: SchedulerView) -> List[np.ndarray]:
        return [view.volume, view.arrival, view.flow_ids.astype(np.float64)]


class FlowPFP(OrderedFlowScheduler):
    """Per-Flow Prioritization: smallest original size first (pFabric)."""

    name = "pfp"

    def flow_keys(self, view: SchedulerView) -> List[np.ndarray]:
        return [view.size, view.arrival, view.flow_ids.astype(np.float64)]


class FlowFAIR(Scheduler):
    """Max-min fair sharing across all active flows (PFF / Spark FAIR)."""

    name = "fair"

    def schedule(self, view: SchedulerView) -> Allocation:
        if view.num_flows == 0:
            return Allocation.idle(0)
        rem_in, rem_out = view.fresh_capacity()
        rates = ra.maxmin_fair(
            view.src, view.dst, rem_in, rem_out, extra=view.fresh_extra()
        )
        return Allocation(rates=rates)


class FlowWSS(Scheduler):
    """Weighted Shuffle Scheduling: size-weighted max-min (Orchestra)."""

    name = "wss"

    def schedule(self, view: SchedulerView) -> Allocation:
        if view.num_flows == 0:
            return Allocation.idle(0)
        rem_in, rem_out = view.fresh_capacity()
        rates = ra.maxmin_fair(
            view.src, view.dst, rem_in, rem_out, weights=view.size,
            extra=view.fresh_extra(),
        )
        return Allocation(rates=rates)
