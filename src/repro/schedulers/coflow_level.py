"""Coflow-level baselines: PFF, WSS, FIFO, PFP, SEBF, SCF, NCF, LCF.

The comparison set of Fig. 4, Fig. 6(e) and Table VI.  PFF/WSS/PFP are
coflow-*agnostic* (they act on flows and are simply *measured* at coflow
granularity); FIFO/SEBF/SCF/NCF/LCF order whole coflows.

``SEBF`` is Varys' Smallest-Effective-Bottleneck-First: a coflow's priority
is its bottleneck completion time ``Γ = max_port load/cap`` computed from
*remaining* volumes, so priorities sharpen as coflows drain.

``LCF`` is never defined in the paper (Table VI lumps "SCF/NCF/LCF"); we
implement Least-Contention-First — fewest ports shared with other active
coflows — and record the interpretation in DESIGN.md.
"""

from __future__ import annotations

from typing import Set, Tuple

import numpy as np

from repro.core import rate_allocation as ra
from repro.core.scheduler import CoflowState, SchedulerView
from repro.schedulers.base import OrderedCoflowScheduler
from repro.schedulers.flow_level import FlowFAIR, FlowPFP, FlowWSS


class CoflowPFF(FlowFAIR):
    """Per-Flow Fairness measured at coflow granularity (same allocation)."""

    name = "pff"


class CoflowWSS(FlowWSS):
    """Weighted Shuffle Scheduling measured at coflow granularity."""

    name = "wss"


class CoflowPFP(FlowPFP):
    """Per-flow smallest-size-first measured at coflow granularity."""

    name = "pfp"


class CoflowFIFO(OrderedCoflowScheduler):
    """Whole-coflow FIFO: the earliest-arrived coflow owns the fabric."""

    name = "coflow-fifo"

    def coflow_key(self, view: SchedulerView, cs: CoflowState) -> float:
        return cs.coflow.arrival


class SEBF(OrderedCoflowScheduler):
    """Varys' Smallest-Effective-Bottleneck-First."""

    name = "sebf"

    def coflow_key(self, view: SchedulerView, cs: CoflowState) -> float:
        idx = cs.flow_idx
        vol = view.volume[idx]
        extra = [
            (groups[idx], caps) for groups, caps in view.fresh_extra()
        ]
        return ra.coflow_gamma(
            vol,
            view.src[idx],
            view.dst[idx],
            view.fabric.ingress.capacity,
            view.fabric.egress.capacity,
            extra=extra,
        )


class SCF(OrderedCoflowScheduler):
    """Smallest-Coflow-First: total remaining bytes ascending."""

    name = "scf"

    def coflow_key(self, view: SchedulerView, cs: CoflowState) -> float:
        return float(view.volume[cs.flow_idx].sum())


class NCF(OrderedCoflowScheduler):
    """Narrowest-Coflow-First: smallest width (static member count) first.

    Width is a static property of the coflow — using the *remaining* flow
    count instead would flip priorities mid-run as wide coflows drain.
    """

    name = "ncf"

    def coflow_key(self, view: SchedulerView, cs: CoflowState) -> float:
        return float(cs.coflow.width)


class LCF(OrderedCoflowScheduler):
    """Least-Contention-First: fewest ports shared with other coflows."""

    name = "lcf"

    def _port_sets(self, view: SchedulerView):
        sets = {}
        for cs in view.coflows:
            idx = cs.flow_idx
            eps: Set[Tuple[str, int]] = set()
            eps.update(("in", int(p)) for p in view.src[idx])
            eps.update(("out", int(p)) for p in view.dst[idx])
            sets[cs.coflow_id] = eps
        return sets

    def coflow_key(self, view: SchedulerView, cs: CoflowState) -> float:
        sets = self._port_sets(view)
        mine = sets[cs.coflow_id]
        contention = 0
        for cid, other in sets.items():
            if cid == cs.coflow_id:
                continue
            contention += len(mine & other)
        return float(contention)
