"""Sincronia-style BSSI coflow ordering (extension baseline).

Sincronia (Agarwal et al., SIGCOMM 2018 — published months after Swallow)
showed that a good *order* alone, combined with any work-conserving
per-flow mechanism, is 4-approximate for average weighted CCT.  Its
Bottleneck-Sensitive Smallest-job-first ordering is the classic
primal-dual for concurrent open shop (Mastrolilli et al.'s MUSSQ):

1. find the bottleneck port ``b`` (largest aggregate remaining load);
2. among unordered coflows, place **last** the one minimising
   ``w_c / d_{c,b}`` (Smith's rule on the bottleneck: cheapest weight per
   byte of bottleneck load goes last);
3. charge the chosen coflow's ratio against everyone's weight
   (``w_c -= θ · d_{c,b}``) and recurse on the rest.

We recompute the order at every decision point over *remaining* volumes
(Sincronia recomputes per epoch) and serve flows greedily in that order —
making this the strongest ordering-only baseline in the registry, a
natural yardstick for what FVDF's compression adds beyond ordering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import rate_allocation as ra
from repro.core.scheduler import Allocation, CoflowState, Scheduler, SchedulerView
from repro.errors import ConfigurationError


def bssi_order(
    loads: np.ndarray, weights: Optional[np.ndarray] = None
) -> List[int]:
    """Order coflows by BSSI/MUSSQ.

    Parameters
    ----------
    loads:
        Array of shape ``(num_coflows, num_ports)``: each coflow's
        remaining bytes on each port (both fabric sides concatenated).
    weights:
        Per-coflow weights (default 1): higher weight = more urgent.

    Returns
    -------
    list of coflow indices, highest priority first.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.ndim != 2:
        raise ConfigurationError("loads must be (num_coflows, num_ports)")
    n = loads.shape[0]
    w = (
        np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64).copy()
    )
    if len(w) != n or np.any(w < 0):
        raise ConfigurationError("weights must align with loads and be >= 0")
    remaining = list(range(n))
    order_rev: List[int] = []
    while remaining:
        sub = loads[remaining]
        b = int(np.argmax(sub.sum(axis=0)))
        col = sub[:, b]
        with np.errstate(divide="ignore"):
            ratio = np.where(col > 0, w[remaining] / np.maximum(col, 1e-300), np.inf)
        if not np.isfinite(ratio).any():
            # nobody loads the bottleneck (all drained): arbitrary order.
            order_rev.extend(reversed(remaining))
            break
        pick = int(np.argmin(ratio))
        c_star = remaining[pick]
        theta = w[c_star] / col[pick] if col[pick] > 0 else 0.0
        for i, c in enumerate(remaining):
            w[c] = max(w[c] - theta * col[i], 0.0)
        order_rev.append(c_star)
        remaining.pop(pick)
    return list(reversed(order_rev))


class Sincronia(Scheduler):
    """BSSI ordering + work-conserving greedy rates.

    Per-coflow weights come from ``weight_of`` (default: 1 for every
    coflow, i.e. plain average CCT).
    """

    name = "sincronia"

    def __init__(self, weight_of=None):
        self.weight_of = weight_of or (lambda coflow: 1.0)

    def schedule(self, view: SchedulerView) -> Allocation:
        if view.num_flows == 0:
            return Allocation.idle(0)
        n_ports = view.fabric.num_ingress + view.fabric.num_egress
        coflows = view.coflows
        loads = np.zeros((len(coflows), n_ports))
        for i, cs in enumerate(coflows):
            idx = cs.flow_idx
            vol = view.volume[idx]
            loads[i, : view.fabric.num_ingress] = np.bincount(
                view.src[idx], weights=vol, minlength=view.fabric.num_ingress
            )
            loads[i, view.fabric.num_ingress :] = np.bincount(
                view.dst[idx], weights=vol, minlength=view.fabric.num_egress
            )
        weights = np.asarray([self.weight_of(cs.coflow) for cs in coflows])
        order = bssi_order(loads, weights)
        flow_order = np.concatenate([coflows[i].flow_idx for i in order])
        rem_in, rem_out = view.fresh_capacity()
        rates = ra.greedy_priority(
            flow_order, view.src, view.dst, rem_in, rem_out,
            extra=view.fresh_extra(),
        )
        return Allocation(rates=rates)
