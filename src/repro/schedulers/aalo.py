"""Aalo-style information-agnostic coflow scheduling (extension baseline).

The paper's reference [16] (Chowdhury & Stoica, SIGCOMM'15) schedules
coflows *without* prior size knowledge: coflows are demoted through
exponentially spaced priority queues as their **bytes sent so far** grow
(Discretized Coflow-Aware Least-Attained-Service), approximating
shortest-first from observations alone.

Simplifications vs the full Aalo system (documented, deliberate):

* strict priority across queues and FIFO within a queue (Aalo also
  supports weighted sharing between queues);
* "bytes sent so far" is derived as ``coflow.size − remaining volume``,
  which the big-switch view makes exact for incompressible runs.

Useful as the information-agnostic yardstick next to SEBF (clairvoyant)
and FVDF (clairvoyant + compression).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core import rate_allocation as ra
from repro.core.scheduler import Allocation, CoflowState, Scheduler, SchedulerView
from repro.errors import ConfigurationError
from repro.units import MB


class DCLAS(Scheduler):
    """Discretized Coflow-Aware Least-Attained-Service (Aalo).

    Parameters
    ----------
    first_threshold:
        Sent-bytes boundary of the highest-priority queue (Aalo: 10 MB).
    multiplier:
        Exponential spacing between queue thresholds (Aalo: 10).
    num_queues:
        Number of discrete priority queues.
    """

    name = "dclas"

    def __init__(
        self,
        first_threshold: float = 10 * MB,
        multiplier: float = 10.0,
        num_queues: int = 8,
    ):
        if first_threshold <= 0:
            raise ConfigurationError("first_threshold must be positive")
        if multiplier <= 1:
            raise ConfigurationError("multiplier must be > 1")
        if num_queues < 1:
            raise ConfigurationError("need at least one queue")
        self.thresholds = first_threshold * multiplier ** np.arange(num_queues - 1)

    def queue_of(self, sent: float) -> int:
        """The priority queue a coflow with ``sent`` bytes belongs to."""
        return int(np.searchsorted(self.thresholds, sent, side="right"))

    def schedule(self, view: SchedulerView) -> Allocation:
        if view.num_flows == 0:
            return Allocation.idle(0)
        keyed: List[tuple] = []
        for cs in view.coflows:
            sent = max(cs.coflow.size - float(view.volume[cs.flow_idx].sum()), 0.0)
            keyed.append((self.queue_of(sent), cs.coflow.arrival, cs.coflow_id, cs))
        keyed.sort(key=lambda t: t[:3])
        order = np.concatenate([cs.flow_idx for *_, cs in keyed])
        rem_in, rem_out = view.fresh_capacity()
        rates = ra.greedy_priority(
            order, view.src, view.dst, rem_in, rem_out, extra=view.fresh_extra()
        )
        return Allocation(rates=rates)
