"""Scheduling policies: the paper's FVDF and every baseline it compares to.

Use :func:`make_scheduler` to construct policies by name (handy for
benchmark sweeps)::

    from repro.schedulers import make_scheduler
    sched = make_scheduler("sebf")
    fvdf = make_scheduler("fvdf")
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core import kernels
from repro.core.fvdf import FVDFConfig, FVDFScheduler
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.schedulers.aalo import DCLAS
from repro.schedulers.deadline import DeadlineEDF, deadline_stats
from repro.schedulers.sincronia import Sincronia, bssi_order
from repro.schedulers.coflow_level import (
    SCF,
    NCF,
    LCF,
    SEBF,
    CoflowFIFO,
    CoflowPFF,
    CoflowPFP,
    CoflowWSS,
)
from repro.schedulers.flow_level import (
    FlowFAIR,
    FlowFIFO,
    FlowPFP,
    FlowSRTF,
    FlowWSS,
)

_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    # flow level
    "fifo": FlowFIFO,
    "fair": FlowFAIR,
    "srtf": FlowSRTF,
    "pfp": FlowPFP,
    "wss": FlowWSS,
    # coflow level
    "pff": CoflowPFF,
    "coflow-fifo": CoflowFIFO,
    "sebf": SEBF,
    "sebf-madd": lambda: SEBF(rate_policy="madd"),
    "scf": SCF,
    "ncf": NCF,
    "lcf": LCF,
    "dclas": DCLAS,
    "edf-deadline": DeadlineEDF,
    "edf-noadmission": lambda: DeadlineEDF(admission=False),
    "sincronia": Sincronia,
    # the contribution
    "fvdf": FVDFScheduler,
    "fvdf-flow": lambda: FVDFScheduler(
        FVDFConfig(granularity="flow"), name="fvdf-flow"
    ),
    "fvdf-nocompress": lambda: FVDFScheduler(FVDFConfig(compress=False)),
}


def scheduler_names() -> List[str]:
    """All registered policy names."""
    return sorted(_FACTORIES)


def make_scheduler(
    name: str, kernel: Optional[str] = None, **params
) -> Scheduler:
    """Instantiate a scheduling policy by registry name.

    Keyword ``params`` are forwarded to the policy's constructor — e.g.
    ``make_scheduler("sebf", rate_policy="madd")`` or
    ``make_scheduler("edf-deadline", admission=False)`` — which is how
    parameterised policies travel inside picklable
    :class:`~repro.runner.spec.RunSpec` cells.  Registry aliases that are
    already fully parameterised (``sebf-madd``, ``fvdf-flow``, …) accept
    no further params.

    ``kernel`` selects the decision-kernel backend the engine uses for
    this scheduler's runs (``repro.core.kernels.KERNEL_NAMES``; ``None``
    defers to ``$REPRO_KERNEL``).  It is validated here so a typo fails
    at construction, not mid-run, and since backends are bit-identical
    it never affects results — only wall clock.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: {scheduler_names()}"
        ) from None
    if kernel is not None:
        kernels.resolve_kernel(kernel)  # validate the name eagerly
    try:
        sched = factory(**params) if params else factory()
    except TypeError as exc:
        raise ConfigurationError(
            f"scheduler {name!r} rejected params {sorted(params)}: {exc}"
        ) from None
    if kernel is not None:
        sched.kernel = kernel
    return sched


__all__ = [
    "FlowFIFO", "FlowFAIR", "FlowSRTF", "FlowPFP", "FlowWSS",
    "CoflowPFF", "CoflowWSS", "CoflowFIFO", "CoflowPFP",
    "SEBF", "SCF", "NCF", "LCF", "DCLAS",
    "DeadlineEDF", "deadline_stats", "Sincronia", "bssi_order",
    "FVDFScheduler", "FVDFConfig",
    "make_scheduler", "scheduler_names",
]
