"""Exception hierarchy for the :mod:`repro` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid parameters."""


class SchedulingError(ReproError):
    """A scheduler returned an infeasible or malformed allocation."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state.

    The classic instance: every active flow has zero rate, no compression is
    running and no arrival is pending, so simulated time can never advance.
    """


class TraceFormatError(ReproError):
    """A workload trace file could not be parsed."""


class CheckpointError(ReproError):
    """A simulator state cannot be faithfully checkpointed.

    Raised by :func:`repro.service.checkpoint.save_checkpoint` instead of
    silently writing a snapshot whose restore would diverge from the
    uninterrupted run (e.g. pending scheduled capacity events — the
    ``repro-checkpoint-v1`` format does not guarantee their round trip).
    """


class ProtocolError(ReproError):
    """The Swallow master/worker message protocol was violated."""
