"""Swallow master: aggregates cluster state, makes scheduling decisions.

The master (paper §III-B) receives coflow information from drivers and
periodic measurements from worker daemons, and answers ``scheduling()``
requests with an FVDF-ordered plan: which coflow first (Shortest-``Γ_C``-
First with priority classes), which flows to compress (Pseudocode 1), and
the minimal rates ``r = V/Γ_C`` (Pseudocode 2 line 29).

The master reasons *only* over the information it was sent — coflow sizes
and daemon measurements — exactly like the real master, which cannot see
into the fabric.  The physical outcome of its plan is produced by the
simulation engine, which the :class:`~repro.swallow.context.SwallowContext`
drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compression.engine import CompressionEngine
from repro.core.fvdf import DEFAULT_LOGBASE
from repro.errors import ProtocolError
from repro.swallow.messages import CoflowInfo, CoflowRef, MeasurementMsg, SchResult
from repro.swallow.transport import MessageBus


@dataclass
class _Registered:
    info: CoflowInfo
    ref: CoflowRef
    priority_class: float = 1.0


class SwallowMaster:
    """The central decision maker.

    Parameters
    ----------
    bus:
        Message bus; the master subscribes to daemon measurements on topic
        ``"master/measurement"``.
    compression:
        Compression engine (None disables compression decisions — the
        ``swallow.smartCompress=false`` configuration).
    link_bandwidth:
        The fabric's per-port bandwidth, used for Eq. 3 and Γ estimates.
    """

    def __init__(
        self,
        bus: MessageBus,
        link_bandwidth: float,
        compression: Optional[CompressionEngine] = None,
        logbase: float = DEFAULT_LOGBASE,
    ):
        self.bus = bus
        self.link_bandwidth = link_bandwidth
        self.compression = compression
        self.logbase = logbase
        #: Observability: shared with the bus so master decisions land in
        #: the same trace as engine records.
        self.obs = bus.obs
        self._coflows: Dict[int, _Registered] = {}
        self._next_id = 0
        self._measurements: Dict[int, MeasurementMsg] = {}
        bus.subscribe("master/measurement", self._on_measurement)

    def _now(self) -> float:
        return self.bus.clock() if self.bus.clock is not None else -1.0

    # ------------------------------------------------------------- protocol
    def _on_measurement(self, msg: MeasurementMsg) -> None:
        self._measurements[msg.node] = msg

    def free_cores(self, node: int) -> int:
        """Latest daemon-reported free cores (optimistic default: 1)."""
        m = self._measurements.get(node)
        return m.free_cores if m is not None else 1

    def add(self, info: CoflowInfo) -> CoflowRef:
        """Register a coflow; upgrade everyone else's priority class."""
        self._upgrade()
        ref = CoflowRef(coflow_id=self._next_id, label=info.label)
        self._next_id += 1
        self._coflows[ref.coflow_id] = _Registered(info=info, ref=ref)
        return ref

    def remove(self, ref: CoflowRef) -> None:
        """Unregister a completed coflow; upgrade the survivors."""
        if ref.coflow_id not in self._coflows:
            raise ProtocolError(f"remove() of unknown coflow {ref.coflow_id}")
        del self._coflows[ref.coflow_id]
        self._upgrade()

    def _upgrade(self) -> None:
        """Pseudocode 3 Upgrade, triggered at arrivals and completions."""
        for reg in self._coflows.values():
            reg.priority_class *= self.logbase
        if self._coflows:
            self.obs.metrics.counter("master.upgrades").inc(len(self._coflows))

    # ------------------------------------------------------------- decisions
    def _beta(self, flow) -> bool:
        """Pseudocode 1 over reported information."""
        if self.compression is None or not flow.compressible:
            return False
        if self.free_cores(flow.src) <= 0:
            return False
        xi = (
            flow.ratio_override
            if flow.ratio_override is not None
            else self.compression.ratio(flow.size)
        )
        return self.compression.speed * (1.0 - xi) > self.link_bandwidth

    def gamma(self, info: CoflowInfo) -> float:
        """Expected CCT from reported information: the coflow's bottleneck
        completion time (Eq. 8) — the busiest port's bytes over the link
        bandwidth, which dominates the single-flow estimate whenever flows
        share an endpoint."""
        in_load: Dict[int, float] = {}
        out_load: Dict[int, float] = {}
        for f in info.flows:
            in_load[f.src] = in_load.get(f.src, 0.0) + f.size
            out_load[f.dst] = out_load.get(f.dst, 0.0) + f.size
        busiest = max(max(in_load.values()), max(out_load.values()))
        return busiest / self.link_bandwidth

    def scheduling(self, refs: List[CoflowRef]) -> SchResult:
        """Rank the given coflows and decide compression and minimal rates."""
        regs = []
        for ref in refs:
            reg = self._coflows.get(ref.coflow_id)
            if reg is None:
                raise ProtocolError(f"scheduling() over unknown coflow {ref.coflow_id}")
            regs.append(reg)
        regs.sort(key=lambda r: self.gamma(r.info) / r.priority_class)
        tr = self.obs.events
        if tr.enabled:
            tr.emit(
                self._now(),
                "master_order",
                units=[
                    [
                        r.ref.coflow_id,
                        self.gamma(r.info),
                        r.priority_class,
                        self.gamma(r.info) / r.priority_class,
                    ]
                    for r in regs
                ],
            )
        compress: Dict[int, bool] = {}
        rates: Dict[int, float] = {}
        for reg in regs:
            g = self.gamma(reg.info)
            for f in reg.info.flows:
                compress[f.flow_id] = self._beta(f)
                rates[f.flow_id] = f.size / g if g > 0 else self.link_bandwidth
        return SchResult(
            order=tuple(r.ref.coflow_id for r in regs),
            compress=compress,
            rates=rates,
        )

    @property
    def registered(self) -> int:
        return len(self._coflows)
