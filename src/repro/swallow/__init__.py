"""The Swallow system layer: master/worker structure and the Table IV API."""

from repro.swallow.context import SwallowContext
from repro.swallow.master import SwallowMaster
from repro.swallow.messages import (
    BlockId,
    CallBackMsg,
    CoflowInfo,
    CoflowRef,
    FlowInfo,
    MeasurementMsg,
    PushMsg,
    SchResult,
)
from repro.swallow.transport import MessageBus
from repro.swallow.worker import Executor, SwallowWorker, hook_executor

__all__ = [
    "SwallowContext", "SwallowMaster", "SwallowWorker", "Executor",
    "hook_executor", "MessageBus",
    "FlowInfo", "CoflowInfo", "CoflowRef", "SchResult", "MeasurementMsg",
    "BlockId", "PushMsg", "CallBackMsg",
]
