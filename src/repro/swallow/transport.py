"""In-process message bus — the stand-in for Akka (paper §V-A).

The real Swallow passes messages between driver, master, cluster manager and
workers over Akka with Kryo serialisation.  Here all components live in one
process, so the bus delivers synchronously; it still gives the system layer
the same *shape* (topic-addressed handlers, observable message flow) and
counts traffic per topic so tests can assert the protocol actually runs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ProtocolError
from repro.obs import NULL_OBS, Observability

Handler = Callable[[Any], None]


class MessageBus:
    """Topic-based synchronous publish/subscribe.

    Parameters
    ----------
    obs:
        Observability bundle.  When enabled, every publish bumps the
        ``bus.messages.<topic>`` counter and emits a ``bus`` trace record
        stamped with :attr:`clock` (simulated seconds; ``-1`` when no
        clock is attached).
    """

    def __init__(self, obs: Optional[Observability] = None):
        self._handlers: Dict[str, List[Handler]] = defaultdict(list)
        self._counts: Dict[str, int] = defaultdict(int)
        self._log: List = []
        self.keep_log = False
        self.obs = obs if obs is not None else NULL_OBS
        #: Supplies the simulated timestamp for trace records; attached by
        #: the owning context once an engine exists.
        self.clock: Optional[Callable[[], float]] = None

    def subscribe(self, topic: str, handler: Handler) -> None:
        self._handlers[topic].append(handler)

    def unsubscribe(self, topic: str, handler: Handler) -> None:
        """Remove one subscription; error if it does not exist."""
        try:
            self._handlers[topic].remove(handler)
        except ValueError:
            raise ProtocolError(
                f"unsubscribe() of handler not subscribed to {topic!r}"
            ) from None

    def publish(self, topic: str, message: Any) -> None:
        """Deliver to every subscriber; error if nobody listens.

        An unrouted message is a protocol bug in a closed system, so it
        raises rather than vanishing.  Delivery iterates a snapshot of the
        handler list: a handler that subscribes or unsubscribes during
        delivery takes effect from the *next* publish, never mid-iteration.
        """
        handlers = self._handlers.get(topic)
        if not handlers:
            raise ProtocolError(f"no subscriber for topic {topic!r}")
        self._counts[topic] += 1
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(f"bus.messages.{topic}").inc()
        tr = self.obs.events
        if tr.enabled:
            t = self.clock() if self.clock is not None else -1.0
            tr.emit(t, "bus", topic=topic)
        if self.keep_log:
            self._log.append((topic, message))
        for h in tuple(handlers):
            h(message)

    def count(self, topic: str) -> int:
        """Messages published to a topic so far."""
        return self._counts.get(topic, 0)

    @property
    def total_messages(self) -> int:
        return sum(self._counts.values())

    @property
    def log(self) -> List:
        return list(self._log)
