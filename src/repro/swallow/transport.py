"""In-process message bus — the stand-in for Akka (paper §V-A).

The real Swallow passes messages between driver, master, cluster manager and
workers over Akka with Kryo serialisation.  Here all components live in one
process, so the bus delivers synchronously; it still gives the system layer
the same *shape* (topic-addressed handlers, observable message flow) and
counts traffic per topic so tests can assert the protocol actually runs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List

from repro.errors import ProtocolError

Handler = Callable[[Any], None]


class MessageBus:
    """Topic-based synchronous publish/subscribe."""

    def __init__(self) -> None:
        self._handlers: Dict[str, List[Handler]] = defaultdict(list)
        self._counts: Dict[str, int] = defaultdict(int)
        self._log: List = []
        self.keep_log = False

    def subscribe(self, topic: str, handler: Handler) -> None:
        self._handlers[topic].append(handler)

    def publish(self, topic: str, message: Any) -> None:
        """Deliver to every subscriber; error if nobody listens.

        An unrouted message is a protocol bug in a closed system, so it
        raises rather than vanishing.
        """
        handlers = self._handlers.get(topic)
        if not handlers:
            raise ProtocolError(f"no subscriber for topic {topic!r}")
        self._counts[topic] += 1
        if self.keep_log:
            self._log.append((topic, message))
        for h in handlers:
            h(message)

    def count(self, topic: str) -> int:
        """Messages published to a topic so far."""
        return self._counts.get(topic, 0)

    @property
    def total_messages(self) -> int:
        return sum(self._counts.values())

    @property
    def log(self) -> List:
        return list(self._log)
