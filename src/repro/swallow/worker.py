"""Swallow worker: per-node daemon, executor hook and block store.

Workers (paper §III-B) do three things:

* the **daemon** periodically measures node status (CPU, free cores,
  bandwidth headroom) and ships it to the master;
* the **hook** captures intermediate data when the framework invokes a
  network transfer (e.g. a Spark shuffle), producing ``flowInfo`` records;
* the **block store** holds serialized blocks between ``push()`` and
  ``pull()``, optionally running the payload through a real codec so the
  byte-level path is exercised too.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.flow import Flow
from repro.cpu.cores import CpuModel
from repro.errors import ProtocolError
from repro.swallow.messages import BlockId, CoflowRef, FlowInfo, MeasurementMsg
from repro.swallow.transport import MessageBus


@dataclass
class Executor:
    """A framework executor with transfers waiting to happen.

    In the Spark integration this is the executor whose shuffle-map output
    awaits fetching; ``hook()`` reads its pending flows.
    """

    node: int
    pending_flows: List[Flow] = field(default_factory=list)


def hook_executor(executor: Executor) -> List[FlowInfo]:
    """The hook(): capture flowInfo from an executor's pending transfers."""
    return [
        FlowInfo(
            flow_id=f.flow_id,
            src=f.src,
            dst=f.dst,
            size=f.size,
            compressible=f.compressible,
            ratio_override=f.ratio_override,
        )
        for f in executor.pending_flows
    ]


class SwallowWorker:
    """One worker process: daemon + block store for its node."""

    def __init__(self, node: int, bus: MessageBus, real_compression: bool = False):
        self.node = node
        self.bus = bus
        self.real_compression = real_compression
        self._blocks: Dict[Tuple[int, int], Tuple[bytes, bool]] = {}

    # ------------------------------------------------------------- daemon
    def report(self, cpu: CpuModel, t: float, bandwidth_free: float) -> MeasurementMsg:
        """Measure and publish one daemon heartbeat."""
        msg = MeasurementMsg(
            node=self.node,
            time=t,
            cpu_busy=float(cpu.busy_fraction(t)[self.node]),
            free_cores=int(cpu.free_cores(t)[self.node]),
            bandwidth_free=bandwidth_free,
        )
        tr = self.bus.obs.events
        if tr.enabled:
            tr.emit(t, "heartbeat", node=self.node, free_cores=msg.free_cores)
        self.bus.publish("master/measurement", msg)
        return msg

    # ---------------------------------------------------------- block store
    def store_block(
        self, ref: CoflowRef, block_id: BlockId, payload: bytes, compress: bool
    ) -> Tuple[int, bool]:
        """Store an outgoing block, compressing for real when asked.

        Returns (stored size, compressed?).  With ``real_compression`` the
        payload goes through zlib — a genuine byte-level codec standing in
        for LZ4 — so pull() exercises real decompression.
        """
        if compress and self.real_compression:
            data, compressed = zlib.compress(payload, 1), True
        else:
            data, compressed = payload, False
        self._blocks[(ref.coflow_id, block_id.value)] = (data, compressed)
        return len(data), compressed

    def fetch_block(self, ref: CoflowRef, block_id: BlockId) -> bytes:
        """Retrieve and (if needed) decompress a block for the receiver."""
        key = (ref.coflow_id, block_id.value)
        try:
            data, compressed = self._blocks.pop(key)
        except KeyError:
            raise ProtocolError(
                f"pull() of unknown block {block_id.value} in coflow {ref.coflow_id}"
            ) from None
        return zlib.decompress(data) if compressed else data

    @property
    def stored_blocks(self) -> int:
        return len(self._blocks)
