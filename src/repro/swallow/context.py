"""SwallowContext — the Table IV programming API.

This is the object cluster frameworks interact with (paper §V-B)::

    sc = SwallowContext(num_nodes=4, bandwidth=gbps(1))
    infos = sc.hook(executor)          # Driver
    cinfo = sc.aggregate(infos)        # Driver
    ref = sc.add(cinfo)                # Driver
    plan = sc.scheduling([ref])        # Driver
    sc.alloc(plan)                     # ClusterManager
    sc.push(ref, block_id, payload)    # Sender
    data = sc.pull(ref, block_id)      # Receiver
    sc.remove(ref)                     # Driver

Division of labour: the **master** makes decisions from aggregated
information; the **engine** (a :class:`~repro.core.simulator.SliceSimulator`
running the FVDF scheduler) is the physics that carries the transfer out;
**workers** hold the actual block bytes between push and pull, optionally
compressing them for real.  ``pull()`` is time-decoupled as in the paper:
it drives the simulation forward until the requested block's coflow has
finished transferring, then hands over (and decompresses) the data.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.fvdf import FVDFConfig, FVDFScheduler
from repro.core.simulator import SliceSimulator
from repro.cpu.cores import CpuModel
from repro.errors import ConfigurationError, ProtocolError
from repro.fabric.bigswitch import BigSwitch
from repro.swallow.master import SwallowMaster
from repro.swallow.messages import (
    BlockId,
    CallBackMsg,
    CoflowInfo,
    CoflowRef,
    FlowInfo,
    PushMsg,
    SchResult,
)
from repro.swallow.transport import MessageBus
from repro.swallow.worker import Executor, SwallowWorker, hook_executor
from repro.units import gbps


class SwallowContext:
    """A Swallow-enabled cluster in one object.

    Parameters
    ----------
    num_nodes:
        Machines (fabric ports / workers).
    bandwidth:
        Per-port link speed, bytes/s.
    smart_compress:
        The ``swallow.smartCompress`` option; ``False`` disables all
        compression decisions.
    codec:
        Codec name for the compression engine (default LZ4, as shipped).
    real_compression:
        Also run pushed payload bytes through a real codec (zlib) so pull()
        exercises genuine decompression.
    auto_heartbeat:
        Have the worker daemons report node status to the master at every
        engine decision point (the paper's periodic measurement messages),
        instead of only on explicit :meth:`heartbeat` calls.
    obs:
        Observability bundle shared by the engine, bus, master and workers
        — one trace covers the whole system (default: disabled).
    """

    _instance: Optional["SwallowContext"] = None

    def __init__(
        self,
        num_nodes: int = 4,
        bandwidth: float = gbps(1),
        smart_compress: bool = True,
        codec: str = "lz4",
        slice_len: float = 0.01,
        cores_per_node: int = 4,
        real_compression: bool = False,
        auto_heartbeat: bool = False,
        obs=None,
    ):
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        self.bus = MessageBus(obs=obs)
        self.obs = self.bus.obs
        self.fabric = BigSwitch(num_nodes, bandwidth)
        self.cpu = CpuModel(num_nodes, cores_per_node=cores_per_node)
        self.compression = (
            CompressionEngine(codec) if smart_compress else None
        )
        self.engine = SliceSimulator(
            self.fabric,
            FVDFScheduler(FVDFConfig(compress=smart_compress)),
            slice_len=slice_len,
            cpu=self.cpu,
            compression=self.compression,
            obs=obs,
        )
        self.bus.clock = lambda: self.engine.now
        self.master = SwallowMaster(
            self.bus,
            link_bandwidth=float(self.fabric.ingress.capacity.min()),
            compression=self.compression,
        )
        self.workers = [
            SwallowWorker(n, self.bus, real_compression=real_compression)
            for n in range(num_nodes)
        ]
        self.bus.subscribe("master/callback", lambda msg: None)  # observability sink
        self.bus.subscribe("worker/alloc", lambda msg: None)
        self._ref_to_coflow: Dict[int, Coflow] = {}
        self._completed: Dict[int, bool] = {}
        self._block_to_flow: Dict[Tuple[int, int], Flow] = {}
        self._unpushed: Dict[int, List[Flow]] = {}
        self.engine.on_coflow_complete(self._on_engine_complete)
        if auto_heartbeat:
            self.engine.on_decision(lambda t: self.heartbeat())
        SwallowContext._instance = self

    # --------------------------------------------------------------- lifecycle
    @classmethod
    def get_instance(cls) -> "SwallowContext":
        """The singleton accessor from the paper's usage example."""
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance

    @classmethod
    def reset_instance(cls) -> None:
        cls._instance = None

    # ----------------------------------------------------------- Table IV API
    def hook(self, executor: Executor) -> List[FlowInfo]:
        """Capture flow information from an executor's pending transfers."""
        return hook_executor(executor)

    def aggregate(self, flow_infos: List[FlowInfo], label: str = "") -> CoflowInfo:
        """Merge flowInfo records into one coflowInfo."""
        return CoflowInfo(flows=tuple(flow_infos), label=label)

    def add(self, info: CoflowInfo) -> CoflowRef:
        """Register a coflow with the master and submit it to the fabric."""
        ref = self.master.add(info)
        flows = [
            Flow(
                src=f.src,
                dst=f.dst,
                size=f.size,
                compressible=f.compressible,
                ratio_override=f.ratio_override,
                flow_id=f.flow_id,
            )
            for f in info.flows
        ]
        coflow = Coflow(flows, arrival=self.engine.now, label=info.label)
        self.engine.submit(coflow)
        self._ref_to_coflow[ref.coflow_id] = coflow
        self._completed[ref.coflow_id] = False
        self._unpushed[ref.coflow_id] = list(flows)
        return ref

    def remove(self, ref: CoflowRef) -> None:
        """Unregister a coflow once its transfer has completed."""
        if ref.coflow_id not in self._ref_to_coflow:
            raise ProtocolError(f"remove() of unknown ref {ref.coflow_id}")
        if not self._completed[ref.coflow_id]:
            raise ProtocolError(
                f"remove() before coflow {ref.coflow_id} completed transfer"
            )
        del self._ref_to_coflow[ref.coflow_id]
        self.master.remove(ref)

    def scheduling(self, refs: List[CoflowRef]) -> SchResult:
        """Ask the master for the current plan over the given coflows."""
        return self.master.scheduling(refs)

    def alloc(self, plan: SchResult) -> None:
        """Cluster-manager step: fan the plan out to the involved workers."""
        for w in self.workers:
            self.bus.publish("worker/alloc", (w.node, plan))

    def push(self, ref: CoflowRef, block_id: BlockId, payload: bytes) -> PushMsg:
        """Sender side: hand one block to Swallow for transfer.

        Blocks map onto the coflow's flows in registration order; pushing
        more blocks than the coflow has flows is a protocol error.
        """
        queue = self._unpushed.get(ref.coflow_id)
        if queue is None:
            raise ProtocolError(f"push() to unknown ref {ref.coflow_id}")
        if not queue:
            raise ProtocolError(
                f"coflow {ref.coflow_id}: more blocks pushed than flows"
            )
        flow = queue.pop(0)
        beta = self.master.scheduling([ref]).compress.get(flow.flow_id, False)
        worker = self.workers[flow.src]
        stored, compressed = worker.store_block(ref, block_id, payload, beta)
        self._block_to_flow[(ref.coflow_id, block_id.value)] = flow
        return PushMsg(
            coflow=ref, block_id=block_id, payload_size=stored, compressed=compressed
        )

    def pull(self, ref: CoflowRef, block_id: BlockId) -> bytes:
        """Receiver side: obtain a block, driving the fabric as needed.

        Time-decoupled: if the coflow's transfer has not finished yet, the
        simulation advances until it has (the receiver "waits").
        """
        key = (ref.coflow_id, block_id.value)
        flow = self._block_to_flow.get(key)
        if flow is None:
            raise ProtocolError(f"pull() of unpushed block {block_id.value}")
        while not self._completed[ref.coflow_id]:
            if not self.engine.pending:
                raise ProtocolError(
                    f"coflow {ref.coflow_id} cannot complete: engine drained"
                )
            self.engine.run(until=self.engine.now + 1.0)
        data = self.workers[flow.src].fetch_block(ref, block_id)
        self.bus.publish(
            "master/callback",
            CallBackMsg(coflow=ref, block_id=block_id, time=self.engine.now),
        )
        del self._block_to_flow[key]
        return data

    # ------------------------------------------------------------- internals
    def _on_engine_complete(self, cr) -> None:
        for cid, coflow in self._ref_to_coflow.items():
            if coflow.coflow_id == cr.coflow_id:
                self._completed[cid] = True
                return

    # ------------------------------------------------------------- inspection
    def heartbeat(self) -> None:
        """Have every worker daemon report node status to the master."""
        for w in self.workers:
            free_bw = float(self.fabric.ingress.capacity[w.node])
            w.report(self.cpu, self.engine.now, free_bw)

    def results(self):
        """The engine's metrics so far (FCT/CCT/traffic)."""
        return self.engine.result()
