"""Unit helpers and constants.

The whole library uses a single unit system:

* data sizes in **bytes** (floats are fine; volumes are continuous fluids),
* time in **seconds**,
* rates in **bytes per second**.

These helpers exist so call sites read like the paper ("a 100 Mbps link",
"a 4 MB flow") instead of raw powers of ten.  Network rates use decimal
(SI) prefixes as is conventional for link speeds; data sizes use binary
(IEC) prefixes as is conventional for payloads.
"""

from __future__ import annotations

# --- data sizes (binary prefixes) -------------------------------------------
KB: float = 1024.0
MB: float = 1024.0**2
GB: float = 1024.0**3
TB: float = 1024.0**4

# --- network rates (decimal prefixes, bits -> bytes) -------------------------
KBPS: float = 1e3 / 8.0
MBPS: float = 1e6 / 8.0
GBPS: float = 1e9 / 8.0

# --- time ---------------------------------------------------------------------
MS: float = 1e-3
US: float = 1e-6
MINUTE: float = 60.0
HOUR: float = 3600.0


def mbps(x: float) -> float:
    """Convert a link speed in megabits/s to bytes/s."""
    return x * MBPS


def gbps(x: float) -> float:
    """Convert a link speed in gigabits/s to bytes/s."""
    return x * GBPS


def bytes_to_human(n: float) -> str:
    """Render a byte count with a binary-prefix suffix (e.g. ``"2.4 GB"``)."""
    n = float(n)
    for unit, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= factor:
            return f"{n / factor:.2f} {unit}"
    return f"{n:.0f} B"


def rate_to_human(r: float) -> str:
    """Render a rate in bytes/s as a bit-rate string (e.g. ``"1.00 Gbps"``)."""
    bits = float(r) * 8.0
    for unit, factor in (("Gbps", 1e9), ("Mbps", 1e6), ("Kbps", 1e3)):
        if abs(bits) >= factor:
            return f"{bits / factor:.2f} {unit}"
    return f"{bits:.0f} bps"


def seconds_to_human(t: float) -> str:
    """Render a duration (e.g. ``"1.6 min"``, ``"230 ms"``)."""
    t = float(t)
    if abs(t) >= HOUR:
        return f"{t / HOUR:.2f} h"
    if abs(t) >= MINUTE:
        return f"{t / MINUTE:.2f} min"
    if abs(t) >= 1.0:
        return f"{t:.2f} s"
    return f"{t * 1e3:.1f} ms"
