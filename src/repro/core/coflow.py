"""Coflow: a set of parallel flows with collective semantics.

A coflow (Chowdhury & Stoica, HotNets'12) completes only when *all* of its
flows complete; its completion time (CCT) is the maximum FCT of its members
(Eq. 8).  Coflows are the scheduling unit of SEBF, SCF, NCF, LCF and FVDF.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.flow import Flow, FlowResult
from repro.errors import ConfigurationError

_coflow_ids = itertools.count()


def _next_coflow_id() -> int:
    return next(_coflow_ids)


def ensure_coflow_ids_above(value: int) -> None:
    """Advance the global coflow-id counter past ``value``.

    Mirror of :func:`repro.core.flow.ensure_flow_ids_above`, for coflows
    restored from a checkpoint with explicit ids.
    """
    global _coflow_ids
    nxt = next(_coflow_ids)
    _coflow_ids = itertools.count(max(nxt, int(value) + 1))


def coflow_id_watermark() -> int:
    """The next coflow id that would be assigned (without consuming it)."""
    global _coflow_ids
    nxt = next(_coflow_ids)
    _coflow_ids = itertools.count(nxt)
    return nxt


def reserve_coflow_ids(n: int) -> int:
    """Consume ``n`` consecutive coflow ids and return the first one.

    Mirror of :func:`repro.core.flow.reserve_flow_ids` for the
    block-columnar ingest path, which stamps coflow ids from arrays
    without constructing :class:`Coflow` objects.
    """
    global _coflow_ids
    first = next(_coflow_ids)
    _coflow_ids = itertools.count(first + int(n))
    return first


@dataclass
class Coflow:
    """A coflow: flows that belong to the same computing stage.

    Parameters
    ----------
    flows:
        Member flows.  Their ``coflow_id`` and ``arrival`` are stamped from
        this coflow on construction.
    arrival:
        Coflow arrival time in seconds (e.g. when the shuffle stage starts).
    label:
        Human-readable tag (job/stage name) used in reports.
    deadline:
        Optional completion deadline in seconds *after arrival* — used by
        the deadline-aware schedulers (a Varys-style extension; the paper's
        FVDF ignores it).
    """

    flows: List[Flow]
    arrival: float = 0.0
    label: str = ""
    deadline: Optional[float] = None
    coflow_id: int = field(default_factory=_next_coflow_id)

    def __post_init__(self) -> None:
        if not self.flows:
            raise ConfigurationError("a coflow must contain at least one flow")
        if self.arrival < 0:
            raise ConfigurationError(f"arrival must be >= 0, got {self.arrival}")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(f"deadline must be positive, got {self.deadline}")
        for f in self.flows:
            f.coflow_id = self.coflow_id
            f.arrival = self.arrival

    def __hash__(self) -> int:
        return hash(self.coflow_id)

    def __len__(self) -> int:
        return len(self.flows)

    @property
    def size(self) -> float:
        """Total bytes across all member flows."""
        return float(sum(f.size for f in self.flows))

    @property
    def width(self) -> int:
        """Number of member flows (the coflow's parallelism)."""
        return len(self.flows)

    @property
    def ports(self) -> frozenset:
        """All (kind, index) port endpoints this coflow touches."""
        eps = set()
        for f in self.flows:
            eps.add(("in", f.src))
            eps.add(("out", f.dst))
        return frozenset(eps)

    def bottleneck_load(self, ingress_cap: Sequence[float], egress_cap: Sequence[float]) -> float:
        """Effective bottleneck completion time of this coflow run alone.

        This is Varys' ``Γ`` used by SEBF: the maximum, over ports, of the
        coflow's bytes on that port divided by the port capacity.
        """
        in_load: Dict[int, float] = {}
        out_load: Dict[int, float] = {}
        for f in self.flows:
            in_load[f.src] = in_load.get(f.src, 0.0) + f.size
            out_load[f.dst] = out_load.get(f.dst, 0.0) + f.size
        gamma = 0.0
        for p, load in in_load.items():
            gamma = max(gamma, load / ingress_cap[p])
        for p, load in out_load.items():
            gamma = max(gamma, load / egress_cap[p])
        return gamma


@dataclass
class CoflowResult:
    """Per-coflow outcome of a simulation run."""

    coflow_id: int
    label: str
    arrival: float
    finish: float
    finish_physical: float
    size: float
    width: int
    bytes_sent: float
    flow_results: List[FlowResult]
    deadline: Optional[float] = None

    @property
    def cct(self) -> float:
        """Coflow completion time (observed)."""
        return self.finish - self.arrival

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the coflow met its deadline (None when it had none)."""
        if self.deadline is None:
            return None
        return self.cct <= self.deadline + 1e-9

    @property
    def traffic_saved(self) -> float:
        return self.size - self.bytes_sent


def total_size(coflows: Iterable[Coflow]) -> float:
    """Sum of sizes over coflows (convenience for workload stats)."""
    return float(sum(c.size for c in coflows))
