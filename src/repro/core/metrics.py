"""Metric computation over simulation results.

All of the paper's evaluation numbers are derived here: average FCT/CCT and
their CDFs (Fig. 6a–e, 7c), speedup ratios ("FVDF outperforms X by up to
N×"), per-size-bin breakdowns (Fig. 6b), percentile-filtered traces
(Fig. 6a), job-throughput windows (Table V) and traffic accounting
(Table VII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.coflow import CoflowResult
from repro.core.flow import FlowResult
from repro.core.results import LazyCoflowResults, LazyFlowResults
from repro.core.simulator import SimulationResult
from repro.errors import ConfigurationError


def _flow_sizes(flows: Sequence[FlowResult]) -> np.ndarray:
    """Per-flow sizes without materializing a lazy columnar sequence."""
    if isinstance(flows, LazyFlowResults):
        return flows.store.size
    return np.asarray([f.size for f in flows], dtype=np.float64)


def _flow_fcts(flows: Sequence[FlowResult]) -> np.ndarray:
    """Per-flow completion times, columnar when the sequence is lazy."""
    if isinstance(flows, LazyFlowResults):
        store = flows.store
        return store.finish - store.arrival
    return np.asarray([f.fct for f in flows], dtype=np.float64)


def _coflow_ccts(coflows: Sequence[CoflowResult]) -> np.ndarray:
    """Per-coflow completion times, columnar when the sequence is lazy."""
    if isinstance(coflows, LazyCoflowResults):
        store = coflows.store
        return store.cf_finish - store.cf_arrival
    return np.asarray([c.cct for c in coflows], dtype=np.float64)


# --------------------------------------------------------------------------- CDF
def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted values, cumulative fractions)`` for CDF plots."""
    x = np.sort(np.asarray(values, dtype=np.float64))
    if len(x) == 0:
        return x, x
    y = np.arange(1, len(x) + 1, dtype=np.float64) / len(x)
    return x, y


def cdf_at(values: Sequence[float], points: Sequence[float]) -> np.ndarray:
    """Evaluate the empirical CDF of ``values`` at ``points``."""
    x = np.sort(np.asarray(values, dtype=np.float64))
    pts = np.asarray(points, dtype=np.float64)
    if len(x) == 0:
        return np.zeros_like(pts)
    return np.searchsorted(x, pts, side="right") / len(x)


# ---------------------------------------------------------------------- speedup
def speedup(baseline: float, ours: float) -> float:
    """How many times faster ``ours`` is than ``baseline`` (paper's "N×")."""
    if ours <= 0:
        raise ConfigurationError("cannot compute speedup over zero time")
    return baseline / ours


# ------------------------------------------------------------------- flow level
def avg_fct(flows: Iterable[FlowResult]) -> float:
    if isinstance(flows, LazyFlowResults):
        vals = _flow_fcts(flows)
    else:
        vals = np.asarray([f.fct for f in flows], dtype=np.float64)
    return float(np.mean(vals)) if vals.size else 0.0


def fct_values(result: SimulationResult) -> np.ndarray:
    return result.fct_array


def filter_flows_by_size_percentile(
    flows: Sequence[FlowResult], keep_fraction: float
) -> List[FlowResult]:
    """Keep the largest ``keep_fraction`` of flows by size.

    Fig. 6(a)'s "97% flows"/"95% flows" settings filter out the smallest
    flows (kilobyte-scale) before computing averages.
    """
    if not 0 < keep_fraction <= 1:
        raise ConfigurationError("keep_fraction must lie in (0, 1]")
    if keep_fraction == 1.0 or not flows:
        return list(flows)
    sizes = _flow_sizes(flows)
    cutoff = np.quantile(sizes, 1.0 - keep_fraction)
    # Boolean mask instead of a per-flow Python comparison; only the
    # surviving flows are materialized when ``flows`` is lazy.
    idx = np.nonzero(sizes >= cutoff)[0]
    return [flows[int(i)] for i in idx]


def fct_by_size_bins(
    flows: Sequence[FlowResult], edges: Sequence[float]
) -> Dict[str, float]:
    """Average FCT per flow-size bin (Fig. 6(b)).

    ``edges`` are interior bin boundaries in bytes; n+1 bins result.
    Bins are keyed ``"[lo, hi)"`` and listed in order of first
    occurrence among the flows; empty bins are omitted.
    """
    edges = sorted(edges)
    bounds = [0.0] + list(edges) + [float("inf")]
    sizes = _flow_sizes(flows)
    fcts = _flow_fcts(flows)
    # digitize assigns each flow its unique [lo, hi) bin — one pass over
    # the flows replaces the old O(flows x bins) membership scan.
    bins = np.digitize(sizes, edges)
    present, first = np.unique(bins, return_index=True)
    out: Dict[str, float] = {}
    for b in present[np.argsort(first, kind="stable")]:
        label = f"[{bounds[b]:g}, {bounds[b + 1]:g})"
        out[label] = float(np.mean(fcts[bins == b]))
    return out


# ----------------------------------------------------------------- coflow level
def avg_cct(coflows: Iterable[CoflowResult]) -> float:
    if isinstance(coflows, LazyCoflowResults):
        vals = _coflow_ccts(coflows)
    else:
        vals = np.asarray([c.cct for c in coflows], dtype=np.float64)
    return float(np.mean(vals)) if vals.size else 0.0


def cct_values(result: SimulationResult) -> np.ndarray:
    return result.cct_array


# -------------------------------------------------------------------- job level
def throughput_windows(
    completions: Sequence[float], window: float, num_windows: int
) -> np.ndarray:
    """Cumulative completions at the end of each window (Table V).

    Table V reports, per 2000 s "time unit", the cumulative number of jobs
    completed by the end of units 1..6.
    """
    if window <= 0 or num_windows <= 0:
        raise ConfigurationError("window and num_windows must be positive")
    ends = (np.arange(num_windows) + 1) * window
    comp = np.sort(np.asarray(completions, dtype=np.float64))
    return np.searchsorted(comp, ends, side="right").astype(np.int64)


def completion_rates(
    completions: Sequence[float], window: float, num_windows: int
) -> Tuple[float, float, float]:
    """(MAX, MIN, AVG) completions per second over the windows (Table V)."""
    cum = throughput_windows(completions, window, num_windows)
    per_window = np.diff(np.concatenate([[0], cum])) / window
    if len(per_window) == 0:
        return 0.0, 0.0, 0.0
    return float(per_window.max()), float(per_window.min()), float(per_window.mean())


# --------------------------------------------------------------------- traffic
@dataclass
class TrafficSummary:
    """Bytes on the wire vs original bytes (Table VII / Fig. 7b)."""

    original: float
    sent: float

    @property
    def reduction(self) -> float:
        return 1.0 - self.sent / self.original if self.original > 0 else 0.0

    @classmethod
    def of(cls, result: SimulationResult) -> "TrafficSummary":
        return cls(
            original=result.total_bytes_original, sent=result.total_bytes_sent
        )


# --------------------------------------------------------------------- summary
@dataclass
class RunSummary:
    """One row of a comparison table: a policy's headline metrics."""

    name: str
    avg_fct: float
    avg_cct: float
    makespan: float
    traffic: TrafficSummary

    @classmethod
    def of(cls, name: str, result: SimulationResult) -> "RunSummary":
        return cls(
            name=name,
            avg_fct=result.avg_fct,
            avg_cct=result.avg_cct,
            makespan=result.makespan,
            traffic=TrafficSummary.of(result),
        )


def compare(
    summaries: Sequence[RunSummary], baseline: str, metric: str = "avg_cct"
) -> Dict[str, float]:
    """Speedup of every run over the named baseline on a metric."""
    by_name = {s.name: s for s in summaries}
    if baseline not in by_name:
        raise ConfigurationError(f"unknown baseline {baseline!r}")
    base = getattr(by_name[baseline], metric)
    return {s.name: speedup(base, getattr(s, metric)) for s in summaries}
