"""Fastest-Volume-Disposal-First — the paper's algorithm (Section IV).

The three pseudocode procedures map onto this module as:

* **Pseudocode 1** (CompressionStrategy) → :func:`compression_strategy`:
  β=1 iff the flow is compressible, a CPU core is free on its source node,
  and compression outruns transmission — ``R·(1-ξ) > B`` (Eq. 3).
* **Pseudocode 2** (FVDF / TimeCalculation / VolumeDisposal) →
  :func:`expected_fct` (Eq. 7), :func:`coflow_gamma` (Eq. 8) and
  :meth:`FVDFScheduler.schedule` (Shortest-``Γ_C``-First ordering plus the
  minimal-bandwidth allocation ``r = V / Γ_C``).
* **Pseudocode 3** (OnlineScheduling / Upgrade) → the priority classes
  ``P`` stored on :class:`~repro.core.scheduler.CoflowState`, multiplied by
  ``logbase`` at every arrival/completion and used as ``Γ_C / P``.

Volume disposal itself (line 24–35) is executed by the engine
(:mod:`repro.core.simulator`), which integrates the chosen rates and
compression assignments over the slice window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core import kernels
from repro.core import rate_allocation as ra
from repro.core.scheduler import Allocation, Scheduler, SchedulerView
from repro.errors import ConfigurationError

#: Pseudocode 3 line 16: exponential priority-upgrade base.
DEFAULT_LOGBASE = 1.2


def compression_strategy(
    view: SchedulerView,
    enable: bool = True,
    order: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-flow β (Pseudocode 1), resolved against per-node core budgets.

    Parameters
    ----------
    view:
        Current scheduler view.
    enable:
        Master switch (the ``swallow.smartCompress`` option).
    order:
        Flow indices in descending scheduling importance; when a node has
        fewer free cores than candidate flows, earlier flows win.

    Returns
    -------
    numpy.ndarray
        Boolean β per active flow.
    """
    want = _compression_want(view, enable)
    if not want.any():
        return want
    return view.compression.grant_cores(
        want, view.src, view.free_cores, priority=order
    )


def _compression_want(view: SchedulerView, enable: bool) -> np.ndarray:
    """The Eq. 3 wish-list: flows that *want* a core, before budgeting."""
    n = view.num_flows
    if not enable or view.compression is None or n == 0:
        return np.zeros(n, dtype=bool)
    engine = view.compression
    want = view.compressible & (view.raw > 0)
    # Eq. 3: only compress when it disposes volume faster than the wire can.
    want &= engine.speed * (1.0 - view.xi) > view.link_cap
    # Eq. 3 compares full-slice disposals; when transmission would already
    # finish the whole flow within one slice (Δt >= V), compressing first
    # can only add slice waste — never compress such flows.
    want &= view.volume > view.link_cap * view.slice_len
    return want


def expected_fct(view: SchedulerView, beta: np.ndarray) -> np.ndarray:
    """Eq. 7: worst-case expected FCT per flow.

    One slice proceeds under the chosen β; afterwards the estimate
    pessimistically assumes compression stays off, so the residual volume
    drains at the link bandwidth ``B``.
    """
    delta = view.slice_len
    B = view.link_cap
    vol = view.volume
    if view.compression is not None:
        dc = view.compression.speed * (1.0 - view.xi) * delta
    else:
        dc = np.zeros(view.num_flows)
    dt = B * delta
    disposed = np.where(beta, dc, dt)
    residual = np.maximum(vol - disposed, 0.0)
    return delta + residual / B


def coflow_gamma(view: SchedulerView, beta: np.ndarray) -> np.ndarray:
    """Eq. 8: ``Γ_C = max_f Γ_F(f)`` for every coflow in the view.

    Returns an array aligned with ``view.coflows``.  Computed as one
    segment-max over the view's precomputed unit offsets instead of a
    Python loop per coflow, through the active decision-kernel backend
    (max is exact, so every backend is bitwise the reduceat reference).
    """
    if not view.coflows:
        return np.empty(0)
    gamma_f = expected_fct(view, beta)
    perm, starts = view.unit_offsets()
    return kernels.active_kernel().segment_max(gamma_f, perm, starts)


def upgrade(view: SchedulerView, logbase: float = DEFAULT_LOGBASE) -> None:
    """Pseudocode 3 Upgrade: exponential priority growth for waiting coflows."""
    for cs in view.coflows:
        cs.priority_class *= logbase


@dataclass
class FVDFConfig:
    """Tunable knobs of FVDF (ablation targets; defaults match the paper)."""

    #: master compression switch (``swallow.smartCompress``).
    compress: bool = True
    #: starvation-freedom upgrade base; 1.0 disables priority classes.
    logbase: float = DEFAULT_LOGBASE
    #: "minimal" (paper: r = V/Γ_C then backfill), "greedy" (strict
    #: priority), or "madd" (Varys-style minimum allocation).
    rate_policy: str = "minimal"
    #: starvation-freedom aging policy.  "paper": P grows ×logbase for
    #: *every* waiting coflow at every arrival/completion, unboundedly
    #: (Pseudocode 3 verbatim) — on event-dense traces this degenerates
    #: into arrival-order scheduling.  "starved" (default): P grows only
    #: for coflows that received no service (zero rate, no compression) in
    #: the previous window — the paper's own justification ("preempted by
    #: small coflows exceeding a certain number of times") made literal;
    #: served coflows keep their class, so aging targets exactly the
    #: starving.  "decay"/"reset": age everyone but decay/clear the head's
    #: class — kept for the ablation (both re-starve large coflows that
    #: are only served in arrival gaps).  Compared empirically in
    #: benchmarks/bench_ablation_aging.py.
    aging: str = "starved"
    #: scheduling unit: "coflow" (the paper) or "flow" (each flow treated as
    #: its own unit — the Fig. 6(a–d) flow-level comparisons).
    granularity: str = "coflow"

    def __post_init__(self) -> None:
        if self.rate_policy not in ("minimal", "greedy", "madd"):
            raise ConfigurationError(f"unknown rate_policy {self.rate_policy!r}")
        if self.granularity not in ("coflow", "flow"):
            raise ConfigurationError(f"unknown granularity {self.granularity!r}")
        if self.logbase < 1.0:
            raise ConfigurationError("logbase must be >= 1")
        if self.aging not in ("paper", "starved", "decay", "reset"):
            raise ConfigurationError(f"unknown aging policy {self.aging!r}")


class FVDFScheduler(Scheduler):
    """Fastest-Volume-Disposal-First (the paper's contribution).

    At every decision point:

    1. ``Upgrade`` priority classes if the trigger is an arrival/completion.
    2. Decide β per flow (Pseudocode 1) under per-node core budgets.
    3. Compute ``Γ_C`` per scheduling unit (Eq. 7/8) and sort by
       ``Γ_C / P`` — Shortest-``Γ_C``-First with starvation freedom.
    4. Allocate bandwidth: compressing flows sit out this window; the rest
       receive rates per the configured policy, then leftover capacity
       backfills in priority order (work conservation).
    """

    uses_compression = True

    def __init__(self, config: Optional[FVDFConfig] = None, name: Optional[str] = None):
        self.config = config or FVDFConfig()
        self.name = name or ("fvdf" if self.config.compress else "fvdf-nocompress")
        #: coflow_id -> whether it received service in the last window
        self._last_served: dict = {}

    def reset(self) -> None:
        self._last_served.clear()

    # -- helpers ---------------------------------------------------------------
    def _unit_segments(self, view: SchedulerView):
        """Scheduling units as segment arrays over the active positions.

        Returns ``(perm, starts, P, owner)``: ``perm[starts[u]:starts[u+1]]``
        are unit *u*'s flow positions, ``P[u]`` its priority class and
        ``owner[u]`` the index of its coflow in ``view.coflows``.  Coflow
        granularity reuses the view's precomputed offsets verbatim; flow
        granularity splits every position into its own unit (inheriting
        its coflow's class) without materializing per-flow arrays.
        """
        perm, starts = view.unit_offsets()
        n_cof = len(view.coflows)
        p_cof = np.fromiter(
            (cs.priority_class for cs in view.coflows),
            dtype=np.float64,
            count=n_cof,
        )
        if self.config.granularity == "coflow":
            return perm, starts, p_cof, np.arange(n_cof, dtype=np.intp)
        owner = np.repeat(np.arange(n_cof, dtype=np.intp), np.diff(starts))
        starts_f = np.arange(len(perm) + 1, dtype=np.intp)
        return perm, starts_f, p_cof[owner], owner

    @staticmethod
    def _flows_in_unit_order(perm, starts, order) -> np.ndarray:
        """Active positions concatenated unit-by-unit in ``order``.

        Equivalent to ``np.concatenate([flows(u) for u in order])`` but via
        one stable argsort over a per-position unit rank — no per-unit
        Python iteration.
        """
        n_units = len(starts) - 1
        rank = np.empty(n_units, dtype=np.intp)
        rank[order] = np.arange(n_units, dtype=np.intp)
        key = np.repeat(rank, np.diff(starts))
        return perm[np.argsort(key, kind="stable")]

    def schedule(self, view: SchedulerView) -> Allocation:
        n = view.num_flows
        if n == 0:
            return Allocation.idle(0)
        cfg = self.config
        if cfg.logbase > 1.0 and view.trigger.is_preemption_point:
            if cfg.aging == "starved":
                upgraded = 0
                for cs in view.coflows:
                    if self._last_served.get(cs.coflow_id, True) is False:
                        cs.priority_class *= cfg.logbase
                        upgraded += 1
            else:
                upgrade(view, cfg.logbase)
                upgraded = len(view.coflows)
            if upgraded:
                self.obs.metrics.counter("fvdf.upgrades").inc(upgraded)

        perm, starts, P, owner = self._unit_segments(view)

        # Pass 1: optimistic β (budget resolved in arrival order) to get a
        # provisional urgency ranking, which then decides who actually wins
        # the contended cores.
        want = _compression_want(view, cfg.compress)
        if want.any():
            beta0 = view.compression.grant_cores(
                want, view.src, view.free_cores
            )
        else:
            beta0 = want
        gamma0 = self._unit_gammas(view, beta0, perm, starts)
        provisional = np.argsort(gamma0 / P, kind="stable")

        if bool((want & ~beta0).any()):
            # Pass 2: some node had more candidates than free cores, so the
            # urgency order decides who wins — re-grant and re-rank.
            flow_order = self._flows_in_unit_order(perm, starts, provisional)
            beta = view.compression.grant_cores(
                want, view.src, view.free_cores, priority=flow_order
            )
            gamma = self._unit_gammas(view, beta, perm, starts)
            order = np.argsort(gamma / P, kind="stable")
        else:
            # Every compression wish was granted (no contended cores), so
            # priority cannot change β; β unchanged ⇒ Γ unchanged ⇒ the
            # provisional ranking is already final — skip pass 2.
            beta, gamma, order = beta0, gamma0, provisional
        tr = self.obs.tracer
        flt = self.obs.recorder
        if tr.enabled or flt.enabled:
            first_flow = perm[starts[:-1]]
            if flt.enabled:
                # Columnar sink: three gathers, no per-unit Python lists.
                ranked = first_flow[order]
                flt.add_order(
                    view.time, view.coflow_ids[ranked], gamma[order], P[order]
                )
            if tr.enabled:
                tr.emit(
                    view.time,
                    "order",
                    units=[
                        [
                            int(view.coflow_ids[first_flow[u]]),
                            float(gamma[u]),
                            float(P[u]),
                            float(gamma[u] / P[u]),
                        ]
                        for u in order
                    ],
                )
        if cfg.aging in ("decay", "reset") and len(order) and view.trigger.is_preemption_point:
            cs = view.coflows[int(owner[order[0]])]
            if cfg.aging == "reset":
                cs.priority_class = 1.0
            else:  # decay: undo this event's upgrade and one more
                cs.priority_class = max(1.0, cs.priority_class / cfg.logbase**2)

        rates = self._allocate(view, perm, starts, order, gamma, beta)
        served_pos = (rates > 0) | beta
        cperm, cstarts = view.unit_offsets()
        served = np.logical_or.reduceat(served_pos[cperm], cstarts[:-1])
        self._last_served = {
            cs.coflow_id: bool(served[k]) for k, cs in enumerate(view.coflows)
        }
        return Allocation(rates=rates, compress=beta)

    def _unit_gammas(self, view, beta, perm, starts) -> np.ndarray:
        """Γ per unit: one segment-max over the unit offsets (Eq. 8)."""
        if len(perm) == 0:
            return np.empty(0)
        gamma_f = expected_fct(view, beta)
        return kernels.active_kernel().segment_max(gamma_f, perm, starts)

    def _allocate(self, view, perm, starts, order, gamma, beta) -> np.ndarray:
        rem_in, rem_out = view.fresh_capacity()
        extra = view.fresh_extra()
        vol = view.volume
        n = view.num_flows
        sendable = ~beta & (vol > 0)
        if self.config.rate_policy == "madd":
            groups = []
            for u in order:
                idx = perm[starts[u] : starts[u + 1]]
                groups.append(idx[sendable[idx]])
            return ra.madd(
                groups, view.src, view.dst, vol, rem_in, rem_out, extra=extra
            )
        flow_order = self._flows_in_unit_order(perm, starts, order)
        flow_order = flow_order[sendable[flow_order]]
        if self.config.rate_policy == "minimal":
            # Paper line 29: r = f.V / C.Γ_C — the minimum rate finishing the
            # flow within its coflow's expected completion time.  Both the
            # minimal pass and the work-conserving backfill are one
            # priority fill each: same flow order, with/without the V/Γ
            # demand cap.
            dims = ra.build_dims(view.src, view.dst, rem_in, rem_out, extra)
            unit_of_pos = np.empty(n, dtype=np.intp)
            unit_of_pos[perm] = np.repeat(
                np.arange(len(starts) - 1, dtype=np.intp), np.diff(starts)
            )
            demands = vol / np.maximum(gamma, view.slice_len)[unit_of_pos]
            rates = np.zeros(n)
            gathers = ra.gather_groups(flow_order, dims)
            ra.priority_fill(
                flow_order, dims, demands=demands, out=rates, gathers=gathers
            )
            minimal_total = float(rates.sum())
            # Work conservation: hand out leftovers in priority order.
            ra.priority_fill(flow_order, dims, out=rates, gathers=gathers)
            backfill = float(rates.sum()) - minimal_total
            if backfill > 0:
                self.obs.metrics.counter("fvdf.backfill_rate").inc(backfill)
            return rates
        # "greedy": strict priority in unit order.
        return ra.greedy_priority(
            flow_order, view.src, view.dst, rem_in, rem_out, extra=extra,
        )
