"""Fastest-Volume-Disposal-First — the paper's algorithm (Section IV).

The three pseudocode procedures map onto this module as:

* **Pseudocode 1** (CompressionStrategy) → :func:`compression_strategy`:
  β=1 iff the flow is compressible, a CPU core is free on its source node,
  and compression outruns transmission — ``R·(1-ξ) > B`` (Eq. 3).
* **Pseudocode 2** (FVDF / TimeCalculation / VolumeDisposal) →
  :func:`expected_fct` (Eq. 7), :func:`coflow_gamma` (Eq. 8) and
  :meth:`FVDFScheduler.schedule` (Shortest-``Γ_C``-First ordering plus the
  minimal-bandwidth allocation ``r = V / Γ_C``).
* **Pseudocode 3** (OnlineScheduling / Upgrade) → the priority classes
  ``P`` stored on :class:`~repro.core.scheduler.CoflowState`, multiplied by
  ``logbase`` at every arrival/completion and used as ``Γ_C / P``.

Volume disposal itself (line 24–35) is executed by the engine
(:mod:`repro.core.simulator`), which integrates the chosen rates and
compression assignments over the slice window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core import rate_allocation as ra
from repro.core.scheduler import Allocation, Scheduler, SchedulerView
from repro.errors import ConfigurationError

#: Pseudocode 3 line 16: exponential priority-upgrade base.
DEFAULT_LOGBASE = 1.2


def compression_strategy(
    view: SchedulerView,
    enable: bool = True,
    order: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-flow β (Pseudocode 1), resolved against per-node core budgets.

    Parameters
    ----------
    view:
        Current scheduler view.
    enable:
        Master switch (the ``swallow.smartCompress`` option).
    order:
        Flow indices in descending scheduling importance; when a node has
        fewer free cores than candidate flows, earlier flows win.

    Returns
    -------
    numpy.ndarray
        Boolean β per active flow.
    """
    n = view.num_flows
    if not enable or view.compression is None or n == 0:
        return np.zeros(n, dtype=bool)
    engine = view.compression
    want = view.compressible & (view.raw > 0)
    # Eq. 3: only compress when it disposes volume faster than the wire can.
    want &= engine.speed * (1.0 - view.xi) > view.link_cap
    # Eq. 3 compares full-slice disposals; when transmission would already
    # finish the whole flow within one slice (Δt >= V), compressing first
    # can only add slice waste — never compress such flows.
    want &= view.volume > view.link_cap * view.slice_len
    if not want.any():
        return want
    return engine.grant_cores(want, view.src, view.free_cores, priority=order)


def expected_fct(view: SchedulerView, beta: np.ndarray) -> np.ndarray:
    """Eq. 7: worst-case expected FCT per flow.

    One slice proceeds under the chosen β; afterwards the estimate
    pessimistically assumes compression stays off, so the residual volume
    drains at the link bandwidth ``B``.
    """
    delta = view.slice_len
    B = view.link_cap
    vol = view.volume
    if view.compression is not None:
        dc = view.compression.speed * (1.0 - view.xi) * delta
    else:
        dc = np.zeros(view.num_flows)
    dt = B * delta
    disposed = np.where(beta, dc, dt)
    residual = np.maximum(vol - disposed, 0.0)
    return delta + residual / B


def coflow_gamma(view: SchedulerView, beta: np.ndarray) -> np.ndarray:
    """Eq. 8: ``Γ_C = max_f Γ_F(f)`` for every coflow in the view.

    Returns an array aligned with ``view.coflows``.
    """
    gamma_f = expected_fct(view, beta)
    return np.asarray(
        [float(gamma_f[cs.flow_idx].max()) for cs in view.coflows]
    )


def upgrade(view: SchedulerView, logbase: float = DEFAULT_LOGBASE) -> None:
    """Pseudocode 3 Upgrade: exponential priority growth for waiting coflows."""
    for cs in view.coflows:
        cs.priority_class *= logbase


@dataclass
class FVDFConfig:
    """Tunable knobs of FVDF (ablation targets; defaults match the paper)."""

    #: master compression switch (``swallow.smartCompress``).
    compress: bool = True
    #: starvation-freedom upgrade base; 1.0 disables priority classes.
    logbase: float = DEFAULT_LOGBASE
    #: "minimal" (paper: r = V/Γ_C then backfill), "greedy" (strict
    #: priority), or "madd" (Varys-style minimum allocation).
    rate_policy: str = "minimal"
    #: starvation-freedom aging policy.  "paper": P grows ×logbase for
    #: *every* waiting coflow at every arrival/completion, unboundedly
    #: (Pseudocode 3 verbatim) — on event-dense traces this degenerates
    #: into arrival-order scheduling.  "starved" (default): P grows only
    #: for coflows that received no service (zero rate, no compression) in
    #: the previous window — the paper's own justification ("preempted by
    #: small coflows exceeding a certain number of times") made literal;
    #: served coflows keep their class, so aging targets exactly the
    #: starving.  "decay"/"reset": age everyone but decay/clear the head's
    #: class — kept for the ablation (both re-starve large coflows that
    #: are only served in arrival gaps).  Compared empirically in
    #: benchmarks/bench_ablation_aging.py.
    aging: str = "starved"
    #: scheduling unit: "coflow" (the paper) or "flow" (each flow treated as
    #: its own unit — the Fig. 6(a–d) flow-level comparisons).
    granularity: str = "coflow"

    def __post_init__(self) -> None:
        if self.rate_policy not in ("minimal", "greedy", "madd"):
            raise ConfigurationError(f"unknown rate_policy {self.rate_policy!r}")
        if self.granularity not in ("coflow", "flow"):
            raise ConfigurationError(f"unknown granularity {self.granularity!r}")
        if self.logbase < 1.0:
            raise ConfigurationError("logbase must be >= 1")
        if self.aging not in ("paper", "starved", "decay", "reset"):
            raise ConfigurationError(f"unknown aging policy {self.aging!r}")


class FVDFScheduler(Scheduler):
    """Fastest-Volume-Disposal-First (the paper's contribution).

    At every decision point:

    1. ``Upgrade`` priority classes if the trigger is an arrival/completion.
    2. Decide β per flow (Pseudocode 1) under per-node core budgets.
    3. Compute ``Γ_C`` per scheduling unit (Eq. 7/8) and sort by
       ``Γ_C / P`` — Shortest-``Γ_C``-First with starvation freedom.
    4. Allocate bandwidth: compressing flows sit out this window; the rest
       receive rates per the configured policy, then leftover capacity
       backfills in priority order (work conservation).
    """

    uses_compression = True

    def __init__(self, config: Optional[FVDFConfig] = None, name: Optional[str] = None):
        self.config = config or FVDFConfig()
        self.name = name or ("fvdf" if self.config.compress else "fvdf-nocompress")
        #: coflow_id -> whether it received service in the last window
        self._last_served: dict = {}

    def reset(self) -> None:
        self._last_served.clear()

    # -- helpers ---------------------------------------------------------------
    def _units(self, view: SchedulerView) -> List[Tuple[np.ndarray, float]]:
        """Scheduling units as (flow indices, priority class P)."""
        if self.config.granularity == "coflow":
            return [(cs.flow_idx, cs.priority_class) for cs in view.coflows]
        # Flow granularity: each flow is its own unit, inheriting its
        # coflow's priority class.
        units: List[Tuple[np.ndarray, float]] = []
        for cs in view.coflows:
            for i in cs.flow_idx:
                units.append((np.asarray([i], dtype=np.intp), cs.priority_class))
        return units

    def schedule(self, view: SchedulerView) -> Allocation:
        n = view.num_flows
        if n == 0:
            return Allocation.idle(0)
        cfg = self.config
        if cfg.logbase > 1.0 and view.trigger.is_preemption_point:
            if cfg.aging == "starved":
                upgraded = 0
                for cs in view.coflows:
                    if self._last_served.get(cs.coflow_id, True) is False:
                        cs.priority_class *= cfg.logbase
                        upgraded += 1
            else:
                upgrade(view, cfg.logbase)
                upgraded = len(view.coflows)
            if upgraded:
                self.obs.metrics.counter("fvdf.upgrades").inc(upgraded)

        units = self._units(view)

        # Pass 1: optimistic β (budget resolved in arrival order) to get a
        # provisional urgency ranking, which then decides who actually wins
        # the contended cores.
        beta0 = compression_strategy(view, enable=cfg.compress)
        gamma0 = self._unit_gammas(view, beta0, units)
        provisional = np.argsort(
            [g / p for (_, p), g in zip(units, gamma0)], kind="stable"
        )
        flow_order = np.concatenate([units[u][0] for u in provisional])

        # Pass 2: definitive β honouring the urgency order, then final Γ.
        beta = compression_strategy(view, enable=cfg.compress, order=flow_order)
        gamma = self._unit_gammas(view, beta, units)
        order = np.argsort(
            [g / p for (_, p), g in zip(units, gamma)], kind="stable"
        )
        tr = self.obs.tracer
        if tr.enabled:
            tr.emit(
                view.time,
                "order",
                units=[
                    [
                        int(view.coflow_ids[units[u][0][0]]),
                        float(gamma[u]),
                        float(units[u][1]),
                        float(gamma[u] / units[u][1]),
                    ]
                    for u in order
                ],
            )
        if cfg.aging in ("decay", "reset") and len(order) and view.trigger.is_preemption_point:
            head_flow = units[order[0]][0][0]
            head_cid = view.coflow_ids[head_flow]
            for cs in view.coflows:
                if cs.coflow_id == head_cid:
                    if cfg.aging == "reset":
                        cs.priority_class = 1.0
                    else:  # decay: undo this event's upgrade and one more
                        cs.priority_class = max(
                            1.0, cs.priority_class / cfg.logbase**2
                        )
                    break

        rates = self._allocate(view, units, order, gamma, beta)
        self._last_served = {
            cs.coflow_id: bool(
                (rates[cs.flow_idx] > 0).any() or beta[cs.flow_idx].any()
            )
            for cs in view.coflows
        }
        return Allocation(rates=rates, compress=beta)

    def _unit_gammas(self, view, beta, units) -> np.ndarray:
        gamma_f = expected_fct(view, beta)
        return np.asarray([float(gamma_f[idx].max()) for idx, _ in units])

    def _allocate(self, view, units, order, gamma, beta) -> np.ndarray:
        rem_in, rem_out = view.fresh_capacity()
        extra = view.fresh_extra()
        vol = view.volume
        rates = np.zeros(view.num_flows)
        sendable = ~beta & (vol > 0)
        if self.config.rate_policy == "madd":
            groups = [units[u][0][sendable[units[u][0]]] for u in order]
            return ra.madd(
                groups, view.src, view.dst, vol, rem_in, rem_out, extra=extra
            )
        if self.config.rate_policy == "minimal":
            # Paper line 29: r = f.V / C.Γ_C — the minimum rate finishing the
            # flow within its coflow's expected completion time.
            dims = ra.build_dims(view.src, view.dst, rem_in, rem_out, extra)
            for u in order:
                idx, _ = units[u]
                g = max(gamma[u], view.slice_len)
                for i in idx:
                    if not sendable[i]:
                        continue
                    r = min(vol[i] / g, ra.flow_headroom(i, dims))
                    if r <= 0:
                        continue
                    rates[i] = r
                    ra.consume(i, r, dims)
            # Work conservation: hand out leftovers in priority order.
            backfill = 0.0
            for u in order:
                for i in units[u][0]:
                    if not sendable[i]:
                        continue
                    headroom = ra.flow_headroom(i, dims)
                    if headroom <= 0:
                        continue
                    rates[i] += headroom
                    ra.consume(i, headroom, dims)
                    backfill += headroom
            if backfill > 0:
                self.obs.metrics.counter("fvdf.backfill_rate").inc(backfill)
            return rates
        # "greedy": strict priority in unit order.
        flow_order = [i for u in order for i in units[u][0] if sendable[i]]
        return ra.greedy_priority(
            np.asarray(flow_order, dtype=np.intp),
            view.src, view.dst, rem_in, rem_out, extra=extra,
        )
