"""Rate-allocation policies on the fabric's capacity constraints.

Every scheduler in this library reduces to one of three primitives over a
set of linear capacity *dimensions*:

* :func:`greedy_priority` — serve flows in a strict priority order, each
  taking as much of the remaining capacity as it can.  This is the
  work-conserving preemptive-priority allocation used by FIFO, SRTF, PFP,
  SEBF ("greedy" policy) and the backfill stages of MADD/FVDF.
* :func:`maxmin_fair` — (weighted) max-min fairness via progressive
  filling.  With unit weights this is Per-Flow Fairness (PFF/FAIR); with
  weights proportional to flow size it is Orchestra's Weighted Shuffle
  Scheduling (WSS).
* :func:`madd` — Varys' Minimum-Allocation-for-Desired-Duration: each
  coflow, in priority order, receives the *minimum* rates that finish all
  its flows exactly at its bottleneck completion time, leaving the rest of
  the fabric to lower-priority coflows.

A *dimension* is a pair ``(groups, caps)``: ``groups[i]`` is the index of
the constraint flow *i* occupies in that dimension (−1 = exempt) and
``caps`` the per-constraint remaining capacity, mutated in place as rates
are handed out.  The paper's big switch has exactly two dimensions —
(src, ingress capacities) and (dst, egress capacities) — which the public
signatures take directly; oversubscribed fabrics
(:class:`repro.fabric.twotier.TwoTierFabric`) add rack-uplink dimensions
through the ``extra`` parameter, and every policy honours them without
change.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Relative epsilon used to decide saturation in iterative filling.
_EPS = 1e-12

#: One capacity dimension: (per-flow group index with -1 = exempt, caps).
Dimension = Tuple[np.ndarray, np.ndarray]


def build_dims(
    src: np.ndarray,
    dst: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    extra: Optional[Sequence[Dimension]],
) -> List[Dimension]:
    dims: List[Dimension] = [(src, rem_in), (dst, rem_out)]
    if extra:
        for groups, caps in extra:
            dims.append((np.asarray(groups, dtype=np.intp), caps))
    return dims


def flow_headroom(i: int, dims: Sequence[Dimension]) -> float:
    """Remaining end-to-end capacity available to flow ``i``."""
    room = np.inf
    for groups, caps in dims:
        g = groups[i]
        if g >= 0:
            room = min(room, caps[g])
    return float(max(room, 0.0))


def consume(i: int, rate: float, dims: Sequence[Dimension]) -> None:
    """Charge ``rate`` to every constraint flow ``i`` occupies."""
    for groups, caps in dims:
        g = groups[i]
        if g >= 0:
            caps[g] -= rate


def greedy_priority(
    order: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    demands: Optional[np.ndarray] = None,
    extra: Optional[Sequence[Dimension]] = None,
) -> np.ndarray:
    """Strict-priority work-conserving allocation.

    Parameters
    ----------
    order:
        Flow indices from highest to lowest priority.
    src, dst:
        Per-flow port indices.
    rem_in, rem_out:
        Remaining capacities (mutated in place).
    demands:
        Optional per-flow rate cap (e.g. remaining volume / slice to avoid
        allocating more than a flow can use).
    extra:
        Additional capacity dimensions (rack uplinks etc.).

    Returns
    -------
    numpy.ndarray
        Per-flow rates aligned with ``src``/``dst`` (zeros for flows not in
        ``order``).
    """
    dims = build_dims(src, dst, rem_in, rem_out, extra)
    rates = np.zeros(len(src), dtype=np.float64)
    for i in order:
        r = flow_headroom(i, dims)
        if demands is not None:
            r = min(r, demands[i])
        if r <= 0.0:
            continue
        rates[i] = r
        consume(i, r, dims)
    return rates


def maxmin_fair(
    src: np.ndarray,
    dst: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    weights: Optional[np.ndarray] = None,
    demands: Optional[np.ndarray] = None,
    active: Optional[np.ndarray] = None,
    extra: Optional[Sequence[Dimension]] = None,
) -> np.ndarray:
    """Weighted max-min fair rates via progressive filling.

    Every active flow's rate grows proportionally to its weight until one
    of its constraints saturates or it reaches its demand; saturated flows
    freeze and filling continues.  Terminates after at most
    ``num_flows + num_constraints`` rounds.

    Parameters
    ----------
    weights:
        Per-flow weights (default all ones).  WSS passes flow sizes.
    demands:
        Optional per-flow rate caps.
    active:
        Optional boolean mask restricting which flows participate.
    extra:
        Additional capacity dimensions.
    """
    n = len(src)
    rates = np.zeros(n, dtype=np.float64)
    if n == 0:
        return rates
    dims = build_dims(src, dst, rem_in, rem_out, extra)
    if weights is None:
        w = np.ones(n, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64).copy()
        if np.any(w < 0):
            raise ConfigurationError("weights must be non-negative")
    live = np.ones(n, dtype=bool) if active is None else active.copy()
    live &= w > 0
    if demands is not None:
        live &= demands > 0

    while live.any():
        w_live = np.where(live, w, 0.0)
        # Per-constraint growth-rate limit lam = rem_cap / total weight.
        lam_flow = np.full(n, np.inf)
        for groups, caps in dims:
            member = groups >= 0
            gsum = np.bincount(
                groups[member], weights=w_live[member], minlength=len(caps)
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                lam = np.where(gsum > 0, caps / gsum, np.inf)
            lam_flow[member] = np.minimum(lam_flow[member], lam[groups[member]])
        if demands is not None:
            with np.errstate(divide="ignore"):
                lam_demand = np.where(live, (demands - rates) / w, np.inf)
            lam_flow = np.minimum(lam_flow, lam_demand)
        lam_flow = np.where(live, lam_flow, np.inf)
        lam_star = lam_flow.min()
        if not np.isfinite(lam_star) or lam_star < 0:
            break
        inc = np.where(live, w * lam_star, 0.0)
        rates += inc
        newly_frozen = live & (lam_flow <= lam_star * (1 + 1e-9) + _EPS)
        for groups, caps in dims:
            member = groups >= 0
            caps -= np.bincount(
                groups[member], weights=inc[member], minlength=len(caps)
            )
            np.clip(caps, 0.0, None, out=caps)
            sat = caps <= _EPS * (1 + caps)
            newly_frozen |= live & member & sat[np.clip(groups, 0, None)] & member
        if not newly_frozen.any():
            break  # numerical guard; should not happen
        live &= ~newly_frozen
    return rates


def coflow_gamma(
    volumes: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    extra: Optional[Sequence[Dimension]] = None,
) -> float:
    """Bottleneck completion time of one coflow under given free capacity.

    ``Γ = max_c (coflow bytes through constraint c) / (free capacity of c)``
    over every dimension — infinite when some needed constraint has no
    capacity left.
    """
    dims = build_dims(src, dst, rem_in, rem_out, extra)
    gamma = 0.0
    for groups, caps in dims:
        member = groups >= 0
        if not member.any():
            continue
        load = np.bincount(
            groups[member], weights=volumes[member], minlength=len(caps)
        )
        used = load > 0
        if not used.any():
            continue
        if np.any(caps[used] <= 0):
            return float("inf")
        gamma = max(gamma, float((load[used] / caps[used]).max()))
    return gamma


def madd(
    coflow_order: Sequence[np.ndarray],
    src: np.ndarray,
    dst: np.ndarray,
    volumes: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    backfill: bool = True,
    extra: Optional[Sequence[Dimension]] = None,
) -> np.ndarray:
    """Minimum-Allocation-for-Desired-Duration (Varys) over a coflow order.

    Parameters
    ----------
    coflow_order:
        Coflows from highest to lowest priority; each entry is an array of
        flow indices belonging to that coflow.
    volumes:
        Per-flow remaining volume (bytes).
    backfill:
        When ``True``, leftover capacity is handed out greedily in the
        same priority order after the MADD pass (work conservation — Varys
        does the same).
    extra:
        Additional capacity dimensions.

    Returns
    -------
    numpy.ndarray
        Per-flow rates.
    """
    dims = build_dims(src, dst, rem_in, rem_out, extra)
    rates = np.zeros(len(src), dtype=np.float64)
    for idx in coflow_order:
        idx = np.asarray(idx, dtype=np.intp)
        if len(idx) == 0:
            continue
        vol = volumes[idx]
        sendable = vol > 0
        if not sendable.any():
            continue
        idx = idx[sendable]
        vol = vol[sendable]
        sub_dims = [(groups[idx], caps) for groups, caps in dims]
        gamma = 0.0
        for groups, caps in sub_dims:
            member = groups >= 0
            if not member.any():
                continue
            load = np.bincount(groups[member], weights=vol[member], minlength=len(caps))
            used = load > 0
            if not used.any():
                continue
            if np.any(caps[used] <= 0):
                gamma = float("inf")
                break
            gamma = max(gamma, float((load[used] / caps[used]).max()))
        if not np.isfinite(gamma) or gamma <= 0:
            continue
        r = vol / gamma
        rates[idx] = r
        for groups, caps in sub_dims:
            member = groups >= 0
            caps -= np.bincount(groups[member], weights=r[member], minlength=len(caps))
            np.clip(caps, 0.0, None, out=caps)
    if backfill:
        flat = [i for idx in coflow_order for i in np.asarray(idx, dtype=np.intp)]
        for i in flat:
            if volumes[i] <= 0:
                continue
            headroom = flow_headroom(i, dims)
            if headroom <= 0:
                continue
            rates[i] += headroom
            consume(i, headroom, dims)
    return rates
