"""Rate-allocation policies on the fabric's capacity constraints.

Every scheduler in this library reduces to one of three primitives over a
set of linear capacity *dimensions*:

* :func:`greedy_priority` — serve flows in a strict priority order, each
  taking as much of the remaining capacity as it can.  This is the
  work-conserving preemptive-priority allocation used by FIFO, SRTF, PFP,
  SEBF ("greedy" policy) and the backfill stages of MADD/FVDF.
* :func:`maxmin_fair` — (weighted) max-min fairness via progressive
  filling.  With unit weights this is Per-Flow Fairness (PFF/FAIR); with
  weights proportional to flow size it is Orchestra's Weighted Shuffle
  Scheduling (WSS).
* :func:`madd` — Varys' Minimum-Allocation-for-Desired-Duration: each
  coflow, in priority order, receives the *minimum* rates that finish all
  its flows exactly at its bottleneck completion time, leaving the rest of
  the fabric to lower-priority coflows.

A *dimension* is a pair ``(groups, caps)``: ``groups[i]`` is the index of
the constraint flow *i* occupies in that dimension (−1 = exempt) and
``caps`` the per-constraint remaining capacity, mutated in place as rates
are handed out.  The paper's big switch has exactly two dimensions —
(src, ingress capacities) and (dst, egress capacities) — which the public
signatures take directly; oversubscribed fabrics
(:class:`repro.fabric.twotier.TwoTierFabric`) add rack-uplink dimensions
through the ``extra`` parameter, and every policy honours them without
change.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.kernels import arena as _arena
from repro.errors import ConfigurationError

#: Relative epsilon used to decide saturation in iterative filling.
_EPS = 1e-12

#: Below this many unsettled flows, fill rounds hand off to the list-based
#: scalar tail (~0.25 µs/flow): per-round numpy-call overhead (~30 kernel
#: launches over the contention-chain depth) only amortizes once the
#: working set is large enough for memory bandwidth to dominate.  Tuned on
#: the bench grid's burst case, where the pure list tail beat the
#: vectorized rounds for every pool up to several thousand flows.
_SCALAR_TAIL = 4096

#: One capacity dimension: (per-flow group index with -1 = exempt, caps).
Dimension = Tuple[np.ndarray, np.ndarray]


def build_dims(
    src: np.ndarray,
    dst: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    extra: Optional[Sequence[Dimension]],
) -> List[Dimension]:
    dims: List[Dimension] = [(src, rem_in), (dst, rem_out)]
    if extra:
        for groups, caps in extra:
            dims.append((np.asarray(groups, dtype=np.intp), caps))
    return dims


def flow_headroom(i: int, dims: Sequence[Dimension]) -> float:
    """Remaining end-to-end capacity available to flow ``i``."""
    room = np.inf
    for groups, caps in dims:
        g = groups[i]
        if g >= 0:
            room = min(room, caps[g])
    return float(max(room, 0.0))


def consume(i: int, rate: float, dims: Sequence[Dimension]) -> None:
    """Charge ``rate`` to every constraint flow ``i`` occupies."""
    for groups, caps in dims:
        g = groups[i]
        if g >= 0:
            caps[g] -= rate


def headroom_all(dims: Sequence[Dimension], n: int) -> np.ndarray:
    """Per-flow end-to-end headroom over all dimensions, vectorized.

    Equivalent to ``[flow_headroom(i, dims) for i in range(n)]``: the
    min over member dimensions of the group's remaining capacity,
    clipped at zero; flows exempt everywhere get ``inf``.
    """
    room = np.full(n, np.inf)
    for groups, caps in dims:
        member = groups >= 0
        np.minimum(
            room, caps[np.clip(groups, 0, None)], where=member, out=room
        )
    return np.maximum(room, 0.0)


def gather_groups(
    order: np.ndarray, dims: Sequence[Dimension]
) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
    """Pre-gather each dimension's group column in priority order.

    Returns ``(ogroups, members, safe)`` for :func:`priority_fill`'s
    ``gathers`` parameter, so callers issuing several fills with the same
    ``order`` (e.g. a minimal pass plus its backfill) pay the gathers
    once.
    """
    ogroups = [np.asarray(groups, dtype=np.intp)[order] for groups, _ in dims]
    members = [og >= 0 for og in ogroups]
    safe = [np.clip(og, 0, None) for og in ogroups]
    return ogroups, members, safe


def priority_fill(
    order: np.ndarray,
    dims: Sequence[Dimension],
    demands: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    n: Optional[int] = None,
    gathers: Optional[Tuple[List[np.ndarray], ...]] = None,
    kernel: Optional[object] = None,
) -> np.ndarray:
    """Sequential priority filling, computed with whole-group steps.

    Semantically identical to the scalar loop every priority policy used
    to run::

        for i in order:
            r = flow_headroom(i, dims)
            if demands is not None:
                r = min(r, demands[i])
            if r <= 0.0:
                continue
            rates[i] += r
            consume(i, r, dims)

    but instead of paying two Python calls per flow it settles flows in
    bulk.  With ``demands``, flows whose every constraint group can
    absorb the *total* demand of its members are granted exactly their
    demand wholesale (the fabric's steady state); the contended remainder
    is settled by :func:`_fill_contended_demands` in prefix-sized rounds.
    Without ``demands`` (backfill), flows settle in head-rounds: per
    round, the highest-priority unsettled flow of every constraint group
    (its "head") has every higher-priority competitor already settled, so
    its headroom against the current capacities is final and it is
    granted immediately.  Either way each round settles at least the
    globally first unsettled flow and drained constraints collapse their
    whole remaining queue, so the number of rounds tracks the deepest
    contention chain, not the flow count.

    Parameters
    ----------
    order:
        Flow indices from highest to lowest priority.
    dims:
        Capacity dimensions; ``caps`` arrays are mutated in place.
    demands:
        Optional per-flow rate caps (indexed by flow id, like ``order``).
    out:
        Optional rates array to accumulate into (created when omitted).
    n:
        Length of the rates array when ``out`` is omitted; defaults to
        the max dimension group array length.
    gathers:
        Optional ``(ogroups, members, safe)`` from :func:`gather_groups`
        for this exact ``order``, letting repeated fills skip the
        per-dimension gathers.
    kernel:
        Optional decision-kernel override — a backend name or
        :class:`repro.core.kernels.DecisionKernel` instance — for the
        contended rounds; defaults to the context-active kernel
        (:func:`repro.core.kernels.active_kernel`).  Backends are
        bit-identical, so this is purely a performance knob.

    Returns
    -------
    numpy.ndarray
        The (accumulated) per-flow rates.
    """
    if out is None:
        if n is None:
            n = max((len(groups) for groups, _ in dims), default=0)
        out = np.zeros(n, dtype=np.float64)
    order = np.asarray(order, dtype=np.intp)
    m = len(order)
    if m == 0:
        return out
    if m <= 8:
        # Tiny fills: the scalar loop beats any vectorized setup cost.
        for i in order:
            r = flow_headroom(i, dims)
            if demands is not None:
                r = min(r, float(demands[i]))
            if r <= 0.0:
                continue
            out[i] += r
            consume(i, r, dims)
        return out
    # Gather each dimension's group column once, in priority order
    # (reused across fills when the caller passes them in).
    if gathers is None:
        ogroups, members, safe = gather_groups(order, dims)
    else:
        ogroups, members, safe = gathers
    ndim = len(ogroups)
    if demands is not None:
        odemand = np.asarray(demands, dtype=np.float64)[order]
        # A non-positive demand is skipped without consuming: settled.
        settled = odemand <= 0.0
        # Contention partition.  A constraint group is *overloaded* when
        # the total demand of its unsettled members exceeds its remaining
        # capacity; a flow is *contended* when any of its groups is
        # overloaded.  Every uncontended flow receives exactly its demand
        # under sequential filling — each of its groups can absorb the
        # demand of all members (contended members never take more than
        # their demand either), so its headroom is >= its demand at its
        # turn regardless of position — and can be granted wholesale.
        # Only the contended remainder needs the rounds loop below.  This
        # is the steady state of FVDF's minimal pass (rates r = V/Γ fit
        # by construction unless the fabric is overloaded), where it
        # settles the whole fill in one shot.
        want = np.where(settled, 0.0, odemand)
        contended = np.zeros(m, dtype=bool)
        loads = []
        for (_, caps), og, member, sg in zip(dims, ogroups, members, safe):
            load = np.bincount(
                og[member], weights=want[member], minlength=len(caps)
            )
            over = load > caps
            if over.any():
                contended |= member & over[sg]
            loads.append(load)
        unc = ~settled & ~contended
        if not contended.any():
            if unc.any():
                np.add.at(out, order[unc], want[unc])
                for (_, caps), load in zip(dims, loads):
                    caps -= load
            return out
        if unc.any():
            np.add.at(out, order[unc], want[unc])
            for (_, caps), og, member in zip(dims, ogroups, members):
                mu = member & unc
                caps -= np.bincount(
                    og[mu], weights=want[mu], minlength=len(caps)
                )
        return _fill_contended_demands(
            out, order, dims, want, ~settled & contended,
            ogroups, members, safe, kernel=kernel,
        )
    # Backfill rounds over the shrinking open set.  A flow is ready when
    # it heads the remaining queue of every group it occupies: all
    # higher-priority competitors settled, so its headroom against the
    # current caps is final.  Heads of one round never share a group, so
    # the whole round commits with plain fancy indexing — no ``ufunc.at``
    # scatter needed for the capacity update.  ``op`` holds the
    # still-open positions in priority order; each round settles at least
    # the globally first open flow, and drained constraints collapse
    # their whole queue at once (caps never grow during a fill, so a zero
    # now is a zero at their turn too), so the number of rounds tracks
    # the deepest contention chain, not the flow count.  Small open sets
    # finish in the scalar loop — chain tails cost less flow-by-flow than
    # round-by-round.  Flows with no headroom *now* are dropped up front:
    # capacities only shrink during a fill, so they could never receive
    # anything at their turn either — this makes backfill after a
    # saturating pass (FVDF minimal, MADD) nearly free.
    # Per-round scratch comes from the thread-local arena (see
    # :mod:`repro.core.kernels.arena`): single-key buffers are fully
    # rewritten before every read, and the shrinking open set ``op``
    # alternates flip-parity buffers so a compress never reads the
    # buffer it writes.
    ar = _arena.local_arena()
    room0 = ar.take("bf_room0", m)
    room0[:] = np.inf
    gcap = ar.take("bf_gcap", m)
    for (_, caps), member, sg in zip(dims, members, safe):
        np.take(caps, sg, out=gcap)
        np.minimum(room0, gcap, where=member, out=room0)
    op = np.flatnonzero(room0 > 0.0)
    flip = 0
    while op.size:
        if op.size <= _SCALAR_TAIL:
            # Chain tail: backfill is the demand-capped loop with an
            # infinite demand (r = headroom at the flow's turn).
            _scalar_tail_demands(
                out,
                dims,
                order[op],
                np.full(op.size, math.inf),
                [mem[op] for mem in members],
                [s[op] for s in safe],
            )
            break
        no = op.size
        ready = ar.take("bf_ready", no, np.bool_)
        ready[:] = True
        for d in range(ndim):
            memb = np.take(members[d], op, out=ar.take("bf_memb", no, np.bool_))
            mp = np.flatnonzero(memb)
            if mp.size == 0:
                continue
            gm = safe[d][op[mp]]
            # First open member of each group, via reversed last-wins
            # scatter: O(num_groups) per round, no sort.
            first = ar.take(("bf_first", d), len(dims[d][1]), np.intp)
            first[:] = -1
            first[gm[::-1]] = mp[::-1]
            heads = ar.take("bf_heads", no, np.bool_)
            heads[:] = False
            heads[first[gm]] = True
            np.logical_not(memb, out=memb)
            np.logical_or(heads, memb, out=heads)
            np.logical_and(ready, heads, out=ready)
        nr = int(np.count_nonzero(ready))
        rp = np.compress(ready, op, out=ar.take("bf_rp", nr, np.intp))
        room = ar.take("bf_room", nr)
        room[:] = np.inf
        rcap = ar.take("bf_rcap", nr)
        rmemb = ar.take("bf_rmemb", nr, np.bool_)
        for d, (_, caps) in enumerate(dims):
            sg_rp = np.take(
                safe[d], rp, out=ar.take("bf_rsg", nr, safe[d].dtype)
            )
            np.take(caps, sg_rp, out=rcap)
            np.take(members[d], rp, out=rmemb)
            np.minimum(room, rcap, where=rmemb, out=room)
        r = np.maximum(room, 0.0, out=room)
        give = np.greater(r, 0.0, out=ar.take("bf_give", nr, np.bool_))
        ng = int(np.count_nonzero(give))
        gp = np.compress(give, rp, out=ar.take("bf_gp", ng, np.intp))
        rg = np.compress(give, r, out=ar.take("bf_rg", ng))
        if gp.size:
            np.add.at(out, order[gp], rg)
            for d, (_, caps) in enumerate(dims):
                gm = members[d][gp]
                caps[safe[d][gp][gm]] -= rg[gm]
        np.logical_not(ready, out=ready)
        nn = int(np.count_nonzero(ready))
        op = np.compress(
            ready, op, out=ar.take(("bf_op", flip ^ 1), nn, np.intp)
        )
        flip ^= 1
        if op.size:
            drop = ar.take("bf_drop", op.size, np.bool_)
            drop[:] = False
            dm = ar.take("bf_dm", op.size, np.bool_)
            for d, (_, caps) in enumerate(dims):
                dead = caps <= 0.0
                if dead.any():
                    sg_op = np.take(
                        safe[d], op,
                        out=ar.take("bf_dsg", op.size, safe[d].dtype),
                    )
                    np.take(dead, sg_op, out=dm)
                    np.logical_and(
                        dm,
                        np.take(
                            members[d], op,
                            out=ar.take("bf_dmb", op.size, np.bool_),
                        ),
                        out=dm,
                    )
                    np.logical_or(drop, dm, out=drop)
            if drop.any():
                np.logical_not(drop, out=drop)
                nk = int(np.count_nonzero(drop))
                op = np.compress(
                    drop, op, out=ar.take(("bf_op", flip ^ 1), nk, np.intp)
                )
                flip ^= 1
    return out


def _scalar_tail_demands(
    out: np.ndarray,
    dims: Sequence[Dimension],
    osub: np.ndarray,
    wsub: np.ndarray,
    memb_s: Sequence[np.ndarray],
    safe_s: Sequence[np.ndarray],
) -> None:
    """Settle a demand-capped pool flow-by-flow on plain Python lists.

    Bit-identical to the scalar reference loop (Python floats are IEEE
    doubles) but ~10x cheaper per flow than numpy scalar indexing.  The
    two-dimension case (the big switch without extra uplink dims) runs a
    dedicated ``zip`` loop; capacities are written back at the end.
    """
    ndim = len(memb_s)
    caps_l = [caps.tolist() for _, caps in dims]
    gi: list = []
    gr: list = []
    if ndim == 2:
        c0, c1 = caps_l
        for pos, (w, m0, g0, m1, g1) in enumerate(
            zip(
                wsub.tolist(),
                memb_s[0].tolist(),
                safe_s[0].tolist(),
                memb_s[1].tolist(),
                safe_s[1].tolist(),
            )
        ):
            r = w
            if m0 and c0[g0] < r:
                r = c0[g0]
            if m1 and c1[g1] < r:
                r = c1[g1]
            if r <= 0.0:
                continue
            gi.append(pos)
            gr.append(r)
            if m0:
                c0[g0] -= r
            if m1:
                c1[g1] -= r
    else:
        gl = [s.tolist() for s in safe_s]
        ml = [m.tolist() for m in memb_s]
        wl = wsub.tolist()
        for pos in range(len(wl)):
            r = wl[pos]
            for d in range(ndim):
                if ml[d][pos]:
                    c = caps_l[d][gl[d][pos]]
                    if c < r:
                        r = c
            if r <= 0.0:
                continue
            gi.append(pos)
            gr.append(r)
            for d in range(ndim):
                if ml[d][pos]:
                    caps_l[d][gl[d][pos]] -= r
    for d, (_, caps) in enumerate(dims):
        caps[:] = caps_l[d]
    if gi:
        np.add.at(out, osub[gi], gr)


def _fill_contended_demands(
    out: np.ndarray,
    order: np.ndarray,
    dims: Sequence[Dimension],
    want: np.ndarray,
    live: np.ndarray,
    ogroups: Sequence[np.ndarray],
    members: Sequence[np.ndarray],
    safe: Sequence[np.ndarray],
    kernel: Optional[object] = None,
) -> np.ndarray:
    """Settle the contended remainder of a demand-capped priority fill.

    Rounds over the contended subset, settling whole *prefixes* per
    round: a flow is ready when, in every dimension it occupies, it
    either (a) *fits* — the cumulative demand of all still-live members
    up to and including itself is within the group's remaining capacity,
    so no matter what its live predecessors actually take (never more
    than their demand) its headroom at its turn is at least its demand —
    or (b) *heads* the group's live queue, so its headroom against the
    current capacities is exact.  Flows fitting everywhere are granted
    exactly their demand; heads take ``min(headroom, demand)``.  This
    drains a long same-group queue (e.g. a wide coflow funnelling through
    one port) in O(1) rounds instead of one flow per round.  Grants of
    one round may share groups, so capacity updates go through
    ``np.bincount``.

    ``want``/``ogroups``/``members``/``safe`` are in ``order``-gathered
    coordinates; ``live`` masks the contended, still-unsettled entries.
    ``caps`` arrays are mutated in place.

    Settled entries are *compacted out* of the pool after every round
    rather than masked: filtering a group-sorted row list by a keep mask
    preserves the sort, so compaction only recomputes segment boundaries
    (an elementwise comparison), never re-sorts.  Each round then costs
    O(pool size) and the pool shrinks geometrically — and because
    everything in the pool is unsettled, the "heads its group's queue"
    test degenerates to the segment-start mask.

    All dimensions share one fused layout: each (entry, member dim) pair
    is one *row*, with group ids offset per dimension so they never
    collide.  One sort and one cumsum chain per round cover every
    dimension at once, and an entry is ready when none of its rows fail.

    The rounds themselves (and the scalar tail below the crossover) run
    through the selected decision-kernel backend
    (:mod:`repro.core.kernels`): this function builds the fused rows,
    the backend shards them along contention components and executes
    the round phases — serially, on a thread pool, or compiled — with
    bit-identical results either way.
    """
    sel = np.flatnonzero(live)
    osub = order[sel]
    wsub = want[sel]
    memb_s = [member[sel] for member in members]
    safe_s = [sg[sel] for sg in safe]
    ndim = len(memb_s)
    # Fused row layout, sorted once.  Group ids are dim-disjoint, so a
    # segment's rows all come from one dimension and (concatenation
    # order, stable sort) keep them in pool = priority order.  int32
    # keys make the radix sort measurably faster; group counts are tiny.
    goff = 0
    row_entry, row_group = [], []
    for d in range(ndim):
        mp = np.flatnonzero(memb_s[d])
        row_entry.append(mp)
        row_group.append((ogroups[d][sel][mp] + goff).astype(np.int32))
        goff += len(dims[d][1])
    rows = np.concatenate(row_entry)
    rowg = np.concatenate(row_group)
    srt = np.argsort(rowg, kind="stable")
    rows = rows[srt]
    rowg = rowg[srt]
    if kernel is not None:
        kern = kernels.resolve_kernel(kernel)
    else:
        kern = kernels.active_kernel()
    # _SCALAR_TAIL is read here (not at import) so tests pinning the
    # crossover via monkeypatch exercise both regimes.
    return kern.fill_pool(
        out, dims, osub, wsub, memb_s, safe_s, rows, rowg, _SCALAR_TAIL
    )


def greedy_priority(
    order: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    demands: Optional[np.ndarray] = None,
    extra: Optional[Sequence[Dimension]] = None,
) -> np.ndarray:
    """Strict-priority work-conserving allocation.

    Parameters
    ----------
    order:
        Flow indices from highest to lowest priority.
    src, dst:
        Per-flow port indices.
    rem_in, rem_out:
        Remaining capacities (mutated in place).
    demands:
        Optional per-flow rate cap (e.g. remaining volume / slice to avoid
        allocating more than a flow can use).
    extra:
        Additional capacity dimensions (rack uplinks etc.).

    Returns
    -------
    numpy.ndarray
        Per-flow rates aligned with ``src``/``dst`` (zeros for flows not in
        ``order``).
    """
    dims = build_dims(src, dst, rem_in, rem_out, extra)
    rates = np.zeros(len(src), dtype=np.float64)
    priority_fill(order, dims, demands=demands, out=rates)
    return rates


def maxmin_fair(
    src: np.ndarray,
    dst: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    weights: Optional[np.ndarray] = None,
    demands: Optional[np.ndarray] = None,
    active: Optional[np.ndarray] = None,
    extra: Optional[Sequence[Dimension]] = None,
) -> np.ndarray:
    """Weighted max-min fair rates via progressive filling.

    Every active flow's rate grows proportionally to its weight until one
    of its constraints saturates or it reaches its demand; saturated flows
    freeze and filling continues.  Terminates after at most
    ``num_flows + num_constraints`` rounds.

    Parameters
    ----------
    weights:
        Per-flow weights (default all ones).  WSS passes flow sizes.
    demands:
        Optional per-flow rate caps.
    active:
        Optional boolean mask restricting which flows participate.
    extra:
        Additional capacity dimensions.
    """
    n = len(src)
    rates = np.zeros(n, dtype=np.float64)
    if n == 0:
        return rates
    dims = build_dims(src, dst, rem_in, rem_out, extra)
    if weights is None:
        w = np.ones(n, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64).copy()
        if np.any(w < 0):
            raise ConfigurationError("weights must be non-negative")
    live = np.ones(n, dtype=bool) if active is None else active.copy()
    live &= w > 0
    if demands is not None:
        live &= demands > 0

    while live.any():
        w_live = np.where(live, w, 0.0)
        # Per-constraint growth-rate limit lam = rem_cap / total weight.
        lam_flow = np.full(n, np.inf)
        for groups, caps in dims:
            member = groups >= 0
            gsum = np.bincount(
                groups[member], weights=w_live[member], minlength=len(caps)
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                lam = np.where(gsum > 0, caps / gsum, np.inf)
            lam_flow[member] = np.minimum(lam_flow[member], lam[groups[member]])
        if demands is not None:
            with np.errstate(divide="ignore"):
                lam_demand = np.where(live, (demands - rates) / w, np.inf)
            lam_flow = np.minimum(lam_flow, lam_demand)
        lam_flow = np.where(live, lam_flow, np.inf)
        lam_star = lam_flow.min()
        if not np.isfinite(lam_star) or lam_star < 0:
            break
        inc = np.where(live, w * lam_star, 0.0)
        rates += inc
        newly_frozen = live & (lam_flow <= lam_star * (1 + 1e-9) + _EPS)
        for groups, caps in dims:
            member = groups >= 0
            caps -= np.bincount(
                groups[member], weights=inc[member], minlength=len(caps)
            )
            np.clip(caps, 0.0, None, out=caps)
            sat = caps <= _EPS * (1 + caps)
            # Exempt flows (group == -1) are clipped to index 0 purely to
            # keep the fancy index in bounds; the ``member`` mask discards
            # those lanes, so a saturated constraint 0 can never freeze a
            # flow that is exempt from this dimension.
            newly_frozen |= live & member & sat[np.clip(groups, 0, None)]
        if not newly_frozen.any():
            break  # numerical guard; should not happen
        live &= ~newly_frozen
    return rates


def coflow_gamma(
    volumes: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    extra: Optional[Sequence[Dimension]] = None,
) -> float:
    """Bottleneck completion time of one coflow under given free capacity.

    ``Γ = max_c (coflow bytes through constraint c) / (free capacity of c)``
    over every dimension — infinite when some needed constraint has no
    capacity left.
    """
    dims = build_dims(src, dst, rem_in, rem_out, extra)
    gamma = 0.0
    for groups, caps in dims:
        member = groups >= 0
        if not member.any():
            continue
        load = np.bincount(
            groups[member], weights=volumes[member], minlength=len(caps)
        )
        used = load > 0
        if not used.any():
            continue
        if np.any(caps[used] <= 0):
            return float("inf")
        gamma = max(gamma, float((load[used] / caps[used]).max()))
    return gamma


def madd(
    coflow_order: Sequence[np.ndarray],
    src: np.ndarray,
    dst: np.ndarray,
    volumes: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    backfill: bool = True,
    extra: Optional[Sequence[Dimension]] = None,
) -> np.ndarray:
    """Minimum-Allocation-for-Desired-Duration (Varys) over a coflow order.

    Parameters
    ----------
    coflow_order:
        Coflows from highest to lowest priority; each entry is an array of
        flow indices belonging to that coflow.
    volumes:
        Per-flow remaining volume (bytes).
    backfill:
        When ``True``, leftover capacity is handed out greedily in the
        same priority order after the MADD pass (work conservation — Varys
        does the same).
    extra:
        Additional capacity dimensions.

    Returns
    -------
    numpy.ndarray
        Per-flow rates.
    """
    dims = build_dims(src, dst, rem_in, rem_out, extra)
    rates = np.zeros(len(src), dtype=np.float64)
    for idx in coflow_order:
        idx = np.asarray(idx, dtype=np.intp)
        if len(idx) == 0:
            continue
        vol = volumes[idx]
        sendable = vol > 0
        if not sendable.any():
            continue
        idx = idx[sendable]
        vol = vol[sendable]
        sub_dims = [(groups[idx], caps) for groups, caps in dims]
        gamma = 0.0
        for groups, caps in sub_dims:
            member = groups >= 0
            if not member.any():
                continue
            load = np.bincount(groups[member], weights=vol[member], minlength=len(caps))
            used = load > 0
            if not used.any():
                continue
            if np.any(caps[used] <= 0):
                gamma = float("inf")
                break
            gamma = max(gamma, float((load[used] / caps[used]).max()))
        if not np.isfinite(gamma) or gamma <= 0:
            continue
        r = vol / gamma
        rates[idx] = r
        for groups, caps in sub_dims:
            member = groups >= 0
            caps -= np.bincount(groups[member], weights=r[member], minlength=len(caps))
            np.clip(caps, 0.0, None, out=caps)
    if backfill:
        flat = [np.asarray(idx, dtype=np.intp) for idx in coflow_order]
        flat = [idx for idx in flat if len(idx)]
        if flat:
            order = np.concatenate(flat)
            order = order[volumes[order] > 0]
            priority_fill(order, dims, out=rates)
    return rates
