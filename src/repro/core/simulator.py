"""Slice-based discrete-event simulation engine.

The engine implements the paper's execution model (Section IV): time is
divided into slices of length ``δ``; the master observes arrivals and
completions, and re-runs the scheduler, only at slice boundaries.  Between
two decision points the allocation is constant, so instead of stepping
slice-by-slice the engine computes the next *interesting* instant (arrival,
physical flow completion, raw-data exhaustion of a compressing flow, or the
run horizon) in closed form and jumps to the first slice boundary at or
after it.  The observable behaviour is identical to literal slice stepping —
including the "time-slice waste" on sub-slice flows that the paper discusses
— at a cost of O(decision points × active flows) instead of O(slices).

Volume semantics (Section IV-A1):

* a *transmitting* flow drains ``V = raw + comp`` at its allocated rate,
  compressed bytes first (they were produced first);
* a *compressing* flow consumes ``raw`` at the codec speed ``R`` and emits
  ``R·ξ`` into ``comp`` — net drain ``R(1-ξ)`` (Eq. 1);
* per slice a flow does one or the other, never both (the paper's β).

Bookkeeping invariant, checked in tests: for every finished flow,
``bytes_sent + (size - bytes_compressed_in·(1-ξ_eff)) == size`` — i.e.
volume is conserved up to compression shrinkage.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.compression.engine import CompressionEngine
from repro.core import kernels
from repro.core.coflow import Coflow, CoflowResult
from repro.core.events import ArrivalCalendar, EventKind, ScheduleTrigger
from repro.core.flow import Flow, FlowResult
from repro.core.ingest import CoflowBlock
from repro.core.results import LazyCoflowResults, LazyFlowResults, ResultStore
from repro.core.scheduler import (
    Allocation,
    CoflowState,
    Scheduler,
    SchedulerView,
    _SegmentRef,
)
from repro.cpu.cores import CpuModel
from repro.cpu.monitor import UtilizationRecorder
from repro.errors import ConfigurationError, SchedulingError, SimulationError
from repro.fabric.bigswitch import BigSwitch
from repro.obs import NULL_OBS, Observability

#: Default slice length (paper Section VI-B3: 0.01 s).
DEFAULT_SLICE = 0.01

_PENDING, _ACTIVE, _DONE, _CANCELLED = 0, 1, 2, 3

#: Growable SoA flow columns (order mirrors the ``__init__`` assignments).
#: ``_override`` carries ``ratio_override`` (-1 = none) so a coflow can be
#: reconstructed faithfully from columns alone (lazy materialization,
#: checkpoints) — the effective ``_xi`` already folds it in for the
#: physics.
_FLOW_COLS = (
    "_src", "_dst", "_size", "_arrival", "_compressible", "_coflow_of",
    "_flow_id", "_raw", "_comp", "_xi", "_override", "_bytes_sent",
    "_comp_in", "_comp_out", "_start", "_finish", "_finish_phys", "_state",
    "_slot_of", "_done_seq",
)

#: Dense per-coflow slot columns.
_CF_COLS = (
    "_cf_id", "_cf_arrival", "_cf_remaining", "_cf_finish",
    "_cf_finish_phys", "_cf_first", "_cf_count", "_cf_size", "_cf_bytes",
)


def _time_eps(t: float) -> float:
    """Comparison tolerance for simulated-time instants near ``t``.

    An absolute ``1e-12`` underflows double precision once ``t`` grows
    past a few thousand seconds (one ulp of 1e9 is already ~1.2e-7), so
    horizon/resume comparisons at large simulated times would silently
    become exact equality and a resume tick could double-fire a boundary
    slice.  A few ulps of ``t`` track float resolution at any magnitude
    while staying far below any slice length; the 1e-12 floor preserves
    the historical behaviour at small times.
    """
    return max(1e-12, 8.0 * math.ulp(abs(t)))


class SimulationResult:
    """Everything a run produced.

    Two interchangeable backings:

    * **columnar** (the engine's default): a :class:`ResultStore`
      snapshot; ``flow_results`` / ``coflow_results`` are lazy sequences
      that materialize dataclasses on demand, and the array accessors
      (``fct_array`` et al.) read columns directly with zero per-flow
      Python;
    * **eager** (legacy engines, hand-built results): plain lists, with
      the array accessors falling back to one comprehension, computed
      once and cached.

    Both paths produce bit-identical metrics; the lazy sequences compare
    equal to plain lists element-wise.
    """

    def __init__(
        self,
        flow_results: Optional[Sequence[FlowResult]] = None,
        coflow_results: Optional[Sequence[CoflowResult]] = None,
        makespan: float = 0.0,
        decision_points: int = 0,
        cpu_recorder: Optional[UtilizationRecorder] = None,
        ingress_bytes: Optional[np.ndarray] = None,
        egress_bytes: Optional[np.ndarray] = None,
        store: Optional[ResultStore] = None,
    ):
        if store is None and (flow_results is None or coflow_results is None):
            raise ValueError(
                "SimulationResult needs either a ResultStore or eager "
                "flow_results + coflow_results lists"
            )
        self._eager_flows = flow_results
        self._eager_coflows = coflow_results
        self.store = store
        self.makespan = makespan
        self.decision_points = decision_points
        self.cpu_recorder = cpu_recorder
        self.ingress_bytes = ingress_bytes
        self.egress_bytes = egress_bytes
        self._lazy_flows: Optional[LazyFlowResults] = None
        self._lazy_coflows: Optional[LazyCoflowResults] = None
        self._fct_array: Optional[np.ndarray] = None
        self._cct_array: Optional[np.ndarray] = None
        self._size_array: Optional[np.ndarray] = None
        self._finish_array: Optional[np.ndarray] = None

    # -------------------------------------------------------- result lists
    @property
    def flow_results(self) -> Sequence[FlowResult]:
        if self._eager_flows is not None:
            return self._eager_flows
        if self._lazy_flows is None:
            self._lazy_flows = LazyFlowResults(self.store)
        return self._lazy_flows

    @property
    def coflow_results(self) -> Sequence[CoflowResult]:
        if self._eager_coflows is not None:
            return self._eager_coflows
        if self._lazy_coflows is None:
            self._lazy_coflows = LazyCoflowResults(
                self.store, self.flow_results
            )
        return self._lazy_coflows

    # ------------------------------------------------------ columnar views
    @property
    def fct_array(self) -> np.ndarray:
        """Per-flow completion times (``finish - arrival``), flow order."""
        if self._fct_array is None:
            if self.store is not None and self._eager_flows is None:
                self._fct_array = self.store.finish - self.store.arrival
            else:
                self._fct_array = np.asarray(
                    [f.fct for f in self.flow_results], dtype=np.float64
                )
        return self._fct_array

    @property
    def size_array(self) -> np.ndarray:
        """Per-flow original sizes, aligned with :attr:`fct_array`."""
        if self._size_array is None:
            if self.store is not None and self._eager_flows is None:
                self._size_array = self.store.size
            else:
                self._size_array = np.asarray(
                    [f.size for f in self.flow_results], dtype=np.float64
                )
        return self._size_array

    @property
    def cct_array(self) -> np.ndarray:
        """Per-coflow completion times, coflow close order."""
        if self._cct_array is None:
            if self.store is not None and self._eager_coflows is None:
                self._cct_array = self.store.cf_finish - self.store.cf_arrival
            else:
                self._cct_array = np.asarray(
                    [c.cct for c in self.coflow_results], dtype=np.float64
                )
        return self._cct_array

    @property
    def finish_array(self) -> np.ndarray:
        """Per-coflow finish instants, aligned with :attr:`cct_array`."""
        if self._finish_array is None:
            if self.store is not None and self._eager_coflows is None:
                self._finish_array = self.store.cf_finish
            else:
                self._finish_array = np.asarray(
                    [c.finish for c in self.coflow_results], dtype=np.float64
                )
        return self._finish_array

    def _flow_column(self, name: str) -> np.ndarray:
        """A per-flow column (store-backed or via one comprehension)."""
        if self.store is not None and self._eager_flows is None:
            return getattr(self.store, name)
        attr = {"finish_phys": "finish_physical"}.get(name, name)
        return np.asarray(
            [getattr(f, attr) for f in self.flow_results], dtype=np.float64
        )

    def port_utilization(self, capacity_in, capacity_out):
        """Mean per-port utilization over the makespan (0..1 arrays).

        ``bytes_sent / (capacity * makespan)`` per side — how evenly the
        schedule spread load across the fabric.
        """
        if self.ingress_bytes is None or self.makespan <= 0:
            return None, None
        u_in = self.ingress_bytes / (np.asarray(capacity_in) * self.makespan)
        u_out = self.egress_bytes / (np.asarray(capacity_out) * self.makespan)
        return u_in, u_out

    @property
    def avg_fct(self) -> float:
        arr = self.fct_array
        if arr.size == 0:
            return 0.0
        return float(np.mean(arr))

    @property
    def avg_cct(self) -> float:
        arr = self.cct_array
        if arr.size == 0:
            return 0.0
        return float(np.mean(arr))

    @property
    def max_cct(self) -> float:
        """Tail CCT: the slowest coflow's completion time."""
        arr = self.cct_array
        if arr.size == 0:
            return 0.0
        return float(arr.max())

    @property
    def total_bytes_sent(self) -> float:
        return float(np.sum(self._flow_column("bytes_sent")))

    @property
    def total_bytes_original(self) -> float:
        return float(np.sum(self.size_array))

    @property
    def traffic_reduction(self) -> float:
        """Fraction of bytes kept off the wire by compression (Table VII)."""
        orig = self.total_bytes_original
        if orig <= 0:
            return 0.0
        return 1.0 - self.total_bytes_sent / orig

    def __repr__(self):
        return (
            f"SimulationResult(flows={len(self.flow_results)}, "
            f"coflows={len(self.coflow_results)}, "
            f"makespan={self.makespan!r}, "
            f"decision_points={self.decision_points})"
        )


class _CoflowRecord:
    """Engine-internal live state of one submitted coflow.

    The columnar engine keeps the hot per-coflow counters (remaining,
    finish-phys max, …) in dense slot-indexed arrays on the simulator;
    ``slot`` is this coflow's index into them.  The ``remaining`` /
    ``finish_phys`` / ``flow_results`` attributes remain for the pinned
    pre-columnar engine (:mod:`repro.core.reference`), which still does
    its bookkeeping per record.
    """

    __slots__ = (
        "coflow", "global_idx", "slot", "remaining", "state", "finish_phys",
        "flow_results",
    )

    def __init__(self, coflow: Coflow, global_idx: np.ndarray, slot: int = -1):
        self.coflow = coflow
        self.global_idx = global_idx
        self.slot = slot
        self.remaining = len(global_idx)
        self.state = CoflowState(coflow=coflow, flow_idx=np.empty(0, dtype=np.intp))
        self.finish_phys = 0.0
        self.flow_results: List[FlowResult] = []


class SliceSimulator:
    """The slice-granular coflow simulator.

    Parameters
    ----------
    fabric:
        The big-switch network.
    scheduler:
        The scheduling policy under test.
    slice_len:
        Slice length ``δ`` in seconds (default 10 ms, the paper's setting).
    cpu:
        CPU model; defaults to one idle ``cores_per_node=4`` node per
        ingress port.  Required shape: one node per ingress port.
    compression:
        Compression engine offered to compression-aware schedulers.  A
        default LZ4 engine is created when the scheduler declares
        ``uses_compression`` and none is given.
    sample_cpu:
        Record per-node busy fractions at every decision point (Fig. 2).
    obs:
        Observability bundle (:class:`repro.obs.Observability`).  Defaults
        to the disabled :data:`repro.obs.NULL_OBS`; every hook site guards
        on the component's ``enabled`` flag so the default costs only a
        predicate check per decision point.  The bundle is also bound onto
        the scheduler (``scheduler.bind_observability``) so policies can
        emit their own records (e.g. FVDF's Γ_C/P ordering).
    """

    def __init__(
        self,
        fabric: BigSwitch,
        scheduler: Scheduler,
        slice_len: float = DEFAULT_SLICE,
        cpu: Optional[CpuModel] = None,
        compression: Optional[CompressionEngine] = None,
        sample_cpu: bool = False,
        obs: Optional[Observability] = None,
    ):
        if slice_len <= 0:
            raise ConfigurationError(f"slice_len must be positive, got {slice_len}")
        self.fabric = fabric
        self.scheduler = scheduler
        self.obs = obs if obs is not None else NULL_OBS
        scheduler.bind_observability(self.obs)
        self.slice_len = float(slice_len)
        self.cpu = cpu if cpu is not None else CpuModel(fabric.num_ingress)
        if self.cpu.num_nodes != fabric.num_ingress:
            raise ConfigurationError(
                f"cpu has {self.cpu.num_nodes} nodes but fabric has "
                f"{fabric.num_ingress} ingress ports"
            )
        if compression is None and scheduler.uses_compression:
            compression = CompressionEngine()
        self.compression = compression

        # --- growable SoA flow store -----------------------------------------
        self._cap = 0
        self._n = 0
        self._src = np.empty(0, dtype=np.intp)
        self._dst = np.empty(0, dtype=np.intp)
        self._size = np.empty(0, dtype=np.float64)
        self._arrival = np.empty(0, dtype=np.float64)
        self._compressible = np.empty(0, dtype=bool)
        self._coflow_of = np.empty(0, dtype=np.int64)
        self._flow_id = np.empty(0, dtype=np.int64)
        self._raw = np.empty(0, dtype=np.float64)
        self._comp = np.empty(0, dtype=np.float64)
        self._xi = np.empty(0, dtype=np.float64)  # effective ratio per flow
        self._override = np.empty(0, dtype=np.float64)  # ratio_override, -1=None
        self._bytes_sent = np.empty(0, dtype=np.float64)
        self._comp_in = np.empty(0, dtype=np.float64)
        self._comp_out = np.empty(0, dtype=np.float64)
        self._start = np.empty(0, dtype=np.float64)
        self._finish = np.empty(0, dtype=np.float64)
        self._finish_phys = np.empty(0, dtype=np.float64)
        self._state = np.empty(0, dtype=np.int8)
        #: Owning coflow *slot* (dense per-coflow array index) per flow.
        self._slot_of = np.empty(0, dtype=np.intp)
        #: Retirement sequence number per flow (order within the run).
        self._done_seq = np.empty(0, dtype=np.int64)

        # --- dense per-coflow slot arrays ------------------------------------
        # One slot per submitted coflow, in submission order.  Retirement
        # closes coflows with bincount/scatter ops over these instead of
        # chasing record attributes per flow.
        self._cf_cap = 0
        self._n_cf = 0
        self._cf_id = np.empty(0, dtype=np.int64)
        self._cf_arrival = np.empty(0, dtype=np.float64)
        self._cf_remaining = np.empty(0, dtype=np.int64)
        self._cf_finish = np.empty(0, dtype=np.float64)
        self._cf_finish_phys = np.empty(0, dtype=np.float64)
        self._cf_first = np.empty(0, dtype=np.intp)
        self._cf_count = np.empty(0, dtype=np.int64)
        self._cf_size = np.empty(0, dtype=np.float64)
        self._cf_bytes = np.empty(0, dtype=np.float64)
        self._cf_labels: List[str] = []
        self._cf_deadlines: List[Optional[float]] = []
        # Per-slot lazy object caches: the backing Coflow (None for rows
        # ingested from raw columns until someone asks for the object)
        # and the CoflowState handed to schedulers (created on first
        # activation).
        self._cf_coflows: List[Optional[Coflow]] = []
        self._cf_states: List[Optional[CoflowState]] = []

        # --- retirement log (feeds the ResultStore snapshot) ----------------
        self._done_chunks: List[np.ndarray] = []   # global flow idx, per retire
        self._closed_chunks: List[np.ndarray] = []  # coflow slots, per retire
        self._done_total = 0

        #: Active-flow global indices, maintained as an ndarray so view
        #: building and volume integration never round-trip through lists.
        self._active = np.empty(0, dtype=np.intp)
        self._cancelled: set = set()
        # --- incremental view cache ------------------------------------------
        # Coflow grouping (and every gather of per-flow constants) only
        # changes when the active set changes; arrivals and retirements
        # now patch the cached segmentation *incrementally* (append /
        # shrink deltas), so ``_groups_dirty`` — a full rebuild — is only
        # set by cancellation and the rare delta-ineligible arrival.
        self._groups_dirty = True
        #: Debug/benchmark knob: force a full regroup at every decision
        #: point, restoring the pre-incremental view-building cost (used
        #: by the perf harness to measure the cache's win and by the
        #: microbench overhead guard).
        self.force_regroup = False
        self._cached_states: List[CoflowState] = []
        self._cached_coflow_ids = np.empty(0, dtype=np.int64)
        self._seg = _SegmentRef(
            np.empty(0, dtype=np.intp), np.zeros(1, dtype=np.intp)
        )
        self._cached_unit_of_pos = np.empty(0, dtype=np.intp)
        self._cached_group_slots = np.empty(0, dtype=np.intp)
        self._cached_static: Dict[str, np.ndarray] = {}
        # Generation-stamped scratch arena for the raw/comp view columns
        # (the only per-flow state the view must re-read every decision).
        # Buffers are reused decision to decision; full regroups bump the
        # generation and state eviction clears it (see
        # :mod:`repro.core.kernels.arena`).
        self._view_scratch = kernels.arena.new_arena()
        self._cap_events: List = []
        #: coflow id -> dense slot index (remapped on drain compaction).
        self._coflows: Dict[int, int] = {}
        self._calendar = ArrivalCalendar()
        self._claim_nodes: List[int] = []  # nodes with a core claimed last window

        self._k = 0  # current slice index; now == _k * slice_len
        # Memoized _time_eps(now): `now` only changes with _k, and the
        # hot paths (submit/activate/horizon) all want the same epsilon.
        self._eps_k = -1
        self._eps_val = 0.0
        self._started = False
        self._decision_points = 0
        self._ingress_bytes = np.zeros(fabric.num_ingress)
        self._egress_bytes = np.zeros(fabric.num_egress)
        self._flow_results: List[FlowResult] = []
        self._coflow_results: List[CoflowResult] = []
        self._on_coflow_complete: List[Callable[[CoflowResult], None]] = []
        self._on_flow_complete: List[Callable[[FlowResult], None]] = []
        self._on_decision: List[Callable[[float], None]] = []
        self._recorder = UtilizationRecorder(self.cpu.num_nodes) if sample_cpu else None

    # ------------------------------------------------------------------ store
    def _grow(self, extra: int) -> None:
        need = self._n + extra
        if need <= self._cap:
            return
        new_cap = max(64, self._cap * 2, need)
        for name in _FLOW_COLS:
            old = getattr(self, name)
            arr = np.zeros(new_cap, dtype=old.dtype)
            arr[: self._n] = old[: self._n]
            setattr(self, name, arr)
        self._cap = new_cap

    def _cf_grow(self, extra: int) -> None:
        need = self._n_cf + extra
        if need <= self._cf_cap:
            return
        new_cap = max(16, self._cf_cap * 2, need)
        for name in _CF_COLS:
            old = getattr(self, name)
            arr = np.zeros(new_cap, dtype=old.dtype)
            arr[: self._n_cf] = old[: self._n_cf]
            setattr(self, name, arr)
        self._cf_cap = new_cap

    # ------------------------------------------------------------------- API
    @property
    def now(self) -> float:
        """Current simulated time (always on the slice grid)."""
        return self._k * self.slice_len

    @property
    def pending(self) -> bool:
        """Whether any submitted work is still unfinished."""
        return self._active.size > 0 or len(self._calendar) > 0

    @property
    def active_flows(self) -> int:
        """Number of currently active flows (the hot-path working-set size)."""
        return int(self._active.size)

    @property
    def retired_flows(self) -> int:
        """Cumulative count of flows that have finished, across the whole
        run — including rows already evicted by :meth:`drain_retired`.
        ``submitted - retired_flows`` is the in-flight backlog a streaming
        driver throttles on."""
        return int(self._done_total)

    @property
    def live_rows(self) -> int:
        """Rows currently held in the columnar store (the engine's memory
        footprint); shrinks when :meth:`drain_retired` compacts."""
        return int(self._n)

    def on_coflow_complete(self, fn: Callable[[CoflowResult], None]) -> None:
        """Register a completion callback (used by the cluster simulator)."""
        self._on_coflow_complete.append(fn)

    def on_flow_complete(self, fn: Callable[[FlowResult], None]) -> None:
        self._on_flow_complete.append(fn)

    def on_decision(self, fn: Callable[[float], None]) -> None:
        """Register a hook fired at every decision point (before the
        scheduler runs) — e.g. the Swallow daemons' measurement beat."""
        self._on_decision.append(fn)

    def submit(self, coflow: Coflow) -> None:
        """Add a coflow to the workload; allowed any time before its arrival."""
        self.submit_many([coflow])

    def submit_many(self, coflows: Sequence[Coflow]) -> None:
        """Batched ingest of coflow objects.

        Flattens the dataclasses into a :class:`CoflowBlock` (the only
        per-flow Python left on this path) and hands it to
        :meth:`submit_block`; the block keeps the original objects so
        legacy callers see the same instances.
        """
        coflows = list(coflows)
        if not coflows:
            return
        self.submit_block(CoflowBlock.from_coflows(coflows))

    def submit_block(self, block: CoflowBlock) -> None:
        """Block-columnar ingest: write every flow/coflow column in bulk.

        One ``_grow``, one vectorized ``xi`` evaluation, one
        ``validate_endpoints`` call and one staged calendar append for the
        whole block; per-coflow Python is limited to the id→slot dict
        fill.  Blocks built from raw columns (streaming sources) never
        construct :class:`Flow`/:class:`Coflow` objects at all.
        """
        m = block.n_coflows
        if m == 0:
            return
        block.validate()
        now = self.now
        eps = self._eps_now()
        if float(block.arrival.min()) < now - eps:
            i = int(block.arrival.argmin())
            raise ConfigurationError(
                f"coflow {int(block.coflow_id[i])} arrives at "
                f"{float(block.arrival[i])} "
                f"but the simulation is already at {now}"
            )
        ids = block.coflow_id
        n_new = block.n_flows
        self.fabric.validate_endpoints(block.src, block.dst)
        size = block.size
        if self.compression is not None:
            xi = np.asarray(self.compression.ratio(size), dtype=np.float64)
        else:
            xi = np.ones_like(size)
        override = block.override
        has_override = override >= 0.0
        if has_override.any():
            xi = np.where(has_override, override, xi)

        self._grow(n_new)
        g0, g1 = self._n, self._n + n_new
        widths = block.width
        slot0 = self._n_cf
        self._cf_grow(m)
        slots = np.arange(slot0, slot0 + m, dtype=np.intp)

        self._src[g0:g1] = block.src
        self._dst[g0:g1] = block.dst
        self._size[g0:g1] = size
        # Per-flow arrivals normally equal the coflow's but the legacy
        # object API lets them diverge, so the block carries them.
        self._arrival[g0:g1] = block.flow_arrival
        self._compressible[g0:g1] = block.compressible
        self._coflow_of[g0:g1] = np.repeat(ids, widths)
        self._flow_id[g0:g1] = block.flow_id
        self._raw[g0:g1] = size
        self._comp[g0:g1] = 0.0
        self._xi[g0:g1] = xi
        self._override[g0:g1] = override
        self._state[g0:g1] = _PENDING
        self._slot_of[g0:g1] = np.repeat(slots, widths)
        self._n = g1

        firsts = g0 + np.concatenate(([0], np.cumsum(widths[:-1])))
        self._cf_id[slots] = ids
        self._cf_arrival[slots] = block.arrival
        self._cf_remaining[slots] = widths
        self._cf_first[slots] = firsts
        self._cf_count[slots] = widths
        self._n_cf += m
        self._cf_labels.extend(block.label)
        self._cf_deadlines.extend(block.deadline)
        if block.coflows is not None:
            self._cf_coflows.extend(block.coflows)
        else:
            self._cf_coflows.extend([None] * m)
        self._cf_states.extend([None] * m)
        cmap = self._coflows
        slot = slot0
        for cid in ids.tolist():
            if cid in cmap:
                # roll the block back before raising: nothing submitted
                self._n = g0
                self._n_cf = slot0
                del self._cf_labels[slot0:]
                del self._cf_deadlines[slot0:]
                del self._cf_coflows[slot0:]
                del self._cf_states[slot0:]
                for done in ids.tolist():
                    if cmap.get(done, -1) >= slot0:
                        del cmap[done]
                raise ConfigurationError(f"coflow {cid} submitted twice")
            cmap[cid] = slot
            slot += 1
        self._calendar.push_batch(block.arrival, slots)

    # ------------------------------------------------ lazy per-slot objects
    def _coflow_for_slot(self, slot: int) -> Coflow:
        """The backing :class:`Coflow` of a slot, materialized on demand.

        Rows ingested from raw columns have no object until a legacy
        caller (tracer callback, ``state.coflow``, ``export_state``)
        asks; reconstruction carries the stored ids, so the object is
        indistinguishable from one built at ingest time.
        """
        cf = self._cf_coflows[slot]
        if cf is None:
            a = int(self._cf_first[slot])
            b = a + int(self._cf_count[slot])
            arrival = float(self._cf_arrival[slot])
            flows = [
                Flow(
                    src=src,
                    dst=dst,
                    size=size,
                    arrival=arrival,
                    compressible=comp,
                    ratio_override=None if ov < 0.0 else ov,
                    flow_id=fid,
                )
                for src, dst, size, comp, ov, fid in zip(
                    self._src[a:b].tolist(),
                    self._dst[a:b].tolist(),
                    self._size[a:b].tolist(),
                    self._compressible[a:b].tolist(),
                    self._override[a:b].tolist(),
                    self._flow_id[a:b].tolist(),
                )
            ]
            cf = Coflow(
                flows,
                arrival=arrival,
                label=self._cf_labels[slot],
                deadline=self._cf_deadlines[slot],
                coflow_id=int(self._cf_id[slot]),
            )
            self._cf_coflows[slot] = cf
        return cf

    def _materialize_coflow(self, coflow_id: int) -> Coflow:
        """Coflow object by id — the factory behind lazy CoflowStates.

        Resolves the *current* slot through the id map, so the factory
        stays valid across drain compactions.
        """
        return self._coflow_for_slot(self._coflows[coflow_id])

    def _state_for_slot(self, slot: int) -> CoflowState:
        """The scheduler-facing :class:`CoflowState` of a slot.

        Created lazily on first activation; carries only the coflow id
        plus a materialization factory, so the stock policies (which read
        ``state.coflow_id``) never force the object into existence.
        """
        st = self._cf_states[slot]
        if st is None:
            cid = int(self._cf_id[slot])
            st = CoflowState(
                coflow_id=cid,
                coflow_factory=lambda sim=self, cid=cid: (
                    sim._materialize_coflow(cid)
                ),
                flow_idx=np.empty(0, dtype=np.intp),
            )
            self._cf_states[slot] = st
        return st

    def _eps_now(self) -> float:
        """Memoized ``_time_eps(self.now)`` — ``now`` only moves with ``_k``."""
        if self._eps_k != self._k:
            self._eps_val = _time_eps(self._k * self.slice_len)
            self._eps_k = self._k
        return self._eps_val

    def cancel_coflow(self, coflow_id: int) -> int:
        """Abort a coflow: its unfinished flows leave the fabric now.

        Models job kills and framework-level aborts (e.g. a Spark stage
        failing mid-shuffle).  Flows that already completed keep their
        results; the coflow itself never produces a
        :class:`~repro.core.coflow.CoflowResult`.

        Returns the number of flows cancelled.  Callable between
        :meth:`run` calls or from completion callbacks.

        Cancelled flows are stamped with the cancellation instant in
        ``_finish``/``_finish_phys`` (never-started flows also get
        ``_start`` stamped), so store-level analysis can tell an aborted
        flow's lifetime apart from "finished at t=0".
        """
        slot = self._coflows.get(coflow_id)
        if slot is None:
            raise ConfigurationError(f"unknown coflow {coflow_id}")
        if self._cf_remaining[slot] == 0:
            raise ConfigurationError(
                f"coflow {coflow_id} already completed; nothing to cancel"
            )
        now = self.now
        first = int(self._cf_first[slot])
        gi = np.arange(first, first + int(self._cf_count[slot]), dtype=np.intp)
        st = self._state[gi]
        live = (st == _PENDING) | (st == _ACTIVE)
        self._start[gi[live & (st == _PENDING)]] = now
        live_idx = gi[live]
        self._state[live_idx] = _CANCELLED
        self._finish[live_idx] = now
        unset = live & (self._finish_phys[gi] == 0.0)
        self._finish_phys[gi[unset]] = now
        cancelled = int(np.count_nonzero(live))
        # Activation flips a whole coflow at once, so flows are all
        # _PENDING exactly when the coflow is still in the calendar.
        if st[0] == _PENDING:
            self._calendar.discard(slot)
        self._active = self._active[self._coflow_of[self._active] != coflow_id]
        self._groups_dirty = True
        self._cf_remaining[slot] = 0
        self._cancelled.add(int(coflow_id))
        tr = self.obs.tracer
        if tr.enabled:
            tr.emit(now, "cancel", coflow_id=int(coflow_id), n_flows=cancelled)
        flt = self.obs.recorder
        if flt.enabled:
            flt.add_cancel(now, int(coflow_id), cancelled)
        self.obs.metrics.counter("engine.cancellations").inc(cancelled)
        return cancelled

    @property
    def cancelled_coflows(self) -> frozenset:
        """Ids of coflows aborted via :meth:`cancel_coflow`."""
        return frozenset(self._cancelled)

    def schedule_capacity_change(
        self, time: float, side: str, port: int, capacity: float
    ) -> None:
        """Change a port's capacity at a future instant (dynamic bandwidth).

        Models background traffic coming and going — the condition the
        Swallow daemons measure and the master adapts to.  The change is
        applied at the first slice boundary at/after ``time`` and triggers
        a rescheduling (``EventKind.CAPACITY``).

        Parameters
        ----------
        side:
            ``"ingress"`` or ``"egress"``.
        """
        if side not in ("ingress", "egress"):
            raise ConfigurationError(f"side must be ingress/egress, got {side!r}")
        if time < self.now - _time_eps(self.now):
            raise ConfigurationError(
                f"capacity change at {time} is in the past (now={self.now})"
            )
        if capacity <= 0:
            raise ConfigurationError("capacity must stay positive")
        heapq.heappush(self._cap_events, (float(time), side, int(port), float(capacity)))

    def _apply_due_capacity_changes(self) -> bool:
        applied = False
        tr = self.obs.tracer
        flt = self.obs.recorder
        while self._cap_events and (
            self._cap_events[0][0] <= self.now + self._eps_now()
        ):
            _, side, port, cap = heapq.heappop(self._cap_events)
            getattr(self.fabric, side).set_capacity(port, cap)
            if tr.enabled:
                tr.emit(self.now, "capacity", side=side, port=port, capacity=cap)
            if flt.enabled:
                flt.add_capacity(self.now, side, port, cap)
            applied = True
        return applied

    # ------------------------------------------------------------ main loop
    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Run until all submitted coflows finish (or ``until`` is reached).

        Incremental use is supported: call :meth:`run` with a horizon,
        :meth:`submit` more work, and call :meth:`run` again.

        The whole run executes under the scheduler's decision-kernel
        preference (``scheduler.kernel``, defaulting to
        ``$REPRO_KERNEL``): backends are bit-identical, so this scoping
        only decides how the hot-path arithmetic is dispatched.
        """
        with kernels.use_kernel(getattr(self.scheduler, "kernel", None)):
            return self._run_loop(until)

    def _run_loop(self, until: Optional[float] = None) -> SimulationResult:
        trigger = ScheduleTrigger({EventKind.START}) if not self._started else ScheduleTrigger()
        self._started = True
        while True:
            # Jump over empty time if nothing is active.
            if self._active.size == 0:
                nxt = self._next_arrival()
                if nxt is None:
                    # Nothing to do, but ``run(until=t)`` still means "the
                    # clock reaches t": an idle engine must advance so an
                    # incremental caller's horizon keeps moving (a streaming
                    # driver waiting out an arrival gap would otherwise spin
                    # on a frozen ``now`` forever).
                    if until is not None:
                        self._jump_to(until)
                    break
                if until is not None and nxt > until:
                    self._jump_to(until)
                    break
                self._jump_to(nxt)
            if until is not None and self.now >= until - _time_eps(until):
                break

            arrived = self._activate_due()
            if arrived:
                trigger.kinds.add(EventKind.ARRIVAL)
            if self._apply_due_capacity_changes():
                trigger.kinds.add(EventKind.CAPACITY)
            if self._active.size == 0:
                continue  # activation may still be empty (arrival just past `until`)

            # The previous window is over: its compression cores are free
            # for reassignment before the scheduler looks at the node state.
            self._release_claims()
            for fn in self._on_decision:
                fn(self.now)
            view = self._build_view(trigger)
            obs = self.obs
            tr = obs.tracer
            flt = obs.recorder
            if tr.enabled:
                tr.emit(
                    self.now,
                    "decision",
                    kinds=trigger.kinds,
                    n_flows=view.num_flows,
                    n_coflows=len(view.coflows),
                )
            if flt.enabled:
                flt.add_decision(
                    self.now, trigger.kinds, view.num_flows, len(view.coflows)
                )
            timed = obs.metrics.enabled or obs.profiler.enabled
            if timed:
                t0 = time.perf_counter()
            alloc = self.scheduler.schedule(view)
            if timed:
                elapsed = time.perf_counter() - t0
                obs.metrics.histogram("engine.decision_latency").observe(elapsed)
                if obs.profiler.enabled:
                    obs.profiler.add("schedule", elapsed)
            self._validate(view, alloc)
            self._apply_claims(view, alloc)
            if tr.enabled or flt.enabled:
                tx = alloc.rates > 0
                n_tx = int(tx.sum())
                total = float(alloc.rates.sum())
                max_rate = float(alloc.rates.max()) if len(alloc.rates) else 0.0
                if tr.enabled:
                    tr.emit(self.now, "rates", n_tx=n_tx, total=total, max=max_rate)
                if flt.enabled:
                    flt.add_rates(self.now, n_tx, total, max_rate)
                if alloc.compress.any():
                    beta_ids = view.flow_ids[alloc.compress]
                    if tr.enabled:
                        tr.emit(
                            self.now,
                            "beta",
                            flow_ids=[int(i) for i in beta_ids],
                        )
                    if flt.enabled:
                        flt.add_beta(self.now, beta_ids)
            if self._recorder is not None:
                self._recorder.sample_model(self.now, self.cpu)
            self._decision_points += 1
            obs.metrics.counter("engine.decisions").inc()

            n_slices, dt_kinds = self._horizon_slices(view, alloc, until)
            if tr.enabled:
                tr.emit(self.now, "jump", n_slices=n_slices, kinds=dt_kinds)
            if flt.enabled:
                flt.add_jump(self.now, n_slices, dt_kinds)
            obs.metrics.histogram("engine.slices_jumped").observe(n_slices)
            boundary = (self._k + n_slices) * self.slice_len
            if obs.profiler.enabled:
                with obs.profiler.section("integrate"):
                    self._integrate(view, alloc, n_slices * self.slice_len)
            else:
                self._integrate(view, alloc, n_slices * self.slice_len)
            self._k += n_slices

            trigger = ScheduleTrigger(dt_kinds & {EventKind.HORIZON})
            completed = self._retire_finished(boundary)
            if completed:
                trigger.kinds.add(EventKind.COMPLETION)
            if EventKind.RAW_EXHAUSTED in dt_kinds:
                trigger.kinds.add(EventKind.RAW_EXHAUSTED)
        self._release_claims()
        return self.result()

    def result(self) -> SimulationResult:
        return SimulationResult(
            makespan=self.now,
            decision_points=self._decision_points,
            cpu_recorder=self._recorder,
            ingress_bytes=self._ingress_bytes.copy(),
            egress_bytes=self._egress_bytes.copy(),
            store=self._snapshot_store(),
        )

    def _snapshot_store(self) -> ResultStore:
        """Columnar snapshot of every retired flow / closed coflow so far.

        All gathers copy, so the snapshot stays frozen if the simulation
        resumes toward a later horizon (``run(until=...)`` incremental
        use) and retires more flows afterwards.
        """
        return self._build_store(self._done_concat(), self._closed_concat())

    def _done_concat(self) -> np.ndarray:
        if self._done_chunks:
            return np.concatenate(self._done_chunks)
        return np.empty(0, dtype=np.intp)

    def _closed_concat(self) -> np.ndarray:
        if self._closed_chunks:
            return np.concatenate(self._closed_chunks)
        return np.empty(0, dtype=np.intp)

    def _build_store(self, flows: np.ndarray, closed: np.ndarray) -> ResultStore:
        """Freeze the given retired flows / closed coflow slots.

        ``flows`` are global flow indices in retirement order; ``closed``
        are coflow slots in close order.  Every gather copies.
        """
        # Member segmentation: for each closed coflow (close order), the
        # flat flow positions of its members in retirement order — what
        # the eager per-coflow accumulation lists used to hold.
        closed_ord = np.full(self._n_cf, -1, dtype=np.int64)
        closed_ord[closed] = np.arange(closed.size, dtype=np.int64)
        ord_of_flow = closed_ord[self._slot_of[flows]] if flows.size else (
            np.empty(0, dtype=np.int64)
        )
        is_member = ord_of_flow >= 0
        member_pos = np.nonzero(is_member)[0]
        member_ord = ord_of_flow[is_member]
        order = np.argsort(member_ord, kind="stable")
        member_perm = member_pos[order].astype(np.intp, copy=False)
        member_counts = np.bincount(member_ord, minlength=closed.size)
        member_starts = np.concatenate(
            ([0], np.cumsum(member_counts))
        ).astype(np.intp)
        decompress_speed = (
            self.compression.codec.decompression_speed
            if self.compression is not None
            else None
        )
        closed_list = closed.tolist()
        return ResultStore(
            flow_id=self._flow_id[flows],
            coflow_id=self._coflow_of[flows],
            src=self._src[flows],
            dst=self._dst[flows],
            size=self._size[flows],
            arrival=self._arrival[flows],
            start=self._start[flows],
            finish=self._finish[flows],
            finish_phys=self._finish_phys[flows],
            bytes_sent=self._bytes_sent[flows],
            comp_in=self._comp_in[flows],
            comp_out=self._comp_out[flows],
            decompress_speed=decompress_speed,
            cf_id=self._cf_id[closed],
            cf_label=[self._cf_labels[s] for s in closed_list],
            cf_arrival=self._cf_arrival[closed],
            cf_finish=self._cf_finish[closed],
            cf_finish_phys=self._cf_finish_phys[closed],
            cf_size=self._cf_size[closed],
            cf_width=self._cf_count[closed],
            cf_bytes_sent=self._cf_bytes[closed],
            cf_deadline=[self._cf_deadlines[s] for s in closed_list],
            cf_member_perm=member_perm,
            cf_member_starts=member_starts,
        )

    # ----------------------------------------------------- streaming service
    def drain_retired(self) -> ResultStore:
        """Snapshot-and-evict the results of every *terminal* coflow.

        Terminal means closed (all member flows finished) or cancelled.
        The returned store holds those coflows' results (plus the retired
        flows of cancelled coflows, exactly as a batch snapshot would);
        their rows are then evicted from the live columns, so repeated
        draining keeps the engine's working set proportional to the *live*
        flow count instead of the total ingested — the contract the
        streaming service (``repro serve``) relies on over an unbounded
        arrival stream.

        Retired flows of still-open coflows are withheld until their
        coflow closes, so consecutive drains partition the results:
        concatenating every drained shard plus a final ``result().store``
        yields exactly one record per flow and per coflow.

        Call between :meth:`run` calls.  Batch users never need this.
        """
        n, n_cf = self._n, self._n_cf
        closed = self._closed_concat()
        evict_slot = np.zeros(n_cf, dtype=bool)
        evict_slot[closed] = True
        for cid in self._cancelled:
            slot = self._coflows.get(cid)
            if slot is not None:
                evict_slot[slot] = True
        done = self._done_concat()
        if done.size:
            drain_mask = evict_slot[self._slot_of[done]]
        else:
            drain_mask = np.empty(0, dtype=bool)
        store = self._build_store(done[drain_mask], closed)
        if not evict_slot.any():
            self._done_chunks = [done] if done.size else []
            self._closed_chunks = []
            return store
        held = done[~drain_mask]

        keep_slot = ~evict_slot
        keep_flow = keep_slot[self._slot_of[:n]]
        new_of_flow = (np.cumsum(keep_flow) - 1).astype(np.intp, copy=False)
        new_of_slot = (np.cumsum(keep_slot) - 1).astype(np.intp, copy=False)
        evicted_ids = self._cf_id[:n_cf][evict_slot].tolist()

        # Whole-slot eviction keeps each surviving coflow's flow block
        # contiguous, so the _cf_first/_cf_count invariant survives the
        # old->new index remap.
        for name in _FLOW_COLS:
            setattr(self, name, getattr(self, name)[:n][keep_flow])
        self._n = self._cap = int(keep_flow.sum())
        self._slot_of = new_of_slot[self._slot_of]
        for name in _CF_COLS:
            setattr(self, name, getattr(self, name)[:n_cf][keep_slot])
        self._n_cf = self._cf_cap = int(keep_slot.sum())
        self._cf_first = new_of_flow[self._cf_first]

        keep_list = keep_slot.tolist()
        self._cf_labels = [
            x for x, k in zip(self._cf_labels, keep_list) if k
        ]
        self._cf_deadlines = [
            x for x, k in zip(self._cf_deadlines, keep_list) if k
        ]
        self._cf_coflows = [
            x for x, k in zip(self._cf_coflows, keep_list) if k
        ]
        self._cf_states = [
            x for x, k in zip(self._cf_states, keep_list) if k
        ]
        for cid in evicted_ids:
            self._coflows.pop(cid, None)
        # Survivors' slots shifted down: rebuild the id map from the
        # compacted id column, and renumber the calendar's pending
        # entries (entries of evicted slots — cancelled-before-arrival
        # coflows — drop out).
        for slot, cid in enumerate(self._cf_id[: self._n_cf].tolist()):
            self._coflows[cid] = slot
        slot_map = np.where(keep_slot, new_of_slot, np.intp(-1))
        self._calendar.remap(slot_map)

        self._active = new_of_flow[self._active]
        self._done_chunks = [new_of_flow[held]] if held.size else []
        self._closed_chunks = []
        # Cached grouping/scratch reference pre-eviction indices; the
        # arena drops its (peak-sized) buffers outright — the world just
        # shrank, don't pin the old high-water mark.
        self._groups_dirty = True
        self._view_scratch.clear()
        return store

    def export_state(self) -> dict:
        """Everything needed to rebuild this simulator elsewhere.

        Array entries come out as copies; Python-object state (the
        scheduler, live :class:`Coflow` dataclasses, labels) is included
        by reference — callers serialize it (see
        :mod:`repro.service.checkpoint`).  Call between :meth:`run`
        calls only: in-flight core claims are not part of the state
        (``run`` releases them before returning).
        """
        if self._claim_nodes:
            raise SimulationError(
                "export_state called inside a decision window "
                "(core claims outstanding)"
            )
        n, n_cf = self._n, self._n_cf
        cal_time, cal_seq, cal_slot = self._calendar.export_entries()
        return {
            "slice_len": self.slice_len,
            "k": self._k,
            "started": self._started,
            "decision_points": self._decision_points,
            "done_total": self._done_total,
            "n": n,
            "n_cf": n_cf,
            "flow_cols": {
                c: getattr(self, c)[:n].copy() for c in _FLOW_COLS
            },
            "cf_cols": {
                c: getattr(self, c)[:n_cf].copy() for c in _CF_COLS
            },
            "active": self._active.copy(),
            "done_flows": self._done_concat(),
            "closed_slots": self._closed_concat(),
            "ingress_bytes": self._ingress_bytes.copy(),
            "egress_bytes": self._egress_bytes.copy(),
            "ingress_capacity": self.fabric.ingress.capacity.copy(),
            "egress_capacity": self.fabric.egress.capacity.copy(),
            "cancelled": sorted(self._cancelled),
            "cap_events": sorted(self._cap_events),
            "cal_time": cal_time,
            "cal_seq": cal_seq,
            "cal_slot": cal_slot,
            "cf_labels": list(self._cf_labels),
            "cf_deadlines": list(self._cf_deadlines),
            "priority_class": [
                1.0 if st is None else st.priority_class
                for st in self._cf_states
            ],
            "scheduler": self.scheduler,
        }

    def import_state(self, state: dict) -> None:
        """Restore an :meth:`export_state` payload into this simulator.

        The simulator must be freshly constructed, with the same fabric
        shape, slice length and scheduler policy as the exporter.  Global
        flow/coflow id counters are the caller's concern (see
        :func:`repro.core.flow.ensure_flow_ids_above`).
        """
        if self._started or self._n:
            raise SimulationError("import_state needs a fresh simulator")
        if abs(state["slice_len"] - self.slice_len) > 1e-15:
            raise ConfigurationError(
                f"checkpoint slice_len {state['slice_len']} != "
                f"simulator slice_len {self.slice_len}"
            )
        n, n_cf = int(state["n"]), int(state["n_cf"])
        self._grow(n)
        self._cf_grow(n_cf)
        for c in _FLOW_COLS:
            col = state["flow_cols"].get(c)
            if col is None and c == "_override":
                # pre-columnar-ingest checkpoints lack the override
                # column; those runs never used ratio_override through
                # the service path, so "no override" is faithful.
                getattr(self, c)[:n] = -1.0
            else:
                getattr(self, c)[:n] = col
        self._n = n
        for c in _CF_COLS:
            getattr(self, c)[:n_cf] = state["cf_cols"][c]
        self._n_cf = n_cf
        self._active = np.asarray(state["active"], dtype=np.intp)
        done = np.asarray(state["done_flows"], dtype=np.intp)
        self._done_chunks = [done] if done.size else []
        closed = np.asarray(state["closed_slots"], dtype=np.intp)
        self._closed_chunks = [closed] if closed.size else []
        self._done_total = int(state["done_total"])
        self._k = int(state["k"])
        self._started = bool(state["started"])
        self._decision_points = int(state["decision_points"])
        self._ingress_bytes = np.asarray(
            state["ingress_bytes"], dtype=np.float64
        ).copy()
        self._egress_bytes = np.asarray(
            state["egress_bytes"], dtype=np.float64
        ).copy()
        for side, caps in (
            ("ingress", state["ingress_capacity"]),
            ("egress", state["egress_capacity"]),
        ):
            ports = getattr(self.fabric, side)
            if len(caps) != len(ports.capacity):
                raise ConfigurationError(
                    f"checkpoint has {len(caps)} {side} ports, "
                    f"fabric has {len(ports.capacity)}"
                )
            for port, cap in enumerate(caps):
                if cap != ports.capacity[port]:
                    ports.set_capacity(port, float(cap))
        self._cancelled = {int(c) for c in state["cancelled"]}
        self._cap_events = [tuple(e) for e in state["cap_events"]]
        heapq.heapify(self._cap_events)
        self._cf_labels = list(state["cf_labels"])
        self._cf_deadlines = list(state["cf_deadlines"])
        # Legacy checkpoints carried the Coflow objects; columnar ones
        # reconstruct them lazily from the columns instead.
        objs = state.get("coflows")
        self._cf_coflows = list(objs) if objs is not None else [None] * n_cf
        self._coflows = {}
        self._cf_states = []
        prio = state["priority_class"]
        for slot, cid in enumerate(self._cf_id[:n_cf].tolist()):
            self._coflows[cid] = slot
            st = CoflowState(
                coflow_id=cid,
                coflow_factory=(
                    lambda sim=self, cid=cid: sim._materialize_coflow(cid)
                ),
                flow_idx=np.empty(0, dtype=np.intp),
                priority_class=prio[slot],
            )
            if self._cf_coflows[slot] is not None:
                st.coflow = self._cf_coflows[slot]
            self._cf_states.append(st)
        if "cal_time" in state:
            self._calendar.import_entries(
                state["cal_time"], state["cal_seq"], state["cal_slot"]
            )
        else:
            # Legacy rebuild: every still-pending, non-cancelled coflow
            # re-enters the calendar in slot (== original submission)
            # order, which reproduces the original tie-break sequence.
            for slot in range(n_cf):
                first = int(self._cf_first[slot])
                if (
                    int(self._cf_count[slot])
                    and self._state[first] == _PENDING
                    and int(self._cf_id[slot]) not in self._cancelled
                ):
                    self._calendar.push(float(self._cf_arrival[slot]), slot)
        self._groups_dirty = True

    # ------------------------------------------------------------- internals
    def _jump_to(self, t: float) -> None:
        """Advance the slice counter to the first boundary >= t.

        The snap tolerance must scale with the quotient: at t=1e9 with
        δ=0.05 the division already carries ~4e-6 slices of rounding, so
        an absolute 1e-9 would bump an exactly-on-grid jump one slice
        past its boundary.
        """
        q = t / self.slice_len
        k = int(math.ceil(q - max(1e-9, 8.0 * math.ulp(abs(q)))))
        self._k = max(self._k, k)

    def _next_arrival(self) -> Optional[float]:
        """Earliest pending arrival (cancellations are lazily discarded
        inside the calendar, so no predicate scan happens here)."""
        return self._calendar.peek_time()

    def _activate_due(self) -> int:
        """Activate every coflow whose arrival is due; returns the count.

        The calendar hands back a span of *slots* in pop order.  Because
        submission appends each coflow's flow rows as one contiguous
        block in slot order and drain evicts whole slots, consecutive
        due slots activate as a single ``arange`` slice — no per-coflow
        ``global_idx`` gather at all on the common streaming path.
        """
        slots = self._calendar.pop_due(self.now + self._eps_now())
        n_due = int(slots.size)
        if not n_due:
            return 0
        firsts = self._cf_first[slots]
        counts = self._cf_count[slots]
        total = int(counts.sum())
        if n_due == 1 or (
            int(slots[-1]) - int(slots[0]) == n_due - 1
            and bool(np.all(np.diff(slots) == 1))
        ):
            # Contiguous ascending slots → one flow-row slice.
            new_idx = np.arange(
                int(firsts[0]), int(firsts[0]) + total, dtype=np.intp
            )
        else:
            # Gather without a Python loop: repeat each block's base
            # offset and add a running ramp.
            offs = np.cumsum(counts) - counts
            new_idx = (
                np.repeat(firsts - offs, counts)
                + np.arange(total, dtype=np.intp)
            ).astype(np.intp, copy=False)
        self._state[new_idx] = _ACTIVE
        self._start[new_idx] = self.now
        old_n = self._active.size
        self._active = np.concatenate((self._active, new_idx))
        if self._groups_dirty or self.force_regroup:
            self._groups_dirty = True
        else:
            self._regroup_extend(slots, new_idx, old_n)
        tr = self.obs.tracer
        if tr.enabled:
            for cid, w in zip(
                self._cf_id[slots].tolist(), counts.tolist()
            ):
                tr.emit(
                    self.now, "arrival", coflow_id=int(cid), n_flows=int(w)
                )
        flt = self.obs.recorder
        if flt.enabled:
            flt.add_arrivals(
                self.now, self._cf_id[slots].tolist(), counts.tolist()
            )
        self.obs.metrics.counter("engine.arrivals").inc(n_due)
        return n_due

    def _regroup(self) -> None:
        """Recompute the coflow segmentation of the active set from scratch.

        Invariant: the grouping (states list, per-state ``flow_idx``
        positions, ``coflow_ids`` column, unit permutation/offsets and
        every gather of per-flow *constants*) depends only on
        ``_active``.  Arrivals and retirements keep the cache current
        with the incremental deltas below; this full rebuild runs on the
        first decision, after cancellations, when ``force_regroup`` is
        set, and for the rare arrival batch the append delta cannot
        handle (a mid-run submission arriving no later than an already
        active coflow).
        """
        # Cached indices are being rebuilt from scratch (cancellation,
        # forced regroup, delta-ineligible arrival): stamp a new scratch
        # generation so staleness is observable (reuse stays safe either
        # way — every take is fully overwritten before it is read).
        self._view_scratch.invalidate()
        idx = self._active
        coflow_ids = self._coflow_of[idx]
        slots_of_pos = self._slot_of[idx]
        # Rank distinct coflows by (arrival, coflow_id) — the order the
        # old per-decision dict grouping produced after its sort.
        uslots, inv = np.unique(slots_of_pos, return_inverse=True)
        arrivals = self._cf_arrival[uslots]
        ids = self._cf_id[uslots]
        by_arrival = np.lexsort((ids, arrivals))
        rank = np.empty(len(uslots), dtype=np.intp)
        rank[by_arrival] = np.arange(len(uslots), dtype=np.intp)
        unit_of_pos = rank[inv].astype(np.intp, copy=False)
        # Stable sort keeps positions ascending within each coflow,
        # matching the old scan order.
        perm = np.argsort(unit_of_pos, kind="stable").astype(np.intp, copy=False)
        counts = np.bincount(unit_of_pos, minlength=len(uslots))
        starts = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
        group_slots = uslots[by_arrival]
        self._seg.perm = perm
        self._seg.starts = starts
        states: List[CoflowState] = []
        for k, s in enumerate(group_slots.tolist()):
            state = self._state_for_slot(s)
            state.bind_segments(self._seg, k)
            states.append(state)
        self._cached_states = states
        self._cached_coflow_ids = coflow_ids
        self._cached_unit_of_pos = unit_of_pos
        self._cached_group_slots = group_slots.astype(np.intp, copy=False)
        self._cached_static = {
            "flow_ids": self._flow_id[idx],
            "src": self._src[idx],
            "dst": self._dst[idx],
            "xi": self._xi[idx],
            "size": self._size[idx],
            "arrival": self._arrival[idx],
            "compressible": self._compressible[idx],
        }
        self._groups_dirty = False

    def _regroup_extend(
        self, slots: np.ndarray, new_idx: np.ndarray, old_n: int
    ) -> None:
        """Append delta: newly arrived coflows join the cached grouping.

        Groups are ordered by (arrival, coflow_id); arrivals pop from the
        calendar in nondecreasing time, so a due batch normally sorts
        strictly after every active group and can be appended without
        touching the existing segmentation.  The one exception — a
        coflow submitted mid-run whose arrival does not exceed the last
        active group's — falls back to a full rebuild.

        ``slots`` are the batch's coflow slots in activation order;
        ``new_idx`` their flow rows (block-contiguous, slot order) and
        ``old_n`` the pre-batch active count.
        """
        arrivals = self._cf_arrival[slots]
        gslots = self._cached_group_slots
        if gslots.size and arrivals.min() <= self._cf_arrival[gslots[-1]]:
            self._groups_dirty = True
            return
        order = np.lexsort((self._cf_id[slots], arrivals))
        widths = self._cf_count[slots]
        g0 = len(self._cached_states)
        # Batch positions: slot i occupies [off[i], off[i]+width[i]) past old_n.
        offs = np.concatenate(([0], np.cumsum(widths))).astype(np.intp)
        base = old_n + offs[:-1]
        ramp_off = (np.cumsum(widths[order]) - widths[order]).astype(np.intp)
        perm_chunk = (
            np.repeat(base[order] - ramp_off, widths[order])
            + np.arange(int(widths.sum()), dtype=np.intp)
        ).astype(np.intp, copy=False)
        rank = np.empty(slots.size, dtype=np.intp)
        rank[order] = np.arange(slots.size, dtype=np.intp)
        unit_chunk = g0 + np.repeat(rank, widths).astype(np.intp, copy=False)
        counts_sorted = widths[order]
        seg = self._seg
        seg.perm = np.concatenate((seg.perm, perm_chunk))
        seg.starts = np.concatenate(
            (seg.starts, seg.starts[-1] + np.cumsum(counts_sorted))
        ).astype(np.intp, copy=False)
        for j, i in enumerate(order.tolist()):
            state = self._state_for_slot(int(slots[i]))
            state.bind_segments(seg, g0 + j)
            self._cached_states.append(state)
        self._cached_group_slots = np.concatenate(
            (gslots, slots[order])
        )
        self._cached_unit_of_pos = np.concatenate(
            (self._cached_unit_of_pos, unit_chunk)
        )
        self._cached_coflow_ids = np.concatenate(
            (self._cached_coflow_ids, self._coflow_of[new_idx])
        )
        static = self._cached_static
        for key, col in (
            ("flow_ids", self._flow_id), ("src", self._src),
            ("dst", self._dst), ("xi", self._xi), ("size", self._size),
            ("arrival", self._arrival), ("compressible", self._compressible),
        ):
            static[key] = np.concatenate((static[key], col[new_idx]))

    def _regroup_shrink(self, keep: np.ndarray) -> None:
        """Shrink delta: drop retired positions from the cached grouping.

        ``keep`` masks the *old* active positions.  Filtering a
        group-sorted permutation by a keep mask preserves order, and the
        old→new position remap (``cumsum(keep) - 1``) is monotone, so
        the filtered permutation is still sorted by (group, position)
        without re-sorting.  Emptied groups drop out; surviving groups
        keep their relative order, so only their ordinals shift.
        """
        unit_of_pos = self._cached_unit_of_pos
        n_groups = len(self._cached_states)
        counts_new = np.bincount(unit_of_pos[keep], minlength=n_groups)
        alive = counts_new > 0
        newpos = np.cumsum(keep) - 1  # old position -> new position
        seg = self._seg
        perm = seg.perm
        perm_keep = keep[perm]
        new_perm = newpos[perm[perm_keep]].astype(np.intp, copy=False)
        if alive.all():
            new_unit = unit_of_pos[keep]
            seg.perm = new_perm
            seg.starts = np.concatenate(
                ([0], np.cumsum(counts_new))
            ).astype(np.intp)
        else:
            new_ord = np.cumsum(alive) - 1
            new_unit = new_ord[unit_of_pos[keep]].astype(np.intp, copy=False)
            seg.perm = new_perm
            seg.starts = np.concatenate(
                ([0], np.cumsum(counts_new[alive]))
            ).astype(np.intp)
            alive_list = alive.tolist()
            states = [s for s, a in zip(self._cached_states, alive_list) if a]
            for k, state in enumerate(states):
                state._ordinal = k
            self._cached_states = states
            self._cached_group_slots = self._cached_group_slots[alive]
        self._cached_unit_of_pos = new_unit
        self._cached_coflow_ids = self._cached_coflow_ids[keep]
        static = self._cached_static
        for key in static:
            static[key] = static[key][keep]

    def _build_view(self, trigger: ScheduleTrigger) -> SchedulerView:
        if self._groups_dirty or self.force_regroup:
            self._regroup()
        idx = self._active
        static = self._cached_static
        free = self.cpu.free_cores(self.now)
        n = idx.size
        scr = self._view_scratch
        raw = np.take(self._raw, idx, out=scr.take("raw", n))
        comp = np.take(self._comp, idx, out=scr.take("comp", n))
        return SchedulerView(
            time=self.now,
            slice_len=self.slice_len,
            trigger=trigger,
            fabric=self.fabric,
            flow_ids=static["flow_ids"],
            src=static["src"],
            dst=static["dst"],
            raw=raw,
            comp=comp,
            xi=static["xi"],
            size=static["size"],
            arrival=static["arrival"],
            coflow_ids=self._cached_coflow_ids,
            compressible=static["compressible"],
            coflows=self._cached_states,
            free_cores=free,
            compression=self.compression,
            unit_perm=self._seg.perm,
            unit_starts=self._seg.starts,
        )

    def _validate(self, view: SchedulerView, alloc: Allocation) -> None:
        n = view.num_flows
        if len(alloc.rates) != n or len(alloc.compress) != n:
            raise SchedulingError(
                f"{self.scheduler.name}: allocation length {len(alloc.rates)} "
                f"!= {n} active flows"
            )
        if np.any(~np.isfinite(alloc.rates)):
            raise SchedulingError(f"{self.scheduler.name}: non-finite rate")
        self.fabric.check_feasible(view.src, view.dst, alloc.rates)
        if np.any(alloc.compress & (alloc.rates > 0)):
            raise SchedulingError(
                f"{self.scheduler.name}: a flow may not compress and transmit "
                "in the same slice (exclusive β)"
            )
        if alloc.compress.any():
            if self.compression is None:
                raise SchedulingError(
                    f"{self.scheduler.name} requested compression but the "
                    "simulator has no compression engine"
                )
            bad = alloc.compress & (~view.compressible | (view.raw <= 0))
            if bad.any():
                raise SchedulingError(
                    f"{self.scheduler.name}: compression requested for an "
                    "incompressible or fully-compressed flow"
                )
            counts = np.bincount(
                view.src[alloc.compress], minlength=self.cpu.num_nodes
            )
            if np.any(counts > view.free_cores):
                node = int(np.argmax(counts - view.free_cores))
                raise SchedulingError(
                    f"{self.scheduler.name}: node {node} granted "
                    f"{counts[node]} compressions with only "
                    f"{view.free_cores[node]} free cores"
                )

    def _apply_claims(self, view: SchedulerView, alloc: Allocation) -> None:
        claims: Dict[int, int] = {}
        for pos in np.nonzero(alloc.compress)[0]:
            node = int(view.src[pos])
            self.cpu.claim(node)
            self._claim_nodes.append(node)
            claims[node] = claims.get(node, 0) + 1
        if claims:
            tr = self.obs.tracer
            if tr.enabled:
                for node, n in sorted(claims.items()):
                    tr.emit(self.now, "core_claim", node=node, claims=n)
            flt = self.obs.recorder
            if flt.enabled:
                items = sorted(claims.items())
                flt.add_core_claims(
                    self.now,
                    [node for node, _ in items],
                    [n for _, n in items],
                )
            self.obs.metrics.counter("engine.core_claims").inc(sum(claims.values()))

    def _release_claims(self) -> None:
        for node in self._claim_nodes:
            self.cpu.release(node)
        self._claim_nodes.clear()

    def _horizon_slices(self, view, alloc, until):
        """Slices to advance until the next interesting boundary.

        Returns ``(n, kinds)``: the number of slices to fast-forward and
        the *union* of every event kind that lands within the advanced
        window ``(now, now + n·δ]``.  All such events take effect at the
        boundary (arrivals activate, drained flows retire, capacity
        changes apply), so the trigger handed to the scheduler must carry
        all of their kinds — keeping only the earliest kind would drop
        coincident triggers at tied boundaries (e.g. an arrival and a
        completion at the same instant) and break the Upgrade step's
        fire-at-every-event contract (Pseudocode 3).
        """
        candidates: List = []
        nxt = self._next_arrival()
        if nxt is not None:
            candidates.append((max(nxt - self.now, 0.0), EventKind.ARRIVAL))
        R = self.compression.speed if self.compression is not None else 0.0
        vol = view.raw + view.comp
        tx = alloc.rates > 0
        if tx.any():
            dt = float((vol[tx] / alloc.rates[tx]).min())
            candidates.append((dt, EventKind.COMPLETION))
        cz = alloc.compress
        if cz.any() and R > 0:
            candidates.append((float((view.raw[cz] / R).min()), EventKind.RAW_EXHAUSTED))
        if self._cap_events:
            candidates.append(
                (max(self._cap_events[0][0] - self.now, 0.0), EventKind.CAPACITY)
            )
        if until is not None:
            candidates.append((max(until - self.now, 0.0), EventKind.HORIZON))
        if not candidates:
            raise SimulationError(
                f"{self.scheduler.name}: no flow transmits or compresses and "
                "no arrival is pending — simulated time cannot advance "
                f"(t={self.now:.6g}, {view.num_flows} active flows)"
            )
        dt_min = min(dt for dt, _ in candidates)
        # Slice-grid snap tolerance.  A fixed 1e-9 slices is too tight at
        # large simulated times: ``dt_min`` is a difference of two big
        # floats, so its error is ulp-of-now sized (~5e-7 slices at
        # t=1e9, δ=0.05) and a horizon exactly k slices away would ceil
        # to k+1, overshooting ``until`` by a whole slice on resume.
        eps_now = self._eps_now()
        tol = max(1e-9, eps_now / self.slice_len)
        n = max(1, int(math.ceil(dt_min / self.slice_len - tol)))
        # Events within the same tolerance of the boundary are ties.
        window = n * self.slice_len + max(n * self.slice_len * 1e-9, eps_now)
        kinds = {kind for dt, kind in candidates if dt <= window}
        return n, kinds

    def _integrate(self, view: SchedulerView, alloc: Allocation, dt: float) -> None:
        idx = self._active
        rates = alloc.rates
        # --- compression: raw -> comp, shrunk by xi --------------------------
        cz = alloc.compress
        if cz.any():
            R = self.compression.speed
            gi = idx[cz]
            consumed = np.minimum(self._raw[gi], R * dt)
            self._raw[gi] -= consumed
            self._comp[gi] += consumed * self._xi[gi]
            self._comp_in[gi] += consumed
        # --- transmission: drain comp first, then raw -------------------------
        tx = rates > 0
        if tx.any():
            gi = idx[tx]
            vol_before = self._raw[gi] + self._comp[gi]
            budget = rates[tx] * dt
            sent = np.minimum(vol_before, budget)
            done = sent >= vol_before - self._eps(gi)
            # physical finish of completed flows
            self._finish_phys[gi[done]] = self.now + vol_before[done] / rates[tx][done]
            from_comp = np.minimum(self._comp[gi], sent)
            self._comp[gi] -= from_comp
            self._raw[gi] -= sent - from_comp
            self._raw[gi] = np.maximum(self._raw[gi], 0.0)
            self._comp[gi] = np.maximum(self._comp[gi], 0.0)
            self._bytes_sent[gi] += sent
            self._comp_out[gi] += from_comp
            self.obs.metrics.counter("engine.bytes_sent").inc(float(sent.sum()))
            self._ingress_bytes += np.bincount(
                self._src[gi], weights=sent, minlength=len(self._ingress_bytes)
            )
            self._egress_bytes += np.bincount(
                self._dst[gi], weights=sent, minlength=len(self._egress_bytes)
            )

    def _eps(self, gi: np.ndarray) -> np.ndarray:
        return 1e-9 * self._size[gi] + 1e-9

    def _retire_finished(self, boundary: float) -> List[int]:
        """Mark flows with zero volume done; close coflows — all columnar.

        Finish columns are stamped in bulk, per-coflow remaining counts
        drop via one ``bincount`` scatter, and closed coflows surface via
        a segment max over the retirement batch — zero per-flow Python.
        Result dataclasses are *not* built here; the retirement log
        (``_done_chunks`` / ``_closed_chunks``) feeds the lazy
        :class:`ResultStore` snapshot in :meth:`result`.  The eager
        per-flow path below runs only when flow/coflow completion
        callbacks or the tracer need the dataclasses now.
        """
        idx = self._active
        if len(idx) == 0:
            return []
        vol = self._raw[idx] + self._comp[idx]
        done_mask = vol <= self._eps(idx)
        done_idx = idx[done_mask]
        if len(done_idx) == 0:
            return []
        keep = ~done_mask
        self._active = idx[keep]
        if self._groups_dirty or self.force_regroup:
            self._groups_dirty = True
        else:
            self._regroup_shrink(keep)
        self._state[done_idx] = _DONE
        self._finish[done_idx] = boundary
        unset = self._finish_phys[done_idx] == 0.0
        self._finish_phys[done_idx[unset]] = boundary
        self._done_seq[done_idx] = self._done_total + np.arange(
            len(done_idx), dtype=np.int64
        )
        self._done_total += len(done_idx)
        self._done_chunks.append(done_idx)

        # --- close coflows via segment ops over the batch -------------------
        slots = self._slot_of[done_idx]
        batch_counts = np.bincount(slots, minlength=self._n_cf)
        remaining = self._cf_remaining[: self._n_cf]
        remaining -= batch_counts
        np.maximum.at(self._cf_finish_phys, slots, self._finish_phys[done_idx])
        closed = np.nonzero((remaining == 0) & (batch_counts > 0))[0]
        if closed.size > 1:
            # Close order = order each coflow's *last* flow retires in the
            # batch (what the per-flow loop produced).
            last = np.zeros(self._n_cf, dtype=np.int64)
            np.maximum.at(last, slots, np.arange(len(done_idx), dtype=np.int64))
            closed = closed[np.argsort(last[closed], kind="stable")]
        closed = closed.astype(np.intp, copy=False)
        self._cf_finish[closed] = boundary
        # Per-coflow totals, summed at close time in store order — the
        # same contiguous slice (and summation order) the eager
        # ``CoflowResult`` used, so lazy results match bitwise.
        for s in closed.tolist():
            a = self._cf_first[s]
            b = a + self._cf_count[s]
            self._cf_size[s] = self._size[a:b].sum()
            self._cf_bytes[s] = self._bytes_sent[a:b].sum()
        self._closed_chunks.append(closed)

        tr = self.obs.tracer
        mx = self.obs.metrics
        mx.counter("engine.flow_completions").inc(len(done_idx))
        mx.counter("engine.completions").inc(int(closed.size))
        flt = self.obs.recorder
        if flt.enabled:
            # The whole retirement batch in two columnar appends — the
            # recorder must never trip the eager per-flow path below.
            flt.add_flow_completions(
                boundary, self._flow_id[done_idx], self._coflow_of[done_idx]
            )
            flt.add_coflow_completions(boundary, self._cf_id[closed])
        if tr.enabled or self._on_flow_complete or self._on_coflow_complete:
            self._emit_eager(boundary, done_idx, closed, tr)
        return [int(self._cf_id[s]) for s in closed.tolist()]

    def _emit_eager(self, boundary, done_idx, closed, tr) -> None:
        """Materialize result dataclasses now, for callbacks/tracer.

        Field values are identical to the lazy store-backed path; only
        object identity differs (callback consumers get their own
        instances).  Ordering matches the pre-columnar per-flow loop:
        flow completions in retirement order, then closed coflows.
        """
        for g in done_idx:
            fr = self._make_flow_result(int(g))
            if tr.enabled:
                tr.emit(
                    boundary,
                    "completion",
                    flow_id=fr.flow_id,
                    coflow_id=fr.coflow_id,
                )
            for fn in self._on_flow_complete:
                fn(fr)
        for s in closed.tolist():
            a = int(self._cf_first[s])
            gi = np.arange(a, a + int(self._cf_count[s]), dtype=np.intp)
            members = gi[np.argsort(self._done_seq[gi], kind="stable")]
            cr = CoflowResult(
                coflow_id=int(self._cf_id[s]),
                label=self._cf_labels[s],
                arrival=float(self._cf_arrival[s]),
                finish=boundary,
                finish_physical=float(self._cf_finish_phys[s]),
                size=float(self._cf_size[s]),
                width=len(gi),
                bytes_sent=float(self._cf_bytes[s]),
                flow_results=[self._make_flow_result(int(g)) for g in members],
                deadline=self._cf_deadlines[s],
            )
            if tr.enabled:
                tr.emit(boundary, "completion", coflow_id=cr.coflow_id)
            for fn in self._on_coflow_complete:
                fn(cr)

    def _make_flow_result(self, g: int) -> FlowResult:
        decompress = 0.0
        if self.compression is not None and self._comp_out[g] > 0:
            decompress = float(
                self._comp_out[g] / self.compression.codec.decompression_speed
            )
        return FlowResult(
            flow_id=int(self._flow_id[g]),
            coflow_id=int(self._coflow_of[g]),
            src=int(self._src[g]),
            dst=int(self._dst[g]),
            size=float(self._size[g]),
            arrival=float(self._arrival[g]),
            start=float(self._start[g]),
            finish=float(self._finish[g]),
            finish_physical=float(self._finish_phys[g]),
            bytes_sent=float(self._bytes_sent[g]),
            bytes_compressed_in=float(self._comp_in[g]),
            bytes_compressed_out=float(self._comp_out[g]),
            decompress_time=decompress,
        )
