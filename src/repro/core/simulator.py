"""Slice-based discrete-event simulation engine.

The engine implements the paper's execution model (Section IV): time is
divided into slices of length ``δ``; the master observes arrivals and
completions, and re-runs the scheduler, only at slice boundaries.  Between
two decision points the allocation is constant, so instead of stepping
slice-by-slice the engine computes the next *interesting* instant (arrival,
physical flow completion, raw-data exhaustion of a compressing flow, or the
run horizon) in closed form and jumps to the first slice boundary at or
after it.  The observable behaviour is identical to literal slice stepping —
including the "time-slice waste" on sub-slice flows that the paper discusses
— at a cost of O(decision points × active flows) instead of O(slices).

Volume semantics (Section IV-A1):

* a *transmitting* flow drains ``V = raw + comp`` at its allocated rate,
  compressed bytes first (they were produced first);
* a *compressing* flow consumes ``raw`` at the codec speed ``R`` and emits
  ``R·ξ`` into ``comp`` — net drain ``R(1-ξ)`` (Eq. 1);
* per slice a flow does one or the other, never both (the paper's β).

Bookkeeping invariant, checked in tests: for every finished flow,
``bytes_sent + (size - bytes_compressed_in·(1-ξ_eff)) == size`` — i.e.
volume is conserved up to compression shrinkage.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow, CoflowResult
from repro.core.events import ArrivalCalendar, EventKind, ScheduleTrigger
from repro.core.flow import FlowResult
from repro.core.scheduler import Allocation, CoflowState, Scheduler, SchedulerView
from repro.cpu.cores import CpuModel
from repro.cpu.monitor import UtilizationRecorder
from repro.errors import ConfigurationError, SchedulingError, SimulationError
from repro.fabric.bigswitch import BigSwitch
from repro.obs import NULL_OBS, Observability

#: Default slice length (paper Section VI-B3: 0.01 s).
DEFAULT_SLICE = 0.01

_PENDING, _ACTIVE, _DONE, _CANCELLED = 0, 1, 2, 3


@dataclass
class SimulationResult:
    """Everything a run produced."""

    flow_results: List[FlowResult]
    coflow_results: List[CoflowResult]
    makespan: float
    decision_points: int
    cpu_recorder: Optional[UtilizationRecorder] = None
    ingress_bytes: Optional[np.ndarray] = None
    egress_bytes: Optional[np.ndarray] = None

    def port_utilization(self, capacity_in, capacity_out):
        """Mean per-port utilization over the makespan (0..1 arrays).

        ``bytes_sent / (capacity * makespan)`` per side — how evenly the
        schedule spread load across the fabric.
        """
        if self.ingress_bytes is None or self.makespan <= 0:
            return None, None
        u_in = self.ingress_bytes / (np.asarray(capacity_in) * self.makespan)
        u_out = self.egress_bytes / (np.asarray(capacity_out) * self.makespan)
        return u_in, u_out

    @property
    def avg_fct(self) -> float:
        if not self.flow_results:
            return 0.0
        return float(np.mean([f.fct for f in self.flow_results]))

    @property
    def avg_cct(self) -> float:
        if not self.coflow_results:
            return 0.0
        return float(np.mean([c.cct for c in self.coflow_results]))

    @property
    def max_cct(self) -> float:
        """Tail CCT: the slowest coflow's completion time."""
        if not self.coflow_results:
            return 0.0
        return float(max(c.cct for c in self.coflow_results))

    @property
    def total_bytes_sent(self) -> float:
        return float(sum(f.bytes_sent for f in self.flow_results))

    @property
    def total_bytes_original(self) -> float:
        return float(sum(f.size for f in self.flow_results))

    @property
    def traffic_reduction(self) -> float:
        """Fraction of bytes kept off the wire by compression (Table VII)."""
        orig = self.total_bytes_original
        if orig <= 0:
            return 0.0
        return 1.0 - self.total_bytes_sent / orig


class _CoflowRecord:
    """Engine-internal live state of one submitted coflow."""

    __slots__ = ("coflow", "global_idx", "remaining", "state", "finish_phys", "flow_results")

    def __init__(self, coflow: Coflow, global_idx: np.ndarray):
        self.coflow = coflow
        self.global_idx = global_idx
        self.remaining = len(global_idx)
        self.state = CoflowState(coflow=coflow, flow_idx=np.empty(0, dtype=np.intp))
        self.finish_phys = 0.0
        self.flow_results: List[FlowResult] = []


class SliceSimulator:
    """The slice-granular coflow simulator.

    Parameters
    ----------
    fabric:
        The big-switch network.
    scheduler:
        The scheduling policy under test.
    slice_len:
        Slice length ``δ`` in seconds (default 10 ms, the paper's setting).
    cpu:
        CPU model; defaults to one idle ``cores_per_node=4`` node per
        ingress port.  Required shape: one node per ingress port.
    compression:
        Compression engine offered to compression-aware schedulers.  A
        default LZ4 engine is created when the scheduler declares
        ``uses_compression`` and none is given.
    sample_cpu:
        Record per-node busy fractions at every decision point (Fig. 2).
    obs:
        Observability bundle (:class:`repro.obs.Observability`).  Defaults
        to the disabled :data:`repro.obs.NULL_OBS`; every hook site guards
        on the component's ``enabled`` flag so the default costs only a
        predicate check per decision point.  The bundle is also bound onto
        the scheduler (``scheduler.bind_observability``) so policies can
        emit their own records (e.g. FVDF's Γ_C/P ordering).
    """

    def __init__(
        self,
        fabric: BigSwitch,
        scheduler: Scheduler,
        slice_len: float = DEFAULT_SLICE,
        cpu: Optional[CpuModel] = None,
        compression: Optional[CompressionEngine] = None,
        sample_cpu: bool = False,
        obs: Optional[Observability] = None,
    ):
        if slice_len <= 0:
            raise ConfigurationError(f"slice_len must be positive, got {slice_len}")
        self.fabric = fabric
        self.scheduler = scheduler
        self.obs = obs if obs is not None else NULL_OBS
        scheduler.bind_observability(self.obs)
        self.slice_len = float(slice_len)
        self.cpu = cpu if cpu is not None else CpuModel(fabric.num_ingress)
        if self.cpu.num_nodes != fabric.num_ingress:
            raise ConfigurationError(
                f"cpu has {self.cpu.num_nodes} nodes but fabric has "
                f"{fabric.num_ingress} ingress ports"
            )
        if compression is None and scheduler.uses_compression:
            compression = CompressionEngine()
        self.compression = compression

        # --- growable SoA flow store -----------------------------------------
        self._cap = 0
        self._n = 0
        self._src = np.empty(0, dtype=np.intp)
        self._dst = np.empty(0, dtype=np.intp)
        self._size = np.empty(0, dtype=np.float64)
        self._arrival = np.empty(0, dtype=np.float64)
        self._compressible = np.empty(0, dtype=bool)
        self._coflow_of = np.empty(0, dtype=np.int64)
        self._flow_id = np.empty(0, dtype=np.int64)
        self._raw = np.empty(0, dtype=np.float64)
        self._comp = np.empty(0, dtype=np.float64)
        self._xi = np.empty(0, dtype=np.float64)  # effective ratio per flow
        self._bytes_sent = np.empty(0, dtype=np.float64)
        self._comp_in = np.empty(0, dtype=np.float64)
        self._comp_out = np.empty(0, dtype=np.float64)
        self._start = np.empty(0, dtype=np.float64)
        self._finish = np.empty(0, dtype=np.float64)
        self._finish_phys = np.empty(0, dtype=np.float64)
        self._state = np.empty(0, dtype=np.int8)

        #: Active-flow global indices, maintained as an ndarray so view
        #: building and volume integration never round-trip through lists.
        self._active = np.empty(0, dtype=np.intp)
        self._cancelled: set = set()
        # --- incremental view cache ------------------------------------------
        # Coflow grouping (and every gather of per-flow constants) only
        # changes when the active set changes: arrivals, completions and
        # cancellations set ``_groups_dirty``; every other decision point
        # reuses the cached segmentation and static columns.
        self._groups_dirty = True
        #: Debug/benchmark knob: force a full regroup at every decision
        #: point, restoring the pre-incremental view-building cost (used
        #: by the perf harness to measure the cache's win and by the
        #: microbench overhead guard).
        self.force_regroup = False
        self._cached_states: List[CoflowState] = []
        self._cached_coflow_ids = np.empty(0, dtype=np.int64)
        self._cached_perm = np.empty(0, dtype=np.intp)
        self._cached_starts = np.zeros(1, dtype=np.intp)
        self._cached_static: Dict[str, np.ndarray] = {}
        self._cap_events: List = []
        self._coflows: Dict[int, _CoflowRecord] = {}
        # coflow id -> arrival time, for the hot _regroup ranking (a dict
        # lookup beats chasing record attributes per coflow per decision).
        self._coflow_arrival: Dict[int, float] = {}
        self._calendar = ArrivalCalendar()
        self._claim_nodes: List[int] = []  # nodes with a core claimed last window

        self._k = 0  # current slice index; now == _k * slice_len
        self._started = False
        self._decision_points = 0
        self._ingress_bytes = np.zeros(fabric.num_ingress)
        self._egress_bytes = np.zeros(fabric.num_egress)
        self._flow_results: List[FlowResult] = []
        self._coflow_results: List[CoflowResult] = []
        self._on_coflow_complete: List[Callable[[CoflowResult], None]] = []
        self._on_flow_complete: List[Callable[[FlowResult], None]] = []
        self._on_decision: List[Callable[[float], None]] = []
        self._recorder = UtilizationRecorder(self.cpu.num_nodes) if sample_cpu else None

    # ------------------------------------------------------------------ store
    def _grow(self, extra: int) -> None:
        need = self._n + extra
        if need <= self._cap:
            return
        new_cap = max(64, self._cap * 2, need)
        for name in (
            "_src", "_dst", "_size", "_arrival", "_compressible", "_coflow_of",
            "_flow_id", "_raw", "_comp", "_xi", "_bytes_sent", "_comp_in",
            "_comp_out", "_start", "_finish", "_finish_phys", "_state",
        ):
            old = getattr(self, name)
            arr = np.zeros(new_cap, dtype=old.dtype)
            arr[: self._n] = old[: self._n]
            setattr(self, name, arr)
        self._cap = new_cap

    # ------------------------------------------------------------------- API
    @property
    def now(self) -> float:
        """Current simulated time (always on the slice grid)."""
        return self._k * self.slice_len

    @property
    def pending(self) -> bool:
        """Whether any submitted work is still unfinished."""
        return self._active.size > 0 or len(self._calendar) > 0

    @property
    def active_flows(self) -> int:
        """Number of currently active flows (the hot-path working-set size)."""
        return int(self._active.size)

    def on_coflow_complete(self, fn: Callable[[CoflowResult], None]) -> None:
        """Register a completion callback (used by the cluster simulator)."""
        self._on_coflow_complete.append(fn)

    def on_flow_complete(self, fn: Callable[[FlowResult], None]) -> None:
        self._on_flow_complete.append(fn)

    def on_decision(self, fn: Callable[[float], None]) -> None:
        """Register a hook fired at every decision point (before the
        scheduler runs) — e.g. the Swallow daemons' measurement beat."""
        self._on_decision.append(fn)

    def submit(self, coflow: Coflow) -> None:
        """Add a coflow to the workload; allowed any time before its arrival."""
        if coflow.arrival < self.now - 1e-12:
            raise ConfigurationError(
                f"coflow {coflow.coflow_id} arrives at {coflow.arrival} "
                f"but the simulation is already at {self.now}"
            )
        if coflow.coflow_id in self._coflows:
            raise ConfigurationError(f"coflow {coflow.coflow_id} submitted twice")
        n_new = len(coflow.flows)
        self._grow(n_new)
        g0 = self._n
        for j, f in enumerate(coflow.flows):
            g = g0 + j
            self._src[g] = f.src
            self._dst[g] = f.dst
            self._size[g] = f.size
            self._arrival[g] = f.arrival
            self._compressible[g] = f.compressible
            self._coflow_of[g] = coflow.coflow_id
            self._flow_id[g] = f.flow_id
            self._raw[g] = f.size
            self._comp[g] = 0.0
            if f.ratio_override is not None:
                self._xi[g] = f.ratio_override
            elif self.compression is not None:
                self._xi[g] = self.compression.ratio(f.size)
            else:
                self._xi[g] = 1.0
            self._state[g] = _PENDING
        self._n += n_new
        self.fabric.validate_endpoints(
            self._src[g0 : self._n], self._dst[g0 : self._n]
        )
        idx = np.arange(g0, self._n, dtype=np.intp)
        self._coflows[coflow.coflow_id] = _CoflowRecord(coflow, idx)
        self._coflow_arrival[coflow.coflow_id] = coflow.arrival
        self._calendar.push(coflow)

    def submit_many(self, coflows: Sequence[Coflow]) -> None:
        for c in coflows:
            self.submit(c)

    def cancel_coflow(self, coflow_id: int) -> int:
        """Abort a coflow: its unfinished flows leave the fabric now.

        Models job kills and framework-level aborts (e.g. a Spark stage
        failing mid-shuffle).  Flows that already completed keep their
        results; the coflow itself never produces a
        :class:`~repro.core.coflow.CoflowResult`.

        Returns the number of flows cancelled.  Callable between
        :meth:`run` calls or from completion callbacks.

        Cancelled flows are stamped with the cancellation instant in
        ``_finish``/``_finish_phys`` (never-started flows also get
        ``_start`` stamped), so store-level analysis can tell an aborted
        flow's lifetime apart from "finished at t=0".
        """
        rec = self._coflows.get(coflow_id)
        if rec is None:
            raise ConfigurationError(f"unknown coflow {coflow_id}")
        if rec.remaining == 0:
            raise ConfigurationError(
                f"coflow {coflow_id} already completed; nothing to cancel"
            )
        now = self.now
        cancelled = 0
        for g in rec.global_idx:
            if self._state[g] in (_PENDING, _ACTIVE):
                if self._state[g] == _PENDING:
                    self._start[g] = now
                self._state[g] = _CANCELLED
                self._finish[g] = now
                if self._finish_phys[g] == 0.0:
                    self._finish_phys[g] = now
                cancelled += 1
        self._active = self._active[self._coflow_of[self._active] != coflow_id]
        self._groups_dirty = True
        rec.remaining = 0
        self._cancelled.add(int(coflow_id))
        tr = self.obs.tracer
        if tr.enabled:
            tr.emit(now, "cancel", coflow_id=int(coflow_id), n_flows=cancelled)
        self.obs.metrics.counter("engine.cancellations").inc(cancelled)
        return cancelled

    @property
    def cancelled_coflows(self) -> frozenset:
        """Ids of coflows aborted via :meth:`cancel_coflow`."""
        return frozenset(self._cancelled)

    def schedule_capacity_change(
        self, time: float, side: str, port: int, capacity: float
    ) -> None:
        """Change a port's capacity at a future instant (dynamic bandwidth).

        Models background traffic coming and going — the condition the
        Swallow daemons measure and the master adapts to.  The change is
        applied at the first slice boundary at/after ``time`` and triggers
        a rescheduling (``EventKind.CAPACITY``).

        Parameters
        ----------
        side:
            ``"ingress"`` or ``"egress"``.
        """
        if side not in ("ingress", "egress"):
            raise ConfigurationError(f"side must be ingress/egress, got {side!r}")
        if time < self.now - 1e-12:
            raise ConfigurationError(
                f"capacity change at {time} is in the past (now={self.now})"
            )
        if capacity <= 0:
            raise ConfigurationError("capacity must stay positive")
        heapq.heappush(self._cap_events, (float(time), side, int(port), float(capacity)))

    def _apply_due_capacity_changes(self) -> bool:
        applied = False
        tr = self.obs.tracer
        while self._cap_events and self._cap_events[0][0] <= self.now + 1e-12:
            _, side, port, cap = heapq.heappop(self._cap_events)
            getattr(self.fabric, side).set_capacity(port, cap)
            if tr.enabled:
                tr.emit(self.now, "capacity", side=side, port=port, capacity=cap)
            applied = True
        return applied

    # ------------------------------------------------------------ main loop
    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Run until all submitted coflows finish (or ``until`` is reached).

        Incremental use is supported: call :meth:`run` with a horizon,
        :meth:`submit` more work, and call :meth:`run` again.
        """
        trigger = ScheduleTrigger({EventKind.START}) if not self._started else ScheduleTrigger()
        self._started = True
        while True:
            # Jump over empty time if nothing is active.
            if self._active.size == 0:
                nxt = self._next_arrival()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self._jump_to(until)
                    break
                self._jump_to(nxt)
            if until is not None and self.now >= until - 1e-12:
                break

            arrived = self._activate_due()
            if arrived:
                trigger.kinds.add(EventKind.ARRIVAL)
            if self._apply_due_capacity_changes():
                trigger.kinds.add(EventKind.CAPACITY)
            if self._active.size == 0:
                continue  # activation may still be empty (arrival just past `until`)

            # The previous window is over: its compression cores are free
            # for reassignment before the scheduler looks at the node state.
            self._release_claims()
            for fn in self._on_decision:
                fn(self.now)
            view = self._build_view(trigger)
            obs = self.obs
            tr = obs.tracer
            if tr.enabled:
                tr.emit(
                    self.now,
                    "decision",
                    kinds=trigger.kinds,
                    n_flows=view.num_flows,
                    n_coflows=len(view.coflows),
                )
            timed = obs.metrics.enabled or obs.profiler.enabled
            if timed:
                t0 = time.perf_counter()
            alloc = self.scheduler.schedule(view)
            if timed:
                elapsed = time.perf_counter() - t0
                obs.metrics.histogram("engine.decision_latency").observe(elapsed)
                if obs.profiler.enabled:
                    obs.profiler.add("schedule", elapsed)
            self._validate(view, alloc)
            self._apply_claims(view, alloc)
            if tr.enabled:
                tx = alloc.rates > 0
                tr.emit(
                    self.now,
                    "rates",
                    n_tx=int(tx.sum()),
                    total=float(alloc.rates.sum()),
                    max=float(alloc.rates.max()) if len(alloc.rates) else 0.0,
                )
                if alloc.compress.any():
                    tr.emit(
                        self.now,
                        "beta",
                        flow_ids=[int(i) for i in view.flow_ids[alloc.compress]],
                    )
            if self._recorder is not None:
                self._recorder.sample_model(self.now, self.cpu)
            self._decision_points += 1
            obs.metrics.counter("engine.decisions").inc()

            n_slices, dt_kinds = self._horizon_slices(view, alloc, until)
            if tr.enabled:
                tr.emit(self.now, "jump", n_slices=n_slices, kinds=dt_kinds)
            obs.metrics.histogram("engine.slices_jumped").observe(n_slices)
            boundary = (self._k + n_slices) * self.slice_len
            if obs.profiler.enabled:
                with obs.profiler.section("integrate"):
                    self._integrate(view, alloc, n_slices * self.slice_len)
            else:
                self._integrate(view, alloc, n_slices * self.slice_len)
            self._k += n_slices

            trigger = ScheduleTrigger(dt_kinds & {EventKind.HORIZON})
            completed = self._retire_finished(boundary)
            if completed:
                trigger.kinds.add(EventKind.COMPLETION)
            if EventKind.RAW_EXHAUSTED in dt_kinds:
                trigger.kinds.add(EventKind.RAW_EXHAUSTED)
        self._release_claims()
        return self.result()

    def result(self) -> SimulationResult:
        return SimulationResult(
            flow_results=list(self._flow_results),
            coflow_results=list(self._coflow_results),
            makespan=self.now,
            decision_points=self._decision_points,
            cpu_recorder=self._recorder,
            ingress_bytes=self._ingress_bytes.copy(),
            egress_bytes=self._egress_bytes.copy(),
        )

    # ------------------------------------------------------------- internals
    def _jump_to(self, t: float) -> None:
        """Advance the slice counter to the first boundary >= t."""
        k = int(math.ceil(t / self.slice_len - 1e-9))
        self._k = max(self._k, k)

    def _next_arrival(self) -> Optional[float]:
        """Earliest pending non-cancelled arrival."""
        self._calendar.prune_head(lambda c: c.coflow_id in self._cancelled)
        return self._calendar.peek_time()

    def _activate_due(self) -> List[Coflow]:
        due = [
            c
            for c in self._calendar.pop_due(self.now + 1e-12)
            if c.coflow_id not in self._cancelled
        ]
        tr = self.obs.tracer
        for coflow in due:
            rec = self._coflows[coflow.coflow_id]
            self._state[rec.global_idx] = _ACTIVE
            self._start[rec.global_idx] = self.now
            self._active = np.concatenate((self._active, rec.global_idx))
            self._groups_dirty = True
            if tr.enabled:
                tr.emit(
                    self.now,
                    "arrival",
                    coflow_id=int(coflow.coflow_id),
                    n_flows=len(rec.global_idx),
                )
        if due:
            self.obs.metrics.counter("engine.arrivals").inc(len(due))
        return due

    def _regroup(self) -> None:
        """Recompute the coflow segmentation of the active set.

        Invariant: the grouping (states list, per-state ``flow_idx``
        positions, ``coflow_ids`` column, unit permutation/offsets and
        every gather of per-flow *constants*) depends only on
        ``_active``, which changes exclusively on arrivals, completions
        and cancellations — exactly the sites that set
        ``_groups_dirty``.  Decision points triggered by anything else
        (raw exhaustion, capacity changes, horizon) reuse the cache.
        """
        idx = self._active
        coflow_ids = self._coflow_of[idx]
        # Rank distinct coflows by (arrival, coflow_id) — the order the
        # old per-decision dict grouping produced after its sort.
        uids, inv = np.unique(coflow_ids, return_inverse=True)
        arr_of = self._coflow_arrival
        arrivals = np.asarray([arr_of[c] for c in uids.tolist()])
        by_arrival = np.lexsort((uids, arrivals))
        rank = np.empty(len(uids), dtype=np.intp)
        rank[by_arrival] = np.arange(len(uids), dtype=np.intp)
        unit_of_pos = rank[inv]
        # Stable sort keeps positions ascending within each coflow,
        # matching the old scan order.
        perm = np.argsort(unit_of_pos, kind="stable").astype(np.intp, copy=False)
        counts = np.bincount(unit_of_pos, minlength=len(uids))
        starts = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
        states: List[CoflowState] = []
        for k, u in enumerate(by_arrival):
            rec = self._coflows[int(uids[u])]
            rec.state.flow_idx = perm[starts[k] : starts[k + 1]]
            states.append(rec.state)
        self._cached_states = states
        self._cached_coflow_ids = coflow_ids
        self._cached_perm = perm
        self._cached_starts = starts
        self._cached_static = {
            "flow_ids": self._flow_id[idx],
            "src": self._src[idx],
            "dst": self._dst[idx],
            "xi": self._xi[idx],
            "size": self._size[idx],
            "arrival": self._arrival[idx],
            "compressible": self._compressible[idx],
        }
        self._groups_dirty = False

    def _build_view(self, trigger: ScheduleTrigger) -> SchedulerView:
        if self._groups_dirty or self.force_regroup:
            self._regroup()
        idx = self._active
        static = self._cached_static
        free = self.cpu.free_cores(self.now)
        return SchedulerView(
            time=self.now,
            slice_len=self.slice_len,
            trigger=trigger,
            fabric=self.fabric,
            flow_ids=static["flow_ids"],
            src=static["src"],
            dst=static["dst"],
            raw=self._raw[idx].copy(),
            comp=self._comp[idx].copy(),
            xi=static["xi"],
            size=static["size"],
            arrival=static["arrival"],
            coflow_ids=self._cached_coflow_ids,
            compressible=static["compressible"],
            coflows=self._cached_states,
            free_cores=free,
            compression=self.compression,
            unit_perm=self._cached_perm,
            unit_starts=self._cached_starts,
        )

    def _validate(self, view: SchedulerView, alloc: Allocation) -> None:
        n = view.num_flows
        if len(alloc.rates) != n or len(alloc.compress) != n:
            raise SchedulingError(
                f"{self.scheduler.name}: allocation length {len(alloc.rates)} "
                f"!= {n} active flows"
            )
        if np.any(~np.isfinite(alloc.rates)):
            raise SchedulingError(f"{self.scheduler.name}: non-finite rate")
        self.fabric.check_feasible(view.src, view.dst, alloc.rates)
        if np.any(alloc.compress & (alloc.rates > 0)):
            raise SchedulingError(
                f"{self.scheduler.name}: a flow may not compress and transmit "
                "in the same slice (exclusive β)"
            )
        if alloc.compress.any():
            if self.compression is None:
                raise SchedulingError(
                    f"{self.scheduler.name} requested compression but the "
                    "simulator has no compression engine"
                )
            bad = alloc.compress & (~view.compressible | (view.raw <= 0))
            if bad.any():
                raise SchedulingError(
                    f"{self.scheduler.name}: compression requested for an "
                    "incompressible or fully-compressed flow"
                )
            counts = np.bincount(
                view.src[alloc.compress], minlength=self.cpu.num_nodes
            )
            if np.any(counts > view.free_cores):
                node = int(np.argmax(counts - view.free_cores))
                raise SchedulingError(
                    f"{self.scheduler.name}: node {node} granted "
                    f"{counts[node]} compressions with only "
                    f"{view.free_cores[node]} free cores"
                )

    def _apply_claims(self, view: SchedulerView, alloc: Allocation) -> None:
        claims: Dict[int, int] = {}
        for pos in np.nonzero(alloc.compress)[0]:
            node = int(view.src[pos])
            self.cpu.claim(node)
            self._claim_nodes.append(node)
            claims[node] = claims.get(node, 0) + 1
        if claims:
            tr = self.obs.tracer
            if tr.enabled:
                for node, n in sorted(claims.items()):
                    tr.emit(self.now, "core_claim", node=node, claims=n)
            self.obs.metrics.counter("engine.core_claims").inc(sum(claims.values()))

    def _release_claims(self) -> None:
        for node in self._claim_nodes:
            self.cpu.release(node)
        self._claim_nodes.clear()

    def _horizon_slices(self, view, alloc, until):
        """Slices to advance until the next interesting boundary.

        Returns ``(n, kinds)``: the number of slices to fast-forward and
        the *union* of every event kind that lands within the advanced
        window ``(now, now + n·δ]``.  All such events take effect at the
        boundary (arrivals activate, drained flows retire, capacity
        changes apply), so the trigger handed to the scheduler must carry
        all of their kinds — keeping only the earliest kind would drop
        coincident triggers at tied boundaries (e.g. an arrival and a
        completion at the same instant) and break the Upgrade step's
        fire-at-every-event contract (Pseudocode 3).
        """
        candidates: List = []
        nxt = self._next_arrival()
        if nxt is not None:
            candidates.append((max(nxt - self.now, 0.0), EventKind.ARRIVAL))
        R = self.compression.speed if self.compression is not None else 0.0
        vol = view.raw + view.comp
        tx = alloc.rates > 0
        if tx.any():
            dt = float((vol[tx] / alloc.rates[tx]).min())
            candidates.append((dt, EventKind.COMPLETION))
        cz = alloc.compress
        if cz.any() and R > 0:
            candidates.append((float((view.raw[cz] / R).min()), EventKind.RAW_EXHAUSTED))
        if self._cap_events:
            candidates.append(
                (max(self._cap_events[0][0] - self.now, 0.0), EventKind.CAPACITY)
            )
        if until is not None:
            candidates.append((until - self.now, EventKind.HORIZON))
        if not candidates:
            raise SimulationError(
                f"{self.scheduler.name}: no flow transmits or compresses and "
                "no arrival is pending — simulated time cannot advance "
                f"(t={self.now:.6g}, {view.num_flows} active flows)"
            )
        dt_min = min(dt for dt, _ in candidates)
        n = max(1, int(math.ceil(dt_min / self.slice_len - 1e-9)))
        # Slice-grid epsilon: events within one part in 1e9 of the boundary
        # are ties, matching the ceil() tolerance above.
        window = n * self.slice_len * (1.0 + 1e-9)
        kinds = {kind for dt, kind in candidates if dt <= window}
        return n, kinds

    def _integrate(self, view: SchedulerView, alloc: Allocation, dt: float) -> None:
        idx = self._active
        rates = alloc.rates
        # --- compression: raw -> comp, shrunk by xi --------------------------
        cz = alloc.compress
        if cz.any():
            R = self.compression.speed
            gi = idx[cz]
            consumed = np.minimum(self._raw[gi], R * dt)
            self._raw[gi] -= consumed
            self._comp[gi] += consumed * self._xi[gi]
            self._comp_in[gi] += consumed
        # --- transmission: drain comp first, then raw -------------------------
        tx = rates > 0
        if tx.any():
            gi = idx[tx]
            vol_before = self._raw[gi] + self._comp[gi]
            budget = rates[tx] * dt
            sent = np.minimum(vol_before, budget)
            done = sent >= vol_before - self._eps(gi)
            # physical finish of completed flows
            self._finish_phys[gi[done]] = self.now + vol_before[done] / rates[tx][done]
            from_comp = np.minimum(self._comp[gi], sent)
            self._comp[gi] -= from_comp
            self._raw[gi] -= sent - from_comp
            self._raw[gi] = np.maximum(self._raw[gi], 0.0)
            self._comp[gi] = np.maximum(self._comp[gi], 0.0)
            self._bytes_sent[gi] += sent
            self._comp_out[gi] += from_comp
            self.obs.metrics.counter("engine.bytes_sent").inc(float(sent.sum()))
            self._ingress_bytes += np.bincount(
                self._src[gi], weights=sent, minlength=len(self._ingress_bytes)
            )
            self._egress_bytes += np.bincount(
                self._dst[gi], weights=sent, minlength=len(self._egress_bytes)
            )

    def _eps(self, gi: np.ndarray) -> np.ndarray:
        return 1e-9 * self._size[gi] + 1e-9

    def _retire_finished(self, boundary: float) -> List[int]:
        """Mark flows with zero volume done; close coflows; fire callbacks."""
        finished_coflows: List[int] = []
        idx = self._active
        if len(idx) == 0:
            return finished_coflows
        vol = self._raw[idx] + self._comp[idx]
        done_mask = vol <= self._eps(idx)
        done_idx = idx[done_mask]
        if len(done_idx) == 0:
            return finished_coflows
        self._active = idx[~done_mask]
        self._groups_dirty = True
        self._state[done_idx] = _DONE
        self._finish[done_idx] = boundary
        unset = self._finish_phys[done_idx] == 0.0
        self._finish_phys[done_idx[unset]] = boundary
        tr = self.obs.tracer
        mx = self.obs.metrics
        mx.counter("engine.flow_completions").inc(len(done_idx))
        for g in done_idx:
            fr = self._make_flow_result(int(g))
            if tr.enabled:
                tr.emit(
                    boundary,
                    "completion",
                    flow_id=fr.flow_id,
                    coflow_id=fr.coflow_id,
                )
            self._flow_results.append(fr)
            for fn in self._on_flow_complete:
                fn(fr)
            rec = self._coflows[self._coflow_of[g]]
            rec.flow_results.append(fr)
            rec.remaining -= 1
            rec.finish_phys = max(rec.finish_phys, self._finish_phys[g])
            if rec.remaining == 0:
                finished_coflows.append(int(self._coflow_of[g]))
        for cid in finished_coflows:
            rec = self._coflows[cid]
            gi = rec.global_idx
            cr = CoflowResult(
                coflow_id=cid,
                label=rec.coflow.label,
                arrival=rec.coflow.arrival,
                finish=boundary,
                finish_physical=rec.finish_phys,
                size=float(self._size[gi].sum()),
                width=len(gi),
                bytes_sent=float(self._bytes_sent[gi].sum()),
                flow_results=list(rec.flow_results),
                deadline=rec.coflow.deadline,
            )
            if tr.enabled:
                tr.emit(boundary, "completion", coflow_id=cid)
            mx.counter("engine.completions").inc()
            self._coflow_results.append(cr)
            for fn in self._on_coflow_complete:
                fn(cr)
        return finished_coflows

    def _make_flow_result(self, g: int) -> FlowResult:
        decompress = 0.0
        if self.compression is not None and self._comp_out[g] > 0:
            decompress = float(
                self._comp_out[g] / self.compression.codec.decompression_speed
            )
        return FlowResult(
            flow_id=int(self._flow_id[g]),
            coflow_id=int(self._coflow_of[g]),
            src=int(self._src[g]),
            dst=int(self._dst[g]),
            size=float(self._size[g]),
            arrival=float(self._arrival[g]),
            start=float(self._start[g]),
            finish=float(self._finish[g]),
            finish_physical=float(self._finish_phys[g]),
            bytes_sent=float(self._bytes_sent[g]),
            bytes_compressed_in=float(self._comp_in[g]),
            bytes_compressed_out=float(self._comp_out[g]),
            decompress_time=decompress,
        )
