"""Process-sharded decision kernel: shards fan out over worker processes.

The threaded backend parallelizes the GIL-*releasing* numpy slices, but
the Python-level round orchestration of each shard (loop bookkeeping,
tail loops, small-array glue) still serializes on the GIL.  This backend
ships whole contention-component shards to a lazily-spawned, persistent
``ProcessPoolExecutor`` instead: each worker runs
:func:`repro.core.kernels.fill.fill_shard` start-to-finish on its own
interpreter, so shards progress truly concurrently.

Array transport is :mod:`repro.runner.shm`, not pickle:

* the parent exports each shard's input columns (``wsub``, fused
  ``caps``, per-dimension membership/group columns, incidence rows) into
  one shared segment and submits only the header-sized
  :class:`~repro.runner.shm.ShmBlock` descriptor;
* the worker attaches **without consuming** (``consume=False`` — the
  parent keeps segment ownership for the pool's lifetime and discards
  after the round trip), copies the columns out, fills the shard, and
  exports ``grants``/``caps`` back the same way;
* the parent attaches the result segment (consuming it) and commits.

Values are bit-identical to the ``python`` reference by construction:
the shard/chunk *plan* is computed in the parent exactly as for every
other backend, and the worker executes the shared ``fill_shard``
arithmetic on byte-identical column copies.

Degradation is always silent and value-neutral: single-shard pools,
``REPRO_SHM=0``, nested execution inside another pool worker, export
failures and broken pools all fall back to the inherited threaded
dispatch.  ``REPRO_KERNEL_PROCS`` sizes the pool (default
``max(2, min(8, usable cores))``, matching the thread pool).
"""

from __future__ import annotations

import os
import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import ThreadedKernel, fill
from repro.errors import ConfigurationError
from repro.runner import shm

__all__ = ["ENV_PROCS", "ProcessKernel", "pool_workers", "shutdown"]

#: Environment variable sizing the worker-process pool.
ENV_PROCS = "REPRO_KERNEL_PROCS"

#: Shards actually executed in worker processes (monotone, parent side)
#: — test/bench evidence that dispatch crossed a process boundary.
DISPATCHED = 0

_LOCK = threading.Lock()
_POOL = None
_POOL_PID: Optional[int] = None


def pool_workers() -> int:
    """Worker-process count (``REPRO_KERNEL_PROCS``, else the thread-pool
    sizing rule: ``max(2, min(8, usable cores))``)."""
    raw = os.environ.get(ENV_PROCS, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ConfigurationError(
                f"cannot parse ${ENV_PROCS}={raw!r} (expected an integer)"
            ) from None
    from repro.core.kernels import usable_cores

    return max(2, min(8, usable_cores()))


def _worker_init() -> None:
    """Pool initializer: workers never spawn pools of their own."""
    os.environ["REPRO_IN_WORKER"] = "1"


def _ensure_pool():
    """The persistent executor (spawned on first multi-shard fill; a
    stale pool inherited over ``fork`` is replaced, not reused)."""
    global _POOL, _POOL_PID
    if _POOL is not None and _POOL_PID == os.getpid():
        return _POOL
    with _LOCK:
        if _POOL is None or _POOL_PID != os.getpid():
            from concurrent.futures import ProcessPoolExecutor

            try:
                _POOL = ProcessPoolExecutor(
                    max_workers=pool_workers(), initializer=_worker_init
                )
            except OSError:  # pragma: no cover - fork-hostile platform
                _POOL = None
            _POOL_PID = os.getpid()
    return _POOL


def shutdown() -> None:
    """Tear the worker pool down (tests; production pools live until
    interpreter exit, where concurrent.futures joins them)."""
    global _POOL
    with _LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
            _POOL = None


def _shard_worker(block: "shm.ShmBlock", ndim: int, tail: int):
    """Worker side: rebuild one shard from its descriptor, fill it,
    export the results.

    Attaches non-consuming — the input segment stays parent-owned for
    the round trip — and runs the serial reference kernel (chunk work
    inside a worker is ``nested`` by definition).  Returns the output
    descriptor; ownership of that segment transfers to the parent via
    ``export_arrays``'s disown protocol.
    """
    from repro.core import kernels

    cols = shm.attach_arrays(block, consume=False)
    memb = [cols[f"memb{d}"] for d in range(ndim)]
    lsafe = [cols[f"lsafe{d}"] for d in range(ndim)]
    caps = cols["caps"]
    grants = np.zeros(cols["wsub"].size, dtype=np.float64)
    fill.fill_shard(
        kernels._instance("python"), grants, cols["wsub"], memb, lsafe,
        caps, cols["rows"], cols["rowg"], tail, nested=True,
    )
    return shm.export_arrays({"grants": grants, "caps": caps})


def _drain_outputs(futures, consumed: int) -> None:
    """Error-path hygiene: unlink result segments of futures whose
    output the parent will never attach."""
    for fut in futures[consumed:]:
        try:
            out = fut.result()
        except BaseException:
            continue
        if out is not None:
            shm.discard(out)


class ProcessKernel(ThreadedKernel):
    """Shards run on a persistent worker-process pool over shm columns.

    Chunk fan-out and the scalar tail inherit from
    :class:`~repro.core.kernels.ThreadedKernel`; only
    :meth:`run_shards` changes, so a request for this backend is safe
    everywhere — fills without a multi-shard plan behave exactly like
    ``threaded`` and never spawn a process.
    """

    name = "process"
    parallel = True

    def run_shards(
        self, shards: Sequence["fill.ShardTask"], tail: int
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        if (
            len(shards) <= 1
            or os.environ.get("REPRO_IN_WORKER")
            or not shm.shm_enabled()
        ):
            return super().run_shards(shards, tail)
        pool = _ensure_pool()
        if pool is None:
            return super().run_shards(shards, tail)
        inblocks: List[shm.ShmBlock] = []
        futures = []
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        try:
            try:
                for sh in shards:
                    cols = {
                        "wsub": sh.wsub, "caps": sh.caps,
                        "rows": sh.rows, "rowg": sh.rowg,
                    }
                    for d, (m, ls) in enumerate(zip(sh.memb, sh.lsafe)):
                        cols[f"memb{d}"] = m
                        cols[f"lsafe{d}"] = ls
                    block = shm.export_arrays(cols)
                    if block is None:
                        raise OSError("shared-memory export unavailable")
                    inblocks.append(block)
                    futures.append(
                        pool.submit(_shard_worker, block, len(sh.memb), tail)
                    )
                for fut in futures:
                    out = fut.result()
                    if out is None:
                        raise OSError("worker exported no result columns")
                    arrs = shm.attach_arrays(out)
                    results.append((arrs["grants"], arrs["caps"]))
            finally:
                # Input segments are parent-owned for the whole round
                # trip (pool-lifetime attach on the worker side): the
                # parent discards them exactly once, success or not.
                for blk in inblocks:
                    shm.discard(blk)
        except Exception:
            _drain_outputs(futures, len(results))
            _reset_if_broken()
            # The shard inputs are untouched (workers mutate segment
            # copies, never the parent's arrays), so the inherited
            # threaded dispatch reproduces the fill bit-identically.
            return super().run_shards(shards, tail)
        global DISPATCHED
        DISPATCHED += len(shards)
        return results


def _reset_if_broken() -> None:
    """Drop the executor after a pool-breaking failure so the next fill
    can respawn it (export/attach hiccups keep the healthy pool)."""
    global _POOL
    from concurrent.futures.process import BrokenProcessPool

    with _LOCK:
        if _POOL is not None and isinstance(
            getattr(_POOL, "_broken", None), (str, BrokenProcessPool)
        ):
            _POOL.shutdown(wait=False)
            _POOL = None
