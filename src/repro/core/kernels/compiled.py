"""Numba-compiled decision kernel (optional).

Importable whether or not numba is installed: :data:`HAVE_NUMBA` gates
everything, and :func:`make_kernel` returns ``None`` when the compiled
backend can't be built (callers fall back to the threaded kernel — see
``repro.core.kernels.resolve_kernel``).

The compiled pieces replace only the two leaf loops whose arithmetic
order is fully pinned down:

* the **scalar tail** — the per-entry min/subtract walk over a CSR view
  of the fused rows.  Rows arrive sorted by fused group id, and group
  ids are dimension-disjoint with cumulative offsets, so a stable
  argsort by entry keeps each entry's rows in ascending dimension
  order: the njit loop performs the exact IEEE operation sequence of
  the list-based reference tail, hence bit-identical grants.
* the **segment max** — exact and associative, so a ``prange`` loop is
  trivially bit-identical to ``np.maximum.reduceat`` (including the
  reduceat quirk that an empty segment yields its start element).

Everything else (rounds, shard plans, chunk plans) is the shared numpy
code in :mod:`repro.core.kernels.fill`.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where the numba wheel exists
    from numba import njit, prange

    HAVE_NUMBA = True
except Exception:  # pragma: no cover
    HAVE_NUMBA = False

if HAVE_NUMBA:  # pragma: no cover - covered by the optional CI numba job

    @njit(cache=True, nogil=True)
    def _tail_csr(grants, ids, wsub, caps, indptr, gcsr):
        for pos in range(wsub.shape[0]):
            r = wsub[pos]
            for j in range(indptr[pos], indptr[pos + 1]):
                c = caps[gcsr[j]]
                if c < r:
                    r = c
            if r <= 0.0:
                continue
            grants[ids[pos]] += r
            for j in range(indptr[pos], indptr[pos + 1]):
                caps[gcsr[j]] -= r

    @njit(cache=True, nogil=True, parallel=True)
    def _segment_max(vals, starts, ends, out):
        for s in prange(starts.shape[0]):
            a = starts[s]
            m = vals[a]
            for j in range(a + 1, ends[s]):
                v = vals[j]
                if v > m:
                    m = v
            out[s] = m


def make_kernel():
    """Build the compiled kernel instance, or ``None`` without numba."""
    if not HAVE_NUMBA:
        return None
    from repro.core.kernels import ThreadedKernel

    class CompiledKernel(ThreadedKernel):
        """njit tail + prange segment-max; threaded shard dispatch."""

        name = "compiled"
        parallel = True

        def fill_tail(self, grants, ids, wsub, memb, lsafe, caps, rows, rowg):
            k = wsub.shape[0]
            counts = np.bincount(rows, minlength=k)
            indptr = np.zeros(k + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            rorder = np.argsort(rows, kind="stable")
            gcsr = np.ascontiguousarray(rowg[rorder], dtype=np.int64)
            _tail_csr(
                grants,
                np.ascontiguousarray(ids, dtype=np.int64),
                np.ascontiguousarray(wsub, dtype=np.float64),
                caps,
                indptr,
                gcsr,
            )

        def segment_max(self, values, perm, starts):
            vals = np.ascontiguousarray(values[perm], dtype=np.float64)
            st = np.ascontiguousarray(starts[:-1], dtype=np.int64)
            en = np.ascontiguousarray(starts[1:], dtype=np.int64)
            out = np.empty(st.shape[0], dtype=np.float64)
            _segment_max(vals, st, en, out)
            return out

    return CompiledKernel()
