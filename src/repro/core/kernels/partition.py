"""Deterministic decomposition plans for the decision-pool fill.

Two plans feed :mod:`repro.core.kernels.fill`:

* :func:`label_components` — connected components of the bipartite
  contention graph (pool entries on one side, fused constraint groups on
  the other).  Entries in different components share no constraint, so
  their fills are completely independent and may run on different
  threads (or compiled loops) without any synchronization.
* :func:`chunk_bounds` — segment-aligned chunk boundaries for the
  per-round row phase inside one large shard, so the prefix-fits test
  parallelizes even when the whole fabric is one contention component
  (the common big-switch overload regime).

Both plans are **pure functions of the pool** — never of the host's core
count or of the selected backend — so every backend on every machine
derives the identical decomposition, which is what makes cross-backend
results bit-identical (see ``tests/test_kernel_backends.py``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Row-phase chunk size.  One chunk per this many fused rows; chunk count
#: derives from the pool only (NOT from the core count), so per-chunk
#: prefix sums are reproducible across hosts and backends.
CHUNK_ROWS = 32768

#: Iteration cap for the component labelling loop; pools that have not
#: converged by then (pathological contention chains) fall back to one
#: shard, which is always correct and still deterministic.
MAX_LABEL_ITERS = 96


def label_components(
    rows: np.ndarray,
    rowg: np.ndarray,
    n_entries: int,
    n_groups: int,
    max_iter: int = MAX_LABEL_ITERS,
) -> Optional[np.ndarray]:
    """Component label per pool entry, or ``None`` when not converged.

    ``rows``/``rowg`` are the fused (entry, group) incidence rows of the
    pool, sorted by ``rowg``.  Labels are propagated with segment-min
    reductions on both sides of the bipartite graph plus pointer jumping,
    so convergence takes O(log diameter) passes over the rows instead of
    one pass per chain link.  The returned labels are minimum node ids —
    arbitrary but deterministic, which is all the shard plan needs.
    """
    if n_entries == 0:
        return np.empty(0, dtype=np.int64)
    nr = rows.size
    if nr == 0:
        return np.arange(n_entries, dtype=np.int64)
    lab = np.arange(n_entries + n_groups, dtype=np.int64)
    gnode = rowg.astype(np.int64) + n_entries
    # Group-sorted segments come for free (rows are sorted by rowg).
    gseg = np.empty(nr, dtype=bool)
    gseg[0] = True
    gseg[1:] = rowg[1:] != rowg[:-1]
    gstarts = np.flatnonzero(gseg)
    gids = gnode[gstarts]
    # Entry-sorted view, built once and reused every pass.
    eorder = np.argsort(rows, kind="stable")
    erows = rows[eorder].astype(np.int64)
    egroups = gnode[eorder]
    eseg = np.empty(nr, dtype=bool)
    eseg[0] = True
    eseg[1:] = erows[1:] != erows[:-1]
    estarts = np.flatnonzero(eseg)
    eids = erows[estarts]
    for _ in range(max_iter):
        prev = lab.copy()
        # Groups absorb the min label of their member entries...
        gmin = np.minimum.reduceat(lab[rows], gstarts)
        lab[gids] = np.minimum(lab[gids], gmin)
        # ...entries absorb the min label of their groups...
        emin = np.minimum.reduceat(lab[egroups], estarts)
        lab[eids] = np.minimum(lab[eids], emin)
        # ...and every node shortcuts to its label's label.
        lab = np.minimum(lab, lab[lab])
        if np.array_equal(lab, prev):
            break
    else:
        return None
    # Full path compression so equal components share one representative.
    for _ in range(max_iter):
        nxt = lab[lab]
        if np.array_equal(nxt, lab):
            break
        lab = nxt
    return lab[:n_entries]


def chunk_bounds(
    n_rows: int,
    seg_starts: np.ndarray,
    chunk: Optional[int] = None,
) -> np.ndarray:
    """Segment-aligned chunk boundaries ``[0, ..., n_rows]`` for a row phase.

    The chunk count is ``ceil(n_rows / chunk)`` — derived from the pool,
    never from the host — and each boundary is snapped forward to the
    next segment start so a group's queue never straddles two chunks
    (per-chunk prefix sums then reproduce the canonical segment-local
    cumulative demand exactly).  Boundaries may collapse when segments
    are huge; duplicates are dropped.
    """
    if chunk is None:
        chunk = CHUNK_ROWS
    nch = -(-n_rows // chunk) if n_rows > 0 else 1
    if nch <= 1:
        return np.array([0, n_rows], dtype=np.intp)
    targets = (np.arange(1, nch, dtype=np.int64) * n_rows) // nch
    ext = np.append(seg_starts.astype(np.int64), n_rows)
    cuts = ext[np.searchsorted(ext, targets, side="left")]
    return np.unique(np.concatenate(([0], cuts, [n_rows]))).astype(np.intp)
