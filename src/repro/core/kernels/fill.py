"""Backend-shared implementation of the contended priority-fill pool.

:func:`fill_pool` settles the contended remainder of a demand-capped
priority fill (see ``rate_allocation._fill_contended_demands`` for the
algorithm: prefix-fits rounds over fused (entry, group) rows, scalar
tail below the crossover).  All backends run *this* code over *the same*
decomposition:

* the pool splits into **shards** along connected components of the
  contention graph (entries in different components share no constraint,
  so their fills are independent to the last bit);
* inside a shard, each round's prefix-fits row phase splits into
  **segment-aligned chunks** so one giant component (the big-switch
  overload regime) still parallelizes.

Backends differ only in *dispatch* — :class:`~repro.core.kernels.DecisionKernel`
runs every task serially, the threaded kernel fans shard/chunk tasks over
a thread pool, the compiled kernel swaps the scalar tail for an ``@njit``
loop — never in the plan or the arithmetic, which is what makes results
bit-identical across ``REPRO_KERNEL`` settings and host core counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import arena, partition

#: Shard-count ceiling: components are packed into at most this many
#: shards (pure function of the pool size, never of the host).
MAX_SHARDS = 64

#: Entry-count floor per shard, so thousands of tiny components don't
#: turn into thousands of per-shard numpy round trips.
MIN_SHARD_ENTRIES = 1024


@dataclass
class ShardTask:
    """One contention-component shard, in shard-local coordinates.

    A plain column bundle — no closures — so backends can ship it
    anywhere: the serial/threaded kernels run it in this process, the
    process kernel exports the columns to a shared-memory segment and a
    worker rebuilds the task on the far side.  ``caps`` is the shard's
    private fused-capacity copy and is mutated by execution; the parent
    commits it (and the returned grants) back through the plan's
    ``entries``/``gids`` maps, which never leave the parent.
    """

    wsub: np.ndarray
    memb: List[np.ndarray]
    lsafe: List[np.ndarray]
    caps: np.ndarray
    rows: np.ndarray
    rowg: np.ndarray


def run_shard(kernel, shard: ShardTask, tail: int) -> Tuple[np.ndarray, np.ndarray]:
    """Execute one shard to completion; returns ``(grants, caps)``.

    The reference executor behind ``DecisionKernel.run_shards``:
    ``nested=True`` keeps chunk work serial (a shard is already a pool
    task — see :func:`fill_shard`).  Mutates ``shard.caps`` in place and
    returns it, exactly like the pre-refactor closure tasks did.
    """
    grants = np.zeros(shard.wsub.size, dtype=np.float64)
    fill_shard(
        kernel, grants, shard.wsub, list(shard.memb), list(shard.lsafe),
        shard.caps, shard.rows, shard.rowg, tail, nested=True,
    )
    return grants, shard.caps


def tail_fused(
    grants: np.ndarray,
    ids: np.ndarray,
    wsub: np.ndarray,
    memb: Sequence[np.ndarray],
    lsafe: Sequence[np.ndarray],
    caps: np.ndarray,
    rows: Optional[np.ndarray] = None,
    rowg: Optional[np.ndarray] = None,
) -> None:
    """Settle a pool flow-by-flow on plain Python lists (fused caps).

    The reference scalar tail: bit-identical to the pre-kernel
    ``_scalar_tail_demands`` loop (Python floats are IEEE doubles, the
    per-dimension min/subtract order is preserved), but indexing one
    fused capacity vector.  ``rows``/``rowg`` are accepted for interface
    parity with the compiled CSR tail and ignored here.
    """
    ndim = len(memb)
    caps_l = caps.tolist()
    gi: list = []
    gr: list = []
    if ndim == 2:
        for pos, (w, m0, g0, m1, g1) in enumerate(
            zip(
                wsub.tolist(),
                memb[0].tolist(),
                lsafe[0].tolist(),
                memb[1].tolist(),
                lsafe[1].tolist(),
            )
        ):
            r = w
            if m0 and caps_l[g0] < r:
                r = caps_l[g0]
            if m1 and caps_l[g1] < r:
                r = caps_l[g1]
            if r <= 0.0:
                continue
            gi.append(pos)
            gr.append(r)
            if m0:
                caps_l[g0] -= r
            if m1:
                caps_l[g1] -= r
    else:
        gl = [s.tolist() for s in lsafe]
        ml = [m.tolist() for m in memb]
        wl = wsub.tolist()
        for pos in range(len(wl)):
            r = wl[pos]
            for d in range(ndim):
                if ml[d][pos]:
                    c = caps_l[gl[d][pos]]
                    if c < r:
                        r = c
            if r <= 0.0:
                continue
            gi.append(pos)
            gr.append(r)
            for d in range(ndim):
                if ml[d][pos]:
                    caps_l[gl[d][pos]] -= r
    caps[:] = caps_l
    if gi:
        np.add.at(grants, ids[np.asarray(gi, dtype=np.intp)], np.asarray(gr))


def _round_counts(
    a: int,
    b: int,
    rows: np.ndarray,
    rowg: np.ndarray,
    newseg: np.ndarray,
    ub: np.ndarray,
    wsub: np.ndarray,
    caps: np.ndarray,
    k: int,
) -> np.ndarray:
    """Per-entry failed-row counts for one segment-aligned chunk.

    Chunk boundaries are segment starts, so the chunk-local cumulative
    sum reproduces the canonical segment-local prefix regardless of how
    many chunks the round was split into — the split is invisible to the
    result, only to the wall clock.  Intermediates come out of the
    thread-local scratch arena (chunks dispatched to different threads
    never share buffers; chunks on one thread run serially).
    """
    ar = arena.local_arena()
    n = b - a
    rows_c = rows[a:b]
    ns_c = newseg[a:b]
    sid_c = np.cumsum(ns_c, out=ar.take("chunk_sid", n, np.intp))
    sid_c -= 1
    sst = np.flatnonzero(ns_c)
    ubr = np.take(ub, rows_c, out=ar.take("chunk_ubr", n))
    # Worst-case cumulative take within each group's queue, prefix up to
    # each row *exclusive*, plus its own demand; segment heads pass
    # unconditionally (their headroom against current caps is exact).
    c = np.cumsum(ubr, out=ar.take("chunk_cum", n))
    base = np.where(sst > 0, c[sst - 1], 0.0)
    t = np.take(base, sid_c, out=ar.take("chunk_t", n))
    np.subtract(c, t, out=t)
    np.subtract(t, ubr, out=t)
    t += np.take(wsub, rows_c, out=ar.take("chunk_w", n))
    ok = np.less_equal(
        t,
        np.take(caps, rowg[a:b], out=ar.take("chunk_caps", n)),
        out=ar.take("chunk_ok", n, np.bool_),
    )
    np.logical_or(ok, ns_c, out=ok)
    np.logical_not(ok, out=ok)
    return np.bincount(rows_c[ok], minlength=k)


def fill_shard(
    kernel,
    grants: np.ndarray,
    wsub: np.ndarray,
    memb: List[np.ndarray],
    lsafe: List[np.ndarray],
    caps: np.ndarray,
    rows: np.ndarray,
    rowg: np.ndarray,
    tail: int,
    nested: bool,
) -> None:
    """Run prefix-fits rounds over one shard (fused-local coordinates).

    Mutates ``grants`` (indexed through the compacting ``ids`` map) and
    ``caps`` in place.  ``nested=True`` means this shard is already
    running as a pool task, so chunk work stays serial — dispatching
    chunks back into the same pool from a pool thread can deadlock.  The
    chunk *plan* is computed either way, so values don't depend on where
    the chunks ran.
    """
    ndim = len(memb)
    # Round scratch comes from the thread-local arena.  Single-key
    # buffers ("ub", "newseg", ...) are fully rewritten before every
    # read; the pool columns carried *across* the compaction step use
    # flip parity so a gather never reads the buffer it writes.
    ar = arena.local_arena()
    flip = 0
    ids = np.arange(wsub.size, dtype=np.intp)
    while True:
        k = wsub.size
        if k == 0:
            return
        if k <= tail:
            kernel.fill_tail(grants, ids, wsub, memb, lsafe, caps, rows, rowg)
            return
        # Per-entry upper bound on what it can ever take from here on:
        # demand capped by headroom against *current* capacities
        # (capacities only shrink, so no later turn can beat this).
        ub = ar.take("ub", k)
        ub[:] = np.inf
        gcap = ar.take("gcap", k)
        for d in range(ndim):
            np.take(caps, lsafe[d], out=gcap)
            np.minimum(ub, gcap, where=memb[d], out=ub)
        np.minimum(ub, wsub, out=ub)
        np.maximum(ub, 0.0, out=ub)
        if rows.size:
            newseg = ar.take("newseg", rows.size, np.bool_)
            newseg[0] = True
            np.not_equal(rowg[1:], rowg[:-1], out=newseg[1:])
            seg_starts = np.flatnonzero(newseg)
            bounds = partition.chunk_bounds(rows.size, seg_starts)
            thunks = [
                (
                    lambda a=int(a), b=int(b): _round_counts(
                        a, b, rows, rowg, newseg, ub, wsub, caps, k
                    )
                )
                for a, b in zip(bounds[:-1], bounds[1:])
            ]
            if len(thunks) > 1 and not nested:
                counts = kernel.run_tasks(thunks)
            else:
                counts = [t() for t in thunks]
            bad = counts[0]
            for extra in counts[1:]:
                bad = bad + extra
            ready = np.equal(bad, 0, out=ar.take("ready", k, np.bool_))
        else:
            ready = ar.take("ready", k, np.bool_)
            ready[:] = True
        rp = np.flatnonzero(ready)
        if rp.size == 0:
            return  # unreachable: the pool's first entry heads every queue
        # An entry's grant is min(headroom now, demand) — exactly its
        # upper bound (heads' headroom is exact; fitting rows guarantee
        # headroom >= demand).
        r = ub[rp]
        give = r > 0.0
        gp = rp[give]
        rg = r[give]
        if gp.size:
            np.add.at(grants, ids[gp], rg)
            for d in range(ndim):
                gm = memb[d][gp]
                caps -= np.bincount(
                    lsafe[d][gp][gm], weights=rg[gm], minlength=caps.size
                )
        keep = np.logical_not(ready, out=ready)
        # Collapse drained constraints: anyone left in a dead group has
        # zero headroom now and forever (caps never grow during a fill).
        dead = caps <= 0.0
        if dead.any():
            dm = ar.take("deadm", k, np.bool_)
            for d in range(ndim):
                np.take(dead, lsafe[d], out=dm)
                np.logical_and(dm, memb[d], out=dm)
                np.logical_not(dm, out=dm)
                np.logical_and(keep, dm, out=keep)
        if not keep.any():
            return
        # Compact the pool; remap rows through the new entry positions
        # (row order is preserved by the filter, so no re-sort).  The
        # surviving columns land in the opposite-parity arena buffers:
        # a gather must never read the buffer it writes.
        newpos = np.cumsum(keep, out=ar.take("newpos", k, np.intp))
        newpos -= 1
        nxt = flip ^ 1
        rk = np.take(keep, rows, out=ar.take("rk", rows.size, np.bool_))
        nr = int(np.count_nonzero(rk))
        rtmp = np.compress(rk, rows, out=ar.take("rtmp", nr, np.intp))
        rows = np.take(newpos, rtmp, out=ar.take(("rows", nxt), nr, np.intp))
        rowg = np.compress(
            rk, rowg, out=ar.take(("rowg", nxt), nr, rowg.dtype)
        )
        pool = np.flatnonzero(keep)
        nk = pool.size
        ids = np.take(ids, pool, out=ar.take(("ids", nxt), nk, np.intp))
        wsub = np.take(wsub, pool, out=ar.take(("wsub", nxt), nk))
        memb = [
            np.take(m, pool, out=ar.take(("memb", d, nxt), nk, np.bool_))
            for d, m in enumerate(memb)
        ]
        lsafe = [
            np.take(s, pool, out=ar.take(("lsafe", d, nxt), nk, s.dtype))
            for d, s in enumerate(lsafe)
        ]
        flip = nxt


def _plan_shards(
    rows: np.ndarray, rowg: np.ndarray, k: int, n_groups: int
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Shard plan ``(order_e, comp, shard_bounds)`` or ``None`` (one shard).

    Components are walked in label order (= order of first pool
    appearance, since labels are minimum node ids) and packed
    contiguously into shards of at least :data:`MIN_SHARD_ENTRIES`
    entries, at most :data:`MAX_SHARDS` shards.  Interleaving whole
    components across shards is value-neutral — they share no constraint
    — and within a component the pool (priority) order is preserved.
    """
    if rows.size == 0:
        return None
    comp = partition.label_components(rows, rowg, k, n_groups)
    if comp is None:
        return None
    order_e = np.argsort(comp, kind="stable")
    comp_sorted = comp[order_e]
    cseg = np.empty(k, dtype=bool)
    cseg[0] = True
    cseg[1:] = comp_sorted[1:] != comp_sorted[:-1]
    cstarts = np.flatnonzero(cseg)
    if cstarts.size <= 1:
        return None
    # Components are contiguous in sorted order, so their cumulative
    # entry counts are just the component end positions; cut a shard
    # whenever the cumulative count crosses a multiple of the target.
    target = max(MIN_SHARD_ENTRIES, -(-k // MAX_SHARDS))
    csum = np.append(cstarts[1:], k)
    bucket = (csum - 1) // target
    cut = np.empty(bucket.size, dtype=bool)
    cut[:-1] = bucket[1:] != bucket[:-1]
    cut[-1] = True
    ends = csum[cut]
    if ends.size <= 1:
        return None
    sbounds = np.concatenate(([0], ends)).astype(np.intp)
    return order_e, comp, sbounds


def fill_pool(
    kernel,
    out: np.ndarray,
    dims: Sequence[Tuple[np.ndarray, np.ndarray]],
    osub: np.ndarray,
    wsub: np.ndarray,
    memb_s: Sequence[np.ndarray],
    safe_s: Sequence[np.ndarray],
    rows: np.ndarray,
    rowg: np.ndarray,
    tail: int,
) -> np.ndarray:
    """Settle a contended demand-capped pool through ``kernel``.

    Inputs are the pool-gathered coordinates built by
    ``rate_allocation._fill_contended_demands``: ``osub`` the flow ids,
    ``wsub`` the demands, ``memb_s``/``safe_s`` per-dimension membership
    and clipped group columns, ``rows``/``rowg`` the fused incidence rows
    sorted by fused group id.  Capacities are fused into one vector for
    the duration of the fill and written back to ``dims`` at the end;
    grants accumulate into ``out`` (indexed by ``osub``) once, after all
    shards committed.
    """
    k = osub.size
    if k == 0:
        return out
    ndim = len(dims)
    sizes = [len(caps) for _, caps in dims]
    goffs = np.concatenate(([0], np.cumsum(sizes))).astype(np.intp)
    total = int(goffs[-1])
    if total:
        capc = np.concatenate([caps for _, caps in dims])
    else:
        capc = np.zeros(1, dtype=np.float64)
    # Fused-coordinate safe columns; non-member lanes park on slot 0
    # (always in bounds, gated by the membership masks everywhere).
    fsafe = [
        np.where(memb_s[d], safe_s[d] + goffs[d], 0) for d in range(ndim)
    ]
    memb = [np.asarray(m) for m in memb_s]
    grants = np.zeros(k, dtype=np.float64)
    if k <= tail:
        kernel.fill_tail(
            grants, np.arange(k, dtype=np.intp), wsub, memb, fsafe, capc,
            rows, rowg,
        )
    else:
        plan = _plan_shards(rows, rowg, k, total)
        if plan is None:
            fill_shard(
                kernel, grants, wsub, memb, fsafe, capc, rows, rowg, tail,
                nested=False,
            )
        else:
            order_e, comp, sbounds = plan
            nsh = sbounds.size - 1
            pos = np.empty(k, dtype=np.intp)
            pos[order_e] = np.arange(k, dtype=np.intp)
            shard_of = np.empty(k, dtype=np.intp)
            shard_of[order_e] = np.searchsorted(
                sbounds[1:], np.arange(k), side="right"
            )
            rshard = shard_of[rows]
            rorder = np.argsort(rshard, kind="stable")
            rs_rows = rows[rorder]
            rs_rowg = rowg[rorder]
            rshard_sorted = rshard[rorder]
            shard_ids = np.arange(nsh)
            rlo = np.searchsorted(rshard_sorted, shard_ids, side="left")
            rhi = np.searchsorted(rshard_sorted, shard_ids, side="right")
            shards = []
            commits = []
            for s in range(nsh):
                lo, hi = int(sbounds[s]), int(sbounds[s + 1])
                entries = order_e[lo:hi]
                srows = pos[rs_rows[rlo[s]:rhi[s]]] - lo
                sgl = rs_rowg[rlo[s]:rhi[s]]
                gids = np.unique(sgl)
                if gids.size == 0:
                    gids = np.zeros(1, dtype=rowg.dtype)
                # np.unique is sorted, so searchsorted is a monotone
                # remap: local group ids keep the fused sort order and
                # the shard's rows stay segment-contiguous.
                lrowg = np.searchsorted(gids, sgl)
                caps_local = capc[gids].astype(np.float64)
                wsub_l = wsub[entries]
                memb_l = [memb[d][entries] for d in range(ndim)]
                lsafe_l = []
                for d in range(ndim):
                    ls = np.searchsorted(gids, fsafe[d][entries])
                    np.copyto(ls, 0, where=~memb_l[d])
                    lsafe_l.append(ls)
                shards.append(
                    ShardTask(
                        wsub=wsub_l, memb=memb_l, lsafe=lsafe_l,
                        caps=caps_local, rows=srows, rowg=lrowg,
                    )
                )
                commits.append((entries, gids))
            results = kernel.run_shards(shards, tail)
            # Shards touch disjoint entries and disjoint groups, so the
            # commit is plain assignment, in any order.
            for (entries, gids), (g_local, caps_local) in zip(
                commits, results
            ):
                grants[entries] = g_local
                capc[gids] = caps_local
    nz = grants > 0.0
    if nz.any():
        np.add.at(out, osub[nz], grants[nz])
    for d in range(ndim):
        dims[d][1][:] = capc[goffs[d]:goffs[d + 1]]
    return out
