"""Pluggable decision-kernel backends for the scheduling hot path.

The two per-decision primitives that dominate large runs — the contended
``priority_fill`` rounds and the FVDF segment-max gamma reduction — are
factored behind a :class:`DecisionKernel` object so the *dispatch* can
vary (serial numpy, thread pool, numba) while the *plan and arithmetic*
stay shared (:mod:`repro.core.kernels.fill`,
:mod:`repro.core.kernels.partition`).  Every backend therefore produces
bit-identical rates and gammas on every host, which is what lets the
``kernel=`` knob stay out of the result-cache digest.

Backends
--------
``python``
    Strict serial reference: plain numpy plus the list-based scalar
    tail.  Always available; the baseline every other backend is pinned
    against in ``tests/test_kernel_backends.py``.
``threaded``
    Same code, but shard and chunk tasks fan out over a small shared
    ``ThreadPoolExecutor``.  The sliced numpy calls release the GIL, so
    this scales on multi-core hosts with zero extra dependencies.
``compiled``
    numba ``@njit`` scalar tail and ``prange`` segment-max when the
    numba wheel is importable; otherwise resolves to ``threaded`` (the
    documented fallback — nothing in this repo *requires* numba).
``process``
    Contention-component shards execute on a lazily-spawned persistent
    worker-process pool, exchanging shard columns through
    :mod:`repro.runner.shm` descriptors (no pickle on array paths) —
    sidesteps the GIL for the Python-level round orchestration.  Chunk
    and tail dispatch inherit from ``threaded``; single-shard pools
    never touch the pool, so requesting it is always safe.
``auto``
    ``compiled`` when numba imports; else ``process`` on hosts with
    :data:`PROCESS_AUTO_CORES`+ cores and a usable shared-memory
    transport; else ``threaded`` on multi-core hosts, else ``python``.

Selection: the ``REPRO_KERNEL`` environment variable supplies the
default; ``make_scheduler(..., kernel=...)`` / ``RunSpec(kernel=...)``
override per scheduler; :func:`use_kernel` scopes a choice to a block
(the simulator wraps each run in it).  Because ``compiled`` (and
``auto``) can resolve to a *different* backend than requested, telemetry
and the kernel bench record :func:`resolved_name` next to the request —
silent fallbacks should be visible, not discoverable by timing.
"""

from __future__ import annotations

import contextlib
import contextvars
import importlib.util
import os
import threading
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.core.kernels import fill
from repro.errors import ConfigurationError

#: Environment variable holding the default backend name.
ENV_KERNEL = "REPRO_KERNEL"

#: Accepted ``REPRO_KERNEL`` / ``kernel=`` values.
KERNEL_NAMES = ("auto", "python", "threaded", "compiled", "process")

#: ``auto`` only picks the process backend with at least this many
#: usable cores — below that the fork/shm overhead beats the GIL win.
PROCESS_AUTO_CORES = 4


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class DecisionKernel:
    """Serial pure-numpy reference backend (and base class).

    Subclasses override *dispatch* hooks only; the decision arithmetic
    lives in :mod:`repro.core.kernels.fill` and is shared by every
    backend, so overriding anything else would break the bit-identity
    contract.
    """

    name = "python"
    parallel = False

    def run_tasks(self, thunks: Sequence[Callable[[], object]]) -> List[object]:
        """Execute independent thunks; the reference runs them in order."""
        return [t() for t in thunks]

    def run_shards(
        self, shards: Sequence["fill.ShardTask"], tail: int
    ) -> List[object]:
        """Execute contention-component shards; one ``(grants, caps)``
        pair per shard, in shard order.

        The default funnels the explicit :class:`~repro.core.kernels.
        fill.ShardTask` payloads through :meth:`run_tasks` (serial here,
        thread-pool in :class:`ThreadedKernel`), preserving the
        pre-payload closure behaviour bit for bit; the process backend
        overrides this to ship the columns to worker processes instead.
        """
        return self.run_tasks(
            [lambda sh=sh: fill.run_shard(self, sh, tail) for sh in shards]
        )

    def fill_tail(self, grants, ids, wsub, memb, lsafe, caps, rows, rowg) -> None:
        """Settle a small pool flow-by-flow (fused coordinates)."""
        fill.tail_fused(grants, ids, wsub, memb, lsafe, caps, rows, rowg)

    def fill_pool(self, out, dims, osub, wsub, memb_s, safe_s, rows, rowg, tail):
        """Settle a contended demand-capped pool (see ``fill.fill_pool``)."""
        return fill.fill_pool(
            self, out, dims, osub, wsub, memb_s, safe_s, rows, rowg, tail
        )

    def segment_max(self, values, perm, starts) -> np.ndarray:
        """Per-segment max of ``values[perm]`` over ``starts`` boundaries.

        ``starts`` carries the trailing end sentinel; the reference is
        ``np.maximum.reduceat`` on the head, and max is exact and
        associative so every backend matches it bitwise.
        """
        return np.maximum.reduceat(values[perm], starts[:-1])


_POOL_LOCK = threading.Lock()
_POOL = None


def _thread_pool():
    global _POOL
    if _POOL is None:
        with _POOL_LOCK:
            if _POOL is None:
                from concurrent.futures import ThreadPoolExecutor

                _POOL = ThreadPoolExecutor(
                    max_workers=max(2, min(8, usable_cores())),
                    thread_name_prefix="repro-kernel",
                )
    return _POOL


class ThreadedKernel(DecisionKernel):
    """Shard/chunk tasks fan out over a shared thread pool.

    The pool is a process-wide singleton (threads are cheap to keep
    around and fork-safety is moot — workers inherit ``_POOL = None``
    because the lazy init runs per process).  Worker count caps at 8:
    the row phases are memory-bound well before that.
    """

    name = "threaded"
    parallel = True

    def run_tasks(self, thunks: Sequence[Callable[[], object]]) -> List[object]:
        thunks = list(thunks)
        if len(thunks) <= 1:
            return [t() for t in thunks]
        return list(_thread_pool().map(lambda t: t(), thunks))


def have_numba() -> bool:
    """True when the numba wheel is importable (checked once)."""
    global _HAVE_NUMBA
    if _HAVE_NUMBA is None:
        try:
            _HAVE_NUMBA = importlib.util.find_spec("numba") is not None
        except (ImportError, ValueError):
            _HAVE_NUMBA = False
    return _HAVE_NUMBA


_HAVE_NUMBA: Optional[bool] = None
_INSTANCES: Dict[str, DecisionKernel] = {}


def _process_usable() -> bool:
    """Whether the process backend could actually dispatch shards here
    (shared-memory transport up, not already inside a pool worker)."""
    if os.environ.get("REPRO_IN_WORKER"):
        return False
    from repro.runner import shm

    return shm.shm_enabled()


def _auto_backend() -> str:
    if have_numba():
        return "compiled"
    cores = usable_cores()
    if cores >= PROCESS_AUTO_CORES and _process_usable():
        return "process"
    return "threaded" if cores >= 2 else "python"


def _instance(name: str) -> DecisionKernel:
    inst = _INSTANCES.get(name)
    if inst is None:
        if name == "python":
            inst = DecisionKernel()
        elif name == "threaded":
            inst = ThreadedKernel()
        elif name == "compiled":
            from repro.core.kernels import compiled

            inst = compiled.make_kernel()
            if inst is None:
                # Documented fallback: requesting the compiled backend
                # without numba degrades to threaded, never errors.
                inst = _instance("threaded")
        elif name == "process":
            from repro.core.kernels import process

            inst = process.ProcessKernel()
        else:  # pragma: no cover - guarded by resolve_kernel
            raise ConfigurationError(f"unknown kernel backend {name!r}")
        _INSTANCES[name] = inst
    return inst


def resolve_kernel(
    kernel: Union[None, str, DecisionKernel] = None
) -> DecisionKernel:
    """Resolve a backend request to a kernel instance.

    ``None`` defers to ``$REPRO_KERNEL`` (itself defaulting to
    ``auto``); instances pass through; names come from
    :data:`KERNEL_NAMES` (case/whitespace-insensitive).  Unknown names
    raise :class:`~repro.errors.ConfigurationError` naming the source
    (argument vs environment), and raising never mutates any selection
    state — a failed resolve leaves the active kernel untouched.
    Results are bit-identical across backends, so this choice is a pure
    performance knob — it is deliberately excluded from cache digests.
    """
    if isinstance(kernel, DecisionKernel):
        return kernel
    name = kernel
    source = "kernel argument"
    if name is None:
        name = os.environ.get(ENV_KERNEL)
        if name is not None and name.strip():
            source = f"${ENV_KERNEL}"
        else:
            name = "auto"
    requested = name
    name = str(name).strip().lower()
    if name not in KERNEL_NAMES:
        raise ConfigurationError(
            f"unknown kernel backend {requested!r} (from {source}); "
            "choose from " + ", ".join(KERNEL_NAMES)
        )
    if name == "auto":
        name = _auto_backend()
    return _instance(name)


def resolved_name(kernel: Union[None, str, DecisionKernel] = None) -> str:
    """The concrete backend a request resolves to *right now*.

    This is what telemetry and the kernel bench record next to the
    requested name: ``auto`` pins down to a real backend, and a
    ``compiled`` request without numba visibly reports ``threaded``
    instead of silently timing the fallback.
    """
    return resolve_kernel(kernel).name


_ACTIVE: contextvars.ContextVar[Optional[DecisionKernel]] = contextvars.ContextVar(
    "repro_active_kernel", default=None
)


def active_kernel() -> DecisionKernel:
    """The kernel for the current context (innermost :func:`use_kernel`),
    falling back to the environment default."""
    kern = _ACTIVE.get()
    return kern if kern is not None else resolve_kernel(None)


@contextlib.contextmanager
def use_kernel(
    kernel: Union[None, str, DecisionKernel] = None
) -> Iterator[DecisionKernel]:
    """Scope a backend choice to a block (re-entrant, context-local).

    Exception-safe on both edges: the request resolves *before* the
    prior value is replaced (an unknown name raises without touching
    selection state), and the ``finally`` restores the prior backend no
    matter how the body exits — an exception escaping one run can never
    leak its kernel choice into the next.
    """
    token = _ACTIVE.set(resolve_kernel(kernel))
    try:
        yield _ACTIVE.get()
    finally:
        _ACTIVE.reset(token)


def available_backends() -> Dict[str, dict]:
    """Availability report, for benches and `repro bench --kernels`."""
    cores = usable_cores()
    info: Dict[str, dict] = {
        "python": {"available": True},
        "threaded": {"available": True, "workers": max(2, min(8, cores))},
    }
    if have_numba():
        info["compiled"] = {"available": True}
    else:
        info["compiled"] = {"available": False, "fallback": "threaded"}
    from repro.core.kernels import process as process_mod

    if _process_usable():
        info["process"] = {
            "available": True, "workers": process_mod.pool_workers(),
        }
    else:
        info["process"] = {"available": False, "fallback": "threaded"}
    info["auto"] = {"resolves_to": _auto_backend(), "cores": cores}
    return info
