"""Generation-stamped scratch arenas for the decision hot path.

The contended prefix-fits rounds, the backfill rounds and the
simulator's view gathers all used to allocate fresh numpy scratch every
round (``np.full``/``np.empty``/fancy-index copies) and drop it on the
floor a few microseconds later.  At trace scale that is tens of
thousands of short-lived allocations per simulated second — pure
allocator churn on the decision path.

A :class:`ScratchArena` replaces that churn with a small dict of
preallocated, growable buffers:

* :meth:`ScratchArena.take` hands out the first ``n`` elements of the
  buffer registered under ``key`` (growing it geometrically on demand).
  Buffer contents are **unspecified** — callers must fully overwrite
  what they take (every adopted site writes through ``out=``/``[:] =``
  before reading), which is what makes reuse value-neutral;
* buffers carrying state *across* a compaction step use **flip parity**
  (alternating ``(name, 0)`` / ``(name, 1)`` keys) so a gather never
  reads the buffer it is writing — numpy leaves overlapping
  ``np.take``/``np.compress`` undefined;
* the arena is **generation-stamped**: :meth:`ScratchArena.invalidate`
  bumps the generation when the caller's cached indices were rebuilt
  from scratch (cancellation, mid-run submit full regroups), and
  :meth:`ScratchArena.clear` additionally drops the buffers (state
  eviction).  The stamp is observability for tests and debugging — the
  full-overwrite contract is what guarantees correctness.

Threading: round scratch is reached through :func:`local_arena`, a
thread-local accessor, because shard tasks run concurrently on the
kernel thread pool.  Buffers therefore persist per thread, bounded by
the largest pool that thread ever filled.

``REPRO_ARENA=0`` (or :func:`set_enabled`\\ ``(False)``) swaps every
accessor to the :class:`NullArena`, whose ``take`` is a plain
``np.empty`` — exactly the pre-arena allocation behaviour, kept as an
A/B lever for the allocation-regression guard in
``benchmarks/bench_engine_microbench.py``.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Hashable, Optional

import numpy as np

__all__ = [
    "ENV_ARENA",
    "NullArena",
    "ScratchArena",
    "enabled",
    "local_arena",
    "new_arena",
    "set_enabled",
]

#: Environment variable: set to ``0``/``false``/``off`` to disable the
#: arenas (every ``take`` falls back to a fresh ``np.empty``).
ENV_ARENA = "REPRO_ARENA"

#: Smallest buffer ever allocated; saves re-growing through tiny pools.
_MIN_BUF = 64

#: Programmatic override (tests/benches); ``None`` defers to the env.
_FORCED: Optional[bool] = None


def enabled() -> bool:
    """Whether arenas are enabled for this process."""
    if _FORCED is not None:
        return _FORCED
    val = os.environ.get(ENV_ARENA, "").strip().lower()
    return val not in ("0", "false", "off", "no")


def set_enabled(flag: Optional[bool]) -> None:
    """Force arenas on/off (``None`` restores the env-driven default).

    Takes effect at the next :func:`local_arena`/:func:`new_arena` call;
    arenas already handed out keep working (they are value-neutral
    either way).
    """
    global _FORCED
    _FORCED = None if flag is None else bool(flag)


class ScratchArena:
    """A dict of named, growable, reusable scratch buffers."""

    __slots__ = ("_bufs", "_generation", "grows", "takes")

    def __init__(self) -> None:
        self._bufs: Dict[Hashable, np.ndarray] = {}
        self._generation = 0
        #: number of (re)allocations — a warmed arena stops growing.
        self.grows = 0
        #: number of ``take`` calls served (warm or cold).
        self.takes = 0

    @property
    def generation(self) -> int:
        """Bumped by every :meth:`invalidate`/:meth:`clear`."""
        return self._generation

    def take(self, key: Hashable, n: int, dtype=np.float64) -> np.ndarray:
        """First ``n`` elements of the buffer under ``key`` (grown on
        demand).  Contents are unspecified; the caller must overwrite
        them fully before reading."""
        dt = np.dtype(dtype)
        slot = (key, dt.str)
        buf = self._bufs.get(slot)
        if buf is None or buf.size < n:
            size = max(int(n), 2 * (buf.size if buf is not None else 0),
                       _MIN_BUF)
            buf = np.empty(size, dtype=dt)
            self._bufs[slot] = buf
            self.grows += 1
        self.takes += 1
        return buf[:n]

    def invalidate(self) -> None:
        """Stamp a new generation (cached upstream indices were rebuilt);
        capacity is retained, contents are untrusted either way."""
        self._generation += 1

    def clear(self) -> None:
        """Drop every buffer and stamp a new generation (state eviction
        shrank the world; don't pin peak-sized scratch forever)."""
        self._bufs.clear()
        self._generation += 1


class NullArena:
    """Disabled-mode stand-in: every ``take`` is a fresh ``np.empty``.

    Keeps the call sites oblivious to the ``REPRO_ARENA`` setting and
    gives the allocation-regression guard its "before" arm.
    """

    __slots__ = ("grows", "takes")

    generation = 0

    def __init__(self) -> None:
        self.grows = 0
        self.takes = 0

    def take(self, key: Hashable, n: int, dtype=np.float64) -> np.ndarray:
        self.grows += 1
        self.takes += 1
        return np.empty(int(n), dtype=np.dtype(dtype))

    def invalidate(self) -> None:
        pass

    def clear(self) -> None:
        pass


_NULL = NullArena()
_TLS = threading.local()


def new_arena():
    """A fresh arena honouring the current enabled state (for owners of
    long-lived scratch, e.g. the simulator's view gathers)."""
    return ScratchArena() if enabled() else NullArena()


def local_arena():
    """This thread's round-scratch arena (shared :data:`_NULL` when
    disabled, so the disabled path allocates exactly as before)."""
    if not enabled():
        return _NULL
    ar = getattr(_TLS, "arena", None)
    if ar is None:
        ar = ScratchArena()
        _TLS.arena = ar
    return ar
