"""Block-columnar coflow ingest.

A :class:`CoflowBlock` is a batch of coflows flattened into parallel
ndarray columns — one row per coflow for arrival/width/id/label/deadline,
one row per flow for src/dst/size/compressible/override/flow id.  It is
the unit of the columnar source→engine handoff: arrival sources
(:mod:`repro.service.arrivals`) emit blocks, the streaming driver restamps
and admits them wholesale, and :meth:`SliceSimulator.submit_block` writes
them straight into the engine's flow/coflow columns without ever building
:class:`~repro.core.flow.Flow` or :class:`~repro.core.coflow.Coflow`
objects.

Objects remain first-class: ``from_coflows`` flattens an existing list of
coflows (this is what ``submit_many`` uses), and a block may carry the
backing objects alongside the columns (``coflows``) so legacy callers that
want them — tracers, custom schedulers reaching for ``state.coflow`` —
still get the *same* instances.  Blocks built from raw columns carry
``None`` placeholders instead, and the engine materializes a coflow from
its columns only if someone actually asks.

Flow/coflow ids for raw-column rows are drawn from the same global
counters as object construction, in the same per-coflow order (the ``w``
member flow ids, then the coflow id), so a run ingested through blocks is
bit-identical — ids included — to the same run ingested through objects.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.coflow import Coflow, reserve_coflow_ids
from repro.core.flow import reserve_flow_ids
from repro.errors import ConfigurationError


class CoflowBlock:
    """A batch of coflows as flat per-coflow / per-flow columns.

    Per-coflow columns (length ``n_coflows``): ``arrival`` (float64),
    ``width`` (int64), ``coflow_id`` (int64), plus ``label`` /
    ``deadline`` lists.  Per-flow columns (length ``n_flows``, coflow
    blocks contiguous in coflow order): ``src``/``dst`` (intp), ``size``
    (float64), ``compressible`` (bool), ``override`` (float64, ``-1`` for
    "no per-flow ratio override"), ``flow_id`` (int64).

    ``coflows`` optionally carries the backing :class:`Coflow` objects
    (entries may be ``None`` for rows built from raw columns).
    """

    __slots__ = (
        "arrival",
        "width",
        "coflow_id",
        "label",
        "deadline",
        "src",
        "dst",
        "size",
        "compressible",
        "override",
        "flow_id",
        "flow_arrival",
        "coflows",
    )

    def __init__(
        self,
        *,
        arrival,
        width,
        coflow_id,
        label: Sequence[str],
        deadline: Sequence[Optional[float]],
        src,
        dst,
        size,
        compressible,
        override,
        flow_id,
        flow_arrival=None,
        coflows: Optional[List[Optional[Coflow]]] = None,
    ) -> None:
        self.arrival = np.asarray(arrival, dtype=np.float64)
        self.width = np.asarray(width, dtype=np.int64)
        self.coflow_id = np.asarray(coflow_id, dtype=np.int64)
        self.label = list(label)
        self.deadline = list(deadline)
        self.src = np.asarray(src, dtype=np.intp)
        self.dst = np.asarray(dst, dtype=np.intp)
        self.size = np.asarray(size, dtype=np.float64)
        self.compressible = np.asarray(compressible, dtype=bool)
        self.override = np.asarray(override, dtype=np.float64)
        self.flow_id = np.asarray(flow_id, dtype=np.int64)
        # Flow arrivals normally equal their coflow's, but the legacy
        # object API lets them diverge (a coflow's arrival mutated after
        # construction does not restamp members) — carry them explicitly
        # so block ingest reproduces the object path bit-for-bit.
        if flow_arrival is None:
            self.flow_arrival = np.repeat(self.arrival, self.width)
        else:
            self.flow_arrival = np.asarray(flow_arrival, dtype=np.float64)
        self.coflows = coflows

    @property
    def n_coflows(self) -> int:
        return int(self.arrival.size)

    @property
    def n_flows(self) -> int:
        return int(self.src.size)

    def validate(self) -> None:
        """Apply the Flow/Coflow constructor invariants to the columns.

        Rows built from objects already passed ``__post_init__``; raw
        column rows (block-parsed JSONL, synthetic generators) get the
        same checks here, vectorized, with the same error type.
        """
        m, n = self.n_coflows, self.n_flows
        if (
            self.width.size != m
            or self.coflow_id.size != m
            or len(self.label) != m
            or len(self.deadline) != m
        ):
            raise ConfigurationError("per-coflow columns disagree on length")
        if int(self.width.sum()) != n or any(
            col.size != n
            for col in (
                self.dst,
                self.size,
                self.compressible,
                self.override,
                self.flow_id,
                self.flow_arrival,
            )
        ):
            raise ConfigurationError("per-flow columns disagree on length")
        if m and np.any(self.width < 1):
            raise ConfigurationError("a coflow must contain at least one flow")
        if m and float(self.arrival.min()) < 0:
            raise ConfigurationError("arrival must be >= 0")
        for d in self.deadline:
            if d is not None and d <= 0:
                raise ConfigurationError(f"deadline must be positive, got {d}")
        if n:
            if float(self.size.min()) <= 0:
                bad = float(self.size.min())
                raise ConfigurationError(f"flow size must be positive, got {bad}")
            if int(self.src.min()) < 0 or int(self.dst.min()) < 0:
                raise ConfigurationError("ports must be non-negative")
            ov = self.override
            has = ov != -1.0
            if np.any(has & ~((ov > 0.0) & (ov < 1.0))):
                bad = float(ov[has & ~((ov > 0.0) & (ov < 1.0))][0])
                raise ConfigurationError(
                    f"ratio_override must lie in (0, 1), got {bad}"
                )

    @classmethod
    def from_coflows(
        cls, coflows: Sequence[Coflow], keep_objects: bool = True
    ) -> "CoflowBlock":
        """Flatten existing coflow objects into a block.

        With ``keep_objects`` the block carries the original instances so
        downstream legacy paths see the very same objects.
        """
        coflows = list(coflows)
        flows = [f for c in coflows for f in c.flows]
        return cls(
            arrival=[c.arrival for c in coflows],
            width=[len(c.flows) for c in coflows],
            coflow_id=[c.coflow_id for c in coflows],
            label=[c.label for c in coflows],
            deadline=[c.deadline for c in coflows],
            src=[f.src for f in flows],
            dst=[f.dst for f in flows],
            size=[f.size for f in flows],
            compressible=[f.compressible for f in flows],
            override=[
                -1.0 if f.ratio_override is None else f.ratio_override
                for f in flows
            ],
            flow_id=[f.flow_id for f in flows],
            flow_arrival=[f.arrival for f in flows],
            coflows=coflows if keep_objects else None,
        )

    def restamp(self, mask: np.ndarray, now: float) -> None:
        """Restamp the arrival of the masked coflows (and their flows) to
        ``now`` — the streaming driver's late-coflow backpressure rule."""
        self.arrival[mask] = now
        self.flow_arrival[np.repeat(mask, self.width)] = now
        if self.coflows is not None:
            for i in np.flatnonzero(mask).tolist():
                cf = self.coflows[i]
                if cf is not None:
                    cf.arrival = now
                    for f in cf.flows:
                        f.arrival = now


class BlockBuilder:
    """Accumulates coflows — raw columns or objects — into one block.

    Sources use this to assemble an admission batch: synthetic generators
    append raw column rows (:meth:`add_columns`), while buffered-lookahead
    or legacy paths append full objects (:meth:`add_coflow`).  ``build``
    concatenates everything into a single :class:`CoflowBlock`; the
    ``coflows`` list is carried only when at least one object was added.
    """

    def __init__(self) -> None:
        self._arrival: List[float] = []
        self._width: List[int] = []
        self._cid: List[int] = []
        self._label: List[str] = []
        self._deadline: List[Optional[float]] = []
        self._src: List[np.ndarray] = []
        self._dst: List[np.ndarray] = []
        self._size: List[np.ndarray] = []
        self._comp: List[np.ndarray] = []
        self._override: List[np.ndarray] = []
        self._fid: List[np.ndarray] = []
        self._farr: List[np.ndarray] = []
        self._objs: List[Optional[Coflow]] = []
        self._any_obj = False
        self.n_flows = 0

    @property
    def n_coflows(self) -> int:
        return len(self._arrival)

    def add_columns(
        self,
        arrival: float,
        src: np.ndarray,
        dst: np.ndarray,
        size: np.ndarray,
        compressible: np.ndarray,
        override: Optional[np.ndarray] = None,
        label: str = "",
        deadline: Optional[float] = None,
        flow_id0: Optional[int] = None,
        coflow_id: Optional[int] = None,
    ) -> int:
        """Append one coflow from raw per-flow columns; returns its id.

        When ids are not supplied they are reserved from the global
        counters here, in object-construction order (flow ids first, then
        the coflow id).
        """
        src = np.asarray(src, dtype=np.intp)
        w = int(src.size)
        if flow_id0 is None:
            flow_id0 = reserve_flow_ids(w)
        if coflow_id is None:
            coflow_id = reserve_coflow_ids(1)
        self._arrival.append(float(arrival))
        self._width.append(w)
        self._cid.append(int(coflow_id))
        self._label.append(label)
        self._deadline.append(deadline)
        self._src.append(src)
        self._dst.append(np.asarray(dst, dtype=np.intp))
        self._size.append(np.asarray(size, dtype=np.float64))
        self._comp.append(np.asarray(compressible, dtype=bool))
        if override is None:
            self._override.append(np.full(w, -1.0))
        else:
            self._override.append(np.asarray(override, dtype=np.float64))
        self._fid.append(np.arange(flow_id0, flow_id0 + w, dtype=np.int64))
        self._farr.append(np.full(w, float(arrival)))
        self._objs.append(None)
        self.n_flows += w
        return int(coflow_id)

    def add_coflow(self, coflow: Coflow) -> int:
        """Append one already-constructed coflow object; returns its id."""
        w = len(coflow.flows)
        self._arrival.append(coflow.arrival)
        self._width.append(w)
        self._cid.append(coflow.coflow_id)
        self._label.append(coflow.label)
        self._deadline.append(coflow.deadline)
        self._src.append(np.fromiter((f.src for f in coflow.flows), np.intp, w))
        self._dst.append(np.fromiter((f.dst for f in coflow.flows), np.intp, w))
        self._size.append(
            np.fromiter((f.size for f in coflow.flows), np.float64, w)
        )
        self._comp.append(
            np.fromiter((f.compressible for f in coflow.flows), bool, w)
        )
        self._override.append(
            np.fromiter(
                (
                    -1.0 if f.ratio_override is None else f.ratio_override
                    for f in coflow.flows
                ),
                np.float64,
                w,
            )
        )
        self._fid.append(
            np.fromiter((f.flow_id for f in coflow.flows), np.int64, w)
        )
        self._farr.append(
            np.fromiter((f.arrival for f in coflow.flows), np.float64, w)
        )
        self._objs.append(coflow)
        self._any_obj = True
        self.n_flows += w
        return coflow.coflow_id

    def build(self) -> Optional[CoflowBlock]:
        """The accumulated block, or ``None`` when nothing was added."""
        if not self._arrival:
            return None
        return CoflowBlock(
            arrival=self._arrival,
            width=self._width,
            coflow_id=self._cid,
            label=self._label,
            deadline=self._deadline,
            src=np.concatenate(self._src),
            dst=np.concatenate(self._dst),
            size=np.concatenate(self._size),
            compressible=np.concatenate(self._comp),
            override=np.concatenate(self._override),
            flow_id=np.concatenate(self._fid),
            flow_arrival=np.concatenate(self._farr),
            coflows=list(self._objs) if self._any_obj else None,
        )
