"""Scheduler interface: what the engine asks, what schedulers answer.

At every decision point the engine hands the scheduler a
:class:`SchedulerView` — a read-only snapshot of all *active* flows in
structure-of-arrays form plus per-coflow grouping, the fabric capacities and
the free CPU cores — and receives an :class:`Allocation`: a rate per active
flow and a compression flag per active flow.

Contract (enforced by the engine):

* rates are non-negative and respect every port capacity;
* a flow either transmits (rate > 0) **or** compresses in a slice, never
  both — the paper's exclusive β (Pseudocode 2 lines 26–32);
* compression is only requested for compressible flows with raw bytes left,
  and at most ``free_cores[node]`` flows compress per source node.
"""

from __future__ import annotations

import functools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow
from repro.core.events import ScheduleTrigger
from repro.fabric.bigswitch import BigSwitch
from repro.obs import NULL_OBS, Observability


class _SegmentRef:
    """Shared (perm, starts) segmentation, mutated in place by the engine.

    Every :class:`CoflowState` the engine hands out references the same
    ``_SegmentRef``; when the active set changes, the engine rebinds
    ``perm``/``starts`` once and every state's ``flow_idx`` view follows
    — no per-coflow slice assignment loop.
    """

    __slots__ = ("perm", "starts")

    def __init__(self, perm: np.ndarray, starts: np.ndarray):
        self.perm = perm
        self.starts = starts


class CoflowState:
    """Mutable per-coflow scheduling state exposed to schedulers.

    Attributes
    ----------
    coflow:
        The immutable coflow definition.  With the block-columnar ingest
        path the engine may never have built a :class:`Coflow` object at
        all — states constructed with ``coflow_id=``/``coflow_factory=``
        materialize one from the engine's columns on first access, while
        :attr:`coflow_id` always answers without materializing (it is the
        only coflow field the stock policies read per decision).
    flow_idx:
        Indices of this coflow's *unfinished* flows within the view's
        active-flow arrays (refreshed at every decision point).  Either an
        explicitly assigned array (legacy engines, tests) or — when the
        engine bound the state to a shared segmentation — a slice of the
        engine's unit permutation, so the engine can update every state
        in O(1) total.
    priority_class:
        The paper's starvation-freedom class ``P`` (Pseudocode 3); owned by
        the scheduler, persisted across decision points by the engine.
    """

    __slots__ = (
        "priority_class",
        "_coflow",
        "_coflow_id",
        "_coflow_factory",
        "_flow_idx",
        "_seg",
        "_ordinal",
    )

    def __init__(
        self,
        coflow: Optional[Coflow] = None,
        flow_idx: Optional[np.ndarray] = None,
        priority_class: float = 1.0,
        *,
        coflow_id: Optional[int] = None,
        coflow_factory=None,
    ):
        if coflow is None and coflow_id is None:
            raise TypeError("CoflowState needs a coflow or a coflow_id")
        self._coflow = coflow
        self._coflow_id = (
            int(coflow.coflow_id) if coflow is not None else int(coflow_id)
        )
        self._coflow_factory = coflow_factory
        self.priority_class = priority_class
        self._flow_idx = flow_idx
        self._seg: Optional[_SegmentRef] = None
        self._ordinal = 0

    @property
    def coflow(self) -> Coflow:
        cf = self._coflow
        if cf is None:
            cf = self._coflow = self._coflow_factory()
        return cf

    @coflow.setter
    def coflow(self, value: Coflow) -> None:
        self._coflow = value
        self._coflow_id = int(value.coflow_id)

    @property
    def flow_idx(self) -> np.ndarray:
        seg = self._seg
        if seg is not None:
            k = self._ordinal
            return seg.perm[seg.starts[k] : seg.starts[k + 1]]
        return self._flow_idx

    @flow_idx.setter
    def flow_idx(self, value: np.ndarray) -> None:
        self._flow_idx = value
        self._seg = None

    def bind_segments(self, seg: _SegmentRef, ordinal: int) -> None:
        """Back ``flow_idx`` by segment ``ordinal`` of the shared ref."""
        self._seg = seg
        self._ordinal = ordinal

    @property
    def coflow_id(self) -> int:
        return self._coflow_id

    def __repr__(self):
        return (
            f"CoflowState(coflow_id={self.coflow_id}, "
            f"n_flows={len(self.flow_idx) if self.flow_idx is not None else 0}, "
            f"priority_class={self.priority_class})"
        )


@dataclass
class SchedulerView:
    """Read-only snapshot of the simulation at a decision point.

    All per-flow arrays are aligned: index ``i`` describes the same active
    flow everywhere.  ``volume = raw + comp`` is the paper's ``V``; ``xi`` is
    each flow's *effective* compression ratio (its ``ratio_override`` if
    set, otherwise the codec's size-dependent model).
    """

    time: float
    slice_len: float
    trigger: ScheduleTrigger
    fabric: BigSwitch
    flow_ids: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    raw: np.ndarray
    comp: np.ndarray
    xi: np.ndarray
    size: np.ndarray
    arrival: np.ndarray
    coflow_ids: np.ndarray
    compressible: np.ndarray
    coflows: List[CoflowState]
    free_cores: np.ndarray
    compression: Optional[CompressionEngine]
    #: Optional precomputed coflow segmentation: ``unit_perm`` lists every
    #: active-flow position grouped by coflow (in ``coflows`` order) and
    #: ``unit_starts`` the segment offsets (``len(coflows) + 1`` entries),
    #: so segment ops like ``np.maximum.reduceat`` replace per-coflow
    #: Python loops.  Derived lazily from ``coflows`` when not supplied.
    unit_perm: Optional[np.ndarray] = None
    unit_starts: Optional[np.ndarray] = None

    @property
    def num_flows(self) -> int:
        return len(self.flow_ids)

    @functools.cached_property
    def volume(self) -> np.ndarray:
        """Remaining volume ``V = d + D`` per flow (computed once per view)."""
        return self.raw + self.comp

    @functools.cached_property
    def link_cap(self) -> np.ndarray:
        """Per-flow capacity ``min(B_s, B_r)`` (computed once per view)."""
        return self.fabric.flow_link_cap(self.src, self.dst)

    def unit_offsets(self):
        """The ``(unit_perm, unit_starts)`` segmentation, computing and
        caching it from ``coflows`` when the engine did not supply one."""
        if self.unit_perm is None:
            if self.coflows:
                self.unit_perm = np.concatenate(
                    [cs.flow_idx for cs in self.coflows]
                ).astype(np.intp, copy=False)
                lengths = np.asarray([len(cs.flow_idx) for cs in self.coflows])
            else:
                self.unit_perm = np.empty(0, dtype=np.intp)
                lengths = np.empty(0, dtype=np.intp)
            self.unit_starts = np.concatenate(([0], np.cumsum(lengths))).astype(
                np.intp
            )
        return self.unit_perm, self.unit_starts

    def fresh_capacity(self):
        """Writable copies of (ingress, egress) capacities for allocation."""
        return self.fabric.ingress.remaining(), self.fabric.egress.remaining()

    def fresh_extra(self):
        """Writable copies of the fabric's extra capacity dimensions.

        Empty for the big switch; rack uplink/downlink constraints for
        oversubscribed fabrics.  Pass as ``extra=`` to the allocation
        primitives so every policy honours them.
        """
        return self.fabric.fresh_extra(self.src, self.dst)


@dataclass
class Allocation:
    """A scheduler's answer: transmit rates and compression picks."""

    rates: np.ndarray
    compress: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.rates = np.asarray(self.rates, dtype=np.float64)
        if self.compress is None:
            self.compress = np.zeros(len(self.rates), dtype=bool)
        else:
            self.compress = np.asarray(self.compress, dtype=bool)

    @classmethod
    def idle(cls, n: int) -> "Allocation":
        return cls(rates=np.zeros(n), compress=np.zeros(n, dtype=bool))


class Scheduler(ABC):
    """Base class for all scheduling policies.

    Subclasses set :attr:`name` (used in reports) and
    :attr:`uses_compression` (whether the engine should offer CPU cores).
    """

    name: str = "scheduler"
    uses_compression: bool = False
    #: Observability bundle, bound by the engine; disabled by default so
    #: policies can emit records unconditionally guarded on ``enabled``.
    obs: Observability = NULL_OBS
    #: Decision-kernel backend preference for this scheduler's runs —
    #: a name from ``repro.core.kernels.KERNEL_NAMES`` or ``None`` to
    #: defer to ``$REPRO_KERNEL``.  The engine scopes each run with it
    #: (``kernels.use_kernel``).  Backends are bit-identical, so this is
    #: a performance knob, never part of a result's identity.
    kernel: Optional[str] = None

    @abstractmethod
    def schedule(self, view: SchedulerView) -> Allocation:
        """Compute the allocation to hold until the next decision point."""

    def bind_observability(self, obs: Observability) -> None:
        """Attach the engine's observability bundle (called by the engine)."""
        self.obs = obs

    def reset(self) -> None:
        """Clear any cross-run state (default: stateless).

        Stateful policies (FVDF's served-window map, EDF's admission
        sets, …) must override this to drop everything that could leak
        from one run into the next.
        """

    def fresh(self) -> "Scheduler":
        """This scheduler, guaranteed ready for a new run.

        The harness contract: every simulation run starts from a clean
        scheduler.  ``run_policy``/``run_many`` call ``fresh()`` on any
        live instance they are handed, so back-to-back runs of the same
        object are identical to runs of newly constructed ones (see
        ``tests/test_scheduler_fresh.py``).  The default resets in place
        and returns ``self``; subclasses whose state cannot be reset in
        place may return a new instance instead.
        """
        self.reset()
        return self

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
