"""Event kinds and the arrival calendar of the slice-based engine.

The engine observes the world only at *slice boundaries* (Section IV-B1 of
the paper: scheduling decisions are recomputed per time slice, and
preemption happens at coflow arrivals/completions).  Between two decision
points nothing about the allocation changes, so the engine fast-forwards in
closed form; the events here mark why a decision point occurred.

Two calendar implementations live here:

* :class:`ArrivalCalendar` — the columnar calendar the engine uses: three
  sorted ndarray columns (arrival time, insertion sequence, coflow *slot*)
  with staged batch appends, span-returning ``pop_due`` and lazy
  cancellation through a discard set instead of a per-call predicate.
* :class:`HeapCalendar` — the original ``heapq``-of-``(arrival, counter,
  Coflow)`` calendar, kept runnable for the pinned pre-columnar engine
  (:mod:`repro.core.reference`) so the ingest benchmarks always measure
  the columnar path against the exact code it replaced.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.core.coflow import Coflow


class EventKind(Enum):
    """Why the engine woke the scheduler up."""

    START = auto()  # first decision point of the run
    ARRIVAL = auto()  # one or more coflows became active
    COMPLETION = auto()  # one or more flows/coflows finished
    RAW_EXHAUSTED = auto()  # a compressing flow ran out of raw bytes
    CAPACITY = auto()  # a port's capacity changed (dynamic bandwidth)
    HORIZON = auto()  # run(until=...) boundary reached


@dataclass
class ScheduleTrigger:
    """The set of event kinds observed at the current slice boundary."""

    kinds: Set[EventKind] = field(default_factory=set)

    @property
    def has_arrival(self) -> bool:
        return EventKind.ARRIVAL in self.kinds

    @property
    def has_completion(self) -> bool:
        return EventKind.COMPLETION in self.kinds

    @property
    def is_preemption_point(self) -> bool:
        """Arrivals and completions are the paper's preemption points."""
        return self.has_arrival or self.has_completion


class ArrivalCalendar:
    """Columnar arrival calendar keyed by ``(arrival time, insertion seq)``.

    State is three parallel ndarrays sorted lexicographically by
    ``(time, seq)`` plus a consumed-prefix head pointer:

    * ``_time`` — arrival instants (float64);
    * ``_seq``  — monotone insertion sequence numbers (the heap counter's
      successor: ties at one arrival instant resolve in submission order);
    * ``_slot`` — the coflow's dense *slot* index in the engine's per-coflow
      columns (what ``pop_due`` hands back).

    Appends are *staged*: ``push_batch`` only records the batch arrays, and
    the next ``peek``/``pop`` folds every staged batch in at once — one
    concatenate + (when the batch really is out of order) one stable sort,
    instead of per-coflow ``heappush`` calls.  When every staged arrival is
    at/after the current tail — the common case for a streaming service
    admitting in arrival order — the merge is a plain append; ties at the
    boundary are safe because staged sequence numbers always exceed live
    ones.

    Cancellation is lazy: :meth:`discard` marks a slot dead in a set, and
    dead entries are filtered out when a merge, pop or peek touches them —
    no per-decision predicate scan when nothing was ever cancelled.
    """

    def __init__(self) -> None:
        self._time = np.empty(0, dtype=np.float64)
        self._seq = np.empty(0, dtype=np.int64)
        self._slot = np.empty(0, dtype=np.intp)
        self._head = 0
        self._staged_time: List[np.ndarray] = []
        self._staged_slot: List[np.ndarray] = []
        self._staged_n = 0
        self._seq_next = 0
        self._dead: Set[int] = set()

    # ------------------------------------------------------------- appends
    def push(self, when: float, slot: int) -> None:
        """Stage a single entry (convenience wrapper over the batch path)."""
        self.push_batch(
            np.asarray([when], dtype=np.float64),
            np.asarray([slot], dtype=np.intp),
        )

    def push_batch(self, times: np.ndarray, slots: np.ndarray) -> None:
        """Stage a batch of entries; merged lazily on the next peek/pop."""
        times = np.asarray(times, dtype=np.float64)
        slots = np.asarray(slots, dtype=np.intp)
        if times.size == 0:
            return
        if times.shape != slots.shape:
            raise ValueError("times and slots must have equal length")
        self._staged_time.append(times)
        self._staged_slot.append(slots)
        self._staged_n += times.size

    # --------------------------------------------------------------- state
    def __len__(self) -> int:
        """Live entries: staged + merged, minus lazily discarded ones."""
        return (self._time.size - self._head) + self._staged_n - len(self._dead)

    def _merge(self) -> None:
        if not self._staged_n:
            return
        if len(self._staged_time) == 1:
            t = self._staged_time[0]
            s = self._staged_slot[0]
        else:
            t = np.concatenate(self._staged_time)
            s = np.concatenate(self._staged_slot)
        q = np.arange(self._seq_next, self._seq_next + t.size, dtype=np.int64)
        self._seq_next += int(t.size)
        self._staged_time.clear()
        self._staged_slot.clear()
        self._staged_n = 0
        # Stable sort on time keeps push order within ties == seq order.
        if t.size > 1 and np.any(np.diff(t) < 0):
            order = np.argsort(t, kind="stable")
            t, s, q = t[order], s[order], q[order]
        head = self._head
        mt = self._time[head:]
        if mt.size == 0:
            self._time, self._slot, self._seq = t, s, q
        else:
            ms, mq = self._slot[head:], self._seq[head:]
            if t[0] >= mt[-1]:
                # Fast append: staged entries sort at/after the live tail,
                # and their seqs exceed every live seq, so boundary ties
                # keep insertion order.
                self._time = np.concatenate((mt, t))
                self._slot = np.concatenate((ms, s))
                self._seq = np.concatenate((mq, q))
            else:
                tt = np.concatenate((mt, t))
                # Stable on time: within a tie, live entries precede staged
                # ones and both runs are already seq-sorted, which is
                # exactly (time, seq) order.
                order = np.argsort(tt, kind="stable")
                self._time = tt[order]
                self._slot = np.concatenate((ms, s))[order]
                self._seq = np.concatenate((mq, q))[order]
        self._head = 0
        if self._dead:
            self._purge_dead()

    def _purge_dead(self) -> None:
        """Physically drop every discarded entry from the merged columns."""
        dead = np.fromiter(self._dead, dtype=np.intp, count=len(self._dead))
        head = self._head
        mask = np.isin(self._slot[head:], dead)
        if mask.any():
            keep = ~mask
            self._time = self._time[head:][keep]
            self._slot = self._slot[head:][keep]
            self._seq = self._seq[head:][keep]
            self._head = 0
            for slot in dead.tolist():
                self._dead.discard(int(slot))

    def peek_time(self) -> Optional[float]:
        """Arrival time of the earliest live entry, or ``None``."""
        self._merge()
        if self._dead:
            self._purge_dead()
        if self._head >= self._time.size:
            return None
        return float(self._time[self._head])

    def discard(self, slot: int) -> None:
        """Lazily drop a (still pending) slot's entry — cancellation."""
        self._dead.add(int(slot))

    def pop_due(self, now: float) -> np.ndarray:
        """Remove and return the slots of every entry with ``time <= now``.

        The span comes back in ``(time, seq)`` order — the exact order the
        heap calendar popped coflows — as an ``intp`` array.
        """
        self._merge()
        if self._dead:
            self._purge_dead()
        head = self._head
        hi = int(np.searchsorted(self._time, now, side="right"))
        if hi <= head:
            return np.empty(0, dtype=np.intp)
        out = self._slot[head:hi]
        self._head = hi
        # Compact the consumed prefix once it dominates the storage.
        if self._head > 1024 and self._head * 2 > self._time.size:
            self._time = self._time[self._head:].copy()
            self._slot = self._slot[self._head:].copy()
            self._seq = self._seq[self._head:].copy()
            self._head = 0
        return out

    # ------------------------------------------------- drain / checkpoints
    def remap(self, slot_map: np.ndarray) -> None:
        """Renumber slots after a drain compaction.

        ``slot_map[old_slot]`` is the new slot, or ``-1`` for evicted
        slots (which are dropped — drain only evicts terminal coflows, so
        any calendar entry it touches was already cancelled).
        """
        self._merge()
        if self._dead:
            self._purge_dead()
        head = self._head
        if head >= self._time.size:
            self._time = self._time[:0]
            self._slot = self._slot[:0]
            self._seq = self._seq[:0]
            self._head = 0
            return
        new_slots = slot_map[self._slot[head:]]
        keep = new_slots >= 0
        self._time = self._time[head:][keep]
        self._slot = new_slots[keep].astype(np.intp, copy=False)
        self._seq = self._seq[head:][keep]
        self._head = 0

    def export_entries(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live ``(times, seqs, slots)`` copies, for checkpointing."""
        self._merge()
        if self._dead:
            self._purge_dead()
        head = self._head
        return (
            self._time[head:].copy(),
            self._seq[head:].copy(),
            self._slot[head:].copy(),
        )

    def import_entries(
        self, times: np.ndarray, seqs: np.ndarray, slots: np.ndarray
    ) -> None:
        """Restore :meth:`export_entries` output into a fresh calendar."""
        if len(self) or self._time.size:
            raise ValueError("import_entries needs a fresh calendar")
        self._time = np.asarray(times, dtype=np.float64).copy()
        self._seq = np.asarray(seqs, dtype=np.int64).copy()
        self._slot = np.asarray(slots, dtype=np.intp).copy()
        self._head = 0
        self._seq_next = int(self._seq.max()) + 1 if self._seq.size else 0


class HeapCalendar:
    """Min-heap of coflows keyed by arrival time (the pre-columnar
    calendar, kept verbatim for :mod:`repro.core.reference`)."""

    def __init__(self) -> None:
        self._heap: List = []
        self._counter = 0

    def push(self, coflow: Coflow) -> None:
        heapq.heappush(self._heap, (coflow.arrival, self._counter, coflow))
        self._counter += 1

    def __len__(self) -> int:
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """Arrival time of the earliest pending coflow, or ``None``."""
        return self._heap[0][0] if self._heap else None

    def prune_head(self, should_drop) -> None:
        """Discard leading entries for which ``should_drop(coflow)`` holds
        (lazy deletion for cancelled coflows)."""
        while self._heap and should_drop(self._heap[0][2]):
            heapq.heappop(self._heap)

    def pop_due(self, now: float) -> List[Coflow]:
        """Remove and return every coflow with ``arrival <= now``."""
        due: List[Coflow] = []
        while self._heap and self._heap[0][0] <= now:
            due.append(heapq.heappop(self._heap)[2])
        return due
