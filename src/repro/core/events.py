"""Event kinds and the arrival calendar of the slice-based engine.

The engine observes the world only at *slice boundaries* (Section IV-B1 of
the paper: scheduling decisions are recomputed per time slice, and
preemption happens at coflow arrivals/completions).  Between two decision
points nothing about the allocation changes, so the engine fast-forwards in
closed form; the events here mark why a decision point occurred.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import List, Optional, Set

from repro.core.coflow import Coflow
from repro.errors import ConfigurationError


class EventKind(Enum):
    """Why the engine woke the scheduler up."""

    START = auto()  # first decision point of the run
    ARRIVAL = auto()  # one or more coflows became active
    COMPLETION = auto()  # one or more flows/coflows finished
    RAW_EXHAUSTED = auto()  # a compressing flow ran out of raw bytes
    CAPACITY = auto()  # a port's capacity changed (dynamic bandwidth)
    HORIZON = auto()  # run(until=...) boundary reached


@dataclass
class ScheduleTrigger:
    """The set of event kinds observed at the current slice boundary."""

    kinds: Set[EventKind] = field(default_factory=set)

    @property
    def has_arrival(self) -> bool:
        return EventKind.ARRIVAL in self.kinds

    @property
    def has_completion(self) -> bool:
        return EventKind.COMPLETION in self.kinds

    @property
    def is_preemption_point(self) -> bool:
        """Arrivals and completions are the paper's preemption points."""
        return self.has_arrival or self.has_completion


class ArrivalCalendar:
    """Min-heap of coflows keyed by arrival time."""

    def __init__(self) -> None:
        self._heap: List = []
        self._counter = 0

    def push(self, coflow: Coflow) -> None:
        heapq.heappush(self._heap, (coflow.arrival, self._counter, coflow))
        self._counter += 1

    def __len__(self) -> int:
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """Arrival time of the earliest pending coflow, or ``None``."""
        return self._heap[0][0] if self._heap else None

    def prune_head(self, should_drop) -> None:
        """Discard leading entries for which ``should_drop(coflow)`` holds
        (lazy deletion for cancelled coflows)."""
        while self._heap and should_drop(self._heap[0][2]):
            heapq.heappop(self._heap)

    def pop_due(self, now: float) -> List[Coflow]:
        """Remove and return every coflow with ``arrival <= now``."""
        due: List[Coflow] = []
        while self._heap and self._heap[0][0] <= now:
            due.append(heapq.heappop(self._heap)[2])
        return due
