"""Pinned pre-vectorization reference implementations (perf baseline).

The decision-point hot path — FVDF's minimal-rate allocation, its
work-conserving backfill, ``greedy_priority`` and ``madd``'s backfill —
was originally written as scalar Python loops over
:func:`~repro.core.rate_allocation.flow_headroom` /
:func:`~repro.core.rate_allocation.consume`.  Those loops were replaced by
the vectorized :func:`~repro.core.rate_allocation.priority_fill`; this
module keeps the scalar originals **runnable** so the perf-regression
harness (``python -m repro bench``, ``benchmarks/bench_hotpath_scale.py``)
can measure the speedup of the vectorized path against the exact code it
replaced, on the same machine and workload, every time the benchmark runs.

Nothing here is used by the schedulers; equivalence between the two paths
is enforced by ``tests/test_vectorized_equivalence.py`` (which carries its
own copy of the scalar loops, so a bug here cannot mask a bug there).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import rate_allocation as ra
from repro.core.coflow import CoflowResult
from repro.core.events import HeapCalendar
from repro.core.fvdf import FVDFScheduler, compression_strategy, expected_fct
from repro.core.scheduler import Allocation, SchedulerView
from repro.core.simulator import (
    _ACTIVE,
    _CANCELLED,
    _DONE,
    _PENDING,
    SimulationResult,
    SliceSimulator,
    _CoflowRecord,
)
from repro.errors import ConfigurationError


def priority_fill_ref(
    order: np.ndarray,
    dims: Sequence[ra.Dimension],
    demands: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    n: Optional[int] = None,
) -> np.ndarray:
    """Scalar sequential priority filling — the pre-vectorization loop."""
    if out is None:
        if n is None:
            n = max((len(groups) for groups, _ in dims), default=0)
        out = np.zeros(n, dtype=np.float64)
    for i in order:
        r = ra.flow_headroom(i, dims)
        if demands is not None:
            r = min(r, float(demands[i]))
        if r <= 0.0:
            continue
        out[i] += r
        ra.consume(i, r, dims)
    return out


def greedy_priority_ref(
    order: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    demands: Optional[np.ndarray] = None,
    extra: Optional[Sequence[ra.Dimension]] = None,
) -> np.ndarray:
    """Scalar :func:`~repro.core.rate_allocation.greedy_priority`."""
    dims = ra.build_dims(src, dst, rem_in, rem_out, extra)
    rates = np.zeros(len(src), dtype=np.float64)
    priority_fill_ref(order, dims, demands=demands, out=rates)
    return rates


def madd_ref(
    coflow_order: Sequence[np.ndarray],
    src: np.ndarray,
    dst: np.ndarray,
    volumes: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    backfill: bool = True,
    extra: Optional[Sequence[ra.Dimension]] = None,
) -> np.ndarray:
    """:func:`~repro.core.rate_allocation.madd` with the scalar backfill."""
    rates = ra.madd(
        coflow_order, src, dst, volumes, rem_in, rem_out,
        backfill=False, extra=extra,
    )
    if backfill:
        dims = ra.build_dims(src, dst, rem_in, rem_out, extra)
        for idx in coflow_order:
            for i in np.asarray(idx, dtype=np.intp):
                if volumes[i] <= 0:
                    continue
                r = ra.flow_headroom(i, dims)
                if r <= 0.0:
                    continue
                rates[i] += r
                ra.consume(i, r, dims)
    return rates


class ReferenceFVDFScheduler(FVDFScheduler):
    """FVDF with the pre-vectorization decision loop, kept verbatim.

    Differences from :class:`~repro.core.fvdf.FVDFScheduler` (each one a
    hot-path rewrite this baseline deliberately does *not* have):

    * units materialized as a Python list of ``(flow_idx, P)`` tuples and
      concatenated with ``np.concatenate`` at every decision;
    * Γ per unit via a per-unit Python list comprehension instead of one
      ``np.maximum.reduceat`` segment-max;
    * both compression passes always run (no "β unchanged ⇒ Γ unchanged"
      skip);
    * the minimal pass, its backfill, and the greedy/madd policies walk
      flows one at a time through ``flow_headroom``/``consume``.

    Pair it with ``SliceSimulator.force_regroup = True`` to also restore
    the per-decision view regrouping cost.
    """

    def __init__(self, config=None, name: Optional[str] = None):
        super().__init__(config=config, name=name or "fvdf-ref")

    def _units(self, view: SchedulerView) -> List[Tuple[np.ndarray, float]]:
        if self.config.granularity == "coflow":
            return [(cs.flow_idx, cs.priority_class) for cs in view.coflows]
        units: List[Tuple[np.ndarray, float]] = []
        for cs in view.coflows:
            for i in cs.flow_idx:
                units.append((np.asarray([i], dtype=np.intp), cs.priority_class))
        return units

    def schedule(self, view: SchedulerView) -> Allocation:
        n = view.num_flows
        if n == 0:
            return Allocation.idle(0)
        cfg = self.config
        if cfg.logbase > 1.0 and view.trigger.is_preemption_point:
            if cfg.aging == "starved":
                for cs in view.coflows:
                    if self._last_served.get(cs.coflow_id, True) is False:
                        cs.priority_class *= cfg.logbase
            else:
                for cs in view.coflows:
                    cs.priority_class *= cfg.logbase

        units = self._units(view)
        beta0 = compression_strategy(view, enable=cfg.compress)
        gamma0 = self._ref_gammas(view, beta0, units)
        provisional = np.argsort(
            [g / p for (_, p), g in zip(units, gamma0)], kind="stable"
        )
        flow_order = np.concatenate([units[u][0] for u in provisional])
        beta = compression_strategy(view, enable=cfg.compress, order=flow_order)
        gamma = self._ref_gammas(view, beta, units)
        order = np.argsort(
            [g / p for (_, p), g in zip(units, gamma)], kind="stable"
        )
        rates = self._ref_allocate(view, units, order, gamma, beta)
        self._last_served = {
            cs.coflow_id: bool(
                (rates[cs.flow_idx] > 0).any() or beta[cs.flow_idx].any()
            )
            for cs in view.coflows
        }
        return Allocation(rates=rates, compress=beta)

    @staticmethod
    def _ref_gammas(view, beta, units) -> np.ndarray:
        gamma_f = expected_fct(view, beta)
        return np.asarray([float(gamma_f[idx].max()) for idx, _ in units])

    def _ref_allocate(self, view, units, order, gamma, beta) -> np.ndarray:
        rem_in, rem_out = view.fresh_capacity()
        extra = view.fresh_extra()
        vol = view.raw + view.comp
        rates = np.zeros(view.num_flows)
        sendable = ~beta & (vol > 0)
        if self.config.rate_policy == "madd":
            groups = [units[u][0][sendable[units[u][0]]] for u in order]
            return madd_ref(
                groups, view.src, view.dst, vol, rem_in, rem_out, extra=extra
            )
        if self.config.rate_policy == "minimal":
            dims = ra.build_dims(view.src, view.dst, rem_in, rem_out, extra)
            for u in order:
                idx, _ = units[u]
                g = max(gamma[u], view.slice_len)
                for i in idx:
                    if not sendable[i]:
                        continue
                    r = min(vol[i] / g, ra.flow_headroom(i, dims))
                    if r <= 0:
                        continue
                    rates[i] = r
                    ra.consume(i, r, dims)
            for u in order:
                for i in units[u][0]:
                    if not sendable[i]:
                        continue
                    headroom = ra.flow_headroom(i, dims)
                    if headroom <= 0:
                        continue
                    rates[i] += headroom
                    ra.consume(i, headroom, dims)
            return rates
        flow_order = [i for u in order for i in units[u][0] if sendable[i]]
        return greedy_priority_ref(
            np.asarray(flow_order, dtype=np.intp),
            view.src, view.dst, rem_in, rem_out, extra=extra,
        )


class PreColumnarSliceSimulator(SliceSimulator):
    """The engine's scalar per-event path, pinned pre-columnar.

    PR "columnar result pipeline" replaced the per-flow Python in the
    engine's *event* paths — scalar ``submit`` column fills, the
    per-flow ``FlowResult`` materialization loop inside
    ``_retire_finished``, the dict-chasing full ``_regroup`` rebuild at
    every structural change, per-decision ``raw``/``comp`` copies — with
    batched column ops and a lazy ``ResultStore``.  This subclass keeps
    the replaced implementations verbatim (same semantics, same results)
    so ``benchmarks/bench_bigtrace_scale.py`` can re-measure the
    end-to-end speedup on every run, exactly like
    :class:`ReferenceFVDFScheduler` does for the scheduling math.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._cached_perm = np.empty(0, dtype=np.intp)
        self._cached_starts = np.zeros(1, dtype=np.intp)
        # The pre-columnar calendar held (arrival, counter, Coflow) heap
        # entries, and per-coflow state lived in _CoflowRecord objects
        # keyed by id (the columnar engine keys dense slots instead).
        self._calendar = HeapCalendar()
        self._coflows = {}  # coflow_id -> _CoflowRecord
        self._coflow_arrival = {}  # coflow_id -> arrival time

    def _next_arrival(self):
        """Earliest pending non-cancelled arrival (lazy lambda prune)."""
        self._calendar.prune_head(lambda c: c.coflow_id in self._cancelled)
        return self._calendar.peek_time()

    # ------------------------------------------------------------- ingest
    def submit(self, coflow) -> None:
        """Scalar per-flow ingest (the pre-columnar ``submit``)."""
        if coflow.arrival < self.now - 1e-12:
            raise ConfigurationError(
                f"coflow {coflow.coflow_id} arrives at {coflow.arrival} "
                f"but the simulation is already at {self.now}"
            )
        if coflow.coflow_id in self._coflows:
            raise ConfigurationError(f"coflow {coflow.coflow_id} submitted twice")
        n_new = len(coflow.flows)
        self._grow(n_new)
        g0 = self._n
        for j, f in enumerate(coflow.flows):
            g = g0 + j
            self._src[g] = f.src
            self._dst[g] = f.dst
            self._size[g] = f.size
            self._arrival[g] = f.arrival
            self._compressible[g] = f.compressible
            self._coflow_of[g] = coflow.coflow_id
            self._flow_id[g] = f.flow_id
            self._raw[g] = f.size
            self._comp[g] = 0.0
            if f.ratio_override is not None:
                self._xi[g] = f.ratio_override
            elif self.compression is not None:
                self._xi[g] = self.compression.ratio(f.size)
            else:
                self._xi[g] = 1.0
            self._state[g] = _PENDING
        self._n += n_new
        self.fabric.validate_endpoints(
            self._src[g0 : self._n], self._dst[g0 : self._n]
        )
        idx = np.arange(g0, self._n, dtype=np.intp)
        self._coflows[coflow.coflow_id] = _CoflowRecord(coflow, idx)
        self._coflow_arrival[coflow.coflow_id] = coflow.arrival
        self._calendar.push(coflow)

    def submit_many(self, coflows) -> None:
        for c in coflows:
            self.submit(c)

    # -------------------------------------------------------- cancellation
    def cancel_coflow(self, coflow_id: int) -> int:
        """Scalar per-flow cancellation (the pre-columnar loop)."""
        rec = self._coflows.get(coflow_id)
        if rec is None:
            raise ConfigurationError(f"unknown coflow {coflow_id}")
        if rec.remaining == 0:
            raise ConfigurationError(
                f"coflow {coflow_id} already completed; nothing to cancel"
            )
        now = self.now
        cancelled = 0
        for g in rec.global_idx:
            if self._state[g] in (_PENDING, _ACTIVE):
                if self._state[g] == _PENDING:
                    self._start[g] = now
                self._state[g] = _CANCELLED
                self._finish[g] = now
                if self._finish_phys[g] == 0.0:
                    self._finish_phys[g] = now
                cancelled += 1
        self._active = self._active[self._coflow_of[self._active] != coflow_id]
        self._groups_dirty = True
        rec.remaining = 0
        self._cancelled.add(int(coflow_id))
        tr = self.obs.tracer
        if tr.enabled:
            tr.emit(now, "cancel", coflow_id=int(coflow_id), n_flows=cancelled)
        self.obs.metrics.counter("engine.cancellations").inc(cancelled)
        return cancelled

    # ---------------------------------------------------------- activation
    def _activate_due(self):
        due = [
            c
            for c in self._calendar.pop_due(self.now + 1e-12)
            if c.coflow_id not in self._cancelled
        ]
        tr = self.obs.tracer
        for coflow in due:
            rec = self._coflows[coflow.coflow_id]
            self._state[rec.global_idx] = _ACTIVE
            self._start[rec.global_idx] = self.now
            self._active = np.concatenate((self._active, rec.global_idx))
            self._groups_dirty = True
            if tr.enabled:
                tr.emit(
                    self.now,
                    "arrival",
                    coflow_id=int(coflow.coflow_id),
                    n_flows=len(rec.global_idx),
                )
        if due:
            self.obs.metrics.counter("engine.arrivals").inc(len(due))
        return due

    # ------------------------------------------------------- view building
    def _regroup(self) -> None:
        """Full rebuild with the per-coflow dict/attribute chase."""
        idx = self._active
        coflow_ids = self._coflow_of[idx]
        uids, inv = np.unique(coflow_ids, return_inverse=True)
        arr_of = self._coflow_arrival
        arrivals = np.asarray([arr_of[c] for c in uids.tolist()])
        by_arrival = np.lexsort((uids, arrivals))
        rank = np.empty(len(uids), dtype=np.intp)
        rank[by_arrival] = np.arange(len(uids), dtype=np.intp)
        unit_of_pos = rank[inv]
        perm = np.argsort(unit_of_pos, kind="stable").astype(np.intp, copy=False)
        counts = np.bincount(unit_of_pos, minlength=len(uids))
        starts = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
        states = []
        for k, u in enumerate(by_arrival):
            rec = self._coflows[int(uids[u])]
            rec.state.flow_idx = perm[starts[k] : starts[k + 1]]
            states.append(rec.state)
        self._cached_states = states
        self._cached_coflow_ids = coflow_ids
        self._cached_perm = perm
        self._cached_starts = starts
        self._cached_static = {
            "flow_ids": self._flow_id[idx],
            "src": self._src[idx],
            "dst": self._dst[idx],
            "xi": self._xi[idx],
            "size": self._size[idx],
            "arrival": self._arrival[idx],
            "compressible": self._compressible[idx],
        }
        self._groups_dirty = False

    def _build_view(self, trigger) -> SchedulerView:
        if self._groups_dirty or self.force_regroup:
            self._regroup()
        idx = self._active
        static = self._cached_static
        free = self.cpu.free_cores(self.now)
        return SchedulerView(
            time=self.now,
            slice_len=self.slice_len,
            trigger=trigger,
            fabric=self.fabric,
            flow_ids=static["flow_ids"],
            src=static["src"],
            dst=static["dst"],
            raw=self._raw[idx].copy(),
            comp=self._comp[idx].copy(),
            xi=static["xi"],
            size=static["size"],
            arrival=static["arrival"],
            coflow_ids=self._cached_coflow_ids,
            compressible=static["compressible"],
            coflows=self._cached_states,
            free_cores=free,
            compression=self.compression,
            unit_perm=self._cached_perm,
            unit_starts=self._cached_starts,
        )

    # ---------------------------------------------------------- retirement
    def _retire_finished(self, boundary: float):
        """Per-flow dataclass materialization loop (pre-columnar)."""
        finished_coflows = []
        idx = self._active
        if len(idx) == 0:
            return finished_coflows
        vol = self._raw[idx] + self._comp[idx]
        done_mask = vol <= self._eps(idx)
        done_idx = idx[done_mask]
        if len(done_idx) == 0:
            return finished_coflows
        self._active = idx[~done_mask]
        self._groups_dirty = True
        self._state[done_idx] = _DONE
        self._finish[done_idx] = boundary
        unset = self._finish_phys[done_idx] == 0.0
        self._finish_phys[done_idx[unset]] = boundary
        tr = self.obs.tracer
        mx = self.obs.metrics
        mx.counter("engine.flow_completions").inc(len(done_idx))
        for g in done_idx:
            fr = self._make_flow_result(int(g))
            if tr.enabled:
                tr.emit(
                    boundary,
                    "completion",
                    flow_id=fr.flow_id,
                    coflow_id=fr.coflow_id,
                )
            self._flow_results.append(fr)
            for fn in self._on_flow_complete:
                fn(fr)
            rec = self._coflows[self._coflow_of[g]]
            rec.flow_results.append(fr)
            rec.remaining -= 1
            rec.finish_phys = max(rec.finish_phys, self._finish_phys[g])
            if rec.remaining == 0:
                finished_coflows.append(int(self._coflow_of[g]))
        for cid in finished_coflows:
            rec = self._coflows[cid]
            gi = rec.global_idx
            cr = CoflowResult(
                coflow_id=cid,
                label=rec.coflow.label,
                arrival=rec.coflow.arrival,
                finish=boundary,
                finish_physical=rec.finish_phys,
                size=float(self._size[gi].sum()),
                width=len(gi),
                bytes_sent=float(self._bytes_sent[gi].sum()),
                flow_results=list(rec.flow_results),
                deadline=rec.coflow.deadline,
            )
            if tr.enabled:
                tr.emit(boundary, "completion", coflow_id=cid)
            mx.counter("engine.completions").inc()
            self._coflow_results.append(cr)
            for fn in self._on_coflow_complete:
                fn(cr)
        return finished_coflows

    # -------------------------------------------------------------- results
    def result(self) -> SimulationResult:
        """Eager dataclass lists — no columnar store."""
        return SimulationResult(
            flow_results=list(self._flow_results),
            coflow_results=list(self._coflow_results),
            makespan=self.now,
            decision_points=self._decision_points,
            cpu_recorder=self._recorder,
            ingress_bytes=self._ingress_bytes.copy(),
            egress_bytes=self._egress_bytes.copy(),
        )
