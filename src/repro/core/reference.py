"""Pinned pre-vectorization reference implementations (perf baseline).

The decision-point hot path — FVDF's minimal-rate allocation, its
work-conserving backfill, ``greedy_priority`` and ``madd``'s backfill —
was originally written as scalar Python loops over
:func:`~repro.core.rate_allocation.flow_headroom` /
:func:`~repro.core.rate_allocation.consume`.  Those loops were replaced by
the vectorized :func:`~repro.core.rate_allocation.priority_fill`; this
module keeps the scalar originals **runnable** so the perf-regression
harness (``python -m repro bench``, ``benchmarks/bench_hotpath_scale.py``)
can measure the speedup of the vectorized path against the exact code it
replaced, on the same machine and workload, every time the benchmark runs.

Nothing here is used by the schedulers; equivalence between the two paths
is enforced by ``tests/test_vectorized_equivalence.py`` (which carries its
own copy of the scalar loops, so a bug here cannot mask a bug there).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import rate_allocation as ra
from repro.core.fvdf import FVDFScheduler, compression_strategy, expected_fct
from repro.core.scheduler import Allocation, SchedulerView


def priority_fill_ref(
    order: np.ndarray,
    dims: Sequence[ra.Dimension],
    demands: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    n: Optional[int] = None,
) -> np.ndarray:
    """Scalar sequential priority filling — the pre-vectorization loop."""
    if out is None:
        if n is None:
            n = max((len(groups) for groups, _ in dims), default=0)
        out = np.zeros(n, dtype=np.float64)
    for i in order:
        r = ra.flow_headroom(i, dims)
        if demands is not None:
            r = min(r, float(demands[i]))
        if r <= 0.0:
            continue
        out[i] += r
        ra.consume(i, r, dims)
    return out


def greedy_priority_ref(
    order: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    demands: Optional[np.ndarray] = None,
    extra: Optional[Sequence[ra.Dimension]] = None,
) -> np.ndarray:
    """Scalar :func:`~repro.core.rate_allocation.greedy_priority`."""
    dims = ra.build_dims(src, dst, rem_in, rem_out, extra)
    rates = np.zeros(len(src), dtype=np.float64)
    priority_fill_ref(order, dims, demands=demands, out=rates)
    return rates


def madd_ref(
    coflow_order: Sequence[np.ndarray],
    src: np.ndarray,
    dst: np.ndarray,
    volumes: np.ndarray,
    rem_in: np.ndarray,
    rem_out: np.ndarray,
    backfill: bool = True,
    extra: Optional[Sequence[ra.Dimension]] = None,
) -> np.ndarray:
    """:func:`~repro.core.rate_allocation.madd` with the scalar backfill."""
    rates = ra.madd(
        coflow_order, src, dst, volumes, rem_in, rem_out,
        backfill=False, extra=extra,
    )
    if backfill:
        dims = ra.build_dims(src, dst, rem_in, rem_out, extra)
        for idx in coflow_order:
            for i in np.asarray(idx, dtype=np.intp):
                if volumes[i] <= 0:
                    continue
                r = ra.flow_headroom(i, dims)
                if r <= 0.0:
                    continue
                rates[i] += r
                ra.consume(i, r, dims)
    return rates


class ReferenceFVDFScheduler(FVDFScheduler):
    """FVDF with the pre-vectorization decision loop, kept verbatim.

    Differences from :class:`~repro.core.fvdf.FVDFScheduler` (each one a
    hot-path rewrite this baseline deliberately does *not* have):

    * units materialized as a Python list of ``(flow_idx, P)`` tuples and
      concatenated with ``np.concatenate`` at every decision;
    * Γ per unit via a per-unit Python list comprehension instead of one
      ``np.maximum.reduceat`` segment-max;
    * both compression passes always run (no "β unchanged ⇒ Γ unchanged"
      skip);
    * the minimal pass, its backfill, and the greedy/madd policies walk
      flows one at a time through ``flow_headroom``/``consume``.

    Pair it with ``SliceSimulator.force_regroup = True`` to also restore
    the per-decision view regrouping cost.
    """

    def __init__(self, config=None, name: Optional[str] = None):
        super().__init__(config=config, name=name or "fvdf-ref")

    def _units(self, view: SchedulerView) -> List[Tuple[np.ndarray, float]]:
        if self.config.granularity == "coflow":
            return [(cs.flow_idx, cs.priority_class) for cs in view.coflows]
        units: List[Tuple[np.ndarray, float]] = []
        for cs in view.coflows:
            for i in cs.flow_idx:
                units.append((np.asarray([i], dtype=np.intp), cs.priority_class))
        return units

    def schedule(self, view: SchedulerView) -> Allocation:
        n = view.num_flows
        if n == 0:
            return Allocation.idle(0)
        cfg = self.config
        if cfg.logbase > 1.0 and view.trigger.is_preemption_point:
            if cfg.aging == "starved":
                for cs in view.coflows:
                    if self._last_served.get(cs.coflow_id, True) is False:
                        cs.priority_class *= cfg.logbase
            else:
                for cs in view.coflows:
                    cs.priority_class *= cfg.logbase

        units = self._units(view)
        beta0 = compression_strategy(view, enable=cfg.compress)
        gamma0 = self._ref_gammas(view, beta0, units)
        provisional = np.argsort(
            [g / p for (_, p), g in zip(units, gamma0)], kind="stable"
        )
        flow_order = np.concatenate([units[u][0] for u in provisional])
        beta = compression_strategy(view, enable=cfg.compress, order=flow_order)
        gamma = self._ref_gammas(view, beta, units)
        order = np.argsort(
            [g / p for (_, p), g in zip(units, gamma)], kind="stable"
        )
        rates = self._ref_allocate(view, units, order, gamma, beta)
        self._last_served = {
            cs.coflow_id: bool(
                (rates[cs.flow_idx] > 0).any() or beta[cs.flow_idx].any()
            )
            for cs in view.coflows
        }
        return Allocation(rates=rates, compress=beta)

    @staticmethod
    def _ref_gammas(view, beta, units) -> np.ndarray:
        gamma_f = expected_fct(view, beta)
        return np.asarray([float(gamma_f[idx].max()) for idx, _ in units])

    def _ref_allocate(self, view, units, order, gamma, beta) -> np.ndarray:
        rem_in, rem_out = view.fresh_capacity()
        extra = view.fresh_extra()
        vol = view.raw + view.comp
        rates = np.zeros(view.num_flows)
        sendable = ~beta & (vol > 0)
        if self.config.rate_policy == "madd":
            groups = [units[u][0][sendable[units[u][0]]] for u in order]
            return madd_ref(
                groups, view.src, view.dst, vol, rem_in, rem_out, extra=extra
            )
        if self.config.rate_policy == "minimal":
            dims = ra.build_dims(view.src, view.dst, rem_in, rem_out, extra)
            for u in order:
                idx, _ = units[u]
                g = max(gamma[u], view.slice_len)
                for i in idx:
                    if not sendable[i]:
                        continue
                    r = min(vol[i] / g, ra.flow_headroom(i, dims))
                    if r <= 0:
                        continue
                    rates[i] = r
                    ra.consume(i, r, dims)
            for u in order:
                for i in units[u][0]:
                    if not sendable[i]:
                        continue
                    headroom = ra.flow_headroom(i, dims)
                    if headroom <= 0:
                        continue
                    rates[i] += headroom
                    ra.consume(i, headroom, dims)
            return rates
        flow_order = [i for u in order for i in units[u][0] if sendable[i]]
        return greedy_priority_ref(
            np.asarray(flow_order, dtype=np.intp),
            view.src, view.dst, rem_in, rem_out, extra=extra,
        )
