"""Offline scheduling tools: fixed orders and brute-force optima.

Section IV-A of the paper starts from an *offline* problem with full
knowledge.  Coflow scheduling is NP-hard, but tiny instances can be solved
exactly by enumerating coflow priority orders — each order evaluated by
the same engine that runs the heuristics.  This gives the test suite an
absolute optimum to compare FVDF/SEBF against on small cases, and gives
users a :class:`FixedOrderScheduler` to replay an arbitrary priority list.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import rate_allocation as ra
from repro.core.coflow import Coflow
from repro.core.scheduler import Allocation, Scheduler, SchedulerView
from repro.core.simulator import SimulationResult, SliceSimulator
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch

#: Enumerating n! orders: keep n small by construction.
MAX_EXHAUSTIVE_COFLOWS = 7


class FixedOrderScheduler(Scheduler):
    """Serve coflows in a caller-given strict priority order.

    Coflows not in the list rank last (by arrival).  Rates are
    work-conserving greedy in that order.
    """

    name = "fixed-order"

    def __init__(self, order: Sequence[int]):
        self._rank: Dict[int, int] = {cid: i for i, cid in enumerate(order)}

    def schedule(self, view: SchedulerView) -> Allocation:
        if view.num_flows == 0:
            return Allocation.idle(0)
        ordered = sorted(
            view.coflows,
            key=lambda cs: (
                self._rank.get(cs.coflow_id, len(self._rank)),
                cs.coflow.arrival,
                cs.coflow_id,
            ),
        )
        flow_order = np.concatenate([cs.flow_idx for cs in ordered])
        rem_in, rem_out = view.fresh_capacity()
        rates = ra.greedy_priority(
            flow_order, view.src, view.dst, rem_in, rem_out,
            extra=view.fresh_extra(),
        )
        return Allocation(rates=rates)


@dataclass
class ExhaustiveResult:
    """The optimum over all coflow priority orders (within this schedule
    family: strict order + work-conserving greedy rates)."""

    best_order: Tuple[int, ...]
    best_value: float
    best_result: SimulationResult
    evaluated: int


def exhaustive_best_order(
    coflows: Sequence[Coflow],
    fabric_factory,
    metric: str = "avg_cct",
    slice_len: float = 0.01,
) -> ExhaustiveResult:
    """Try every coflow priority order; return the best on ``metric``.

    Parameters
    ----------
    coflows:
        At most :data:`MAX_EXHAUSTIVE_COFLOWS` coflows (n! blow-up).
    fabric_factory:
        Zero-argument callable building a fresh fabric per evaluation.
    metric:
        Attribute of :class:`SimulationResult` to minimise.
    """
    if not coflows:
        raise ConfigurationError("need at least one coflow")
    if len(coflows) > MAX_EXHAUSTIVE_COFLOWS:
        raise ConfigurationError(
            f"{len(coflows)} coflows would need {len(coflows)}! evaluations; "
            f"max {MAX_EXHAUSTIVE_COFLOWS}"
        )
    ids = [c.coflow_id for c in coflows]
    best: Optional[ExhaustiveResult] = None
    evaluated = 0
    for order in itertools.permutations(ids):
        sim = SliceSimulator(
            fabric_factory(), FixedOrderScheduler(order), slice_len=slice_len
        )
        sim.submit_many(list(coflows))
        res = sim.run()
        evaluated += 1
        value = float(getattr(res, metric))
        if best is None or value < best.best_value - 1e-12:
            best = ExhaustiveResult(
                best_order=order, best_value=value, best_result=res,
                evaluated=evaluated,
            )
    best.evaluated = evaluated
    return best
