"""Columnar result storage and lazy dataclass materialization.

The engine retires flows in bulk (``SliceSimulator._retire_finished``
stamps whole columns at once); materializing a ``FlowResult`` dataclass
per flow inside that loop is what used to dominate trace-scale runs.
Instead, the engine snapshots its columns into a :class:`ResultStore`
and ``SimulationResult`` exposes the familiar ``flow_results`` /
``coflow_results`` lists as *lazy* sequences over the store: metrics
that only need arrays (``avg_fct``, ``ResultSummary``, the plot
helpers) never build a single dataclass, while any consumer that
indexes or iterates the lists gets bit-identical ``FlowResult`` /
``CoflowResult`` objects, built on demand and cached.

Layout contract (established by the engine at snapshot time):

* flow columns are ordered by **retirement order** (the order the eager
  per-flow loop used to append results);
* coflow columns are ordered by **close order** (the order coflows hit
  ``remaining == 0``);
* ``cf_member_perm`` / ``cf_member_starts`` segment the flow positions
  by owning coflow, members in retirement order — so a lazily built
  ``CoflowResult.flow_results`` holds the *same* element objects as the
  flat flow list (identity is shared through the parent sequence).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import List, Optional

import numpy as np

from repro.core.coflow import CoflowResult
from repro.core.flow import FlowResult

__all__ = [
    "ResultStore", "LazyFlowResults", "LazyCoflowResults", "concat_stores",
]

#: Per-flow array columns, in flow (retirement) order.
_FLOW_FIELDS = (
    "flow_id", "coflow_id", "src", "dst", "size", "arrival", "start",
    "finish", "finish_phys", "bytes_sent", "comp_in", "comp_out",
)

#: Per-coflow array columns, in close order.
_CF_FIELDS = (
    "cf_id", "cf_arrival", "cf_finish", "cf_finish_phys", "cf_size",
    "cf_width", "cf_bytes_sent",
)


class ResultStore:
    """Immutable columnar snapshot of every retired flow / closed coflow.

    All arrays are copies taken at snapshot time, so a store stays valid
    (and frozen) while the engine keeps running toward a later horizon.
    """

    __slots__ = (
        "flow_id", "coflow_id", "src", "dst", "size", "arrival", "start",
        "finish", "finish_phys", "bytes_sent", "comp_in", "comp_out",
        "decompress_speed",
        "cf_id", "cf_label", "cf_arrival", "cf_finish", "cf_finish_phys",
        "cf_size", "cf_width", "cf_bytes_sent", "cf_deadline",
        "cf_member_perm", "cf_member_starts",
    )

    def __init__(
        self,
        *,
        flow_id: np.ndarray,
        coflow_id: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        size: np.ndarray,
        arrival: np.ndarray,
        start: np.ndarray,
        finish: np.ndarray,
        finish_phys: np.ndarray,
        bytes_sent: np.ndarray,
        comp_in: np.ndarray,
        comp_out: np.ndarray,
        decompress_speed: Optional[float],
        cf_id: np.ndarray,
        cf_label: List[str],
        cf_arrival: np.ndarray,
        cf_finish: np.ndarray,
        cf_finish_phys: np.ndarray,
        cf_size: np.ndarray,
        cf_width: np.ndarray,
        cf_bytes_sent: np.ndarray,
        cf_deadline: List[Optional[float]],
        cf_member_perm: np.ndarray,
        cf_member_starts: np.ndarray,
    ):
        self.flow_id = flow_id
        self.coflow_id = coflow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.arrival = arrival
        self.start = start
        self.finish = finish
        self.finish_phys = finish_phys
        self.bytes_sent = bytes_sent
        self.comp_in = comp_in
        self.comp_out = comp_out
        self.decompress_speed = decompress_speed
        self.cf_id = cf_id
        self.cf_label = cf_label
        self.cf_arrival = cf_arrival
        self.cf_finish = cf_finish
        self.cf_finish_phys = cf_finish_phys
        self.cf_size = cf_size
        self.cf_width = cf_width
        self.cf_bytes_sent = cf_bytes_sent
        self.cf_deadline = cf_deadline
        self.cf_member_perm = cf_member_perm
        self.cf_member_starts = cf_member_starts

    @property
    def n_flows(self) -> int:
        return int(self.flow_id.shape[0])

    @property
    def n_coflows(self) -> int:
        return int(self.cf_id.shape[0])

    # ------------------------------------------------------- materialization
    def make_flow_result(self, i: int) -> FlowResult:
        """Build the ``FlowResult`` for flat position ``i``.

        Field-for-field identical to the engine's eager
        ``_make_flow_result`` (same ``float()`` casts on the same column
        values), so lazy and eager paths are bit-identical.
        """
        comp_out = float(self.comp_out[i])
        decompress = 0.0
        if self.decompress_speed is not None and comp_out > 0:
            decompress = comp_out / self.decompress_speed
        return FlowResult(
            flow_id=int(self.flow_id[i]),
            coflow_id=int(self.coflow_id[i]),
            src=int(self.src[i]),
            dst=int(self.dst[i]),
            size=float(self.size[i]),
            arrival=float(self.arrival[i]),
            start=float(self.start[i]),
            finish=float(self.finish[i]),
            finish_physical=float(self.finish_phys[i]),
            bytes_sent=float(self.bytes_sent[i]),
            bytes_compressed_in=float(self.comp_in[i]),
            bytes_compressed_out=comp_out,
            decompress_time=decompress,
        )

    def make_coflow_result(self, k: int, flows: Sequence) -> CoflowResult:
        """Build the ``CoflowResult`` for close-order position ``k``.

        ``flows`` is the (lazy) flat flow sequence; member results are
        pulled through it so object identity is shared with
        ``SimulationResult.flow_results``.
        """
        lo = int(self.cf_member_starts[k])
        hi = int(self.cf_member_starts[k + 1])
        members = [flows[int(p)] for p in self.cf_member_perm[lo:hi]]
        return CoflowResult(
            coflow_id=int(self.cf_id[k]),
            label=self.cf_label[k],
            arrival=float(self.cf_arrival[k]),
            finish=float(self.cf_finish[k]),
            finish_physical=float(self.cf_finish_phys[k]),
            size=float(self.cf_size[k]),
            width=int(self.cf_width[k]),
            bytes_sent=float(self.cf_bytes_sent[k]),
            flow_results=members,
            deadline=self.cf_deadline[k],
        )

    # ------------------------------------------------------------ NPZ spill
    def save_npz(self, path) -> None:
        """Write the store to ``path`` as a compressed ``.npz`` shard.

        Everything is encoded as plain arrays (labels as a unicode array,
        deadlines as NaN-for-None floats), so the file round-trips with
        ``allow_pickle=False``.  Used by the streaming service to spill
        drained result shards to disk.
        """
        payload = {name: getattr(self, name) for name in _FLOW_FIELDS}
        payload.update({name: getattr(self, name) for name in _CF_FIELDS})
        payload["cf_member_perm"] = self.cf_member_perm
        payload["cf_member_starts"] = self.cf_member_starts
        labels = np.asarray(self.cf_label, dtype=np.str_)
        if labels.dtype.itemsize == 0:  # all labels empty: '<U0' won't save
            labels = labels.astype("<U1")
        payload["cf_label"] = labels
        payload["cf_deadline"] = np.asarray(
            [np.nan if d is None else float(d) for d in self.cf_deadline],
            dtype=np.float64,
        )
        payload["decompress_speed"] = np.asarray(
            [0.0, 0.0]
            if self.decompress_speed is None
            else [1.0, float(self.decompress_speed)],
            dtype=np.float64,
        )
        np.savez_compressed(path, **payload)

    @classmethod
    def load_npz(cls, path) -> "ResultStore":
        """Load a :meth:`save_npz` shard back into a store."""
        with np.load(path, allow_pickle=False) as data:
            kw = {name: data[name] for name in _FLOW_FIELDS}
            kw.update({name: data[name] for name in _CF_FIELDS})
            kw["cf_member_perm"] = data["cf_member_perm"].astype(
                np.intp, copy=False
            )
            kw["cf_member_starts"] = data["cf_member_starts"].astype(
                np.intp, copy=False
            )
            kw["cf_label"] = [str(x) for x in data["cf_label"]]
            kw["cf_deadline"] = [
                None if np.isnan(d) else float(d) for d in data["cf_deadline"]
            ]
            has_speed, speed = data["decompress_speed"]
            kw["decompress_speed"] = float(speed) if has_speed else None
        return cls(**kw)


def concat_stores(stores: Sequence[ResultStore]) -> ResultStore:
    """Concatenate result shards into one store.

    Flow columns append in shard order (shards hold disjoint flows in
    retirement order, so the result is a valid retirement-ordered store);
    coflow columns likewise.  Member permutations are offset by the
    preceding shards' flow counts, member starts by their member counts.
    An empty input yields an empty store.
    """
    stores = [s for s in stores if s is not None]
    if not stores:
        raise ValueError("concat_stores needs at least one store")
    if len(stores) == 1:
        return stores[0]
    kw = {
        name: np.concatenate([getattr(s, name) for s in stores])
        for name in _FLOW_FIELDS + _CF_FIELDS
    }
    perms = []
    starts = [np.zeros(1, dtype=np.intp)]
    flow_off = 0
    member_off = 0
    for s in stores:
        perms.append(s.cf_member_perm + flow_off)
        starts.append(s.cf_member_starts[1:] + member_off)
        flow_off += s.n_flows
        member_off += int(s.cf_member_starts[-1])
    kw["cf_member_perm"] = np.concatenate(perms).astype(np.intp, copy=False)
    kw["cf_member_starts"] = np.concatenate(starts).astype(
        np.intp, copy=False
    )
    kw["cf_label"] = [x for s in stores for x in s.cf_label]
    kw["cf_deadline"] = [x for s in stores for x in s.cf_deadline]
    speeds = {
        s.decompress_speed for s in stores if s.decompress_speed is not None
    }
    if len(speeds) > 1:
        raise ValueError(
            f"shards disagree on decompress_speed: {sorted(speeds)}"
        )
    kw["decompress_speed"] = speeds.pop() if speeds else None
    return ResultStore(**kw)


class _LazySeq(Sequence):
    """Sequence base: per-item cache, slice support, list equality."""

    __slots__ = ("_cache",)

    def __init__(self, n: int):
        self._cache: List = [None] * n

    def _make(self, i: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self._cache)))]
        n = len(self._cache)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        item = self._cache[i]
        if item is None:
            item = self._cache[i] = self._make(i)
        return item

    def __iter__(self):
        for i in range(len(self._cache)):
            yield self[i]

    def __eq__(self, other):
        if isinstance(other, (list, tuple, _LazySeq)):
            return len(other) == len(self) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __ne__(self, other):
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    __hash__ = None  # mutable cache, list-like semantics

    def __repr__(self):
        return f"<{type(self).__name__} n={len(self._cache)}>"


class LazyFlowResults(_LazySeq):
    """``SimulationResult.flow_results`` backed by a :class:`ResultStore`."""

    __slots__ = ("store",)

    def __init__(self, store: ResultStore):
        super().__init__(store.n_flows)
        self.store = store

    def _make(self, i: int) -> FlowResult:
        return self.store.make_flow_result(i)


class LazyCoflowResults(_LazySeq):
    """``SimulationResult.coflow_results`` backed by a :class:`ResultStore`."""

    __slots__ = ("store", "_flows")

    def __init__(self, store: ResultStore, flows: LazyFlowResults):
        super().__init__(store.n_coflows)
        self.store = store
        self._flows = flows

    def _make(self, k: int) -> CoflowResult:
        return self.store.make_coflow_result(k, self._flows)
