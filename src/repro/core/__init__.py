"""Core: the paper's algorithm (FVDF) and the slice-based simulation engine."""

from repro.core.bounds import (
    avg_cct_lower_bound,
    isolation_gamma,
    makespan_lower_bound,
    optimality_gap,
)
from repro.core.coflow import Coflow, CoflowResult
from repro.core.events import ArrivalCalendar, EventKind, ScheduleTrigger
from repro.core.flow import Flow, FlowResult
from repro.core.fvdf import FVDFConfig, FVDFScheduler
from repro.core.scheduler import Allocation, CoflowState, Scheduler, SchedulerView
from repro.core.simulator import DEFAULT_SLICE, SimulationResult, SliceSimulator

__all__ = [
    "Flow", "FlowResult", "Coflow", "CoflowResult",
    "EventKind", "ScheduleTrigger", "ArrivalCalendar",
    "Scheduler", "SchedulerView", "CoflowState", "Allocation",
    "SliceSimulator", "SimulationResult", "DEFAULT_SLICE",
    "FVDFScheduler", "FVDFConfig",
    "isolation_gamma", "avg_cct_lower_bound", "makespan_lower_bound",
    "optimality_gap",
]
