"""Lower bounds on coflow schedules (how far from optimal are we?).

Coflow scheduling is NP-hard (concurrent open shop — paper Section IV-A),
so the evaluation compares heuristics against each other.  These bounds
add an absolute yardstick no schedule can beat:

* **isolation bound** — a coflow can never finish faster than running
  alone on an empty fabric: ``CCT_i >= Γ_i`` (its bottleneck load), hence
  ``avg CCT >= avg Γ``.
* **port-workload bound** — a port must ship every byte assigned to it:
  with release times, port *p* busy until at least
  ``min_arrival(p) + load(p)/cap(p)``, bounding the makespan.
* **compression-adjusted variants** — with compression, at best every
  compressible byte shrinks by its flow's effective ratio before hitting
  the wire, so the same bounds evaluated on compressed sizes bound any
  compressing schedule.

Benchmarks report the measured/bound ratio; property tests assert no
simulated schedule ever violates a bound.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch


def _effective_sizes(
    coflow: Coflow, compression: Optional[CompressionEngine]
) -> np.ndarray:
    sizes = np.asarray([f.size for f in coflow.flows], dtype=np.float64)
    if compression is None:
        return sizes
    ratios = np.asarray([
        f.ratio_override
        if f.ratio_override is not None
        else float(compression.ratio(f.size))
        for f in coflow.flows
    ])
    compressible = np.asarray([f.compressible for f in coflow.flows])
    return np.where(compressible, sizes * ratios, sizes)


def isolation_gamma(
    coflow: Coflow,
    fabric: BigSwitch,
    compression: Optional[CompressionEngine] = None,
) -> float:
    """The coflow's bottleneck completion time run alone (``Γ``).

    With ``compression``, sizes are first shrunk by each flow's effective
    ratio — the best any compressing schedule could do, ignoring
    compression time, so still a valid lower bound.
    """
    sizes = _effective_sizes(coflow, compression)
    src = np.asarray([f.src for f in coflow.flows])
    dst = np.asarray([f.dst for f in coflow.flows])
    in_load = np.bincount(src, weights=sizes, minlength=fabric.num_ingress)
    out_load = np.bincount(dst, weights=sizes, minlength=fabric.num_egress)
    g_in = (in_load / fabric.ingress.capacity).max()
    g_out = (out_load / fabric.egress.capacity).max()
    return float(max(g_in, g_out))


def avg_cct_lower_bound(
    coflows: Sequence[Coflow],
    fabric: BigSwitch,
    compression: Optional[CompressionEngine] = None,
) -> float:
    """``avg CCT >= avg isolation Γ`` — valid for every schedule."""
    if not coflows:
        raise ConfigurationError("need at least one coflow")
    return float(
        np.mean([isolation_gamma(c, fabric, compression) for c in coflows])
    )


def makespan_lower_bound(
    coflows: Sequence[Coflow],
    fabric: BigSwitch,
    compression: Optional[CompressionEngine] = None,
) -> float:
    """Port-workload bound on the finish time of the whole workload.

    Every port must carry its total assigned bytes after the earliest
    arrival that touches it; the busiest (arrival + load/cap) over all
    ports bounds the makespan.  The last coflow's own isolation bound is
    also included (``arrival_i + Γ_i``).
    """
    if not coflows:
        raise ConfigurationError("need at least one coflow")
    n_in, n_out = fabric.num_ingress, fabric.num_egress
    in_load = np.zeros(n_in)
    out_load = np.zeros(n_out)
    in_first = np.full(n_in, np.inf)
    out_first = np.full(n_out, np.inf)
    best = 0.0
    for c in coflows:
        sizes = _effective_sizes(c, compression)
        for f, s in zip(c.flows, sizes):
            in_load[f.src] += s
            out_load[f.dst] += s
            in_first[f.src] = min(in_first[f.src], c.arrival)
            out_first[f.dst] = min(out_first[f.dst], c.arrival)
        best = max(best, c.arrival + isolation_gamma(c, fabric, compression))
    used_in = in_load > 0
    used_out = out_load > 0
    if used_in.any():
        best = max(
            best,
            float((in_first[used_in] + in_load[used_in] / fabric.ingress.capacity[used_in]).max()),
        )
    if used_out.any():
        best = max(
            best,
            float((out_first[used_out] + out_load[used_out] / fabric.egress.capacity[used_out]).max()),
        )
    return best


def optimality_gap(measured: float, bound: float) -> float:
    """measured / bound — 1.0 means provably optimal on that metric."""
    if bound <= 0:
        raise ConfigurationError("bound must be positive")
    return measured / bound
