"""Flow: the unit of network transfer.

A flow is a point-to-point transfer between an ingress port (sender machine)
and an egress port (receiver machine) of the big-switch fabric.  Following
the paper's *volume disposal* abstraction (Section IV-A1), the remaining
work of a flow is a continuous *volume* ``V = d + D`` where

* ``d`` (:attr:`Flow.raw`) is data that is still uncompressed, and
* ``D`` (:attr:`Flow.comp`) is data that has been compressed but not yet
  transmitted.

Compression moves bytes from ``raw`` to ``comp`` at the codec speed ``R``,
shrinking them by the codec ratio ``xi`` on the way (net volume drain
``R * (1 - xi)`` — Eq. 1).  Transmission drains ``comp`` first, then ``raw``,
at the allocated rate (Eq. 2).  A flow completes when its volume reaches
zero.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

_flow_ids = itertools.count()


def _next_flow_id() -> int:
    return next(_flow_ids)


def ensure_flow_ids_above(value: int) -> None:
    """Advance the global flow-id counter past ``value``.

    Checkpoint restore (:mod:`repro.service.checkpoint`) brings flows with
    explicit ids into a process whose counter may lag behind them; bumping
    the counter keeps ids of subsequently created flows unique.
    """
    global _flow_ids
    nxt = next(_flow_ids)
    _flow_ids = itertools.count(max(nxt, int(value) + 1))


def flow_id_watermark() -> int:
    """The next flow id that would be assigned (without consuming it)."""
    global _flow_ids
    nxt = next(_flow_ids)
    _flow_ids = itertools.count(nxt)
    return nxt


def reserve_flow_ids(n: int) -> int:
    """Consume ``n`` consecutive flow ids and return the first one.

    The block-columnar ingest path (:mod:`repro.core.ingest`) assigns flow
    ids from arrays instead of constructing :class:`Flow` objects; drawing
    a contiguous block keeps those ids identical to what ``n`` successive
    ``Flow()`` constructions would have produced.
    """
    global _flow_ids
    first = next(_flow_ids)
    _flow_ids = itertools.count(first + int(n))
    return first


@dataclass
class Flow:
    """A single flow of a coflow.

    Parameters
    ----------
    src:
        Ingress port index (sender machine) on the big-switch fabric.
    dst:
        Egress port index (receiver machine).
    size:
        Original (uncompressed) size in bytes.
    arrival:
        Arrival time in seconds.  For flows belonging to a
        :class:`~repro.core.coflow.Coflow` this is normally the coflow's
        arrival time.
    compressible:
        Whether the payload may be compressed at all (Pseudocode 1 line 3).
        Pre-compressed or encrypted payloads should set this to ``False``.
    ratio_override:
        Optional payload-specific compression ratio in ``(0, 1)``, taking
        precedence over the codec's size-dependent model.  Used to carry the
        per-application compressibility of Table I (e.g. Sort shuffles
        compress to ~25%, Logistic Regression only to ~75%).
    flow_id:
        Stable identifier; auto-assigned when omitted.
    """

    src: int
    dst: int
    size: float
    arrival: float = 0.0
    compressible: bool = True
    ratio_override: Optional[float] = None
    flow_id: int = field(default_factory=_next_flow_id)
    coflow_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"flow size must be positive, got {self.size}")
        if self.ratio_override is not None and not 0 < self.ratio_override < 1:
            raise ConfigurationError(
                f"ratio_override must lie in (0, 1), got {self.ratio_override}"
            )
        if self.src < 0 or self.dst < 0:
            raise ConfigurationError(
                f"ports must be non-negative, got src={self.src} dst={self.dst}"
            )
        if self.arrival < 0:
            raise ConfigurationError(f"arrival must be >= 0, got {self.arrival}")

    def __hash__(self) -> int:  # flows are identity-keyed by id
        return hash(self.flow_id)


@dataclass
class FlowResult:
    """Per-flow outcome of a simulation run.

    Attributes
    ----------
    finish:
        Observed completion time (the slice boundary at which the master
        learns the flow is done).  This is the time coflow/job logic acts on
        and the default used by metrics; the gap to :attr:`finish_physical`
        is the "time-slice waste" the paper discusses in Section VI-A1.
    finish_physical:
        Instant at which the last byte actually drained.
    bytes_sent:
        Bytes that crossed the wire (compressed payload counts at its
        compressed size), for traffic accounting (Table VII).
    bytes_compressed_in:
        Raw bytes that went through the compressor.
    bytes_compressed_out:
        Compressed bytes that crossed the wire (need decompressing).
    decompress_time:
        Receiver-side decompression time for those bytes.  The paper omits
        it from FCT because decompression is several times faster than
        compression; we account it so that omission is *quantified* (see
        ``bench_ablation_decompression.py``) rather than assumed.
    """

    flow_id: int
    coflow_id: Optional[int]
    src: int
    dst: int
    size: float
    arrival: float
    start: float
    finish: float
    finish_physical: float
    bytes_sent: float
    bytes_compressed_in: float
    bytes_compressed_out: float = 0.0
    decompress_time: float = 0.0

    @property
    def fct(self) -> float:
        """Flow completion time: observed finish minus arrival."""
        return self.finish - self.arrival

    @property
    def fct_with_decompression(self) -> float:
        """FCT including receiver-side decompression (the paper omits it)."""
        return self.fct + self.decompress_time

    @property
    def traffic_saved(self) -> float:
        """Bytes kept off the wire by compression."""
        return self.size - self.bytes_sent
