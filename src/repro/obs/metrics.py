"""Counters, gauges and summary histograms for the engine and system layers.

The registry is deliberately tiny — a dict of named instruments — because
the point is the *names*: a stable metric vocabulary that benches and tests
can assert on.  Standard names used by the built-in hooks:

=================================  =========  ================================
name                               type       meaning
=================================  =========  ================================
``engine.decisions``               counter    scheduler invocations
``engine.arrivals``                counter    coflows activated
``engine.completions``             counter    coflows finished
``engine.flow_completions``        counter    flows finished
``engine.cancellations``           counter    flows aborted via cancel_coflow
``engine.decision_latency``        histogram  seconds inside Scheduler.schedule
``engine.slices_jumped``           histogram  slices fast-forwarded per jump
``engine.bytes_sent``              counter    bytes put on the wire
``fvdf.backfill_rate``             counter    work-conservation rate handed out
``fvdf.upgrades``                  counter    priority-class upgrade events
``bus.messages.<topic>``           counter    messages published per topic
=================================  =========  ================================

A disabled registry returns a shared no-op instrument from every accessor,
so hook sites need no guards: ``metrics.counter("x").inc()`` is safe and
nearly free either way.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


def _log_buckets(lo_exp: int, hi_exp: int) -> Tuple[float, ...]:
    """Log-spaced bucket bounds: {1, 2.5, 5} × 10^k for k in [lo, hi]."""
    out = []
    for k in range(lo_exp, hi_exp + 1):
        for m in ("1", "2.5", "5"):
            # Parse, don't multiply: m * 10.0**k accumulates float error
            # (2.4999999999999998e-06) that would leak into `le` labels.
            out.append(float(f"{m}e{k}"))
    return tuple(out)


#: Default histogram bucket upper bounds (``le`` semantics): log-spaced
#: from 1µ to 5k, wide enough to cover decision latencies (~1e-5 s),
#: service-tick wall times (~1e-3..10 s) and slice-jump counts alike
#: while keeping O(1) memory (31 buckets + overflow).
DEFAULT_BUCKETS: Tuple[float, ...] = _log_buckets(-6, 3) + (math.inf,)


class Counter:
    """Monotonically-increasing count (float to allow byte totals)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Streaming summary: count / sum / min / max / mean + fixed buckets.

    Keeps O(1) state rather than raw samples — decision latencies alone
    would otherwise grow with every decision point of a long replay.
    Observations are additionally binned into fixed-boundary buckets
    (``le`` upper-bound semantics, log-spaced :data:`DEFAULT_BUCKETS` by
    default, always ending in ``+inf``), which is what lets the
    telemetry plane emit Prometheus ``*_bucket`` lines and approximate
    p50/p95/p99 instead of only min/max/mean.
    """

    __slots__ = ("name", "count", "total", "min", "max", "bounds", "buckets")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        b = tuple(float(x) for x in (bounds or DEFAULT_BUCKETS))
        if not b or b[-1] != math.inf:
            b = b + (math.inf,)
        if any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError(f"histogram bounds must be increasing: {b}")
        self.bounds = b
        #: per-bucket (non-cumulative) observation counts, one per bound.
        self.buckets = [0] * len(b)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # First bound >= value: `le` semantics (value == bound lands in it).
        self.buckets[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate the q-quantile (0..1) from the cumulative buckets.

        Linear interpolation inside the holding bucket, clamped to the
        exact observed ``[min, max]``.  Accurate to the bucket width —
        good enough for a p99 latency panel, never for billing.  Returns
        0.0 on an empty histogram.  Buckets only cover observations made
        *here* (a merge from a pre-bucket dump adds count but no bucket
        detail); the quantile is taken over the binned total.
        """
        total = sum(self.buckets)
        if total == 0:
            return 0.0
        rank = q * total
        cum = 0.0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            lo_cum = cum
            cum += n
            if cum >= rank:
                lo = self.bounds[i - 1] if i > 0 else self.min
                hi = self.bounds[i]
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return min(max(lo, self.min), self.max)
                frac = (rank - lo_cum) / n
                return min(max(lo + frac * (hi - lo), self.min), self.max)
        return self.max  # pragma: no cover - rank <= total always lands

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()
    name = "<disabled>"
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def quantile(self, q: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        # Schema-compatible with Histogram.summary (incl. the quantile
        # keys) so disabled-registry consumers never special-case.
        return {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }


_NULL_INSTRUMENT = _NullInstrument()

Instrument = Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricsRegistry:
    """Named instruments, created on first use.

    A name is bound to one instrument type for the registry's lifetime;
    asking for the same name as a different type raises ``TypeError`` —
    that is always a hook-site bug.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, cls) -> Instrument:
        if not self.enabled:
            return _NULL_INSTRUMENT
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram under ``name`` (created on first use).

        ``bounds`` sets the fixed bucket boundaries at creation time
        only; a histogram that already exists keeps its boundaries (they
        are part of the instrument's identity, like its type).
        """
        if self.enabled and bounds is not None and name not in self._instruments:
            inst = Histogram(name, bounds)
            self._instruments[name] = inst
            return inst
        return self._get(name, Histogram)  # type: ignore[return-value]

    # ------------------------------------------------------------ inspection
    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Counter/gauge value by name (``default`` when absent)."""
        inst = self._instruments.get(name)
        return getattr(inst, "value", default) if inst is not None else default

    def as_dict(self) -> Dict[str, object]:
        """Flat snapshot: counters/gauges → value, histograms → summary."""
        out: Dict[str, object] = {}
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Histogram):
                out[name] = inst.summary()
            else:
                out[name] = inst.value
        return out

    # --------------------------------------------------- serialize / merge
    def dump(self) -> Dict[str, Dict[str, object]]:
        """Typed JSON-able snapshot, losslessly mergeable across processes.

        Unlike :meth:`as_dict` (a flat display snapshot), every entry
        carries its instrument type, so :meth:`merge` can combine dumps
        from pool workers without guessing what a bare float means.
        """
        out: Dict[str, Dict[str, object]] = {}
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Counter):
                out[name] = {"type": "counter", "value": inst.value}
            elif isinstance(inst, Gauge):
                out[name] = {"type": "gauge", "value": inst.value}
            elif isinstance(inst, Histogram):
                # `le` excludes the implicit +inf bound (JSON has no
                # clean infinity); `buckets` keeps every per-bucket
                # count, so len(buckets) == len(le) + 1 and the last
                # entry is the overflow (+inf) bucket.
                out[name] = {
                    "type": "histogram",
                    **inst.summary(),
                    "le": list(inst.bounds[:-1]),
                    "buckets": list(inst.buckets),
                }
        return out

    def merge(self, dump: Dict[str, Dict[str, object]]) -> None:
        """Fold one :meth:`dump` into this registry.

        Counters add, gauges keep the maximum (peak-seen semantics — the
        only order-independent choice), histograms combine their count /
        sum / min / max exactly as if every observation had landed here.
        A disabled registry ignores the merge (its accessors hand out the
        shared no-op instrument, which must stay untouched).
        """
        if not self.enabled:
            return
        for name, entry in dump.items():
            kind = entry["type"]
            if kind == "counter":
                self.counter(name).inc(float(entry["value"]))
            elif kind == "gauge":
                g = self.gauge(name)
                g.set(max(g.value, float(entry["value"])))
            elif kind == "histogram":
                le = entry.get("le")
                bounds = tuple(float(x) for x in le) + (math.inf,) if le else None
                h = self.histogram(name, bounds=bounds)
                n = int(entry["count"])
                if n == 0:
                    continue  # name registered; nothing to fold
                h.count += n
                h.total += float(entry["sum"])
                h.min = min(h.min, float(entry["min"]))
                h.max = max(h.max, float(entry["max"]))
                if bounds is not None:
                    if bounds != h.bounds:
                        raise ValueError(
                            f"histogram {name!r} bucket boundaries differ "
                            "between dumps — boundaries are fixed per name"
                        )
                    for i, c in enumerate(entry["buckets"]):
                        h.buckets[i] += int(c)
                # A pre-bucket dump (no "le") folds its moments only:
                # bucket detail for those observations never existed.
            else:
                raise ValueError(f"unknown instrument type {kind!r} for {name!r}")

    @classmethod
    def from_dump(cls, dump: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        """A fresh enabled registry preloaded from one :meth:`dump`."""
        reg = cls(enabled=True)
        reg.merge(dump)
        return reg

    def render(self) -> str:
        """Human-readable dump, one instrument per line."""
        lines = []
        for name, val in self.as_dict().items():
            if isinstance(val, dict):
                lines.append(
                    f"{name}: n={val['count']} mean={val['mean']:.6g} "
                    f"min={val['min']:.6g} max={val['max']:.6g}"
                )
            else:
                lines.append(f"{name}: {val:g}")
        return "\n".join(lines)
