"""The live telemetry plane: Prometheus exposition + HTTP endpoints.

A long-lived ``repro serve`` process used to be a black box until exit:
the only visibility was the final ``StreamStats`` dump.  This module
gives it a dependency-free telemetry plane — stdlib ``http.server`` on
a daemon thread — that any Prometheus scraper, ``curl``, or the bundled
``python -m repro top`` dashboard can poll while admission runs at full
rate:

``/metrics``
    Prometheus text exposition (version 0.0.4) rendered from the
    service's :class:`~repro.obs.metrics.MetricsRegistry` (counters →
    ``*_total``, gauges, histograms → ``*_bucket``/``*_sum``/
    ``*_count`` with the fixed log-spaced bounds) plus the driver's
    :class:`~repro.service.driver.StreamStats` lifetime aggregates and
    the rolling-window rates.
``/snapshot``
    One JSON document (schema :data:`SNAPSHOT_SCHEMA`) with the full
    ``StreamStats.as_dict()``, the typed registry dump, the resolved
    kernel backend, tick/in-flight/checkpoint state, the
    :class:`~repro.obs.window.RollingWindow` snapshot and health.
``/healthz`` / ``/readyz``
    Liveness and readiness: ready once the first tick completes (HTTP
    503 before), unhealthy (503) when the driver thread has not
    finished a tick within the watchdog interval — a stalled driver is
    distinguishable from a busy one because ticks are seconds-scale.

Synchronization model — the hot loop pays nothing new:

* the driver thread calls :meth:`TelemetryPlane.on_tick` once per
  service tick (never per flow), updating plain gauge/histogram
  instruments, pushing one window sample, and publishing an immutable
  per-tick scalar dict by a single attribute store;
* HTTP handler threads *read* — the latest published dict by attribute
  load (atomic under the GIL), instrument values directly (floats/ints,
  no torn reads), and the window ring snapshot-on-read.  No locks, no
  condition variables, nothing the admission loop can block on.

The overhead is guarded like the recorder's: ``benchmarks/
bench_engine_microbench.py`` asserts a plane-enabled serve run stays
within 5 % of a plane-off run, and that a plane-off driver registers
zero ``stream.*`` instruments.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.window import STREAM_RATE_KEYS, RollingWindow

__all__ = [
    "SNAPSHOT_SCHEMA",
    "TelemetryPlane",
    "render_dashboard",
    "render_prometheus",
]

#: Schema tag of the ``/snapshot`` JSON document (bump on breaking
#: layout changes).
SNAPSHOT_SCHEMA = "repro-live-v1"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str = "repro_") -> str:
    """A metric name sanitized for the exposition format
    (``engine.decision_latency`` → ``repro_engine_decision_latency``)."""
    return prefix + _NAME_RE.sub("_", name)


def _prom_num(value: float) -> str:
    """A float in exposition syntax (``+Inf``/``-Inf``/``NaN`` spelled
    the Prometheus way, integers without a trailing ``.0``)."""
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def render_prometheus(
    registry: Optional[MetricsRegistry] = None,
    *,
    stream: Optional[Dict[str, Any]] = None,
    window: Optional[Dict[str, Any]] = None,
    extra_gauges: Optional[Dict[str, float]] = None,
    prefix: str = "repro_",
) -> str:
    """Render the Prometheus text exposition (content version 0.0.4).

    ``registry`` instruments map naturally: counters emit one
    ``<name>_total`` sample, gauges one ``<name>`` sample, histograms
    the full cumulative ``<name>_bucket{le="..."}`` series (ending in
    ``le="+Inf"``) plus ``_sum`` and ``_count``.  ``stream`` (a
    ``StreamStats.as_dict()``) emits ``<prefix>stream_<field>`` gauges,
    ``window`` (a ``RollingWindow.snapshot()``) emits
    ``<prefix>window_<key>_per_s`` rate gauges, and ``extra_gauges``
    passes through verbatim.

    Each metric family is emitted at most once: the registry renders
    first and later sections skip any name it already claimed (e.g. the
    ``stream.ticks`` gauge vs. the ``StreamStats`` ``ticks`` field).  A
    duplicated family makes Prometheus reject the whole scrape, so
    first-writer-wins keeps the exposition valid.
    """
    lines = []
    families: set = set()

    def sample(name: str, value: float, labels: str = "") -> None:
        lines.append(f"{name}{labels} {_prom_num(value)}")

    def declare(pname: str, kind: str) -> bool:
        if pname in families:
            return False
        families.add(pname)
        lines.append(f"# TYPE {pname} {kind}")
        return True

    if registry is not None and registry.enabled:
        for name in registry.names():
            inst = registry.get(name)
            pname = _prom_name(name, prefix)
            if isinstance(inst, Counter):
                if declare(f"{pname}_total", "counter"):
                    sample(f"{pname}_total", inst.value)
            elif isinstance(inst, Gauge):
                if declare(pname, "gauge"):
                    sample(pname, inst.value)
            elif isinstance(inst, Histogram):
                if not declare(pname, "histogram"):
                    continue
                cum = 0
                for bound, count in zip(inst.bounds, inst.buckets):
                    cum += count
                    sample(
                        f"{pname}_bucket", cum,
                        labels='{le="%s"}' % _prom_num(bound),
                    )
                sample(f"{pname}_sum", inst.total)
                sample(f"{pname}_count", inst.count)
    if stream:
        for field, value in stream.items():
            if not isinstance(value, (int, float)):
                continue
            pname = _prom_name(f"stream.{field}", prefix)
            if declare(pname, "gauge"):
                sample(pname, float(value))
    if window:
        rates = window.get("rates_per_s") or {}
        for key in STREAM_RATE_KEYS:
            rate = rates.get(key)
            if rate is None:
                continue
            pname = _prom_name(f"window.{key}", prefix) + "_per_s"
            if declare(pname, "gauge"):
                sample(pname, rate)
        tr = window.get("traffic_reduction")
        if tr is not None:
            pname = _prom_name("window.traffic_reduction", prefix)
            if declare(pname, "gauge"):
                sample(pname, tr)
    if extra_gauges:
        for name, value in extra_gauges.items():
            if declare(name, "gauge"):
                sample(name, float(value))
    return "\n".join(lines) + "\n"


class TelemetryPlane:
    """The live telemetry plane for one :class:`StreamDriver`.

    Owns the rolling window, the per-tick instrument updates, the
    published per-tick scalar snapshot, and (once :meth:`start` is
    called) the HTTP server thread.  The driver only ever calls
    :meth:`on_tick`/:meth:`on_finish`; everything else happens on
    reader threads.

    Parameters
    ----------
    driver:
        The :class:`~repro.service.driver.StreamDriver` to observe.
        Attaching sets ``driver._plane`` so ``tick_once`` reports here.
    watchdog_s:
        ``/healthz`` turns 503 when no tick has completed within this
        many wall seconds (and the driver has not finished cleanly).
    window_ticks:
        Rolling-window capacity in ticks.
    registry:
        Instrument registry to publish into.  Defaults to the driver's
        ``sim.obs.metrics`` when that is enabled, else a private
        enabled registry — the plane never mutates a disabled registry.
    """

    def __init__(
        self,
        driver,
        *,
        watchdog_s: float = 10.0,
        window_ticks: int = 120,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if watchdog_s <= 0:
            raise ValueError(f"watchdog_s must be positive, got {watchdog_s}")
        self.driver = driver
        self.watchdog_s = float(watchdog_s)
        self.window = RollingWindow(capacity=window_ticks)
        if registry is None:
            obs_metrics = driver.sim.obs.metrics
            registry = (
                obs_metrics if obs_metrics.enabled
                else MetricsRegistry(enabled=True)
            )
        self.registry = registry
        self.started_mono = time.monotonic()
        self.started_wall = time.time()
        self.finished = False
        self._last_tick_mono: Optional[float] = None
        self._live: Dict[str, Any] = {}  # last per-tick scalars (immutable)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.port: Optional[int] = None
        self.window.prime(self._cumulative())
        driver._plane = self

    # --------------------------------------------------- driver-side hooks
    def _cumulative(self) -> Dict[str, float]:
        """The cumulative counters the window tracks, read off the driver."""
        d = self.driver
        st = d.stats
        return {
            "flows_admitted": st.flows_submitted,
            "coflows_admitted": st.coflows_submitted,
            "flows_retired": d.sim.retired_flows,
            "coflows_retired": st.coflows_done,
            "restamped": st.restamped,
            "bytes_sent": st.bytes_sent,
            "bytes_original": st.bytes_original,
            "drains": st.drains,
            "spills": st.spills,
        }

    def on_tick(self, wall_s: float) -> None:
        """Per-tick update, called by the driver thread after each tick.

        Cost is once per tick, never per flow: a handful of gauge
        stores, one histogram observe, one window push, and one
        attribute store publishing the fresh scalar dict.
        """
        d = self.driver
        reg = self.registry
        in_flight = d.in_flight
        reg.gauge("stream.in_flight").set(in_flight)
        reg.gauge("stream.live_rows").set(d.sim.live_rows)
        reg.gauge("stream.backlog_frac").set(in_flight / d.max_in_flight)
        reg.gauge("stream.ticks").set(d.stats.ticks)
        reg.histogram("stream.tick_wall_s").observe(wall_s)
        self.window.push(wall_s, self._cumulative())
        # Publish the per-tick scalars as one immutable dict: readers
        # load the attribute (atomic), never see a half-updated view.
        self._live = {
            "ticks": d.stats.ticks,
            "now": float(d.sim.now),
            "in_flight": in_flight,
            "live_rows": int(d.sim.live_rows),
            "checkpoints": d.stats.checkpoints,
        }
        self._last_tick_mono = time.monotonic()

    def on_finish(self) -> None:
        """Mark the stream complete: health stays green after the last
        tick even once the watchdog interval has passed."""
        self.finished = True

    # ---------------------------------------------------------- health
    @property
    def ready(self) -> bool:
        """True once the first service tick has completed."""
        return self._last_tick_mono is not None

    @property
    def healthy(self) -> bool:
        """True while ticks keep landing inside the watchdog interval
        (or the driver finished cleanly).  Before the first tick the
        watchdog runs from plane creation, so a driver that never
        starts ticking also turns unhealthy."""
        if self.finished:
            return True
        last = self._last_tick_mono
        base = last if last is not None else self.started_mono
        return (time.monotonic() - base) < self.watchdog_s

    # -------------------------------------------------------- snapshots
    def resolved_kernel(self) -> str:
        """The *resolved* decision-kernel backend the engine runs on."""
        from repro.core import kernels

        return kernels.resolved_name(
            getattr(self.driver.sim.scheduler, "kernel", None)
        )

    def snapshot(self) -> Dict[str, Any]:
        """The ``/snapshot`` JSON payload (schema repro-live-v1),
        assembled on the reader's thread from published state."""
        d = self.driver
        live = self._live
        last = self._last_tick_mono
        now_mono = time.monotonic()
        return {
            "schema": SNAPSHOT_SCHEMA,
            "policy": d.policy,
            "kernel": self.resolved_kernel(),
            "tick_s": d.tick,
            "max_in_flight": d.max_in_flight,
            "ticks": live.get("ticks", 0),
            "sim_now": live.get("now", 0.0),
            "in_flight": live.get("in_flight", 0),
            "live_rows": live.get("live_rows", 0),
            "checkpoints": live.get("checkpoints", 0),
            "uptime_s": now_mono - self.started_mono,
            "last_tick_age_s": (
                now_mono - last if last is not None else None
            ),
            "ready": self.ready,
            "healthy": self.healthy,
            "finished": self.finished,
            "stream": d.stats.as_dict(),
            "window": self.window.snapshot(),
            "metrics": self.registry.dump(),
        }

    def render_metrics(self) -> str:
        """The ``/metrics`` exposition body."""
        return render_prometheus(
            self.registry,
            stream=self.driver.stats.as_dict(),
            window=self.window.snapshot(),
            extra_gauges={
                "repro_up": 1.0,
                "repro_healthy": 1.0 if self.healthy else 0.0,
                "repro_ready": 1.0 if self.ready else 0.0,
            },
        )

    # ----------------------------------------------------------- server
    def start(self, port: int = 0, host: str = "127.0.0.1") -> int:
        """Bind and serve on a daemon thread; returns the bound port
        (useful with ``port=0`` for an ephemeral port)."""
        if self._server is not None:
            raise RuntimeError("telemetry plane already started")
        server = ThreadingHTTPServer((host, port), _Handler)
        server.daemon_threads = True
        server.plane = self  # type: ignore[attr-defined]
        self._server = server
        self.port = int(server.server_address[1])
        self._thread = threading.Thread(
            # 0.1s poll so stop() returns promptly (shutdown blocks
            # until serve_forever's poll loop wakes up).
            target=lambda: server.serve_forever(poll_interval=0.1),
            name=f"repro-telemetry-:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def serving(self) -> bool:
        return self._thread is not None and self._thread.is_alive()


class _Handler(BaseHTTPRequestHandler):
    """Routes the four endpoints; everything is read-only."""

    server_version = "repro-telemetry"
    protocol_version = "HTTP/1.1"

    def log_message(self, *args) -> None:  # no stderr chatter per scrape
        return None

    def _respond(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        plane: TelemetryPlane = self.server.plane  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._respond(
                    200, plane.render_metrics(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/snapshot":
                self._respond(
                    200, json.dumps(plane.snapshot()) + "\n",
                    "application/json",
                )
            elif path == "/healthz":
                ok = plane.healthy
                self._respond(
                    200 if ok else 503,
                    json.dumps({"healthy": ok, "finished": plane.finished})
                    + "\n",
                    "application/json",
                )
            elif path == "/readyz":
                ok = plane.ready
                self._respond(
                    200 if ok else 503,
                    json.dumps({"ready": ok}) + "\n",
                    "application/json",
                )
            else:
                self._respond(
                    404,
                    "not found; endpoints: /metrics /snapshot /healthz "
                    "/readyz\n",
                    "text/plain; charset=utf-8",
                )
        except OSError:  # scraper went away mid-write (broken pipe,
            pass         # connection reset, ...) — never stderr chatter


# --------------------------------------------------------------------------
# `repro top` rendering — pure snapshot-dict -> ANSI string, so tests can
# pin a frame without a socket in sight.
# --------------------------------------------------------------------------

_BOLD, _DIM, _RESET = "\x1b[1m", "\x1b[2m", "\x1b[0m"


def _fmt_rate(value: Optional[float], unit: str = "/s") -> str:
    if value is None:
        return "n/a"
    if abs(value) >= 1e9:
        return f"{value / 1e9:,.2f}G{unit}"
    if abs(value) >= 1e6:
        return f"{value / 1e6:,.2f}M{unit}"
    if abs(value) >= 1e3:
        return f"{value / 1e3:,.1f}k{unit}"
    return f"{value:,.1f}{unit}"


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:,.1f}ms"


def _bar(frac: float, width: int = 24) -> str:
    frac = min(1.0, max(0.0, frac))
    filled = int(round(frac * width))
    return "[" + "#" * filled + "." * (width - filled) + f"] {frac:5.1%}"


def render_dashboard(snap: Dict[str, Any], color: bool = True) -> str:
    """One ``repro top`` frame from a ``/snapshot`` payload.

    Pure function of the snapshot dict — the poller adds the screen
    clearing; ``--once`` prints exactly this.
    """
    bold, dim, reset = (_BOLD, _DIM, _RESET) if color else ("", "", "")
    stream = snap.get("stream") or {}
    window = snap.get("window") or {}
    rates = window.get("rates_per_s") or {}
    tick_wall = window.get("tick_wall_s") or {}
    health = (
        "FINISHED" if snap.get("finished")
        else "OK" if snap.get("healthy")
        else "STALLED"
    )
    ready = "ready" if snap.get("ready") else "starting"
    lines = [
        f"{bold}repro top{reset} — policy {snap.get('policy', '?')} | "
        f"kernel {snap.get('kernel', '?')} | tick {snap.get('tick_s', 0)}s | "
        f"{health} ({ready}) | uptime {snap.get('uptime_s', 0.0):.0f}s",
        "",
        f"{bold}rates (window of {window.get('ticks', 0)} ticks, "
        f"{window.get('span_wall_s', 0.0):.1f}s){reset}",
        f"  flows    admitted {_fmt_rate(rates.get('flows_admitted')):>12}  "
        f"retired {_fmt_rate(rates.get('flows_retired')):>12}",
        f"  coflows  admitted {_fmt_rate(rates.get('coflows_admitted')):>12}  "
        f"retired {_fmt_rate(rates.get('coflows_retired')):>12}",
        f"  bytes    sent     {_fmt_rate(rates.get('bytes_sent'), 'B/s'):>12}  "
        f"original {_fmt_rate(rates.get('bytes_original'), 'B/s'):>11}",
        f"  restamps {_fmt_rate(rates.get('restamped')):>21}  "
        f"drains  {_fmt_rate(rates.get('drains')):>12}",
        "",
        f"{bold}backlog{reset}",
        "  in-flight "
        + _bar(
            (snap.get("in_flight") or 0)
            / max(1, snap.get("max_in_flight") or 1)
        )
        + f"  ({snap.get('in_flight', 0):,} / "
        f"{snap.get('max_in_flight', 0):,} flows)",
        f"  engine rows {snap.get('live_rows', 0):,} | sim t "
        f"{snap.get('sim_now', 0.0):,.1f}s | "
        f"ticks {snap.get('ticks', 0):,} | checkpoints "
        f"{snap.get('checkpoints', 0)}",
        "",
        f"{bold}tick latency (window){reset}",
        f"  p50 {_fmt_ms(tick_wall.get('p50', 0.0)):>10}  "
        f"p95 {_fmt_ms(tick_wall.get('p95', 0.0)):>10}  "
        f"p99 {_fmt_ms(tick_wall.get('p99', 0.0)):>10}  "
        f"max {_fmt_ms(tick_wall.get('max', 0.0)):>10}",
        "",
        f"{bold}lifetime{reset}",
        f"  flows done {int(stream.get('flows_done', 0)):,} | coflows done "
        f"{int(stream.get('coflows_done', 0)):,} | restamped "
        f"{int(stream.get('restamped', 0)):,} | traffic saved "
        + (
            f"{stream.get('traffic_reduction', 0.0):.1%}"
            + (
                f" {dim}(window "
                + (
                    f"{window['traffic_reduction']:.1%}"
                    if window.get("traffic_reduction") is not None
                    else "n/a"
                )
                + f"){reset}"
            )
        ),
    ]
    return "\n".join(lines)
