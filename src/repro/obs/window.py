"""Rolling-window rate aggregation for the streaming telemetry plane.

The streaming service's :class:`~repro.service.driver.StreamStats` are
*lifetime* aggregates: after an hour of serving, ``flows_done /
wall_s`` tells you the average since boot, not whether admission is
keeping up right now.  :class:`RollingWindow` closes that gap with O(1)
memory per tick: each service tick contributes one sample — the tick's
wall time plus the deltas of a set of cumulative counters — into a
fixed-capacity ring, and :meth:`rates` divides the windowed deltas by
the windowed wall time to report live per-second rates (flows/s
admitted and retired, bytes/s sent vs. original, restamps/s,
drain/spill cadence).

Because the ring holds the raw per-tick wall times, the tick-latency
percentiles reported by :meth:`tick_wall` are **exact over the window**
(unlike the bucketed approximation a lifetime histogram gives) — the
window is small by construction, so sorting it on read is fine.

The window is deliberately single-writer: the driver thread pushes, any
number of reader threads may call :meth:`snapshot`.  There is no lock on
the write path — element writes are atomic under the GIL, so a reader
racing a push sees at worst one tick's sample mid-replacement, which is
display jitter, not corruption (snapshot-on-read: every derived dict is
built fresh per call from the ring).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["RollingWindow", "STREAM_RATE_KEYS"]

#: The cumulative counters the service driver samples every tick, in
#: the order they appear in rate snapshots.  Values are deltas-per-
#: second over the window.
STREAM_RATE_KEYS: Tuple[str, ...] = (
    "flows_admitted",
    "coflows_admitted",
    "flows_retired",
    "coflows_retired",
    "restamped",
    "bytes_sent",
    "bytes_original",
    "drains",
    "spills",
)


class RollingWindow:
    """Fixed-capacity ring of per-tick deltas of cumulative counters.

    Parameters
    ----------
    capacity:
        Number of most-recent ticks the window spans.
    keys:
        The cumulative-counter names each sample must provide
        (default :data:`STREAM_RATE_KEYS`).

    Usage: :meth:`prime` once with the counters' current cumulative
    values (the zero point), then :meth:`push` after every tick with
    the tick's wall seconds and the new cumulative values; the window
    stores only the deltas.
    """

    def __init__(
        self,
        capacity: int = 120,
        keys: Sequence[str] = STREAM_RATE_KEYS,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"window capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.keys = tuple(keys)
        self._wall = [0.0] * self.capacity
        self._deltas = {k: [0.0] * self.capacity for k in self.keys}
        self._prev: Optional[Dict[str, float]] = None
        self._count = 0  # total pushes ever (ring occupancy = min(count, cap))
        self._head = 0  # next write slot

    # ------------------------------------------------------------- writes
    def prime(self, cumulative: Mapping[str, float]) -> None:
        """Set the zero point: the counters' values before the first tick."""
        self._prev = {k: float(cumulative.get(k, 0.0)) for k in self.keys}

    def push(self, wall_s: float, cumulative: Mapping[str, float]) -> None:
        """Record one tick: its wall seconds + new cumulative counters."""
        if self._prev is None:
            # Un-primed first push: the first sample defines the zero
            # point, so its own deltas are measured from zero.
            self._prev = {k: 0.0 for k in self.keys}
        i = self._head
        self._wall[i] = float(wall_s)
        prev = self._prev
        for k in self.keys:
            cur = float(cumulative.get(k, 0.0))
            self._deltas[k][i] = cur - prev[k]
            prev[k] = cur
        self._head = (i + 1) % self.capacity
        self._count += 1

    # ------------------------------------------------------------- reads
    def __len__(self) -> int:
        return min(self._count, self.capacity)

    @property
    def span_wall_s(self) -> float:
        """Total wall seconds covered by the ticks in the window."""
        n = len(self)
        return float(sum(self._wall[:n])) if n else 0.0

    def totals(self) -> Dict[str, float]:
        """Windowed delta totals per key (not yet divided by time)."""
        n = len(self)
        return {k: float(sum(self._deltas[k][:n])) for k in self.keys}

    def rates(self) -> Dict[str, Optional[float]]:
        """Per-second rates over the window (``None`` before any tick
        lands, or if the window spans zero wall time)."""
        span = self.span_wall_s
        if len(self) == 0 or span <= 0.0:
            return {k: None for k in self.keys}
        return {k: v / span for k, v in self.totals().items()}

    def tick_wall(self) -> Dict[str, float]:
        """Exact tick wall-time stats over the window: count, min, max,
        mean, and exact p50/p95/p99 (the ring holds the raw samples)."""
        n = len(self)
        if n == 0:
            return {
                "count": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        walls = sorted(self._wall[:n])

        def pct(q: float) -> float:
            # Nearest-rank on the sorted window.
            idx = min(n - 1, max(0, int(round(q * (n - 1)))))
            return walls[idx]

        return {
            "count": n,
            "min": walls[0],
            "max": walls[-1],
            "mean": sum(walls) / n,
            "p50": pct(0.50),
            "p95": pct(0.95),
            "p99": pct(0.99),
        }

    def snapshot(self) -> Dict[str, object]:
        """One JSON-able view: occupancy, span, rates, tick-wall stats,
        and the window's traffic-reduction ratio (Swallow's live Eq. 3
        view: 1 − sent/original over the window, ``None`` when no
        original bytes moved)."""
        totals = self.totals()
        orig = totals.get("bytes_original", 0.0)
        return {
            "ticks": len(self),
            "capacity": self.capacity,
            "span_wall_s": self.span_wall_s,
            "rates_per_s": self.rates(),
            "tick_wall_s": self.tick_wall(),
            "traffic_reduction": (
                1.0 - totals.get("bytes_sent", 0.0) / orig if orig > 0 else None
            ),
        }
