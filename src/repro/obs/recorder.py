"""Columnar flight recorder: batch-native trace capture for the engine.

The legacy :class:`~repro.obs.trace.Tracer` is a *per-record* consumer:
every event costs a Python dict, a ``TraceRecord`` and a list append, and
— worse — attaching it forces the engine's batched retirement path to
materialize per-flow result dataclasses just to name the flows in the
``completion`` records.  On a million-flow replay that forfeits most of
the columnar engine's speedup exactly when visibility matters most.

The :class:`FlightRecorder` is the batch-native alternative.  The engine
hands it whole event *batches* — an arrival batch, a retirement batch, a
decision record, a rate summary — as ndarray columns, appended to
preallocated growable column buffers.  No per-flow Python runs on the hot
path; the cost of recording a 10k-flow retirement batch is a handful of
vectorized copies.

Interleaving is preserved by a **batch journal**: one compact row per
append (stream id, timestamp, start row, row count) in emission order.
Decoding walks the journal and re-expands each batch into the exact
:class:`TraceRecord` stream the legacy tracer would have produced — same
kinds, same payloads, same order — so every existing consumer
(:mod:`repro.analysis.tracefile`, ``python -m repro trace``) works
unchanged on a decoded recorder stream.

Record kinds with columnar streams: ``decision``, ``jump``, ``rates``,
``beta``, ``core_claim``, ``arrival``, ``completion`` (flow and coflow
level), ``cancel``, ``capacity``.  Everything else (``order``, ``bus``,
``heartbeat``, ``master_order``, ``job_stage`` …) arrives through the
Tracer-compatible :meth:`FlightRecorder.emit` fallback and is journaled
per record — those kinds are per-decision scale, never per-flow, so the
fallback cannot de-vectorize anything.

Capacity management:

* **ring-buffer mode** — ``FlightRecorder(keep_last=N)`` keeps only the
  most recent ``N`` batches; older batches are dropped (counted in
  :attr:`dropped_records` / :attr:`dropped_batches`) and their buffer
  space is reclaimed by compaction on the next growth.
* **spill to disk** — :meth:`save_npz` writes every live column to one
  ``.npz`` (no pickling); :meth:`load_npz` restores a decodable recorder.
  :meth:`spill_npz` saves and clears, for chunked unbounded runs.
  :meth:`dump_jsonl` exports the decoded stream in the Tracer's JSONL
  format.

NPZ round-trips preserve the JSONL rendering of every record exactly.
Columnar streams also keep their Python payload types (``kinds`` decode
back to ``EventKind`` sets); fallback records are stored as JSON lines,
so after a reload their payloads carry JSON types (sets become sorted
name lists — the same coercion ``dump_jsonl`` applies).
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterator, List, Mapping, Optional, Union

import numpy as np

from repro.core.events import EventKind
from repro.obs.trace import TraceRecord, Tracer, record_from_json, record_to_json

__all__ = ["NULL_RECORDER", "FlightRecorder"]

#: Bit assigned to each EventKind in the packed ``kinds`` masks.
_KIND_BIT: Dict[EventKind, int] = {
    kind: 1 << i for i, kind in enumerate(EventKind)
}
_BIT_KIND: Dict[int, EventKind] = {bit: kind for kind, bit in _KIND_BIT.items()}


def _kinds_to_mask(kinds) -> int:
    mask = 0
    for k in kinds:
        mask |= _KIND_BIT[k]
    return mask


def _mask_to_kinds(mask: int) -> set:
    return {kind for bit, kind in _BIT_KIND.items() if mask & bit}


#: Stream codes (stable across NPZ round-trips; append-only).
_DECISION, _JUMP, _RATES, _ARRIVAL, _FLOW_DONE, _COFLOW_DONE = range(6)
_BETA, _CLAIM, _CANCEL, _CAPACITY, _MISC, _ORDER = range(6, 12)

#: Column layout of each columnar stream (name -> dtype).
_LAYOUT: Dict[int, Dict[str, type]] = {
    _DECISION: {"kinds": np.int64, "n_flows": np.int64, "n_coflows": np.int64},
    _JUMP: {"n_slices": np.int64, "kinds": np.int64},
    _RATES: {"n_tx": np.int64, "total": np.float64, "max": np.float64},
    _ARRIVAL: {"coflow_id": np.int64, "n_flows": np.int64},
    _FLOW_DONE: {"flow_id": np.int64, "coflow_id": np.int64},
    _COFLOW_DONE: {"coflow_id": np.int64},
    _BETA: {"flow_id": np.int64},
    _CLAIM: {"node": np.int64, "claims": np.int64},
    _CANCEL: {"coflow_id": np.int64, "n_flows": np.int64},
    _CAPACITY: {"side": np.int64, "port": np.int64, "capacity": np.float64},
    _ORDER: {"coflow_id": np.int64, "gamma": np.float64, "p": np.float64},
}

_STREAM_NAME = {
    _DECISION: "decision", _JUMP: "jump", _RATES: "rates",
    _ARRIVAL: "arrival", _FLOW_DONE: "flow_done", _COFLOW_DONE: "coflow_done",
    _BETA: "beta", _CLAIM: "core_claim", _CANCEL: "cancel",
    _CAPACITY: "capacity", _MISC: "misc", _ORDER: "order",
}

#: Trace-record kind decoded from each stream (``beta``/``order`` decode
#: one record per *batch*; the per-row streams decode one record per row).
_RECORD_KIND = {
    _DECISION: "decision", _JUMP: "jump", _RATES: "rates",
    _ARRIVAL: "arrival", _FLOW_DONE: "completion",
    _COFLOW_DONE: "completion", _BETA: "beta", _CLAIM: "core_claim",
    _CANCEL: "cancel", _CAPACITY: "capacity", _ORDER: "order",
}

#: Streams whose whole batch decodes to a single record.
_BATCH_RECORD = frozenset({_BETA, _ORDER})

_SIDES = ("ingress", "egress")


class _Columns:
    """A set of growable, same-length column buffers with a live head.

    ``head`` marks the first live row (ring-mode drops advance it); rows
    ``[head, n)`` are live.  Growth doubles; when the dead prefix would
    cover the shortfall, the live region is compacted to the front
    instead (the owner is told the shift so it can rebase row indices).
    """

    __slots__ = ("cols", "n", "head")

    def __init__(self, layout: Mapping[str, type], cap: int = 0):
        self.cols = {
            name: np.empty(cap, dtype=dt) for name, dt in layout.items()
        }
        self.n = 0
        self.head = 0

    @property
    def live(self) -> int:
        return self.n - self.head

    def ensure(self, extra: int) -> int:
        """Make room for ``extra`` rows; returns the compaction shift."""
        cap = next(iter(self.cols.values())).size if self.cols else 0
        if self.n + extra <= cap:
            return 0
        shift = 0
        if self.head and self.live + extra <= cap:
            shift = self.head
            for name, arr in self.cols.items():
                arr[: self.live] = arr[self.head: self.n]
            self.n -= shift
            self.head = 0
        else:
            new_cap = max(64, cap * 2, self.live + extra)
            shift = self.head
            for name, arr in self.cols.items():
                grown = np.empty(new_cap, dtype=arr.dtype)
                grown[: self.live] = arr[self.head: self.n]
                self.cols[name] = grown
            self.n -= shift
            self.head = 0
        return shift

    def nbytes(self) -> int:
        return sum(arr.nbytes for arr in self.cols.values())


class FlightRecorder:
    """Batch-native trace sink with lossless decode to ``TraceRecord``.

    Parameters
    ----------
    keep_last:
        Ring-buffer mode: keep only the newest ``keep_last`` batches
        (one engine hook-site append = one batch).  ``None`` keeps
        everything.

    The engine-facing ``add_*`` methods append one batch each; the
    Tracer-compatible :meth:`emit` journals a single per-record event for
    kinds without a columnar stream.  Iterating the recorder (or calling
    :meth:`to_tracer`) decodes the stream in emission order.
    """

    __slots__ = (
        "enabled", "dropped_records", "dropped_batches", "_keep_last",
        "_streams", "_journal", "_misc", "_misc_head",
    )

    def __init__(self, keep_last: Optional[int] = None):
        if keep_last is not None and keep_last <= 0:
            raise ValueError(f"keep_last must be positive, got {keep_last}")
        self.enabled = True
        self.dropped_records = 0
        self.dropped_batches = 0
        self._keep_last = keep_last
        self._streams = {
            code: _Columns(layout) for code, layout in _LAYOUT.items()
        }
        self._journal = _Columns(
            {"stream": np.int64, "t": np.float64,
             "start": np.int64, "count": np.int64}
        )
        self._misc: List[TraceRecord] = []
        self._misc_head = 0

    # ------------------------------------------------------------- appends
    def _journal_batch(self, code: int, t: float, start: int, count: int) -> None:
        jl = self._journal
        jl.ensure(1)
        jc = jl.cols
        jc["stream"][jl.n] = code
        jc["t"][jl.n] = t
        jc["start"][jl.n] = start
        jc["count"][jl.n] = count
        jl.n += 1
        if self._keep_last is not None:
            while jl.live > self._keep_last:
                self._drop_oldest_batch()

    def _drop_oldest_batch(self) -> None:
        jl = self._journal
        jc = jl.cols
        i = jl.head
        code = int(jc["stream"][i])
        count = int(jc["count"][i])
        end = int(jc["start"][i]) + count
        if code == _MISC:
            self._misc_head = end
            if self._misc_head >= 1024:
                del self._misc[: self._misc_head]
                self._rebase_journal(_MISC, self._misc_head)
                self._misc_head = 0
        else:
            self._streams[code].head = end
        jl.head += 1
        self.dropped_batches += 1
        self.dropped_records += 1 if code in _BATCH_RECORD else count

    def _rebase_journal(self, code: int, shift: int) -> None:
        """Subtract ``shift`` from the starts of every live batch of a
        stream (after its buffer was compacted to the front)."""
        jl = self._journal
        jc = jl.cols
        live_stream = jc["stream"][jl.head: jl.n]
        live_start = jc["start"][jl.head: jl.n]
        live_start[live_stream == code] -= shift

    def _rows(self, code: int, t: float, count: int) -> Dict[str, np.ndarray]:
        """Reserve ``count`` rows in a stream; journal them; return views."""
        st = self._streams[code]
        shift = st.ensure(count)
        if shift:
            self._rebase_journal(code, shift)
        a, b = st.n, st.n + count
        views = {name: arr[a:b] for name, arr in st.cols.items()}
        st.n = b
        self._journal_batch(code, t, a, count)
        return views

    def add_decision(self, t, kinds, n_flows, n_coflows) -> None:
        row = self._rows(_DECISION, float(t), 1)
        row["kinds"][0] = _kinds_to_mask(kinds)
        row["n_flows"][0] = n_flows
        row["n_coflows"][0] = n_coflows

    def add_jump(self, t, n_slices, kinds) -> None:
        row = self._rows(_JUMP, float(t), 1)
        row["n_slices"][0] = n_slices
        row["kinds"][0] = _kinds_to_mask(kinds)

    def add_rates(self, t, n_tx, total, max_rate) -> None:
        row = self._rows(_RATES, float(t), 1)
        row["n_tx"][0] = n_tx
        row["total"][0] = total
        row["max"][0] = max_rate

    def add_arrivals(self, t, coflow_ids, n_flows) -> None:
        """One arrival batch: per-coflow id and width columns."""
        k = len(coflow_ids)
        if k == 0:
            return
        rows = self._rows(_ARRIVAL, float(t), k)
        rows["coflow_id"][:] = coflow_ids
        rows["n_flows"][:] = n_flows

    def add_flow_completions(self, t, flow_ids, coflow_ids) -> None:
        """One retirement batch: every flow that finished at ``t``."""
        k = len(flow_ids)
        if k == 0:
            return
        rows = self._rows(_FLOW_DONE, float(t), k)
        rows["flow_id"][:] = flow_ids
        rows["coflow_id"][:] = coflow_ids

    def add_coflow_completions(self, t, coflow_ids) -> None:
        k = len(coflow_ids)
        if k == 0:
            return
        rows = self._rows(_COFLOW_DONE, float(t), k)
        rows["coflow_id"][:] = coflow_ids

    def add_beta(self, t, flow_ids) -> None:
        """The flows granted compression this window (one record)."""
        k = len(flow_ids)
        if k == 0:
            return
        rows = self._rows(_BETA, float(t), k)
        rows["flow_id"][:] = flow_ids

    def add_order(self, t, coflow_ids, gammas, ps) -> None:
        """FVDF's ranked unit order for one decision (one record).

        Rows arrive in ranking order; the decoded record carries the
        legacy ``units`` payload (``[coflow_id, gamma, p, gamma/p]`` per
        unit, the key recomputed from the stored columns).

        Unlike the per-row streams there is deliberately no ``k == 0``
        early return: the legacy tracer emits an ``order`` record even
        when no units are rankable, so an empty batch must journal (and
        decode to ``units=[]``) to keep the streams record-for-record
        identical.  Ring drops and buffer compaction must treat these
        zero-row batches like any other (their ``start`` sits on the
        dead/live boundary and still gets rebased).
        """
        k = len(coflow_ids)
        rows = self._rows(_ORDER, float(t), k)
        rows["coflow_id"][:] = coflow_ids
        rows["gamma"][:] = gammas
        rows["p"][:] = ps

    def add_core_claims(self, t, nodes, claims) -> None:
        k = len(nodes)
        if k == 0:
            return
        rows = self._rows(_CLAIM, float(t), k)
        rows["node"][:] = nodes
        rows["claims"][:] = claims

    def add_cancel(self, t, coflow_id, n_flows) -> None:
        row = self._rows(_CANCEL, float(t), 1)
        row["coflow_id"][0] = coflow_id
        row["n_flows"][0] = n_flows

    def add_capacity(self, t, side, port, capacity) -> None:
        row = self._rows(_CAPACITY, float(t), 1)
        row["side"][0] = _SIDES.index(side)
        row["port"][0] = port
        row["capacity"][0] = capacity

    # Tracer-compatible fallback for kinds without a columnar stream
    # (scheduler orderings, bus traffic, heartbeats — per-decision scale).
    def emit(self, t: float, kind: str, **data: Any) -> None:
        if not self.enabled:
            return
        self._misc.append(TraceRecord(t=float(t), kind=kind, data=data))
        self._journal_batch(_MISC, float(t), len(self._misc) - 1, 1)

    def clear(self) -> None:
        """Drop every buffered batch (buffers stay allocated)."""
        for st in self._streams.values():
            st.n = st.head = 0
        self._journal.n = self._journal.head = 0
        self._misc.clear()
        self._misc_head = 0

    # -------------------------------------------------------------- decode
    def __iter__(self) -> Iterator[TraceRecord]:
        """Decode the live batches back into the legacy record stream."""
        jl = self._journal
        jc = jl.cols
        for i in range(jl.head, jl.n):
            code = int(jc["stream"][i])
            t = float(jc["t"][i])
            a = int(jc["start"][i])
            b = a + int(jc["count"][i])
            if code == _MISC:
                yield self._misc[a]
                continue
            cols = self._streams[code].cols
            if code == _DECISION:
                yield TraceRecord(t, "decision", {
                    "kinds": _mask_to_kinds(int(cols["kinds"][a])),
                    "n_flows": int(cols["n_flows"][a]),
                    "n_coflows": int(cols["n_coflows"][a]),
                })
            elif code == _JUMP:
                yield TraceRecord(t, "jump", {
                    "n_slices": int(cols["n_slices"][a]),
                    "kinds": _mask_to_kinds(int(cols["kinds"][a])),
                })
            elif code == _RATES:
                yield TraceRecord(t, "rates", {
                    "n_tx": int(cols["n_tx"][a]),
                    "total": float(cols["total"][a]),
                    "max": float(cols["max"][a]),
                })
            elif code == _ARRIVAL:
                ids, widths = cols["coflow_id"], cols["n_flows"]
                for j in range(a, b):
                    yield TraceRecord(t, "arrival", {
                        "coflow_id": int(ids[j]), "n_flows": int(widths[j]),
                    })
            elif code == _FLOW_DONE:
                fids, cids = cols["flow_id"], cols["coflow_id"]
                for j in range(a, b):
                    yield TraceRecord(t, "completion", {
                        "flow_id": int(fids[j]), "coflow_id": int(cids[j]),
                    })
            elif code == _COFLOW_DONE:
                ids = cols["coflow_id"]
                for j in range(a, b):
                    yield TraceRecord(t, "completion", {
                        "coflow_id": int(ids[j]),
                    })
            elif code == _BETA:
                yield TraceRecord(t, "beta", {
                    "flow_ids": cols["flow_id"][a:b].tolist(),
                })
            elif code == _ORDER:
                cids, g, p = cols["coflow_id"], cols["gamma"], cols["p"]
                yield TraceRecord(t, "order", {
                    "units": [
                        [int(cids[j]), float(g[j]), float(p[j]),
                         float(g[j] / p[j])]
                        for j in range(a, b)
                    ],
                })
            elif code == _CLAIM:
                nodes, claims = cols["node"], cols["claims"]
                for j in range(a, b):
                    yield TraceRecord(t, "core_claim", {
                        "node": int(nodes[j]), "claims": int(claims[j]),
                    })
            elif code == _CANCEL:
                yield TraceRecord(t, "cancel", {
                    "coflow_id": int(cols["coflow_id"][a]),
                    "n_flows": int(cols["n_flows"][a]),
                })
            elif code == _CAPACITY:
                yield TraceRecord(t, "capacity", {
                    "side": _SIDES[int(cols["side"][a])],
                    "port": int(cols["port"][a]),
                    "capacity": float(cols["capacity"][a]),
                })

    def to_tracer(self) -> Tracer:
        """A legacy :class:`Tracer` preloaded with the decoded stream."""
        tr = Tracer()
        tr.records = list(self)
        tr.dropped = self.dropped_records
        return tr

    # ----------------------------------------------------------- inspection
    def __len__(self) -> int:
        """Decoded record count of the live region (no decoding done)."""
        return sum(self.counts().values())

    @property
    def batches(self) -> int:
        """Live batch count (journal rows)."""
        return self._journal.live

    def counts(self) -> Dict[str, int]:
        """Decoded record count per kind, computed from the journal."""
        jl = self._journal
        jc = jl.cols
        stream = jc["stream"][jl.head: jl.n]
        count = jc["count"][jl.head: jl.n]
        out: Dict[str, int] = {}
        for code, kind in _RECORD_KIND.items():
            mask = stream == code
            if not mask.any():
                continue
            n = int(np.count_nonzero(mask)) if code in _BATCH_RECORD else int(
                count[mask].sum()
            )
            out[kind] = out.get(kind, 0) + n
        for idx in np.nonzero(stream == _MISC)[0]:
            kind = self._misc[int(jc["start"][jl.head + idx])].kind
            out[kind] = out.get(kind, 0) + 1
        return out

    def nbytes(self) -> int:
        """Allocated column-buffer bytes (journal included)."""
        return self._journal.nbytes() + sum(
            st.nbytes() for st in self._streams.values()
        )

    def summary(self) -> Dict[str, Any]:
        """Compact telemetry summary (no decoding)."""
        return {
            "records": len(self),
            "batches": self.batches,
            "dropped_records": self.dropped_records,
            "dropped_batches": self.dropped_batches,
            "nbytes": self.nbytes(),
            "counts": self.counts(),
        }

    # --------------------------------------------------------------- export
    def dump_jsonl(self, dest: Union[str, IO[str]]) -> int:
        """Write the decoded stream as JSON lines (Tracer format)."""
        if hasattr(dest, "write"):
            return Tracer._write(dest, self)  # type: ignore[arg-type]
        with open(dest, "w", encoding="utf-8") as fh:
            return Tracer._write(fh, self)

    def save_npz(self, path) -> None:
        """Spill every live column to one ``.npz`` (no pickling).

        Only the live region is written; ring-dropped batches are gone.
        Fallback records are stored as JSON lines (their decoded payloads
        carry JSON types after a reload, exactly as in ``dump_jsonl``).
        """
        jl = self._journal
        arrays: Dict[str, np.ndarray] = {
            "meta.dropped": np.asarray(
                [self.dropped_records, self.dropped_batches], dtype=np.int64
            ),
        }
        heads = np.zeros(len(_STREAM_NAME), dtype=np.int64)
        for code, st in self._streams.items():
            heads[code] = st.head
            for name, arr in st.cols.items():
                arrays[f"{_STREAM_NAME[code]}.{name}"] = arr[st.head: st.n]
        heads[_MISC] = self._misc_head
        arrays["misc.json"] = np.asarray(
            [record_to_json(r) for r in self._misc[self._misc_head:]],
            dtype=str,
        )
        stream = jl.cols["stream"][jl.head: jl.n]
        start = jl.cols["start"][jl.head: jl.n] - heads[stream]
        arrays["journal.stream"] = stream
        arrays["journal.t"] = jl.cols["t"][jl.head: jl.n]
        arrays["journal.start"] = start
        arrays["journal.count"] = jl.cols["count"][jl.head: jl.n]
        np.savez_compressed(path, **arrays)

    def spill_npz(self, path) -> int:
        """Save the live batches to ``path`` and clear the buffers.

        Returns the number of records spilled — chunked export for
        unbounded runs: spill every N batches, concatenate offline.
        """
        n = len(self)
        self.save_npz(path)
        self.clear()
        return n

    @classmethod
    def load_npz(cls, path) -> "FlightRecorder":
        """Restore a recorder saved by :meth:`save_npz`."""
        with np.load(path, allow_pickle=False) as data:
            rec = cls()
            dropped = data["meta.dropped"]
            rec.dropped_records = int(dropped[0])
            rec.dropped_batches = int(dropped[1])
            for code, st in rec._streams.items():
                prefix = _STREAM_NAME[code]
                n = None
                for name in st.cols:
                    arr = np.array(data[f"{prefix}.{name}"])
                    st.cols[name] = arr
                    n = arr.size
                st.n = n or 0
            rec._misc = [
                record_from_json(line) for line in data["misc.json"].tolist()
            ]
            jl = rec._journal
            jl.cols = {
                "stream": np.array(data["journal.stream"]),
                "t": np.array(data["journal.t"]),
                "start": np.array(data["journal.start"]),
                "count": np.array(data["journal.count"]),
            }
            jl.n = jl.cols["stream"].size
        return rec

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder records={len(self)} batches={self.batches} "
            f"dropped={self.dropped_records}>"
        )


class _NullFlightRecorder(FlightRecorder):
    """Permanently-disabled recorder; every append is a no-op."""

    def __init__(self):
        super().__init__()
        self.enabled = False

    def _rows(self, code, t, count):  # pragma: no cover - belt and braces
        raise RuntimeError("NULL_RECORDER cannot record")


#: Shared disabled recorder — the default wherever a recorder is accepted.
NULL_RECORDER = _NullFlightRecorder()
