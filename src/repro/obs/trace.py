"""Typed event tracing with JSONL export.

A :class:`Tracer` collects :class:`TraceRecord` instances — a simulated
timestamp, a record kind, and a flat payload dict.  Hook sites in the
engine and system layers guard every emission on :attr:`Tracer.enabled`,
so the disabled tracer (:data:`NULL_TRACER`) costs one attribute check and
nothing else.

Record kinds (the schema is documented in ``docs/observability.md``):

======================  ====================================================
kind                    payload
======================  ====================================================
``decision``            ``kinds`` (trigger kinds), ``n_flows``, ``n_coflows``
``jump``                ``n_slices``, ``kinds`` (what bounded the horizon)
``order``               ``units``: ranked ``[coflow_id, gamma, p, key]``
``rates``               ``n_tx``, ``total``, ``max`` of the rate vector
``beta``                ``flow_ids`` granted compression this window
``core_claim``          ``node``, ``claims`` per-node core claims
``arrival``             ``coflow_id``, ``n_flows``
``completion``          ``coflow_id`` (coflow done) / ``flow_id`` (flow done)
``cancel``              ``coflow_id``, ``n_flows`` aborted
``capacity``            ``side``, ``port``, ``capacity``
``bus``                 ``topic`` of a published message
``master_order``        master's ranked ``coflow_ids`` for a scheduling()
``heartbeat``           daemon measurement: ``node``, ``free_cores``
======================  ====================================================

Timestamps are simulated seconds (engine records) or ``-1`` for records
emitted outside simulated time (e.g. master RPCs driven by a test).
"""

from __future__ import annotations

import json
from enum import Enum
from typing import Any, Callable, Dict, IO, Iterable, Iterator, List, NamedTuple, Optional, Set, Union

__all__ = ["NULL_TRACER", "TraceRecord", "Tracer", "record_to_json", "record_from_json"]


class TraceRecord(NamedTuple):
    """One traced event: when, what, and the typed payload."""

    t: float
    kind: str
    data: Dict[str, Any]


def _jsonable(value: Any) -> Any:
    """Coerce payload values to JSON-stable types (EventKind sets → names)."""
    if isinstance(value, Enum):
        return value.name
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return value


def record_to_json(record: TraceRecord) -> str:
    """Serialise one record to a single JSON line."""
    payload = {"t": record.t, "kind": record.kind}
    payload.update(_jsonable(record.data))
    return json.dumps(payload, separators=(",", ":"))


def record_from_json(line: str) -> TraceRecord:
    """Parse one JSONL line back into a :class:`TraceRecord`."""
    obj = json.loads(line)
    t = float(obj.pop("t"))
    kind = str(obj.pop("kind"))
    return TraceRecord(t=t, kind=kind, data=obj)


class Tracer:
    """Collects trace records in order; exports them as JSONL.

    Parameters
    ----------
    limit:
        Maximum records kept (oldest beyond the limit are dropped and
        counted in :attr:`dropped`); ``None`` keeps everything.
    sink:
        Optional callable invoked with every record as it is emitted —
        lets a caller stream records to disk instead of buffering.
    """

    __slots__ = ("enabled", "records", "dropped", "_limit", "_sink")

    def __init__(
        self,
        limit: Optional[int] = None,
        sink: Optional[Callable[[TraceRecord], None]] = None,
    ):
        self.enabled = True
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._limit = limit
        self._sink = sink

    # ------------------------------------------------------------- emission
    def emit(self, t: float, kind: str, **data: Any) -> None:
        """Record one event.  Call sites must guard on :attr:`enabled` so a
        disabled tracer never pays for payload construction."""
        if not self.enabled:
            return
        rec = TraceRecord(t=float(t), kind=kind, data=data)
        if self._sink is not None:
            self._sink(rec)
        self.records.append(rec)
        if self._limit is not None and len(self.records) > self._limit:
            del self.records[0]
            self.dropped += 1

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    # ------------------------------------------------------------ inspection
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in emission order."""
        return [r for r in self.records if r.kind == kind]

    def kinds_at(self, t: float, tol: float = 1e-9) -> Set[str]:
        """Record kinds observed at simulated instant ``t`` (± ``tol``)."""
        return {r.kind for r in self.records if abs(r.t - t) <= tol}

    def counts(self) -> Dict[str, int]:
        """Record count per kind."""
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    # --------------------------------------------------------------- export
    def dump_jsonl(self, dest: Union[str, IO[str]]) -> int:
        """Write all buffered records as JSON lines; returns the count."""
        if hasattr(dest, "write"):
            return self._write(dest, self.records)  # type: ignore[arg-type]
        with open(dest, "w", encoding="utf-8") as fh:
            return self._write(fh, self.records)

    @staticmethod
    def _write(fh: IO[str], records: Iterable[TraceRecord]) -> int:
        n = 0
        for rec in records:
            fh.write(record_to_json(rec))
            fh.write("\n")
            n += 1
        return n


class _NullTracer(Tracer):
    """Permanently-disabled tracer; :meth:`emit` is a no-op."""

    def __init__(self):
        super().__init__()
        self.enabled = False

    def emit(self, t: float, kind: str, **data: Any) -> None:  # pragma: no cover
        return None


#: Shared disabled tracer — the default wherever a tracer is accepted.
NULL_TRACER = _NullTracer()
