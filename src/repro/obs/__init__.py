"""Structured observability: tracing, metrics and profiling for the engine.

Debugging a vectorised discrete-event engine by print statements does not
scale: a single replay produces thousands of decision points, and the
interesting question is almost always *why* the scheduler was woken up and
*what* it decided — the trigger kinds, the Γ_C/P ordering, the β
assignments, the rate vector.  This package makes those observable as
typed records without touching the hot paths when disabled:

* :mod:`repro.obs.trace` — an event tracer emitting typed records with
  JSONL export (read back via :func:`repro.analysis.read_trace`);
* :mod:`repro.obs.recorder` — the columnar flight recorder: a batch-native
  trace sink that accepts whole event batches as ndarray columns, with
  lossless decode back to the legacy record stream (the fast way to trace
  a million-flow replay — see ``docs/observability.md``);
* :mod:`repro.obs.metrics` — counters, gauges and bucketed summary
  histograms (decision latency, slices fast-forwarded per jump, bus
  traffic …);
* :mod:`repro.obs.profile` — wall-clock profiling of named sections
  (``schedule`` and ``integrate`` hot paths);
* :mod:`repro.obs.window` — :class:`RollingWindow`, the fixed-capacity
  ring of per-tick counter deltas behind the streaming service's live
  rates (flows/s, bytes/s, restamps/s) and exact windowed tick-latency
  percentiles;
* :mod:`repro.obs.exposition` — the live telemetry plane: a stdlib
  ``http.server`` daemon thread exposing ``/metrics`` (Prometheus text
  exposition), ``/snapshot`` (``repro-live-v1`` JSON), ``/healthz`` and
  ``/readyz`` for a running ``repro serve``, plus the ``repro top``
  dashboard renderer.  Imported lazily (``from repro.obs.exposition
  import TelemetryPlane``) so engine imports stay free of the HTTP
  stack.

The components are bundled in an :class:`Observability` object that the
engine, the Swallow system layer and the cluster simulator all accept.  The
default is :data:`NULL_OBS`, whose components are permanently disabled;
every hook site guards on ``enabled`` before building a record, so a run
without observability pays only a predicate check per decision point
(guarded in ``benchmarks/bench_engine_microbench.py`` to stay under 5%).

Per-record emitters that are not on a per-flow hot path (scheduler
orderings, bus traffic, heartbeats) write to :attr:`Observability.events`,
which routes to the tracer, the recorder, or both — so a recorder-only run
still captures the full stream.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.recorder import NULL_RECORDER, FlightRecorder
from repro.obs.trace import NULL_TRACER, TraceRecord, Tracer
from repro.obs.window import RollingWindow

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_PROFILER",
    "NULL_RECORDER",
    "NULL_TRACER",
    "Observability",
    "Profiler",
    "RollingWindow",
    "TraceRecord",
    "Tracer",
]


class _Tee:
    """Per-record fan-out to both the tracer and the recorder's fallback."""

    __slots__ = ("enabled", "_tracer", "_recorder")

    def __init__(self, tracer: Tracer, recorder: FlightRecorder):
        self.enabled = True
        self._tracer = tracer
        self._recorder = recorder

    def emit(self, t, kind, **data):
        self._tracer.emit(t, kind, **data)
        self._recorder.emit(t, kind, **data)


class Observability:
    """Bundle of tracer + recorder + metrics + profiler handed through
    the stack.

    Parameters
    ----------
    trace:
        Record typed events per record (decision points, arrivals, Γ
        orderings …).  Forces the engine's batched retirement path to
        materialize per-flow records — prefer ``record`` on large runs.
    metrics:
        Maintain counters/gauges/histograms.  Metrics are cheap enough to
        stay on even when tracing is off.
    profile:
        Time the ``schedule``/``integrate`` hot sections.
    record:
        Attach a columnar :class:`~repro.obs.recorder.FlightRecorder`:
        the engine hands it vectorized event batches, keeping the hot
        path columnar; decode with ``iter(obs.recorder)`` or
        ``obs.recorder.to_tracer()``.
    keep_last:
        Ring-buffer depth (in batches) for the recorder; ``None`` keeps
        everything.  Only meaningful with ``record=True``.
    """

    __slots__ = ("tracer", "recorder", "metrics", "profiler", "_events")

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        profile: bool = False,
        record: bool = False,
        keep_last=None,
    ):
        self.tracer = Tracer() if trace else NULL_TRACER
        self.recorder = (
            FlightRecorder(keep_last=keep_last) if record else NULL_RECORDER
        )
        self.metrics = MetricsRegistry(enabled=metrics)
        self.profiler = Profiler() if profile else NULL_PROFILER
        self._events = None

    @property
    def events(self):
        """The per-record sink for non-hot-path emitters.

        Routes to the tracer, the recorder's Tracer-compatible fallback,
        or a tee over both — whichever are enabled.  Hook sites guard on
        ``obs.events.enabled`` exactly as they would on a tracer.
        """
        if self._events is None:
            if self.tracer.enabled and self.recorder.enabled:
                self._events = _Tee(self.tracer, self.recorder)
            elif self.recorder.enabled:
                self._events = self.recorder
            else:
                self._events = self.tracer
        return self._events

    @property
    def enabled(self) -> bool:
        """Whether any component would record anything."""
        return (
            self.tracer.enabled
            or self.recorder.enabled
            or self.metrics.enabled
            or self.profiler.enabled
        )

    def __repr__(self) -> str:
        return (
            f"<Observability trace={self.tracer.enabled} "
            f"record={self.recorder.enabled} "
            f"metrics={self.metrics.enabled} profile={self.profiler.enabled}>"
        )


class _NullObservability(Observability):
    """The do-nothing default: every component permanently disabled."""

    def __init__(self):
        self.tracer = NULL_TRACER
        self.recorder = NULL_RECORDER
        self.metrics = MetricsRegistry(enabled=False)
        self.profiler = NULL_PROFILER
        self._events = NULL_TRACER


#: Shared disabled instance — the default everywhere an ``obs`` is accepted.
NULL_OBS = _NullObservability()
