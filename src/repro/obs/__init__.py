"""Structured observability: tracing, metrics and profiling for the engine.

Debugging a vectorised discrete-event engine by print statements does not
scale: a single replay produces thousands of decision points, and the
interesting question is almost always *why* the scheduler was woken up and
*what* it decided — the trigger kinds, the Γ_C/P ordering, the β
assignments, the rate vector.  This package makes those observable as
typed records without touching the hot paths when disabled:

* :mod:`repro.obs.trace` — an event tracer emitting typed records with
  JSONL export (read back via :func:`repro.analysis.read_trace`);
* :mod:`repro.obs.metrics` — counters, gauges and summary histograms
  (decision latency, slices fast-forwarded per jump, bus traffic …);
* :mod:`repro.obs.profile` — wall-clock profiling of named sections
  (``schedule`` and ``integrate`` hot paths).

The three are bundled in an :class:`Observability` object that the engine,
the Swallow system layer and the cluster simulator all accept.  The default
is :data:`NULL_OBS`, whose components are permanently disabled; every hook
site guards on ``enabled`` before building a record, so a run without
observability pays only a predicate check per decision point (guarded in
``benchmarks/bench_engine_microbench.py`` to stay under 5%).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_PROFILER",
    "NULL_TRACER",
    "Observability",
    "Profiler",
    "TraceRecord",
    "Tracer",
]


class Observability:
    """Bundle of tracer + metrics + profiler handed through the stack.

    Parameters
    ----------
    trace:
        Record typed events (decision points, arrivals, Γ orderings …).
    metrics:
        Maintain counters/gauges/histograms.  Metrics are cheap enough to
        stay on even when tracing is off.
    profile:
        Time the ``schedule``/``integrate`` hot sections.
    """

    __slots__ = ("tracer", "metrics", "profiler")

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        profile: bool = False,
    ):
        self.tracer = Tracer() if trace else NULL_TRACER
        self.metrics = MetricsRegistry(enabled=metrics)
        self.profiler = Profiler() if profile else NULL_PROFILER

    @property
    def enabled(self) -> bool:
        """Whether any component would record anything."""
        return (
            self.tracer.enabled
            or self.metrics.enabled
            or self.profiler.enabled
        )

    def __repr__(self) -> str:
        return (
            f"<Observability trace={self.tracer.enabled} "
            f"metrics={self.metrics.enabled} profile={self.profiler.enabled}>"
        )


class _NullObservability(Observability):
    """The do-nothing default: every component permanently disabled."""

    def __init__(self):
        self.tracer = NULL_TRACER
        self.metrics = MetricsRegistry(enabled=False)
        self.profiler = NULL_PROFILER


#: Shared disabled instance — the default everywhere an ``obs`` is accepted.
NULL_OBS = _NullObservability()
