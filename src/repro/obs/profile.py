"""Wall-clock profiling of named code sections.

Meant for the two hot paths the DESIGN performance notes call out —
``Scheduler.schedule()`` and the engine's volume integration — but any
section name works::

    prof = Profiler()
    with prof.section("schedule"):
        alloc = scheduler.schedule(view)
    print(prof.report())

The disabled profiler (:data:`NULL_PROFILER`) returns a shared no-op
context manager, so instrumented code costs one attribute check per block
when profiling is off.  The engine additionally guards its ``section``
calls on :attr:`Profiler.enabled` to keep the disabled path free of any
context-manager overhead.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Tuple

__all__ = ["NULL_PROFILER", "Profiler", "SectionStats"]


class SectionStats:
    """Aggregate wall-clock time of one named section."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Section:
    """Context manager timing one entry into a section."""

    __slots__ = ("_stats", "_t0")

    def __init__(self, stats: SectionStats):
        self._stats = stats
        self._t0 = 0.0

    def __enter__(self) -> "_Section":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._stats.add(time.perf_counter() - self._t0)


class _NullSection:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_SECTION = _NullSection()


class Profiler:
    """Accumulates per-section wall-clock statistics."""

    __slots__ = ("enabled", "_sections")

    def __init__(self) -> None:
        self.enabled = True
        self._sections: Dict[str, SectionStats] = {}

    def section(self, name: str):
        """Context manager timing one pass through ``name``."""
        if not self.enabled:
            return _NULL_SECTION
        return _Section(self._stats_for(name))

    def add(self, name: str, elapsed: float) -> None:
        """Record an externally-measured duration against ``name`` —
        for call sites that already hold a ``perf_counter`` delta."""
        if self.enabled:
            self._stats_for(name).add(elapsed)

    def _stats_for(self, name: str) -> SectionStats:
        stats = self._sections.get(name)
        if stats is None:
            stats = SectionStats(name)
            self._sections[name] = stats
        return stats

    def stats(self, name: str) -> SectionStats:
        """Stats for ``name`` (zeroed entry if never entered)."""
        return self._sections.get(name) or SectionStats(name)

    def items(self) -> List[Tuple[str, SectionStats]]:
        """(name, stats) pairs, most total time first."""
        return sorted(
            self._sections.items(), key=lambda kv: kv[1].total, reverse=True
        )

    def report(self) -> str:
        """Tabular summary, one section per line."""
        if not self._sections:
            return "(no sections profiled)"
        lines = [
            f"{'section':<20} {'calls':>8} {'total s':>10} {'mean ms':>10} {'max ms':>10}"
        ]
        for name, s in self.items():
            lines.append(
                f"{name:<20} {s.count:>8} {s.total:>10.4f} "
                f"{s.mean * 1e3:>10.4f} {s.max * 1e3:>10.4f}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self._sections.clear()


class _NullProfiler(Profiler):
    """Permanently-disabled profiler."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def section(self, name: str):  # pragma: no cover
        return _NULL_SECTION


#: Shared disabled profiler — the default wherever a profiler is accepted.
NULL_PROFILER = _NullProfiler()
