"""Unbounded, resumable coflow arrival sources for the streaming service.

A batch experiment materialises its whole workload up front; a service
cannot.  :class:`ArrivalSource` is a pull-based iterator over coflows in
arrival order with one-coflow lookahead (:meth:`~ArrivalSource.peek`
returns the next arrival time without consuming it), so the driver can
admit everything inside its horizon and leave the rest for later ticks.

Two concrete sources:

* :class:`SyntheticSource` — seeded generator mirroring
  :func:`repro.traces.generator.generate_workload` per-coflow construction
  (log-uniform widths, configurable size distribution, uniform ports) with
  three inter-arrival modes: ``steady`` (Poisson), ``bursty`` (two-state
  on/off rate modulation) and ``diurnal`` (sinusoidal rate).
* :class:`JsonlSource` — one JSON object per line from a file or stdin.

Both expose ``state()``/``seek(state)`` so a checkpoint can record a
compact cursor and resume the stream exactly where it left off.

Sources also vend whole *admission blocks*: :meth:`ArrivalSource.
pop_block` drains every coflow inside a horizon (subject to a flow
budget) into one :class:`~repro.core.ingest.CoflowBlock`.  The concrete
sources override it to emit raw columns — the synthetic generator fills
columns straight from its rng draws, the JSONL reader parses records to
columns via :func:`repro.traces.io.coflow_json_to_columns` — so the
steady-state streaming path never constructs ``Flow``/``Coflow`` objects.
Ids are reserved from the same global counters in the same per-coflow
order, so a blocked stream is bit-identical (ids included) to the same
stream popped one object at a time.
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Optional, Tuple, Union

import numpy as np

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.ingest import BlockBuilder, CoflowBlock
from repro.errors import ConfigurationError
from repro.traces.distributions import SizeDistribution, spark_flow_sizes
from repro.traces.io import coflow_json_to_columns

_MODES = ("steady", "bursty", "diurnal")


@dataclass(frozen=True)
class SourceSpec:
    """Declarative description of an arrival source.

    A spec (rather than a live source) is what goes into cache digests and
    checkpoints: it is hashable/serialisable, and :meth:`build` makes a
    fresh source from it deterministically.

    Parameters
    ----------
    kind:
        ``"synthetic"`` (seeded generator) or ``"jsonl"`` (file/stdin).
    rate:
        Mean coflow arrival rate in coflows/second (synthetic only).
    num_ports, width, size_dist, compressible_fraction, seed:
        Workload shape knobs, mirroring
        :class:`repro.traces.generator.WorkloadConfig`.
    mode:
        ``"steady"`` — Poisson arrivals at ``rate``;
        ``"bursty"`` — alternate burst phases (rate ×``burst_factor``) and
        calm phases, with a ``burst_fraction`` share of arrivals landing in
        bursts while the long-run mean rate stays ``rate``;
        ``"diurnal"`` — rate modulated by ``1 + depth·sin(2πt/period)``.
    limit:
        Stop after this many coflows (``None`` = unbounded).
    path:
        JSONL file path, or ``"-"`` for stdin (jsonl only).
    """

    kind: str = "synthetic"
    rate: float = 50.0
    num_ports: int = 16
    width: Union[int, Tuple[int, int]] = (1, 8)
    size_dist: SizeDistribution = field(default_factory=spark_flow_sizes)
    compressible_fraction: float = 1.0
    seed: int = 0
    mode: str = "steady"
    burst_factor: float = 8.0
    burst_fraction: float = 0.1
    period: float = 60.0
    depth: float = 0.8
    limit: Optional[int] = None
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("synthetic", "jsonl"):
            raise ConfigurationError(f"unknown source kind {self.kind!r}")
        if self.kind == "jsonl" and not self.path:
            raise ConfigurationError("jsonl source needs a path ('-' for stdin)")
        if self.mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")
        if self.burst_factor <= 1 or not 0 < self.burst_fraction < 1:
            raise ConfigurationError(
                "need burst_factor > 1 and burst_fraction in (0, 1); got "
                f"{self.burst_factor}, {self.burst_fraction}"
            )
        if self.period <= 0 or not 0 <= self.depth < 1:
            raise ConfigurationError(
                f"need period > 0 and depth in [0, 1); got {self.period}, {self.depth}"
            )
        if self.limit is not None and self.limit <= 0:
            raise ConfigurationError(f"limit must be positive, got {self.limit}")
        if isinstance(self.width, int):
            if self.width < 1:
                raise ConfigurationError("width must be >= 1")
        else:
            lo, hi = self.width
            if not (1 <= lo <= hi):
                raise ConfigurationError(f"bad width range {self.width}")

    def build(self) -> "ArrivalSource":
        """Instantiate a fresh source at the start of its stream."""
        if self.kind == "jsonl":
            return JsonlSource(self.path, limit=self.limit)
        return SyntheticSource(self)


class ArrivalSource:
    """Pull-based stream of coflows in non-decreasing arrival order.

    Subclasses implement :meth:`_next` returning the next coflow or
    ``None`` when the stream is exhausted, plus :meth:`_cursor` /
    :meth:`_seek_cursor` for resume; the base class provides the
    one-coflow lookahead buffer behind :meth:`peek`/:meth:`pop` and a
    :meth:`state` that always points *before* any buffered lookahead (the
    cursor is captured just before :meth:`_next` runs), so a restored
    source regenerates/rereads the buffered coflow identically.
    """

    def __init__(self) -> None:
        self._buffered: Optional[Coflow] = None
        self._pre_cursor: Optional[Dict[str, Any]] = None
        self._exhausted = False

    def _next(self) -> Optional[Coflow]:
        raise NotImplementedError

    def _cursor(self) -> Dict[str, Any]:
        raise NotImplementedError

    def _seek_cursor(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError

    def _fill(self) -> None:
        if self._buffered is None and not self._exhausted:
            cur = self._cursor()
            nxt = self._next()
            if nxt is None:
                self._exhausted = True
                self._pre_cursor = None
            else:
                self._buffered = nxt
                self._pre_cursor = cur

    def peek(self) -> Optional[float]:
        """Arrival time of the next coflow, or ``None`` if exhausted."""
        self._fill()
        return None if self._buffered is None else self._buffered.arrival

    def pop(self) -> Coflow:
        """Consume and return the next coflow (peek first)."""
        self._fill()
        if self._buffered is None:
            raise ConfigurationError("pop() on an exhausted arrival source")
        out, self._buffered = self._buffered, None
        self._pre_cursor = None
        return out

    def state(self) -> Dict[str, Any]:
        """Compact resumable cursor pointing before any buffered coflow."""
        if self._buffered is not None:
            assert self._pre_cursor is not None
            return dict(self._pre_cursor)
        return self._cursor()

    def seek(self, state: Dict[str, Any]) -> None:
        """Position a fresh source at a cursor from :meth:`state`."""
        if self._buffered is not None:
            raise ConfigurationError("seek() requires a fresh source")
        self._seek_cursor(state)

    def pop_block(
        self, horizon: float, flow_budget: Optional[int] = None
    ) -> Optional[CoflowBlock]:
        """Drain every coflow with ``arrival <= horizon`` into one block.

        The flow budget is checked *before* each pop, so the last coflow
        may overshoot it — exactly the driver's legacy admission rule.
        Returns ``None`` when nothing is due.  The base implementation
        pops objects; concrete sources override it to fill raw columns
        without materializing ``Flow``/``Coflow`` instances.
        """
        builder = BlockBuilder()
        while flow_budget is None or builder.n_flows < flow_budget:
            t = self.peek()
            if t is None or t > horizon:
                break
            builder.add_coflow(self.pop())
        return builder.build()


class SyntheticSource(ArrivalSource):
    """Seeded unbounded generator of coflows (see :class:`SourceSpec`)."""

    def __init__(self, spec: SourceSpec) -> None:
        if spec.kind != "synthetic":
            raise ConfigurationError("SyntheticSource needs a synthetic spec")
        super().__init__()
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)
        self._count = 0  # coflows emitted so far (cursor)
        self._clock = 0.0  # arrival time of the previous coflow
        # bursty-mode phase machine
        self._in_burst = False
        self._phase_left = 0

    # -- arrival-time processes ------------------------------------------

    def _gap_steady(self) -> float:
        return float(self._rng.exponential(1.0 / self.spec.rate))

    def _gap_bursty(self) -> float:
        s = self.spec
        if self._phase_left <= 0:
            # choose the next phase; phase lengths are geometric with mean
            # ~20 arrivals so bursts are sustained, not single-coflow blips.
            self._in_burst = bool(self._rng.random() < s.burst_fraction)
            self._phase_left = 1 + int(self._rng.geometric(1.0 / 20.0))
        self._phase_left -= 1
        if self._in_burst:
            rate = s.rate * s.burst_factor
        else:
            # calm-phase rate chosen so the long-run mean stays s.rate:
            # burst_fraction of arrivals at rate*factor, the rest here.
            calm = (1.0 - s.burst_fraction * s.burst_factor) / (1.0 - s.burst_fraction)
            rate = s.rate * max(calm, 0.05)
        return float(self._rng.exponential(1.0 / rate))

    def _gap_diurnal(self) -> float:
        s = self.spec
        inst = s.rate * (1.0 + s.depth * math.sin(2.0 * math.pi * self._clock / s.period))
        return float(self._rng.exponential(1.0 / max(inst, s.rate * (1.0 - s.depth) * 0.5)))

    def _next_raw(self) -> Optional[Dict[str, Any]]:
        """Draw the next coflow as raw columns (rng consumed, no ids drawn)."""
        s = self.spec
        if s.limit is not None and self._count >= s.limit:
            return None
        if self._count == 0:
            gap = 0.0  # first coflow arrives at t=0, like generate_workload
        elif s.mode == "steady":
            gap = self._gap_steady()
        elif s.mode == "bursty":
            gap = self._gap_bursty()
        else:
            gap = self._gap_diurnal()
        self._clock += gap
        rng = self._rng
        if isinstance(s.width, int):
            w = s.width
        else:
            lo, hi = s.width
            w = int(np.clip(int(math.exp(rng.uniform(math.log(lo), math.log(hi + 1)))), lo, hi))
        sizes = s.size_dist.sample(rng, w)
        srcs = rng.integers(0, s.num_ports, size=w)
        dsts = rng.integers(0, s.num_ports, size=w)
        compressible = rng.random(w) < s.compressible_fraction
        raw = {
            "arrival": self._clock,
            "label": f"cf{self._count}",
            "src": srcs,
            "dst": dsts,
            "size": sizes,
            "compressible": compressible,
        }
        self._count += 1
        return raw

    @staticmethod
    def _materialize(raw: Dict[str, Any]) -> Coflow:
        """Build the coflow object for one raw draw (ids drawn here, in
        the same order the columnar path reserves them: flows, then the
        coflow)."""
        w = int(raw["src"].size)
        flows = [
            Flow(
                src=int(raw["src"][j]),
                dst=int(raw["dst"][j]),
                size=float(raw["size"][j]),
                compressible=bool(raw["compressible"][j]),
            )
            for j in range(w)
        ]
        return Coflow(flows, arrival=raw["arrival"], label=raw["label"])

    def _next(self) -> Optional[Coflow]:
        raw = self._next_raw()
        return None if raw is None else self._materialize(raw)

    def pop_block(
        self, horizon: float, flow_budget: Optional[int] = None
    ) -> Optional[CoflowBlock]:
        builder = BlockBuilder()
        while flow_budget is None or builder.n_flows < flow_budget:
            if self._buffered is not None:
                # a peek() lookahead already materialized this coflow
                if self._buffered.arrival > horizon:
                    break
                builder.add_coflow(self.pop())
                continue
            if self._exhausted:
                break
            cur = self._cursor()
            raw = self._next_raw()
            if raw is None:
                self._exhausted = True
                self._pre_cursor = None
                break
            if raw["arrival"] > horizon:
                # overshoot: stash it for the next tick (materialized, so
                # peek()/state() keep their object-buffer contract)
                self._buffered = self._materialize(raw)
                self._pre_cursor = cur
                break
            builder.add_columns(
                raw["arrival"],
                raw["src"],
                raw["dst"],
                raw["size"],
                raw["compressible"],
                label=raw["label"],
            )
        return builder.build()

    def _cursor(self) -> Dict[str, Any]:
        return {
            "kind": "synthetic",
            "count": self._count,
            "clock": self._clock,
            "rng": self._rng.bit_generator.state,
            "in_burst": self._in_burst,
            "phase_left": self._phase_left,
            "exhausted": self._exhausted,
        }

    def _seek_cursor(self, state: Dict[str, Any]) -> None:
        if state.get("kind") != "synthetic":
            raise ConfigurationError(f"cursor kind {state.get('kind')!r} != synthetic")
        if self._count:
            raise ConfigurationError("seek() requires a fresh source")
        self._count = int(state["count"])
        self._clock = float(state["clock"])
        self._rng.bit_generator.state = state["rng"]
        self._in_burst = bool(state["in_burst"])
        self._phase_left = int(state["phase_left"])
        self._exhausted = bool(state["exhausted"])


def coflow_to_json(coflow: Coflow) -> Dict[str, Any]:
    """JSONL-line payload for a coflow (inverse of :func:`coflow_from_json`)."""
    rec: Dict[str, Any] = {
        "arrival": coflow.arrival,
        "flows": [
            {
                "src": f.src,
                "dst": f.dst,
                "size": f.size,
                **({} if f.compressible else {"compressible": False}),
                **(
                    {}
                    if f.ratio_override is None
                    else {"ratio_override": f.ratio_override}
                ),
            }
            for f in coflow.flows
        ],
    }
    if coflow.label:
        rec["label"] = coflow.label
    if coflow.deadline is not None:
        rec["deadline"] = coflow.deadline
    return rec


def coflow_from_json(rec: Dict[str, Any]) -> Coflow:
    """Build a coflow from one parsed JSONL record."""
    flows = [
        Flow(
            src=int(f["src"]),
            dst=int(f["dst"]),
            size=float(f["size"]),
            compressible=bool(f.get("compressible", True)),
            ratio_override=f.get("ratio_override"),
        )
        for f in rec["flows"]
    ]
    return Coflow(
        flows,
        arrival=float(rec.get("arrival", 0.0)),
        label=str(rec.get("label", "")),
        deadline=rec.get("deadline"),
    )


class JsonlSource(ArrivalSource):
    """Coflows from a JSONL file (or stdin with path ``"-"``).

    Each line is an object ``{"arrival": t, "label": ..., "deadline": ...,
    "flows": [{"src", "dst", "size", "compressible"?, "ratio_override"?}]}``.
    Lines must be in non-decreasing arrival order; blank lines are skipped.
    The cursor is the number of non-blank lines consumed, so ``seek`` on a
    file re-opens and skips — stdin cannot seek.
    """

    def __init__(self, path: str, limit: Optional[int] = None) -> None:
        super().__init__()
        self.path = path
        self.limit = limit
        self._lines = 0
        self._last_arrival = -math.inf
        if path == "-":
            self._fh: Optional[IO[str]] = sys.stdin
            self._owns = False
        else:
            self._fh = open(path, "r", encoding="utf-8")
            self._owns = True

    def _next_record(self) -> Optional[Dict[str, Any]]:
        """Parse the next non-blank line into a record dict (no objects)."""
        if self._fh is None:
            return None
        if self.limit is not None and self._lines >= self.limit:
            self._close()
            return None
        for line in self._fh:
            line = line.strip()
            if not line:
                continue
            self._lines += 1
            try:
                rec = json.loads(line)
                arrival = float(rec.get("arrival", 0.0))
            except (ValueError, KeyError, TypeError) as exc:
                raise ConfigurationError(
                    f"bad JSONL coflow on line {self._lines} of {self.path}: {exc}"
                ) from exc
            if arrival < self._last_arrival:
                raise ConfigurationError(
                    f"JSONL arrivals must be non-decreasing; line {self._lines} "
                    f"has arrival {arrival} after {self._last_arrival}"
                )
            self._last_arrival = arrival
            return rec
        self._close()
        return None

    def _next(self) -> Optional[Coflow]:
        rec = self._next_record()
        if rec is None:
            return None
        try:
            return coflow_from_json(rec)
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"bad JSONL coflow on line {self._lines} of {self.path}: {exc}"
            ) from exc

    def pop_block(
        self, horizon: float, flow_budget: Optional[int] = None
    ) -> Optional[CoflowBlock]:
        builder = BlockBuilder()
        while flow_budget is None or builder.n_flows < flow_budget:
            if self._buffered is not None:
                if self._buffered.arrival > horizon:
                    break
                builder.add_coflow(self.pop())
                continue
            if self._exhausted:
                break
            cur = self._cursor()
            rec = self._next_record()
            if rec is None:
                self._exhausted = True
                self._pre_cursor = None
                break
            try:
                cols = coflow_json_to_columns(rec)
            except (ValueError, KeyError, TypeError) as exc:
                raise ConfigurationError(
                    f"bad JSONL coflow on line {self._lines} of {self.path}: {exc}"
                ) from exc
            if cols["arrival"] > horizon:
                self._buffered = coflow_from_json(rec)
                self._pre_cursor = cur
                break
            builder.add_columns(
                cols["arrival"],
                cols["src"],
                cols["dst"],
                cols["size"],
                cols["compressible"],
                override=cols["override"],
                label=cols["label"],
                deadline=cols["deadline"],
            )
        return builder.build()

    def _close(self) -> None:
        if self._fh is not None and self._owns:
            self._fh.close()
        self._fh = None

    def _cursor(self) -> Dict[str, Any]:
        return {"kind": "jsonl", "lines": self._lines, "path": self.path}

    def _seek_cursor(self, state: Dict[str, Any]) -> None:
        if state.get("kind") != "jsonl":
            raise ConfigurationError(f"cursor kind {state.get('kind')!r} != jsonl")
        if self.path == "-":
            raise ConfigurationError("cannot seek a stdin JSONL source")
        if self._lines:
            raise ConfigurationError("seek() requires a fresh source")
        target = int(state["lines"])
        while self._lines < target:
            if self._next() is None:
                raise ConfigurationError(
                    f"JSONL cursor {target} beyond end of {self.path} ({self._lines} lines)"
                )
