"""Single-file checkpoints of a live streaming scheduler.

Format (``repro-checkpoint-v1``): one ``.npz`` holding

* every numeric engine column (``flow__*`` / ``cf__*`` keys) plus the
  index arrays (active set, retired rows, closed slots), the columnar
  arrival-calendar entries (``cal_time``/``cal_seq``/``cal_slot``) and
  per-port byte/capacity vectors — stored as plain arrays, loadable with
  ``allow_pickle=False``;
* one ``__pickle__`` entry (a ``uint8`` blob) carrying the Python-object
  side: the scheduler instance, labels/deadlines, the
  :class:`~repro.analysis.harness.ExperimentSetup` and
  :class:`~repro.service.arrivals.SourceSpec`, the arrival-source
  cursor, the driver's streaming stats, and the global flow/coflow id
  watermarks.  (Checkpoints written by older versions also carried the
  live :class:`~repro.core.coflow.Coflow` dataclasses; the engine's
  columns are now sufficient, and restore still accepts both layouts.)

Restore (:func:`restore_driver`) builds a fresh simulator from the
pickled setup + scheduler, loads the columns with
:meth:`~repro.core.simulator.SliceSimulator.import_state`, bumps the
global id counters past the watermarks, seeks a fresh arrival source to
the saved cursor and re-wraps everything in a
:class:`~repro.service.driver.StreamDriver`.  Continuing the restored
driver reproduces the uninterrupted run bit-for-bit (same arrivals, same
decision points, same results) because every random and temporal input
is part of the state.

Checkpoints use :mod:`pickle` for the object side — load them only from
paths you wrote yourself, like any pickle.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.core.coflow import coflow_id_watermark, ensure_coflow_ids_above
from repro.core.flow import ensure_flow_ids_above, flow_id_watermark
from repro.errors import CheckpointError, ConfigurationError
from repro.service.arrivals import ArrivalSource, SourceSpec

__all__ = [
    "CHECKPOINT_SCHEMA",
    "save_checkpoint",
    "load_checkpoint",
    "restore_simulator",
    "restore_driver",
]

#: Schema tag inside every checkpoint; bump on breaking layout changes.
CHECKPOINT_SCHEMA = "repro-checkpoint-v1"

#: export_state keys stored as top-level npz arrays (not in the blob).
#: ``cal_*`` are the columnar arrival-calendar entries (time/seq/slot);
#: checkpoints written before they existed restore via the engine's
#: slot-order calendar rebuild (`import_state` handles their absence).
_ARRAY_KEYS = (
    "active",
    "done_flows",
    "closed_slots",
    "ingress_bytes",
    "egress_bytes",
    "ingress_capacity",
    "egress_capacity",
    "cal_time",
    "cal_seq",
    "cal_slot",
)


def save_checkpoint(
    path,
    sim,
    *,
    setup=None,
    source: Optional[ArrivalSource] = None,
    source_spec: Optional[SourceSpec] = None,
    driver_state: Optional[Dict[str, Any]] = None,
) -> Path:
    """Snapshot a simulator (plus optional service context) to ``path``.

    ``setup`` is required to restore without caller-provided plumbing;
    ``source``/``source_spec`` record the arrival stream and its cursor.
    Raises :class:`ConfigurationError` for setups with background
    traffic — its closures are not checkpointable state — and
    :class:`CheckpointError` while scheduled capacity events are still
    pending: ``repro-checkpoint-v1`` does not guarantee a faithful
    restore of the capacity-event queue, and a snapshot that silently
    dropped (or re-ordered) pending events would diverge from the
    uninterrupted run.  Checkpoint before scheduling the events or after
    the engine has applied them.
    """
    if setup is not None and getattr(setup, "background", None) is not None:
        raise ConfigurationError(
            "cannot checkpoint a setup with background traffic"
        )
    pending_caps = len(getattr(sim, "_cap_events", ()) or ())
    if pending_caps:
        raise CheckpointError(
            f"cannot checkpoint with {pending_caps} pending capacity "
            f"event(s): {CHECKPOINT_SCHEMA} does not guarantee faithful "
            f"restore of the scheduled capacity-event queue — checkpoint "
            f"before scheduling capacity changes or after they apply"
        )
    state = sim.export_state()
    payload: Dict[str, np.ndarray] = {}
    for name, col in state["flow_cols"].items():
        payload[f"flow__{name}"] = col
    for name, col in state["cf_cols"].items():
        payload[f"cf__{name}"] = col
    for key in _ARRAY_KEYS:
        payload[key] = np.asarray(state[key])
    payload["priority_class"] = np.asarray(
        state["priority_class"], dtype=np.float64
    )
    blob = {
        "schema": CHECKPOINT_SCHEMA,
        "slice_len": state["slice_len"],
        "k": state["k"],
        "started": state["started"],
        "decision_points": state["decision_points"],
        "done_total": state["done_total"],
        "n": state["n"],
        "n_cf": state["n_cf"],
        "cancelled": state["cancelled"],
        "cap_events": state["cap_events"],
        "cf_labels": state["cf_labels"],
        "cf_deadlines": state["cf_deadlines"],
        "coflows": state.get("coflows"),
        "scheduler": state["scheduler"],
        "setup": setup,
        "source_spec": source_spec,
        "source_state": source.state() if source is not None else None,
        "driver_state": driver_state,
        "flow_id_watermark": flow_id_watermark(),
        "coflow_id_watermark": coflow_id_watermark(),
    }
    payload["__pickle__"] = np.frombuffer(
        pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(path) -> Dict[str, Any]:
    """Read a checkpoint into a dict: the ``import_state`` payload under
    ``"state"`` plus the service context (setup, source spec/cursor,
    driver state, id watermarks, schema) at the top level."""
    with np.load(Path(path), allow_pickle=False) as data:
        arrays = {key: data[key].copy() for key in data.files}
    blob = pickle.loads(arrays.pop("__pickle__").tobytes())
    if blob.get("schema") != CHECKPOINT_SCHEMA:
        raise ConfigurationError(
            f"unsupported checkpoint schema {blob.get('schema')!r} "
            f"(expected {CHECKPOINT_SCHEMA})"
        )
    state = {
        "slice_len": blob["slice_len"],
        "k": blob["k"],
        "started": blob["started"],
        "decision_points": blob["decision_points"],
        "done_total": blob["done_total"],
        "n": blob["n"],
        "n_cf": blob["n_cf"],
        "cancelled": blob["cancelled"],
        "cap_events": blob["cap_events"],
        "cf_labels": blob["cf_labels"],
        "cf_deadlines": blob["cf_deadlines"],
        "coflows": blob["coflows"],
        "scheduler": blob["scheduler"],
        "priority_class": arrays.pop("priority_class").tolist(),
        "flow_cols": {},
        "cf_cols": {},
    }
    for key, arr in arrays.items():
        if key.startswith("flow__"):
            state["flow_cols"][key[len("flow__"):]] = arr
        elif key.startswith("cf__"):
            state["cf_cols"][key[len("cf__"):]] = arr
        else:
            state[key] = arr
    return {
        "schema": blob["schema"],
        "state": state,
        "setup": blob["setup"],
        "source_spec": blob["source_spec"],
        "source_state": blob["source_state"],
        "driver_state": blob["driver_state"],
        "flow_id_watermark": blob["flow_id_watermark"],
        "coflow_id_watermark": blob["coflow_id_watermark"],
    }


def restore_simulator(data: Dict[str, Any], obs=None):
    """Fresh simulator from a :func:`load_checkpoint` payload."""
    setup = data["setup"]
    if setup is None:
        raise ConfigurationError(
            "checkpoint was saved without its ExperimentSetup; "
            "rebuild the simulator manually and use import_state"
        )
    sim = setup.build_simulator(data["state"]["scheduler"], obs=obs)
    sim.import_state(data["state"])
    ensure_flow_ids_above(data["flow_id_watermark"] - 1)
    ensure_coflow_ids_above(data["coflow_id_watermark"] - 1)
    return sim


def restore_driver(
    path,
    *,
    obs=None,
    source: Optional[ArrivalSource] = None,
    spill_dir=None,
    keep_shards: bool = True,
    checkpoint_path=None,
    checkpoint_every_ticks: Optional[int] = None,
):
    """Rebuild a :class:`~repro.service.driver.StreamDriver` from a
    checkpoint written by :meth:`StreamDriver.checkpoint`.

    A fresh ``source`` may be supplied for streams that cannot be rebuilt
    from a spec (e.g. stdin); it is seeked to the saved cursor when one
    was recorded.  Output plumbing (``spill_dir``, ``keep_shards``, new
    checkpoint settings) is the caller's choice — it is not part of the
    saved state.
    """
    from repro.service.driver import StreamDriver, StreamStats

    data = load_checkpoint(path)
    drv = data["driver_state"]
    if drv is None:
        raise ConfigurationError(
            f"{path} is a bare simulator checkpoint, not a service "
            "checkpoint; use load_checkpoint/restore_simulator"
        )
    sim = restore_simulator(data, obs=obs)
    if source is None:
        spec = data["source_spec"]
        if spec is None:
            raise ConfigurationError(
                "checkpoint has no SourceSpec; pass source= explicitly"
            )
        source = spec.build()
    if data["source_state"] is not None:
        source.seek(data["source_state"])
    driver = StreamDriver(
        sim,
        source,
        tick=drv["tick"],
        max_in_flight=drv["max_in_flight"],
        drain_every=drv["drain_every"],
        spill_dir=spill_dir,
        keep_shards=keep_shards,
        checkpoint_path=checkpoint_path,
        checkpoint_every_ticks=checkpoint_every_ticks,
        setup=data["setup"],
        source_spec=data["source_spec"],
        policy=drv["policy"],
    )
    stats = StreamStats()
    for name in stats.__dataclass_fields__:
        if name in drv["stats"]:
            setattr(stats, name, drv["stats"][name])
    driver.stats = stats
    driver._shard_seq = int(drv.get("shard_seq", 0))
    return driver
