"""StreamDriver: the long-lived scheduler service loop.

The driver owns one :class:`~repro.core.simulator.SliceSimulator` and one
:class:`~repro.service.arrivals.ArrivalSource` and advances them together
in fixed wall-of-simulated-time *ticks*:

1. **Admit** — pop one :class:`~repro.core.ingest.CoflowBlock` of every
   coflow arriving inside the next tick horizon and ``submit_block`` it,
   subject to a bounded in-flight backlog (``max_in_flight`` flows).
   When the backlog is full, admission stops; coflows whose arrival time
   has passed by the time they are finally admitted are *restamped* to
   the current simulated time (a queueing delay at the master — the
   paper's online model never schedules work into the past).  The whole
   handoff is columnar: the source fills block columns, restamping is a
   vectorized mask, and the engine bulk-writes the block into its
   flow/coflow columns (``block_admission=False`` keeps the legacy
   per-object loop for equivalence testing).
2. **Tick** — ``run(until=now + tick)``: the engine advances, firing
   decision points at slice boundaries, and parks at the horizon.
3. **Drain** — every ``drain_every`` ticks, :meth:`SliceSimulator.
   drain_retired` evicts the rows of finished coflows into a
   :class:`~repro.core.results.ResultStore` shard.  Shards are spilled to
   ``.npz`` files, kept in memory, or reduced to streaming aggregates and
   discarded — either way the engine's columnar store stays bounded by
   the in-flight backlog, not by the length of the stream.
4. **Checkpoint** — optionally, every ``checkpoint_every_ticks`` ticks,
   the full live state (engine columns + scheduler + arrival cursor) goes
   to a single ``.npz`` via :mod:`repro.service.checkpoint`.

Because ticks insert extra decision points at horizon boundaries, a
streamed run is *not* bit-identical to a batch ``run()`` of the same
workload — but it is deterministic, and a checkpoint/restore round trip
reproduces the uninterrupted streamed run exactly (tested).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.results import ResultStore, concat_stores
from repro.core.simulator import SliceSimulator, _time_eps
from repro.errors import ConfigurationError
from repro.service.arrivals import ArrivalSource, SourceSpec

__all__ = ["StreamStats", "StreamDriver", "run_serve_spec"]


@dataclass
class StreamStats:
    """Streaming aggregates, updated as shards drain (O(1) memory)."""

    ticks: int = 0
    coflows_submitted: int = 0
    flows_submitted: int = 0
    coflows_done: int = 0
    flows_done: int = 0
    restamped: int = 0  # coflows admitted late under backpressure
    fct_sum: float = 0.0
    cct_sum: float = 0.0
    bytes_sent: float = 0.0
    bytes_original: float = 0.0
    peak_in_flight: int = 0  # flows submitted-but-not-retired, max over ticks
    peak_live_rows: int = 0  # engine columnar rows, max over ticks
    drains: int = 0
    spills: int = 0
    checkpoints: int = 0
    wall_s: float = 0.0

    @property
    def avg_fct(self) -> float:
        return self.fct_sum / self.flows_done if self.flows_done else 0.0

    @property
    def avg_cct(self) -> float:
        return self.cct_sum / self.coflows_done if self.coflows_done else 0.0

    @property
    def traffic_reduction(self) -> float:
        if self.bytes_original <= 0:
            return 0.0
        return 1.0 - self.bytes_sent / self.bytes_original

    def as_dict(self) -> Dict[str, Any]:
        d = {f: getattr(self, f) for f in self.__dataclass_fields__}
        d["avg_fct"] = self.avg_fct
        d["avg_cct"] = self.avg_cct
        d["traffic_reduction"] = self.traffic_reduction
        return d

    def absorb_shard(self, store: ResultStore) -> None:
        """Fold one drained shard into the running aggregates."""
        self.flows_done += int(store.flow_id.size)
        self.coflows_done += int(store.cf_id.size)
        self.fct_sum += float(np.sum(store.finish - store.arrival))
        self.cct_sum += float(np.sum(store.cf_finish - store.cf_arrival))
        self.bytes_sent += float(np.sum(store.bytes_sent))
        self.bytes_original += float(np.sum(store.size))


class StreamDriver:
    """Drive a simulator from an unbounded arrival source in ticks.

    Parameters
    ----------
    sim, source:
        The engine and the stream feeding it.
    tick:
        Service-tick length in simulated seconds.  Each tick admits one
        horizon's worth of arrivals and runs the engine to the horizon.
    max_in_flight:
        Backpressure bound: admission pauses while
        ``flows_submitted - sim.retired_flows`` would exceed this.
    drain_every:
        Drain/evict retired coflows every this-many ticks (0 = never;
        memory then grows with the stream).
    spill_dir:
        When set, each drained shard is written to
        ``<spill_dir>/shard-NNNNNN.npz`` and not kept in memory.
    keep_shards:
        Keep drained shards in :attr:`shards` (default).  Turn off for
        unbounded runs where only :attr:`stats` matter.
    checkpoint_path / checkpoint_every_ticks:
        Write a restorable checkpoint to ``checkpoint_path`` every
        this-many ticks (both must be set for periodic checkpoints;
        :meth:`checkpoint` can always be called manually).
    setup, source_spec, policy:
        Provenance recorded into checkpoints/reports: the
        :class:`~repro.analysis.harness.ExperimentSetup` and
        :class:`~repro.service.arrivals.SourceSpec` that built ``sim``
        and ``source``, and the policy name.
    block_admission:
        Admit via the block-columnar fast path (default).  ``False``
        restores the legacy pop-one-object/``submit_many`` loop — the two
        are bit-identical; the switch exists for A/B equivalence tests.
    """

    def __init__(
        self,
        sim: SliceSimulator,
        source: ArrivalSource,
        *,
        tick: float = 1.0,
        max_in_flight: int = 10_000,
        drain_every: int = 1,
        spill_dir: Optional[Path] = None,
        keep_shards: bool = True,
        checkpoint_path: Optional[Path] = None,
        checkpoint_every_ticks: Optional[int] = None,
        setup=None,
        source_spec: Optional[SourceSpec] = None,
        policy: str = "",
        block_admission: bool = True,
    ) -> None:
        if tick <= 0:
            raise ConfigurationError(f"tick must be positive, got {tick}")
        if max_in_flight <= 0:
            raise ConfigurationError(
                f"max_in_flight must be positive, got {max_in_flight}"
            )
        if drain_every < 0 or checkpoint_every_ticks is not None and checkpoint_every_ticks <= 0:
            raise ConfigurationError("bad drain_every / checkpoint_every_ticks")
        self.sim = sim
        self.source = source
        self.tick = float(tick)
        self.max_in_flight = int(max_in_flight)
        self.drain_every = int(drain_every)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.keep_shards = bool(keep_shards)
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.checkpoint_every_ticks = checkpoint_every_ticks
        self.setup = setup
        self.source_spec = source_spec
        self.policy = policy or getattr(sim.scheduler, "name", "")
        self.block_admission = bool(block_admission)
        self.stats = StreamStats()
        self.shards: List[ResultStore] = []
        self.shard_paths: List[Path] = []
        self._shard_seq = 0
        #: live telemetry plane, set by TelemetryPlane(driver) — when
        #: attached, every tick reports its wall time and counter deltas
        #: (one plane.on_tick call per tick, nothing per flow); when
        #: None, no stream.* instrument ever fires.
        self._plane = None
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- queries
    @property
    def in_flight(self) -> int:
        """Flows submitted to the engine and not yet retired."""
        return self.stats.flows_submitted - self.sim.retired_flows

    def exhausted(self) -> bool:
        """True when the source has no more coflows to offer."""
        return self.source.peek() is None

    # ------------------------------------------------------------ the loop
    def _admit(self, horizon: float, max_flows: Optional[int]) -> int:
        sim = self.sim
        budget = self.max_in_flight - self.in_flight
        if max_flows is not None:
            budget = min(budget, max_flows - self.stats.flows_submitted)
        if budget <= 0:
            return 0
        if self.block_admission:
            block = self.source.pop_block(horizon, budget)
            if block is None:
                return 0
            # Backpressure (or a resumed checkpoint) delayed admission
            # past the nominal arrival: restamp to "now", the moment
            # the master actually learns about the coflow.
            late = block.arrival < sim.now - _time_eps(sim.now)
            n_late = int(np.count_nonzero(late))
            if n_late:
                block.restamp(late, sim.now)
                self.stats.restamped += n_late
            sim.submit_block(block)
            self.stats.coflows_submitted += block.n_coflows
            self.stats.flows_submitted += block.n_flows
            return block.n_coflows
        batch = []
        n_flows = 0
        while n_flows < budget:
            t = self.source.peek()
            if t is None or t > horizon:
                break
            cf = self.source.pop()
            if cf.arrival < sim.now - _time_eps(sim.now):
                cf.arrival = sim.now
                for f in cf.flows:
                    f.arrival = sim.now
                self.stats.restamped += 1
            batch.append(cf)
            n_flows += len(cf)
        if batch:
            sim.submit_many(batch)
            self.stats.coflows_submitted += len(batch)
            self.stats.flows_submitted += n_flows
        return len(batch)

    def _drain(self) -> None:
        store = self.sim.drain_retired()
        self.stats.drains += 1
        if store.flow_id.size == 0 and store.cf_id.size == 0:
            return
        self.stats.absorb_shard(store)
        if self.spill_dir is not None:
            path = self.spill_dir / f"shard-{self._shard_seq:06d}.npz"
            store.save_npz(path)
            self.shard_paths.append(path)
            self.stats.spills += 1
        elif self.keep_shards:
            self.shards.append(store)
        self._shard_seq += 1

    def tick_once(self, max_flows: Optional[int] = None) -> None:
        """One service tick: admit → run to horizon → maybe drain/checkpoint."""
        plane = self._plane
        t0 = time.perf_counter() if plane is not None else 0.0
        sim = self.sim
        horizon = sim.now + self.tick
        self._admit(horizon, max_flows)
        self.stats.peak_in_flight = max(self.stats.peak_in_flight, self.in_flight)
        self.stats.peak_live_rows = max(self.stats.peak_live_rows, sim.live_rows)
        sim.run(until=horizon)
        self.stats.ticks += 1
        self.stats.peak_live_rows = max(self.stats.peak_live_rows, sim.live_rows)
        if self.drain_every and self.stats.ticks % self.drain_every == 0:
            self._drain()
        if (
            self.checkpoint_path is not None
            and self.checkpoint_every_ticks
            and self.stats.ticks % self.checkpoint_every_ticks == 0
        ):
            self.checkpoint(self.checkpoint_path)
        if plane is not None:
            plane.on_tick(time.perf_counter() - t0)

    def run(
        self,
        max_ticks: Optional[int] = None,
        max_flows: Optional[int] = None,
    ) -> StreamStats:
        """Run the service loop until the source dries up (or a bound hits).

        With ``max_ticks`` the loop stops mid-stream after that many
        additional ticks (work may remain in flight — checkpoint it).
        With ``max_flows`` admission stops once that many flows have been
        submitted and the loop runs the backlog to completion.  Either
        way the final drain happens before returning, so
        ``shards``/``shard_paths`` + :attr:`stats` cover every retired
        coflow.
        """
        t0 = time.perf_counter()
        ticks_done = 0
        complete = False
        try:
            while True:
                if max_ticks is not None and ticks_done >= max_ticks:
                    break
                done_feeding = self.exhausted() or (
                    max_flows is not None
                    and self.stats.flows_submitted >= max_flows
                )
                if done_feeding:
                    if self.sim.pending:
                        # No more admissions ever: finish the backlog in
                        # whole ticks so the decision-point schedule (and
                        # thus the results) is independent of *when* the
                        # source dried up relative to max_ticks pauses.
                        self.tick_once(max_flows)
                        ticks_done += 1
                        continue
                    complete = True
                    break
                self.tick_once(max_flows)
                ticks_done += 1
        finally:
            if self.drain_every:
                self._drain()
            self.stats.wall_s += time.perf_counter() - t0
            if complete and self._plane is not None:
                # The stream is drained for good: keep /healthz green
                # even after the watchdog interval passes tick-free.
                self._plane.on_finish()
        return self.stats

    # -------------------------------------------------------- persistence
    def checkpoint(self, path) -> Path:
        """Write a restorable snapshot of the whole service to ``path``."""
        from repro.service.checkpoint import save_checkpoint

        if self.drain_every:
            self._drain()  # keep the checkpoint small: no retired rows
        path = Path(path)
        save_checkpoint(
            path,
            self.sim,
            setup=self.setup,
            source=self.source,
            source_spec=self.source_spec,
            driver_state={
                "stats": self.stats.as_dict(),
                "shard_seq": self._shard_seq,
                "tick": self.tick,
                "max_in_flight": self.max_in_flight,
                "drain_every": self.drain_every,
                "policy": self.policy,
            },
        )
        self.stats.checkpoints += 1
        return path

    def result_store(self) -> ResultStore:
        """Concatenation of every in-memory shard (keep_shards mode)."""
        if not self.keep_shards or self.spill_dir is not None:
            raise ConfigurationError(
                "result_store() needs keep_shards=True without a spill_dir"
            )
        if not self.shards:
            raise ConfigurationError("no shards drained yet")
        return concat_stores(self.shards)

    # --------------------------------------------------------- telemetry
    def telemetry_report(self, label: str = "serve") -> Dict[str, Any]:
        """A ``repro report``-schema payload for this service's lifetime.

        The single snapshot covers the whole stream so far; the ``grid``
        block records the serve configuration instead of a sweep grid.
        The snapshot carries the *resolved* decision-kernel backend
        (surfaced in ``policies.<name>.kernels`` exactly like pooled
        sweeps), and the ``window`` block holds the telemetry plane's
        rolling-window rates — an explicit ``null`` when no plane was
        attached, matching the report schema's n/a convention.
        """
        from repro.analysis.report import build_report
        from repro.core import kernels
        from repro.runner.telemetry import RunTelemetry, TelemetrySnapshot

        kernel = kernels.resolved_name(
            getattr(self.sim.scheduler, "kernel", None)
        )
        snap = TelemetrySnapshot.capture(
            key="serve",
            policy=self.policy,
            obs=self.sim.obs,
            wall_s=self.stats.wall_s,
            cpu_s=time.process_time(),
            kernel=kernel,
        )
        tele = RunTelemetry(
            snapshots=[snap], workers=1, wall_s=self.stats.wall_s, cells=1
        )
        report = build_report(
            tele,
            grid={
                "mode": "serve",
                "policy": self.policy,
                "tick": self.tick,
                "max_in_flight": self.max_in_flight,
                "drain_every": self.drain_every,
            },
            label=label,
            window=(
                self._plane.window.snapshot()
                if self._plane is not None else None
            ),
        )
        report["stream"] = self.stats.as_dict()
        report["stream"]["kernel"] = kernel
        return report


def run_serve_spec(spec, cache=None):
    """Execute a :class:`repro.runner.ServeSpec`, optionally through a
    :class:`repro.runner.ResultCache` (summaries only — a streamed run
    has no single ``SimulationResult`` to pickle).

    Returns ``(summary, cached)`` like the pool's single-spec path.
    """
    from repro.runner.spec import ResultSummary

    if cache is not None:
        hit = cache.get(spec)
        if hit is not None:
            return hit, True
    driver = spec.build_driver()
    stats = driver.run(max_flows=spec.max_flows)
    summary = ResultSummary(
        policy=spec.policy,
        avg_fct=stats.avg_fct,
        avg_cct=stats.avg_cct,
        makespan=float(driver.sim.now),
        decision_points=int(driver.sim._decision_points),
        traffic_reduction=stats.traffic_reduction,
        num_flows=stats.flows_done,
        num_coflows=stats.coflows_done,
        total_bytes_sent=stats.bytes_sent,
        total_bytes_original=stats.bytes_original,
    )
    if cache is not None:
        cache.put(spec, summary)
    return summary, False
