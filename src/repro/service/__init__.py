"""Long-lived streaming scheduler service (``python -m repro serve``).

The paper's Swallow master is an *online* scheduler: coflows arrive in an
unbounded stream, and the master reacts at slice boundaries without ever
seeing the workload's end.  This package turns the batch engine into that
service:

* :mod:`repro.service.arrivals` — unbounded arrival sources: a seeded
  generator (steady / bursty / diurnal inter-arrival modes) and a JSONL
  file/stdin reader, both resumable from a compact cursor;
* :mod:`repro.service.driver` — :class:`StreamDriver`, the service loop:
  admit arrivals ahead of a moving horizon with bounded in-flight
  backpressure, tick the engine with ``run(until=...)``, and drain/spill
  retired results so memory stays bounded over an infinite trace;
* :mod:`repro.service.checkpoint` — single-file ``.npz`` checkpoints of
  the live engine state (columns + scheduler + arrival cursor) with
  bit-identical resume.

See ``docs/streaming.md`` for the lifecycle, checkpoint format and
backpressure semantics.
"""

from repro.service.arrivals import (
    ArrivalSource,
    JsonlSource,
    SourceSpec,
    SyntheticSource,
    coflow_from_json,
    coflow_to_json,
)
from repro.service.checkpoint import (
    CHECKPOINT_SCHEMA,
    load_checkpoint,
    restore_driver,
    restore_simulator,
    save_checkpoint,
)
from repro.service.driver import StreamDriver, StreamStats, run_serve_spec

__all__ = [
    "ArrivalSource", "SyntheticSource", "JsonlSource", "SourceSpec",
    "coflow_from_json", "coflow_to_json",
    "StreamDriver", "StreamStats", "run_serve_spec",
    "CHECKPOINT_SCHEMA", "save_checkpoint", "load_checkpoint",
    "restore_driver", "restore_simulator",
]
