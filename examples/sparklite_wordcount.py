#!/usr/bin/env python
"""Run real data-parallel jobs whose shuffles go through Swallow.

sparklite is this repository's analogue of the paper's Spark-2.2.0
integration: a working RDD-style framework.  Two genuine jobs run below —
a wordcount (combiner-friendly, tiny shuffle) and an inverted index
(shuffle-heavy: every (word, line-id) pair crosses the fabric).  Every
shuffled byte is serialized, scheduled as a coflow by FVDF on the
simulated fabric (compressed when Eq. 3 says it pays), and decompressed at
the receiver.  Results are verified against plain Python; the report shows
what the shuffles cost with and without ``swallow.smartCompress``.

Run:  python examples/sparklite_wordcount.py
"""

import random
from collections import Counter

from repro.analysis import render_table
from repro.sparklite import SparkLiteContext
from repro.units import bytes_to_human

WORDS = (
    "error warn info debug fetch shuffle stage task executor block "
    "partition memory disk network codec flow coflow swallow"
).split()


def make_corpus(n_lines=2000, seed=7):
    rng = random.Random(seed)
    return [
        " ".join(rng.choices(WORDS, k=rng.randint(4, 12))) for _ in range(n_lines)
    ]


def expected_index(corpus):
    index = {}
    for i, line in enumerate(corpus):
        for w in line.split():
            index.setdefault(w, []).append(i)
    return {w: sorted(ids) for w, ids in index.items()}


def run_jobs(smart_compress: bool):
    ctx = SparkLiteContext(
        num_nodes=4,
        bandwidth=200_000.0,  # a deliberately thin fabric: shuffles dominate
        smart_compress=smart_compress,
        real_compression=True,
    )
    corpus = make_corpus()

    # Job 1: wordcount (map-side combining keeps the shuffle small).
    counts = dict(
        ctx.parallelize(corpus, 4)
        .flat_map(str.split)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )
    assert counts == Counter(w for l in corpus for w in l.split())

    # Job 2: inverted index (every (word, line-id) pair is shuffled).
    lines = list(enumerate(corpus))
    index = dict(
        ctx.parallelize(lines, 4)
        .flat_map(lambda rec: [(w, rec[0]) for w in rec[1].split()])
        .group_by_key(4)
        .map_values(sorted)
        .collect()
    )
    assert index == expected_index(corpus), "shuffle corrupted the index!"
    return ctx


def main() -> None:
    rows = []
    for smart in (False, True):
        ctx = run_jobs(smart)
        payload = sum(r.payload_bytes for r in ctx.shuffle_reports)
        wire = sum(r.wire_bytes for r in ctx.shuffle_reports)
        t = sum(r.duration for r in ctx.shuffle_reports)
        rows.append([
            "on" if smart else "off",
            bytes_to_human(payload),
            bytes_to_human(wire),
            f"{(1 - wire / payload) * 100:.1f}%",
            f"{t:.2f}s",
        ])
    print("wordcount and inverted index verified correct against plain Python\n")
    print(render_table(
        ["smartCompress", "shuffle payload", "on the wire", "saved",
         "shuffle time"],
        rows,
        title="sparklite jobs: shuffles through Swallow",
    ))


if __name__ == "__main__":
    main()
