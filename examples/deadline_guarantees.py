#!/usr/bin/env python
"""Deadline guarantees: EDF admission control vs deadline-blind policies.

An extension beyond the paper (Varys' second objective): coflows carry
deadlines; the admission-controlled scheduler only accepts coflows whose
minimum finishing rates fit the residual fabric, and every admitted coflow
provably meets its deadline.  FVDF, blind to deadlines, still meets many
simply by finishing early through compression — but offers no guarantee.

Run:  python examples/deadline_guarantees.py
"""

import numpy as np

from repro.analysis import ExperimentSetup, render_table, run_policy
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.schedulers import DeadlineEDF, deadline_stats, make_scheduler
from repro.traces.distributions import LogNormalSizes
from repro.units import KB, MB, mbps

NUM_PORTS = 8


def workload(seed=11, n=30, tightness=1.4):
    rng = np.random.default_rng(seed)
    sizes = LogNormalSizes(median=8 * MB, sigma=1.0, lo=512 * KB, hi=64 * MB)
    bandwidth = mbps(100)
    coflows, t = [], 0.0
    for k in range(n):
        flows = [
            Flow(int(rng.integers(0, NUM_PORTS)), int(rng.integers(0, NUM_PORTS)),
                 float(s))
            for s in sizes.sample(rng, int(rng.integers(1, 4)))
        ]
        probe = Coflow([Flow(f.src, f.dst, f.size) for f in flows], arrival=t)
        solo = probe.bottleneck_load(
            np.full(NUM_PORTS, bandwidth), np.full(NUM_PORTS, bandwidth)
        )
        coflows.append(
            Coflow([Flow(f.src, f.dst, f.size) for f in flows], arrival=t,
                   label=f"job{k}", deadline=solo * tightness)
        )
        t += float(rng.exponential(0.3))
    return coflows


def main() -> None:
    setup = ExperimentSetup(num_ports=NUM_PORTS, bandwidth=mbps(100))
    rows = []
    admitted_line = ""
    for name in ["edf-deadline", "edf-noadmission", "sebf", "fvdf"]:
        sched = make_scheduler(name)
        res = run_policy(sched, workload(), setup)
        stats = deadline_stats(res.coflow_results)
        rows.append([name, f"{stats['met_fraction'] * 100:.1f}%",
                     f"{res.avg_cct:.2f}s"])
        if isinstance(sched, DeadlineEDF) and sched.admission:
            admitted = [c for c in res.coflow_results
                        if sched.was_admitted(c.coflow_id)]
            met = sum(1 for c in admitted if c.met_deadline)
            admitted_line = (
                f"admission: {len(admitted)}/{len(res.coflow_results)} admitted, "
                f"{met}/{len(admitted)} admitted met their deadline"
            )
    print(render_table(
        ["policy", "deadlines met", "avg CCT"], rows,
        title="Deadline guarantees under overload (100 Mbps, tight deadlines)",
    ))
    print("\n" + admitted_line)


if __name__ == "__main__":
    main()
