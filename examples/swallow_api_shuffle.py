#!/usr/bin/env python
"""The Table IV programming API, mirroring the paper's Scala usage example.

Walks one shuffle through the full Swallow protocol — hook, aggregate, add,
scheduling, alloc, push, pull, remove — with real payload bytes that get
genuinely compressed (zlib standing in for LZ4) on the push path and
decompressed on pull.

Run:  python examples/swallow_api_shuffle.py
"""

from repro.core.flow import Flow
from repro.swallow import BlockId, Executor, SwallowContext
from repro.units import bytes_to_human


def main() -> None:
    # val sc = new SwallowContext()
    SwallowContext.reset_instance()
    sc = SwallowContext(
        num_nodes=4, bandwidth=50_000.0, smart_compress=True,
        real_compression=True,
    )
    # ... and the singleton accessor: SwallowContext.getInstance()
    assert SwallowContext.get_instance() is sc

    # A map-side executor with two reduce fetches pending.
    payloads = {
        0: b"shuffle-partition-0 " * 2000,
        1: b"shuffle-partition-1 " * 3000,
    }
    executor = Executor(
        node=0,
        pending_flows=[
            Flow(src=0, dst=1, size=float(len(payloads[0]))),
            Flow(src=0, dst=2, size=float(len(payloads[1]))),
        ],
    )

    # val flowInfo = sc.hook(executor); val coflowInfo = sc.aggregate(...)
    flow_info = sc.hook(executor)
    coflow_info = sc.aggregate(flow_info, label="stage-3-shuffle")
    ref = sc.add(coflow_info)
    print(f"registered coflow {ref.coflow_id} "
          f"({coflow_info.width} flows, {bytes_to_human(coflow_info.size)})")

    # val schResult = sc.scheduling(...); alloc(schResult)
    sc.heartbeat()  # daemons report CPU/bandwidth to the master
    plan = sc.scheduling([ref])
    print(f"master plan: order={plan.order}, "
          f"compress={{{', '.join(f'{k}:{v}' for k, v in plan.compress.items())}}}")
    sc.alloc(plan)

    # Senders push; receivers pull (time-decoupled).
    blocks = {i: BlockId() for i in payloads}
    for i, data in payloads.items():
        msg = sc.push(ref, blocks[i], data)
        print(f"pushed block {msg.block_id.value}: "
              f"{bytes_to_human(len(data))} -> {bytes_to_human(msg.payload_size)}"
              f" (compressed={msg.compressed})")

    for i in payloads:
        got = sc.pull(ref, blocks[i])
        assert got == payloads[i], "round-trip corruption!"
        print(f"pulled block {blocks[i].value}: intact, "
              f"{bytes_to_human(len(got))}")

    # sc.remove(coflowRef)
    sc.remove(ref)
    res = sc.results()
    print(f"\ncoflow finished at t={res.coflow_results[0].finish:.2f}s, "
          f"traffic reduction {res.traffic_reduction * 100:.1f}%, "
          f"{sc.bus.total_messages} protocol messages exchanged")


if __name__ == "__main__":
    main()
