#!/usr/bin/env python
"""The paper's Fig. 3/4 motivating example, reproduced exactly.

Two coflows share a 3x3 fabric: C1 = {4, 4, 2} data units, C2 = {2, 3}.
Six policies schedule them; the paper states each policy's average FCT and
CCT, and this script's output matches those numbers (baselines exactly,
FVDF approximately — its compression schedule is under-specified in the
paper).

Run:  python examples/motivating_example.py
"""

from repro.analysis import render_table
from repro.scenarios import FIG4_PAPER_NUMBERS, run_motivating_example
from repro.schedulers import make_scheduler

POLICIES = ["pff", "wss", "fifo", "pfp", "sebf", "fvdf"]


def main() -> None:
    rows = []
    for name in POLICIES:
        res = run_motivating_example(make_scheduler(name))
        p_fct, p_cct = FIG4_PAPER_NUMBERS[name]
        rows.append([
            name,
            f"{res.avg_fct:.2f}", f"{p_fct:.2f}",
            f"{res.avg_cct:.2f}", f"{p_cct:.2f}",
            f"{res.traffic_reduction * 100:.1f}%",
        ])
    print(render_table(
        ["policy", "FCT (ours)", "FCT (paper)", "CCT (ours)", "CCT (paper)",
         "traffic saved"],
        rows,
        title="Fig. 4 — motivating example (time units)",
    ))
    print(
        "\nBaselines match the paper exactly; FVDF beats SEBF on both"
        " metrics thanks to compressing during idle CPU periods."
    )


if __name__ == "__main__":
    main()
