#!/usr/bin/env python
"""Replay a Facebook-format coflow trace under every coflow scheduler.

Synthesises a trace with the public coflow-benchmark format's skew (most
coflows narrow, a few spanning half the cluster), round-trips it through
the on-disk format, then replays it under the coflow schedulers of
Fig. 6(e)/Table VI.  Point ``--trace`` at a real
``FB2010-1Hr-150-0.txt`` file to replay the original instead.

Run:  python examples/facebook_trace_replay.py [--trace PATH]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import ExperimentSetup, render_table, run_many, speedups_over
from repro.traces import (
    read_facebook_trace,
    synthesize_facebook_like,
    write_facebook_trace,
)
from repro.units import bytes_to_human, gbps, seconds_to_human

POLICIES = ["coflow-fifo", "pff", "scf", "ncf", "sebf", "fvdf"]


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", type=Path, help="path to a coflow-benchmark trace")
    ap.add_argument("--coflows", type=int, default=40)
    ap.add_argument("--ports", type=int, default=40)
    args = ap.parse_args()

    if args.trace:
        trace = read_facebook_trace(args.trace)
        print(f"loaded {args.trace}")
    else:
        rng = np.random.default_rng(7)
        trace = synthesize_facebook_like(
            rng, num_coflows=args.coflows, num_ports=args.ports,
            arrival_rate=0.5, mean_reducer_mb=8.0,
        )
        # Demonstrate the on-disk format round-trip.
        with tempfile.NamedTemporaryFile("w+", suffix=".txt", delete=False) as fh:
            write_facebook_trace(trace, fh.name)
            trace = read_facebook_trace(fh.name)
        print(f"synthesised FB-like trace (round-tripped through {fh.name})")

    print(
        f"  {len(trace.coflows)} coflows, {trace.num_flows} flows, "
        f"{bytes_to_human(trace.total_bytes)} on {trace.num_ports} ports\n"
    )

    setup = ExperimentSetup(
        num_ports=trace.num_ports, bandwidth=gbps(1) / 8, slice_len=0.01
    )
    results = run_many(POLICIES, trace.coflows, setup)
    rows = [
        [name, seconds_to_human(r.avg_cct), seconds_to_human(r.makespan),
         f"{r.traffic_reduction * 100:.1f}%"]
        for name, r in results.items()
    ]
    print(render_table(["policy", "avg CCT", "makespan", "traffic saved"], rows))
    print("\nCCT speedup of FVDF:")
    for name, sp in sorted(speedups_over(results, ours="fvdf").items()):
        print(f"  over {name:12s} {sp:.2f}x")


if __name__ == "__main__":
    main()
