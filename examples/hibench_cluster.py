#!/usr/bin/env python
"""HiBench on a simulated cluster, with and without Swallow (paper §VI-B).

Runs the "large" HiBench suite twice over a 16-node gigabit cluster:
once under SEBF without compression ("without Swallow") and once under
FVDF with LZ4 compression ("with Swallow"), then reports the per-stage
durations (Fig. 7a), shuffle traffic (Table VII / Fig. 7b) and GC time
(Table VIII).

Run:  python examples/hibench_cluster.py [--scale large|huge]
"""

import argparse

import numpy as np

from repro.cluster import ClusterConfig, ClusterSimulator, hibench_suite
from repro.schedulers import make_scheduler
from repro.analysis import render_table
from repro.units import bytes_to_human, gbps, seconds_to_human


def run_once(scale: str, scheduler: str, num_jobs: int):
    cfg = ClusterConfig(num_nodes=16, bandwidth=gbps(1), slice_len=0.01)
    sim = ClusterSimulator(cfg, make_scheduler(scheduler))
    sim.submit_jobs(hibench_suite(scale, np.random.default_rng(1), num_jobs=num_jobs))
    return sim.run()


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", default="large", choices=["large", "huge"])
    ap.add_argument("--jobs", type=int, default=12)
    args = ap.parse_args()

    base = run_once(args.scale, "sebf", args.jobs)
    swallow = run_once(args.scale, "fvdf", args.jobs)

    stages = ["map", "shuffle", "reduce", "result"]
    sb, ss = base.stage_means(), swallow.stage_means()
    rows = [
        [st, seconds_to_human(sb[st]), seconds_to_human(ss[st]),
         f"{sb[st] / ss[st]:.2f}x" if ss[st] > 0 else "-"]
        for st in stages
    ]
    rows.append([
        "JCT", seconds_to_human(base.avg_jct), seconds_to_human(swallow.avg_jct),
        f"{base.avg_jct / swallow.avg_jct:.2f}x",
    ])
    print(render_table(
        ["stage", "without Swallow", "with Swallow", "speedup"], rows,
        title=f"Fig. 7(a) — {args.scale} workload, per-stage improvements",
    ))

    print()
    print(render_table(
        ["run", "shuffle traffic", "reduction"],
        [
            ["without Swallow", bytes_to_human(base.shuffle_bytes_sent), "-"],
            ["with Swallow", bytes_to_human(swallow.shuffle_bytes_sent),
             f"{swallow.traffic_reduction * 100:.2f}%"],
        ],
        title="Table VII — data traffic",
    ))

    print()
    gb, gs = base.gc_summary(), swallow.gc_summary()
    print(render_table(
        ["stage", "GC without", "GC with (-c)"],
        [
            ["map", seconds_to_human(gb["map"]), seconds_to_human(gs["map"])],
            ["reduce", seconds_to_human(gb["reduce"]), seconds_to_human(gs["reduce"])],
        ],
        title="Table VIII — garbage collection time",
    ))


if __name__ == "__main__":
    main()
