#!/usr/bin/env python
"""Quickstart: schedule a handful of coflows with FVDF vs the baselines.

Builds a 8-port gigabit big-switch fabric, generates a small Spark-like
shuffle workload, and runs it under FIFO, FAIR, SEBF (Varys) and Swallow's
FVDF — printing average FCT/CCT and the traffic saved by compression.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import ExperimentSetup, render_table, run_many, speedups_over
from repro.traces import WorkloadConfig, generate_workload, spark_flow_sizes
from repro.units import bytes_to_human, gbps, seconds_to_human


def main() -> None:
    rng = np.random.default_rng(42)
    workload = generate_workload(
        WorkloadConfig(
            num_coflows=40,
            num_ports=8,
            size_dist=spark_flow_sizes(),
            width=(1, 6),
            arrival_rate=4.0,
        ),
        rng,
    )
    total = sum(c.size for c in workload)
    print(f"workload: {len(workload)} coflows, {bytes_to_human(total)} total\n")

    setup = ExperimentSetup(num_ports=8, bandwidth=gbps(1) / 8, slice_len=0.01)
    results = run_many(["fifo", "fair", "sebf", "fvdf"], workload, setup)

    rows = [
        [
            name,
            seconds_to_human(res.avg_fct),
            seconds_to_human(res.avg_cct),
            seconds_to_human(res.makespan),
            f"{res.traffic_reduction * 100:.1f}%",
        ]
        for name, res in results.items()
    ]
    print(render_table(
        ["policy", "avg FCT", "avg CCT", "makespan", "traffic saved"], rows
    ))

    print("\nCCT speedup of FVDF over each baseline:")
    for name, sp in sorted(speedups_over(results, ours="fvdf").items()):
        print(f"  {name:6s} {sp:.2f}x")

    from repro.analysis import render_timeline

    print("\n" + render_timeline(
        results["fvdf"].coflow_results[:12], width=50,
        title="first 12 coflows under FVDF (Gantt)",
    ))


if __name__ == "__main__":
    main()
