"""Fig. 6(b) — average-FCT improvement per flow-size class.

Paper: FVDF improves every size class, most prominently vs FIFO/FAIR, and
its edge over SRTF is larger for big flows than for small ones (both serve
the smallest first; compression only pays off on volume).
"""

import pytest

from repro.analysis import ExperimentSetup, render_table, run_many
from repro.core.metrics import avg_fct
from repro.units import MB, mbps
from workloads import flow_trace

POLICIES = ["srtf", "fifo", "fair", "fvdf-flow"]
SETUP = ExperimentSetup(num_ports=12, bandwidth=mbps(200), slice_len=0.01)
#: size-class boundaries: small < 4 MB <= medium < 32 MB <= large
EDGES = [4 * MB, 32 * MB]
LABELS = ["small", "medium", "large"]


def classify(size: float) -> str:
    for label, edge in zip(LABELS, EDGES):
        if size < edge:
            return label
    return LABELS[-1]


def run_all():
    workload = flow_trace(seed=6)
    results = run_many(POLICIES, workload, SETUP)
    table = {}
    for label in LABELS:
        fct = {
            name: avg_fct([f for f in res.flow_results if classify(f.size) == label])
            for name, res in results.items()
        }
        table[label] = {
            base: fct[base] / fct["fvdf-flow"] for base in ["srtf", "fifo", "fair"]
        }
    return table


def test_fig6b_fct_by_size(once, report):
    table = once(run_all)
    rows = [
        [label, table[label]["srtf"], table[label]["fifo"], table[label]["fair"]]
        for label in LABELS
    ]
    report(
        "fig6b_fct_by_size",
        render_table(
            ["size class", "speedup vs SRTF", "vs FIFO", "vs FAIR"], rows,
            title="Fig. 6(b) — avg-FCT improvement of FVDF per flow size",
        ),
    )
    # FVDF improves over FIFO in every class, and over FAIR on the classes
    # that carry the bytes.  (On the smallest class FAIR can win in our
    # traces: starvation-freedom aging lets old large flows preempt fresh
    # small ones — see EXPERIMENTS.md.)
    for label in LABELS:
        assert table[label]["fifo"] > 1.0, label
    for label in ["medium", "large"]:
        assert table[label]["fair"] > 1.0, label
    # Improvement over SRTF is larger on large flows than on small ones
    # (small flows: both schedule smallest-first; large flows: compression).
    assert table["large"]["srtf"] > table["small"]["srtf"]
    assert table["large"]["srtf"] > 1.5
