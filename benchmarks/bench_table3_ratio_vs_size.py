"""Table III — compression ratio as a function of flow size.

Paper: ratios fall from 66.46% at 10 KB to ~25% beyond 100 MB, converging
to a constant.  The size-dependent model must reproduce the anchors
exactly; a live zlib measurement must show the same monotone-saturating
shape.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.compression.calibrate import measure_backend
from repro.compression.codecs import Codec
from repro.compression.model import TABLE_III_ANCHORS, SizeDependentRatio
from repro.units import KB, MB, bytes_to_human

#: Live-measurement sizes (kept small: lzma/bz2 on 10 GB would take ages).
LIVE_SIZES = [10 * KB, 100 * KB, 1 * MB, 8 * MB]


def run():
    sortlike = Codec(
        "sortlike", speed=1.0, decompression_speed=2.0,
        ratio=TABLE_III_ANCHORS[-1][1],
    )
    model = SizeDependentRatio(sortlike)
    rows = [
        [bytes_to_human(size), f"{paper * 100:.2f}%", f"{model(size) * 100:.2f}%"]
        for size, paper in TABLE_III_ANCHORS
    ]
    rng = np.random.default_rng(5)
    live = {
        s: measure_backend("zlib", int(s), rng, repeats=1).ratio for s in LIVE_SIZES
    }
    return model, rows, live


def test_table3_ratio_vs_size(once, report):
    model, rows, live = once(run)
    live_rows = [[bytes_to_human(s), f"{r * 100:.2f}%"] for s, r in live.items()]
    text = render_table(
        ["flow size", "ratio (paper)", "ratio (model)"], rows,
        title="Table III — property of flow compression",
    ) + "\n\n" + render_table(
        ["payload size", "zlib measured ratio"], live_rows,
        title="Live check: real-codec ratio improves with size",
    )
    report("table3_ratio_vs_size", text)
    # Model reproduces every anchor exactly.
    for size, paper in TABLE_III_ANCHORS:
        assert model(size) == pytest.approx(paper, abs=1e-9)
    # Live codec shows the same qualitative shape: ratio improves (falls)
    # with size and flattens out.
    sizes = sorted(live)
    assert live[sizes[-1]] <= live[sizes[0]] + 0.02
