"""Shared workload builders for the benchmark suite (not a test module).

Centralises the trace parameters so the Fig. 6 benches compare policies on
consistent workloads.  Sizes follow the paper's own simulation traces
("dozens of kilobytes or several megabytes", Section VI-A1), scaled so that
typical flows span multiple 10 ms slices at the default bandwidths.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.coflow import Coflow
from repro.traces.distributions import LogNormalSizes
from repro.traces.generator import (
    WorkloadConfig,
    generate_flow_workload,
    generate_workload,
)
from repro.units import KB, MB

#: Flow sizes for the trace-driven experiments.
TRACE_SIZES = LogNormalSizes(median=8 * MB, sigma=1.3, lo=64 * KB, hi=256 * MB)


def flow_trace(
    seed: int = 0, num_flows: int = 300, num_ports: int = 12, rate: float = 20.0
) -> List[Coflow]:
    """Singleton-coflow trace for the flow-level experiments (Fig. 6a–d)."""
    cfg = WorkloadConfig(
        num_coflows=num_flows,
        num_ports=num_ports,
        size_dist=TRACE_SIZES,
        width=1,
        arrival_rate=rate,
    )
    return generate_flow_workload(cfg, np.random.default_rng(seed))


def coflow_trace(
    seed: int = 0, num_coflows: int = 40, num_ports: int = 16, rate: float = 2.0
) -> List[Coflow]:
    """Coflow trace for the coflow-level experiments (Fig. 6e–f, Table VI)."""
    cfg = WorkloadConfig(
        num_coflows=num_coflows,
        num_ports=num_ports,
        size_dist=TRACE_SIZES,
        width=(1, 8),
        arrival_rate=rate,
    )
    return generate_workload(cfg, np.random.default_rng(seed))


def parallel_batch(
    seed: int, num_flows: int, num_ports: int = 12
) -> List[Coflow]:
    """``num_flows`` flows all arriving at t=0 (the Fig. 6c sweep)."""
    cfg = WorkloadConfig(
        num_coflows=num_flows,
        num_ports=num_ports,
        size_dist=TRACE_SIZES,
        width=1,
        arrival_rate=None,
    )
    return generate_flow_workload(cfg, np.random.default_rng(seed))
