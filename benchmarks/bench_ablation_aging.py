"""Ablation — starvation-freedom aging policies (Pseudocode 3 variants).

Scenario: one large coflow plus a continuous stream of small coflows on
the same port.  "paper" (unbounded ×1.2 upgrades) serves the large coflow
fastest but punishes the stream; "starved" (age only unserved coflows, our
default) bounds the large coflow's wait at a much smaller cost to the
stream; logbase=1 (aging off) starves the large coflow outright.
"""

import pytest

from repro.analysis import ExperimentSetup, render_table, run_policy
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.fvdf import FVDFConfig, FVDFScheduler

VARIANTS = {
    "off (logbase=1)": FVDFConfig(compress=False, logbase=1.0),
    "paper": FVDFConfig(compress=False, logbase=1.2, aging="paper"),
    "starved (default)": FVDFConfig(compress=False, logbase=1.2, aging="starved"),
    "reset": FVDFConfig(compress=False, logbase=1.2, aging="reset"),
}
SETUP = ExperimentSetup(num_ports=4, bandwidth=1.0, slice_len=0.01)
STREAM_LEN = 40


def scenario():
    big = Coflow([Flow(0, 0, 5.0)], arrival=0.0, label="big")
    small = [
        Coflow([Flow(0, 0, 0.9)], arrival=float(k), label=f"s{k}")
        for k in range(STREAM_LEN)
    ]
    return [big] + small


def run_all():
    table = {}
    for label, cfg in VARIANTS.items():
        res = run_policy(FVDFScheduler(cfg, name=label), scenario(), SETUP)
        cct = {c.label: c.cct for c in res.coflow_results}
        small_ccts = [v for k, v in cct.items() if k != "big"]
        table[label] = {
            "big": cct["big"],
            "small_avg": sum(small_ccts) / len(small_ccts),
        }
    return table


def test_ablation_aging(once, report):
    table = once(run_all)
    rows = [[label, d["big"], d["small_avg"]] for label, d in table.items()]
    report(
        "ablation_aging",
        render_table(
            ["aging policy", "large-coflow CCT (s)", "avg small CCT (s)"],
            rows,
            title="Ablation — starvation freedom vs small-coflow latency",
        ),
    )
    stream_end = float(STREAM_LEN)
    # Aging off: the large coflow is starved past the end of the stream.
    assert table["off (logbase=1)"]["big"] >= stream_end
    # "paper" and "starved" both bound the wait well before the stream ends.
    assert table["paper"]["big"] < 0.5 * stream_end
    assert table["starved (default)"]["big"] < 0.5 * stream_end
    # "starved" is gentler on the small stream than "paper".
    assert table["starved (default)"]["small_avg"] <= table["paper"]["small_avg"]
    # "reset" re-starves (documented failure mode).
    assert table["reset"]["big"] >= stream_end