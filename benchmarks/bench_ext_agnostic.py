"""Extension — the knowledge spectrum, multi-seed robust.

How much does each level of information buy?  Across five seeded traces:

* **coflow-FIFO** — no information at all;
* **D-CLAS (Aalo)** — learns from bytes sent, no prior sizes;
* **SEBF (Varys)** — clairvoyant sizes;
* **Sincronia (BSSI)** — clairvoyant sizes, near-optimal ordering;
* **FVDF (Swallow)** — clairvoyant sizes *plus* CPU/compression awareness.

Expected ordering of mean CCT: FVDF <= {Sincronia, SEBF} <= D-CLAS <~
FIFO, with FVDF winning on (almost) every seed — ordering alone, however
good, cannot shrink the bytes.
"""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, render_table, run_seeds
from repro.traces.distributions import LogNormalSizes
from repro.traces.generator import WorkloadConfig, generate_workload
from repro.units import KB, MB, mbps

POLICIES = ["coflow-fifo", "dclas", "sebf", "sincronia", "fvdf"]
SETUP = ExperimentSetup(num_ports=16, bandwidth=mbps(100), slice_len=0.01)
SEEDS = range(5)


def factory(seed):
    cfg = WorkloadConfig(
        num_coflows=30,
        num_ports=16,
        size_dist=LogNormalSizes(median=8 * MB, sigma=1.3, lo=64 * KB, hi=256 * MB),
        width=(1, 8),
        arrival_rate=2.0,
    )
    return generate_workload(cfg, np.random.default_rng(seed))


def run_all():
    return run_seeds(POLICIES, factory, SETUP, seeds=SEEDS, metric="avg_cct")


def test_ext_agnostic(once, report):
    stats = once(run_all)
    rows = [
        [name, stats.mean(name), stats.std(name),
         f"{stats.win_rate('fvdf', name) * 100:.0f}%" if name != "fvdf" else "-"]
        for name in POLICIES
    ]
    report(
        "ext_agnostic",
        render_table(
            ["policy", "mean CCT (s)", "std (s)", "FVDF win rate"],
            rows,
            title=f"Extension — knowledge spectrum over {len(list(SEEDS))} seeds",
        ),
    )
    # More information -> better mean CCT, at every rung of the ladder.
    assert stats.mean("fvdf") < stats.mean("sebf")
    assert stats.mean("fvdf") < stats.mean("sincronia")
    assert stats.mean("sebf") < stats.mean("coflow-fifo")
    assert stats.mean("sincronia") < stats.mean("coflow-fifo")
    assert stats.mean("dclas") <= stats.mean("coflow-fifo") * 1.1
    # FVDF wins on every seed against the agnostic policies.
    assert stats.win_rate("fvdf", "coflow-fifo") == 1.0
    assert stats.win_rate("fvdf", "dclas") == 1.0
    assert stats.win_rate("fvdf", "sebf") >= 0.8