"""Table I — intermediate data of one shuffle block, per application.

For each of the eleven HiBench applications the paper measured one shuffle
block compressed and uncompressed.  Here each app's shuffle runs through
Swallow on a thin link (so everything compresses) and the measured on-wire
bytes must reproduce the app's Table I ratio.
"""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, render_table, run_policy
from repro.traces.spark import TABLE_I, shuffle_coflow

#: Thin pipe + fast codec: compression is always worthwhile (Eq. 3 holds).
SETUP = ExperimentSetup(num_ports=4, bandwidth=1e4, slice_len=0.01)

#: Scale block sizes down to keep the wall-clock of 11 runs small; ratios
#: are size-independent here because flows carry ratio_override.
SCALE = 1e-4


def run_app(name: str):
    rng = np.random.default_rng(11)
    app = TABLE_I[name]
    # Keep the scaled block well above one slice of link capacity
    # (bandwidth * slice = 100 B), else FVDF rightly skips compression.
    min_bytes = 50 * SETUP.bandwidth * SETUP.slice_len
    coflow = shuffle_coflow(
        app, num_mappers=1, num_reducers=1, num_ports=4, rng=rng,
        scale=max(SCALE, min_bytes / app.block_uncompressed), size_jitter=0.0,
    )
    res = run_policy("fvdf", [coflow], SETUP)
    measured = res.total_bytes_sent / res.total_bytes_original
    return measured


def run_all():
    return {name: run_app(name) for name in TABLE_I}


def test_table1_intermediate_data(once, report):
    out = once(run_all)
    rows = [
        [name, TABLE_I[name].block_compressed, TABLE_I[name].block_uncompressed,
         f"{TABLE_I[name].ratio * 100:.2f}%", f"{out[name] * 100:.2f}%"]
        for name in TABLE_I
    ]
    report(
        "table1_intermediate_data",
        render_table(
            ["application", "compressed (paper)", "uncompressed (paper)",
             "ratio (paper)", "ratio (measured)"],
            rows,
            title="Table I — intermediate data of one block in shuffles",
        ),
    )
    for name, measured in out.items():
        assert measured == pytest.approx(TABLE_I[name].ratio, abs=0.02), name
