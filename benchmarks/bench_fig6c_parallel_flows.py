"""Fig. 6(c) — average-FCT improvement vs number of parallel flows.

Paper: across three magnitudes of parallel-flow counts, FVDF always
outperforms SRTF, FIFO and FAIR.
"""

import pytest

from repro.analysis import ExperimentSetup, render_table
from repro.runner import RunSpec, WorkloadSpec, run_specs
from repro.traces.generator import WorkloadConfig
from repro.units import mbps
from workloads import TRACE_SIZES

POLICIES = ["srtf", "fifo", "fair", "fvdf-flow"]
COUNTS = [30, 100, 300]
SETUP = ExperimentSetup(num_ports=12, bandwidth=mbps(200), slice_len=0.01)


def _batch_spec(n):
    # workloads.parallel_batch(seed=n, num_flows=n), as a picklable spec
    # regenerated inside the worker instead of shipping the trace.
    cfg = WorkloadConfig(
        num_coflows=n, num_ports=12, size_dist=TRACE_SIZES, width=1,
        arrival_rate=None,
    )
    return WorkloadSpec.generated(cfg, seed=n, flow_level=True)


def run_all():
    # The (batch size × policy) grid in one fan-out through the runner.
    specs = [
        RunSpec(policy=p, workload=_batch_spec(n), setup=SETUP, key=f"{n}/{p}")
        for n in COUNTS
        for p in POLICIES
    ]
    by_key = {out.key: out.summary for out in run_specs(specs)}
    table = {}
    for n in COUNTS:
        ours = by_key[f"{n}/fvdf-flow"].avg_fct
        table[n] = {
            base: by_key[f"{n}/{base}"].avg_fct / ours
            for base in ["srtf", "fifo", "fair"]
        }
    return table


def test_fig6c_parallel_flows(once, report):
    table = once(run_all)
    rows = [
        [n, table[n]["srtf"], table[n]["fifo"], table[n]["fair"]] for n in COUNTS
    ]
    report(
        "fig6c_parallel_flows",
        render_table(
            ["parallel flows", "speedup vs SRTF", "vs FIFO", "vs FAIR"], rows,
            title="Fig. 6(c) — avg-FCT improvement vs number of parallel flows",
        ),
    )
    # FVDF outperforms the three baselines at every magnitude.
    for n in COUNTS:
        assert table[n]["srtf"] >= 1.0, n
        assert table[n]["fifo"] > 1.0, n
        assert table[n]["fair"] > 1.0, n
