"""Fig. 6(c) — average-FCT improvement vs number of parallel flows.

Paper: across three magnitudes of parallel-flow counts, FVDF always
outperforms SRTF, FIFO and FAIR.
"""

import pytest

from repro.analysis import ExperimentSetup, render_table, run_many
from repro.units import mbps
from workloads import parallel_batch

POLICIES = ["srtf", "fifo", "fair", "fvdf-flow"]
COUNTS = [30, 100, 300]
SETUP = ExperimentSetup(num_ports=12, bandwidth=mbps(200), slice_len=0.01)


def run_all():
    table = {}
    for n in COUNTS:
        workload = parallel_batch(seed=n, num_flows=n)
        results = run_many(POLICIES, workload, SETUP)
        ours = results["fvdf-flow"].avg_fct
        table[n] = {
            base: results[base].avg_fct / ours for base in ["srtf", "fifo", "fair"]
        }
    return table


def test_fig6c_parallel_flows(once, report):
    table = once(run_all)
    rows = [
        [n, table[n]["srtf"], table[n]["fifo"], table[n]["fair"]] for n in COUNTS
    ]
    report(
        "fig6c_parallel_flows",
        render_table(
            ["parallel flows", "speedup vs SRTF", "vs FIFO", "vs FAIR"], rows,
            title="Fig. 6(c) — avg-FCT improvement vs number of parallel flows",
        ),
    )
    # FVDF outperforms the three baselines at every magnitude.
    for n in COUNTS:
        assert table[n]["srtf"] >= 1.0, n
        assert table[n]["fifo"] > 1.0, n
        assert table[n]["fair"] > 1.0, n
