"""Fig. 6(a) — average-FCT improvement under trace percentiles.

Paper: over the full trace FVDF accelerates average FCT by up to 1.31x /
4.22x / 4.33x over SRTF / FIFO / FAIR; filtering out the smallest flows
("97%"/"95%" settings) shrinks the improvement over FIFO and FAIR because
those policies favour large flows.
"""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, render_table, run_many
from repro.core.metrics import avg_fct, filter_flows_by_size_percentile
from repro.units import mbps
from workloads import flow_trace

POLICIES = ["srtf", "fifo", "fair", "fvdf-flow"]
PERCENTILES = [1.0, 0.97, 0.95]
SETUP = ExperimentSetup(num_ports=12, bandwidth=mbps(200), slice_len=0.01)


def run_all():
    workload = flow_trace(seed=6)
    results = run_many(POLICIES, workload, SETUP)
    table = {}
    for keep in PERCENTILES:
        fct = {
            name: avg_fct(filter_flows_by_size_percentile(res.flow_results, keep))
            for name, res in results.items()
        }
        table[keep] = {
            base: fct[base] / fct["fvdf-flow"] for base in ["srtf", "fifo", "fair"]
        }
    return table


def test_fig6a_fct_percentiles(once, report):
    table = once(run_all)
    rows = [
        [f"{int(keep * 100)}% flows",
         table[keep]["srtf"], table[keep]["fifo"], table[keep]["fair"]]
        for keep in PERCENTILES
    ]
    report(
        "fig6a_fct_percentiles",
        render_table(
            ["trace", "speedup vs SRTF", "vs FIFO", "vs FAIR"], rows,
            title="Fig. 6(a) — avg-FCT improvement of FVDF per trace percentile",
        ),
    )
    full = table[1.0]
    # FVDF beats FIFO and FAIR clearly on the full trace.
    assert full["fifo"] > 1.5
    assert full["fair"] > 1.5
    # ...and is at worst comparable to SRTF while also compressing.
    assert full["srtf"] > 0.95
    # Eliminating small flows shrinks the improvement over FIFO (which
    # penalises small flows the hardest).  For max-min FAIR the effect is
    # weak in our traces — assert it stays within a few percent.
    assert table[0.95]["fifo"] < full["fifo"]
    assert table[0.95]["fair"] == pytest.approx(full["fair"], rel=0.08)
