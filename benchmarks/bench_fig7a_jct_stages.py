"""Fig. 7(a) — per-stage JCT improvement on the cluster ("real deployment").

Paper: Swallow reduces the shuffle-stage completion time by up to 1.90x
and the result stage by up to 2.12x; the overall JCT improvement averages
1.66x.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.cluster import ClusterConfig, ClusterSimulator, hibench_suite
from repro.schedulers import make_scheduler
from repro.units import gbps

NUM_JOBS = 12


def run_once(scheduler: str):
    cfg = ClusterConfig(num_nodes=16, bandwidth=gbps(1), slice_len=0.01)
    sim = ClusterSimulator(cfg, make_scheduler(scheduler))
    sim.submit_jobs(hibench_suite("large", np.random.default_rng(21), num_jobs=NUM_JOBS))
    return sim.run()


def run_all():
    return {"without": run_once("sebf"), "with": run_once("fvdf")}


def test_fig7a_jct_stages(once, report):
    out = once(run_all)
    base, swallow = out["without"], out["with"]
    sb, ss = base.stage_means(), swallow.stage_means()
    rows = [
        [st, sb[st], ss[st], sb[st] / ss[st] if ss[st] > 0 else float("nan")]
        for st in ("map", "shuffle", "reduce", "result")
    ]
    rows.append(["JCT", base.avg_jct, swallow.avg_jct,
                 base.avg_jct / swallow.avg_jct])
    report(
        "fig7a_jct_stages",
        render_table(
            ["stage", "without Swallow (s)", "with Swallow (s)", "speedup"],
            rows,
            title="Fig. 7(a) — per-stage improvements (large workload)",
        ),
    )
    # Shuffle and result stages improve markedly (paper: 1.90x / 2.12x).
    assert sb["shuffle"] / ss["shuffle"] > 1.3
    assert sb["result"] / ss["result"] > 1.3
    # Overall JCT improves (paper: 1.66x on average).
    assert base.avg_jct / swallow.avg_jct > 1.1
    # Map/reduce compute stages are not hurt by compression.
    assert ss["map"] <= sb["map"] * 1.05
    assert ss["reduce"] <= sb["reduce"] * 1.10
