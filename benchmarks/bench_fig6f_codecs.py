"""Fig. 6(f) — improvement over SEBF under different compression formats.

Paper: despite differing speed/ratio, FVDF exceeds SEBF with every codec
(LZ4, Snappy, LZF, LZO, Zstandard).
"""

import pytest

from repro.analysis import ExperimentSetup, render_table
from repro.runner import RunSpec, WorkloadSpec, run_specs
from repro.units import mbps
from workloads import coflow_trace

CODECS = ["lz4", "snappy", "lzf", "lzo", "zstd"]


def run_all():
    # One (codec × policy) fan-out through the sweep runner (see fig6e).
    workload = WorkloadSpec.inline(coflow_trace(seed=14))
    specs = [
        RunSpec(
            policy=p, workload=workload, key=f"{codec}/{p}",
            setup=ExperimentSetup(
                num_ports=16, bandwidth=mbps(100), slice_len=0.01, codec=codec
            ),
        )
        for codec in CODECS
        for p in ["sebf", "fvdf"]
    ]
    by_key = {out.key: out.summary for out in run_specs(specs)}
    return {
        codec: {
            "speedup": (
                by_key[f"{codec}/sebf"].avg_cct / by_key[f"{codec}/fvdf"].avg_cct
            ),
            "traffic_reduction": by_key[f"{codec}/fvdf"].traffic_reduction,
        }
        for codec in CODECS
    }


def test_fig6f_codecs(once, report):
    table = once(run_all)
    rows = [
        [codec, d["speedup"], f"{d['traffic_reduction'] * 100:.1f}%"]
        for codec, d in table.items()
    ]
    report(
        "fig6f_codecs",
        render_table(
            ["codec", "CCT speedup vs SEBF", "traffic reduction"], rows,
            title="Fig. 6(f) — FVDF vs SEBF under different compression formats",
        ),
    )
    # FVDF exceeds SEBF with every codec.
    for codec, d in table.items():
        assert d["speedup"] > 1.0, codec
        assert d["traffic_reduction"] > 0.1, codec
    # Stronger compression (zstd's lower ratio) saves more traffic than the
    # weakest-ratio codec (lz4).
    assert table["zstd"]["traffic_reduction"] > table["lz4"]["traffic_reduction"]
