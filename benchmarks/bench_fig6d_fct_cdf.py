"""Fig. 6(d) — CDF of flow completion time per algorithm.

Paper: SRTF leads FVDF slightly at the small-flow head (FVDF pays
time-slice waste), FVDF overtakes as flows grow thanks to compression, and
improves the completion time of *all* flows by up to 1.33x — a metric SRTF
does not improve at all over FIFO/FAIR.
"""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, render_table
from repro.core.metrics import cdf_at
from repro.runner import RunSpec, WorkloadSpec, run_specs
from repro.units import mbps
from workloads import flow_trace

POLICIES = ["srtf", "fifo", "fair", "fvdf-flow"]
SETUP = ExperimentSetup(num_ports=12, bandwidth=mbps(200), slice_len=0.01)


def run_all():
    # Per-flow FCT arrays ride back in the summaries (arrays=True), so the
    # CDF is computed without shipping full SimulationResults.
    workload = WorkloadSpec.inline(flow_trace(seed=6))
    specs = [
        RunSpec(policy=p, workload=workload, setup=SETUP, key=p, arrays=True)
        for p in POLICIES
    ]
    fcts = {out.key: np.asarray(out.summary.fct) for out in run_specs(specs)}
    points = np.quantile(fcts["fvdf-flow"], [0.25, 0.5, 0.75, 0.9, 1.0])
    cdf = {name: cdf_at(v, points) for name, v in fcts.items()}
    all_done = {name: float(v.max()) for name, v in fcts.items()}
    return points, cdf, all_done, fcts


def test_fig6d_fct_cdf(once, report, figure):
    points, cdf, all_done, fcts = once(run_all)
    from repro.analysis import cdf_chart

    figure("fig6d_fct_cdf", cdf_chart(
        {k: list(v) for k, v in fcts.items()},
        title="Fig. 6(d) — CDF of FCT", xlabel="FCT (s)",
    ))
    rows = [
        [f"{p:.2f}s"] + [float(cdf[name][i]) for name in POLICIES]
        for i, p in enumerate(points)
    ]
    text = render_table(
        ["FCT <="] + POLICIES, rows,
        title="Fig. 6(d) — CDF of FCT per algorithm",
    ) + "\n\n" + render_table(
        ["policy", "completion time of all flows (max FCT, s)"],
        [[name, all_done[name]] for name in POLICIES],
    )
    report("fig6d_fct_cdf", text)
    # FVDF improves the completion time of ALL flows over FIFO and FAIR...
    assert all_done["fvdf-flow"] < all_done["fifo"]
    assert all_done["fvdf-flow"] < all_done["fair"]
    # ...and over SRTF (which matches FIFO/FAIR on this metric — the
    # paper's point that pure reordering cannot shrink total work).
    assert all_done["fvdf-flow"] < all_done["srtf"]
    # The CDF tail: FVDF is at least as far along as SRTF at the 90th pct.
    assert cdf["fvdf-flow"][3] >= cdf["srtf"][3] - 0.05
