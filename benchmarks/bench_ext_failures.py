"""Extension — do Swallow's gains survive failures and stragglers?

The paper's testbed was healthy; production clusters are not.  This bench
re-runs the Fig. 7(a) comparison (SEBF vs FVDF on the large HiBench suite)
under increasing task failure/straggler rates.  Measured shape: traffic
savings are untouched by churn (~50% at every level) and FVDF never loses,
but the *JCT* speedup dilutes (1.14x -> ~1.05x) because retries stretch
the compute stages that compression cannot help — a deployment caveat the
paper's healthy testbed could not surface.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.cluster import ClusterConfig, ClusterSimulator, FailureModel, hibench_suite
from repro.schedulers import make_scheduler
from repro.units import gbps

CHURN = {
    "healthy": FailureModel(),
    "flaky": FailureModel(task_failure_prob=0.15, max_retries=10,
                          straggler_prob=0.1, straggler_slowdown=3.0),
    "hostile": FailureModel(task_failure_prob=0.3, max_retries=10,
                            straggler_prob=0.3, straggler_slowdown=4.0,
                            speculative=True),
}


def run_once(failures: FailureModel, scheduler: str):
    cfg = ClusterConfig(
        num_nodes=16, bandwidth=gbps(1), slice_len=0.01, failures=failures,
        seed=17,
    )
    sim = ClusterSimulator(cfg, make_scheduler(scheduler))
    sim.submit_jobs(hibench_suite("large", np.random.default_rng(17), num_jobs=12))
    return sim.run()


def run_all():
    table = {}
    for label, fm in CHURN.items():
        base = run_once(fm, "sebf")
        swallow = run_once(fm, "fvdf")
        table[label] = {
            "sebf_jct": base.avg_jct,
            "fvdf_jct": swallow.avg_jct,
            "speedup": base.avg_jct / swallow.avg_jct,
            "failed": base.failed_jobs + swallow.failed_jobs,
            "reduction": swallow.traffic_reduction,
        }
    return table


def test_ext_failures(once, report):
    table = once(run_all)
    rows = [
        [label, d["sebf_jct"], d["fvdf_jct"], d["speedup"],
         f"{d['reduction'] * 100:.1f}%", d["failed"]]
        for label, d in table.items()
    ]
    report(
        "ext_failures",
        render_table(
            ["cluster health", "SEBF JCT (s)", "FVDF JCT (s)", "speedup",
             "traffic saved", "failed jobs"],
            rows,
            title="Extension — Swallow under failures and stragglers",
        ),
    )
    # Churn hurts absolute JCT...
    assert table["flaky"]["sebf_jct"] > table["healthy"]["sebf_jct"]
    # ...Swallow never loses and traffic savings are churn-independent...
    for label, d in table.items():
        assert d["speedup"] > 1.0, label
        assert d["reduction"] > 0.40, label
    # ...but the JCT speedup dilutes as compute (not network) dominates.
    assert table["hostile"]["speedup"] < table["healthy"]["speedup"]