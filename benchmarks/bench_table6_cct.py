"""Table VI — absolute time consumption of the coflow schedulers.

Paper (at their trace/testbed): FVDF 79,913 ms avg CCT < SEBF 111,809 <
SCF/NCF/LCF 136,629 < PFF/FAIR 195,064 < PFP 225,296; job duration ordered
the same way.  Absolute numbers depend on the trace; the *ordering* is the
reproducible claim.
"""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, render_table
from repro.runner import RunSpec, WorkloadSpec, run_specs
from repro.units import mbps
from workloads import coflow_trace

GROUPS = [
    ("fvdf", ["fvdf"]),
    ("sebf", ["sebf"]),
    ("scf/ncf/lcf", ["scf", "ncf", "lcf"]),
    ("pff/fair", ["pff"]),
    ("pfp", ["pfp"]),
]
SETUP = ExperimentSetup(num_ports=16, bandwidth=mbps(100), slice_len=0.01)

PAPER_MS = {
    "fvdf": 79_913, "sebf": 111_809, "scf/ncf/lcf": 136_629,
    "pff/fair": 195_064, "pfp": 225_296,
}


def run_all():
    from repro.core.bounds import avg_cct_lower_bound
    from repro.fabric.bigswitch import BigSwitch

    coflows = coflow_trace(seed=14)
    workload = WorkloadSpec.inline(coflows)
    policies = [p for _, members in GROUPS for p in members]
    specs = [
        RunSpec(policy=p, workload=workload, setup=SETUP, key=p)
        for p in policies
    ]
    results = {out.key: out.summary for out in run_specs(specs)}
    bound = avg_cct_lower_bound(
        coflows, BigSwitch(SETUP.num_ports, SETUP.bandwidth)
    )
    table = {}
    for label, members in GROUPS:
        table[label] = {
            "avg_cct": float(np.mean([results[m].avg_cct for m in members])),
            "duration": float(np.mean([results[m].makespan for m in members])),
            "gap": float(np.mean([results[m].avg_cct for m in members])) / bound,
        }
    return table


def test_table6_cct(once, report):
    table = once(run_all)
    rows = [
        [label, d["avg_cct"] * 1e3, PAPER_MS[label], d["duration"] * 1e3,
         f"{d['gap']:.2f}x"]
        for label, d in table.items()
    ]
    report(
        "table6_cct",
        render_table(
            ["algorithm", "avg CCT (ms, ours)", "avg CCT (ms, paper)",
             "job duration (ms, ours)", "gap to isolation bound"],
            rows,
            title="Table VI — time consumption of different algorithms",
        ),
    )
    # No heuristic beats the provable lower bound.
    for label, d in table.items():
        assert d["gap"] >= 1.0 - 1e-9, label
    # The paper's ranking: FVDF best, then SEBF, then the simple coflow
    # orders, then coflow-agnostic fairness/PFP.
    assert table["fvdf"]["avg_cct"] < table["sebf"]["avg_cct"]
    assert table["sebf"]["avg_cct"] < table["pff/fair"]["avg_cct"]
    assert table["sebf"]["avg_cct"] <= table["scf/ncf/lcf"]["avg_cct"] * 1.05
    assert table["fvdf"]["avg_cct"] < table["pfp"]["avg_cct"]
