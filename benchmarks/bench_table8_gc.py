"""Table VIII — garbage-collection time per stage, with/without compression.

Paper: GC time in both map and reduce stages drops when coflow compression
is on (the "-c" rows), because compressed shuffle buffers allocate less;
the gap widens with workload scale (gigantic reduce: 1.6 min vs 19 min at
the 100% checkpoint).
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.cluster import ClusterConfig, ClusterSimulator, hibench_suite
from repro.schedulers import make_scheduler
from repro.units import gbps, seconds_to_human

SCALES = ["large", "huge", "gigantic"]


def run_scale(scale: str, scheduler: str):
    cfg = ClusterConfig(num_nodes=16, bandwidth=gbps(1), slice_len=0.01)
    sim = ClusterSimulator(cfg, make_scheduler(scheduler))
    sim.submit_jobs(hibench_suite(scale, np.random.default_rng(41), num_jobs=12))
    return sim.run()


def run_all():
    table = {}
    for scale in SCALES:
        comp = run_scale(scale, "fvdf").gc_summary()
        plain = run_scale(scale, "sebf").gc_summary()
        table[scale] = {"with": comp, "without": plain}
    return table


def test_table8_gc(once, report):
    table = once(run_all)
    rows = []
    for scale in SCALES:
        d = table[scale]
        rows.append([
            f"{scale}-c",
            seconds_to_human(d["with"]["map"]),
            seconds_to_human(d["with"]["reduce"]),
        ])
        rows.append([
            scale,
            seconds_to_human(d["without"]["map"]),
            seconds_to_human(d["without"]["reduce"]),
        ])
    report(
        "table8_gc",
        render_table(
            ["workload", "GC map", "GC reduce"], rows,
            title="Table VIII — garbage collection time (map/reduce)",
        ),
    )
    for scale in SCALES:
        d = table[scale]
        # Compression never increases GC time in either stage...
        assert d["with"]["map"] <= d["without"]["map"] * 1.001, scale
        assert d["with"]["reduce"] <= d["without"]["reduce"] * 1.001, scale
    # ...and the absolute reduce-side saving grows with workload scale
    # (the paper's gigantic rows show the dramatic gap).
    savings = [
        table[s]["without"]["reduce"] - table[s]["with"]["reduce"] for s in SCALES
    ]
    assert savings[2] > savings[1] > savings[0]
    # GC grows with scale at all (sanity of the model).
    assert (
        table["gigantic"]["without"]["reduce"] > table["large"]["without"]["reduce"]
    )
