"""Fig. 6(e) — CCT improvement over coflow schedulers vs link bandwidth.

Paper: FVDF outperforms SEBF by up to 1.62x on megabit Ethernet and 1.39x
on gigabit Ethernet; at 10 Gbps compression is disabled (Eq. 3 fails) and
FVDF converges to SEBF.  In poor network conditions improvements reach
1.85x over the weaker baselines.
"""

import pytest

from repro.analysis import ExperimentSetup, render_table, speedups_over
from repro.runner import RunSpec, WorkloadSpec, run_specs
from repro.units import gbps, mbps
from workloads import coflow_trace

POLICIES = ["sebf", "scf", "ncf", "lcf", "pff", "pfp", "fvdf"]
BANDWIDTHS = [("100 Mbps", mbps(100)), ("1 Gbps", gbps(1)), ("10 Gbps", gbps(10))]


def run_all():
    # The whole 21-cell grid goes through the sweep runner in one fan-out:
    # sequential by default, pooled under REPRO_PARALLEL, and re-runs hit
    # the content-addressed cache cell-by-cell.
    workload = WorkloadSpec.inline(coflow_trace(seed=14))
    specs = [
        RunSpec(
            policy=p, workload=workload, key=f"{label}/{p}",
            setup=ExperimentSetup(num_ports=16, bandwidth=bw, slice_len=0.01),
        )
        for label, bw in BANDWIDTHS
        for p in POLICIES
    ]
    by_key = {out.key: out.summary for out in run_specs(specs)}
    table = {}
    for label, _ in BANDWIDTHS:
        results = {p: by_key[f"{label}/{p}"] for p in POLICIES}
        table[label] = speedups_over(results, ours="fvdf", metric="avg_cct")
    return table


def test_fig6e_cct_bandwidth(once, report, figure):
    table = once(run_all)
    baselines = [p for p in POLICIES if p != "fvdf"]
    from repro.analysis import Series, line_chart

    bw_values = [bw for _, bw in BANDWIDTHS]
    figure("fig6e_cct_bandwidth", line_chart(
        [Series(f"vs {b}", bw_values,
                [table[label][b] for label, _ in BANDWIDTHS])
         for b in baselines],
        title="Fig. 6(e) — CCT speedup of FVDF vs bandwidth",
        xlabel="bandwidth (B/s)", ylabel="speedup", logx=True,
    ))
    rows = [[label] + [table[label][b] for b in baselines]
            for label, _ in BANDWIDTHS]
    report(
        "fig6e_cct_bandwidth",
        render_table(
            ["bandwidth"] + [f"vs {b}" for b in baselines], rows,
            title="Fig. 6(e) — CCT speedup of FVDF vs bandwidth",
        ),
    )
    # Thin pipe: compression pays; FVDF beats SEBF substantially.
    assert table["100 Mbps"]["sebf"] > 1.15
    # Gains shrink as bandwidth grows...
    assert table["100 Mbps"]["sebf"] >= table["10 Gbps"]["sebf"] - 0.05
    # ...and at 10 Gbps compression is off, so FVDF ~ SEBF.
    assert table["10 Gbps"]["sebf"] == pytest.approx(1.0, abs=0.15)
    # FVDF never loses badly to any baseline at any bandwidth.
    for label, _ in BANDWIDTHS:
        for b in baselines:
            assert table[label][b] > 0.9, (label, b)
