"""Streaming-service benchmark — the tracked ``BENCH_stream.json``.

Streams a ≥1M-flow synthetic arrival process through the long-lived
service driver (:mod:`repro.service`): tick-by-tick admission under a
bounded in-flight window, incremental drain of retired coflows, and
aggregate-only accounting.  :mod:`repro.analysis.streambench` measures
the two service claims — steady-state throughput (flows retired per
wall-second over the back half of the stream) and bounded memory (peak
engine rows as a fraction of the stream, RSS growth between the 25% mark
and the end) — and appends them to the ``BENCH_stream.json`` trajectory
at the repo root.

Run directly (appends an entry and prints the summary)::

    PYTHONPATH=src python benchmarks/bench_stream_scale.py [--label tag]

or via the CLI wrapper / make target::

    python -m repro serve --bench --check
    make bench-stream

``--smoke`` streams a seconds-scale case of the same shape (used by CI):
it still spans many ticks and exercises backpressure and drains, but its
throughput says nothing about the tracked floors, so nothing is appended.
"""

import argparse
import json
import sys

import pytest

from repro.analysis import streambench


@pytest.mark.slow
def test_stream_smoke_bounded_and_complete():
    """The smoke stream retires every flow with backlog-bounded memory."""
    case = streambench.SMOKE_CASE
    entry = streambench.bench_entry(repeats=1, label="pytest-guard", case=case)
    streambench.check_entry(entry, case=case)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--label", default="")
    parser.add_argument(
        "--out", default=None,
        help="trajectory file (default: BENCH_stream.json at repo root)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale CI case: verify bounded memory and "
             "completeness, do not append to the trajectory file",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="record the entry without asserting the floors",
    )
    args = parser.parse_args(argv)

    case = streambench.SMOKE_CASE if args.smoke else streambench.CASE
    entry = streambench.bench_entry(
        repeats=args.repeats, label=args.label, case=case
    )
    print(json.dumps(entry, indent=2))
    if not args.smoke:
        path = args.out or streambench.default_stream_path()
        streambench.append_entry(path, entry, schema=streambench.SCHEMA)
        print(f"appended to {path}")
    if not args.no_check:
        streambench.check_entry(entry, case=case)
    return 0


if __name__ == "__main__":
    sys.exit(main())
