"""Sweep-runner scaling benchmark — the tracked ``BENCH_sweep.json`` grid.

Times the fig6e-shaped (policy × bandwidth × seed) sweep grid from
:mod:`repro.analysis.sweepbench` three ways — sequential in-process,
parallel over the 4-worker process pool with a cold result cache, and
again over the warm cache — appends the timings to ``BENCH_sweep.json``
at the repo root, and asserts the suite-level speedup floor plus exact
(bit-identical) agreement between all three paths.

Run directly (appends an entry and prints the summary)::

    PYTHONPATH=src python benchmarks/bench_sweep_scale.py [--label tag]

or via the CLI wrapper / make target::

    python -m repro sweep --bench --check
    make bench-sweep

Under pytest the grid is marked ``slow``.  On hosts with fewer than 4
usable cores the pool cannot beat sequential on CPU-bound work, so the
tracked figure falls back to the warm-cache re-run (see the module
docstring of :mod:`repro.analysis.sweepbench`); the bit-identity
assertion holds everywhere.
"""

import argparse
import json
import sys

import pytest

from repro.analysis import sweepbench


@pytest.mark.slow
def test_sweep_runner_speedup_grid():
    """Runner ≥ MIN_SPEEDUP× the sequential loop; results bit-identical."""
    entry = sweepbench.bench_entry(label="pytest-guard")
    sweepbench.check_entry(entry)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=sweepbench.BENCH_WORKERS)
    parser.add_argument("--label", default="")
    parser.add_argument(
        "--out", default=None,
        help="trajectory file (default: BENCH_sweep.json at repo root)",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="record the entry without asserting the speedup floor",
    )
    args = parser.parse_args(argv)

    entry = sweepbench.bench_entry(workers=args.workers, label=args.label)
    path = args.out or sweepbench.default_sweep_path()
    sweepbench.append_entry(path, entry)
    print(json.dumps(entry, indent=2))
    print(f"appended to {path}")
    if not args.no_check:
        sweepbench.check_entry(entry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
