"""Fig. 4 — the motivating example: avg FCT/CCT of six policies.

Paper values: PFF 4.6/5.5, WSS 5.2/6, FIFO 4.4/5.5, PFP 3.8/5.5,
SEBF 4/4.5, FVDF 2.8/3.25 (time units).  Baselines must match exactly.
"""

import pytest

from repro.analysis import render_table
from repro.scenarios import FIG4_PAPER_NUMBERS, run_motivating_example
from repro.schedulers import make_scheduler

POLICIES = ["pff", "wss", "fifo", "pfp", "sebf", "fvdf"]


def run_all():
    return {name: run_motivating_example(make_scheduler(name)) for name in POLICIES}


def test_fig4_motivating_example(once, report):
    results = once(run_all)
    rows = []
    for name in POLICIES:
        res = results[name]
        p_fct, p_cct = FIG4_PAPER_NUMBERS[name]
        rows.append([name, res.avg_fct, p_fct, res.avg_cct, p_cct])
    report(
        "fig4_motivating_example",
        render_table(
            ["policy", "avg FCT", "paper FCT", "avg CCT", "paper CCT"],
            rows,
            title="Fig. 4 — motivating example (time units)",
        ),
    )
    # Exact reproduction for the closed-form baselines.
    for name in ["pff", "wss", "fifo", "pfp", "sebf"]:
        p_fct, p_cct = FIG4_PAPER_NUMBERS[name]
        assert results[name].avg_fct == pytest.approx(p_fct, abs=1e-9)
        assert results[name].avg_cct == pytest.approx(p_cct, abs=1e-9)
    # FVDF: the paper's qualitative claim and its approximate numbers.
    assert results["fvdf"].avg_cct < results["sebf"].avg_cct
    assert results["fvdf"].avg_fct < results["sebf"].avg_fct
    assert results["fvdf"].avg_cct == pytest.approx(3.25, rel=0.2)
