"""Extension — per-bin CCT breakdown (the Varys/Aalo presentation).

The coflow literature reports improvements per Short/Long × Narrow/Wide
bin because mice and elephants benefit differently.  Expected shape for
FVDF vs SEBF: the long bins (where compression has volume to chew on)
improve the most; no bin regresses badly.
"""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, render_table, run_many
from repro.traces.classify import ClassifierConfig, bin_counts, speedup_by_bin
from repro.traces.distributions import LogNormalSizes
from repro.traces.generator import WorkloadConfig, generate_workload
from repro.units import KB, MB, mbps

SETUP = ExperimentSetup(num_ports=16, bandwidth=mbps(100), slice_len=0.01)
#: thresholds scaled to our trace (median flow 8 MB)
CLS = ClassifierConfig(length_threshold=8 * MB, width_threshold=4)


def workload():
    cfg = WorkloadConfig(
        num_coflows=60,
        num_ports=16,
        size_dist=LogNormalSizes(median=8 * MB, sigma=1.3, lo=64 * KB, hi=256 * MB),
        width=(1, 10),
        arrival_rate=2.0,
    )
    return generate_workload(cfg, np.random.default_rng(23))


def run_all():
    coflows = workload()
    results = run_many(["sebf", "fvdf"], coflows, SETUP)
    counts = bin_counts(coflows, CLS)
    speedups = speedup_by_bin(
        results["sebf"].coflow_results, results["fvdf"].coflow_results, CLS
    )
    return counts, speedups


def test_ext_bins(once, report):
    counts, speedups = once(run_all)
    rows = [
        [b, counts.get(b, 0), speedups.get(b, float("nan"))]
        for b in ("SN", "LN", "SW", "LW")
    ]
    report(
        "ext_bins",
        render_table(
            ["bin", "coflows", "FVDF speedup vs SEBF"],
            rows,
            title="Extension — CCT speedup per coflow bin (S/L x N/W)",
        ),
    )
    # Every populated bin has coverage and no bin regresses badly.
    populated = [b for b, n in counts.items() if n > 0]
    assert len(populated) >= 3
    for b in populated:
        if b in speedups:
            assert speedups[b] > 0.8, b
    # The long-and-wide elephants gain the most from compression.
    if "LW" in speedups and "SN" in speedups:
        assert speedups["LW"] >= speedups["SN"] * 0.8