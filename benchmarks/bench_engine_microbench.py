"""Micro-benchmarks — engine and allocation-primitive throughput.

True pytest-benchmark usage (multiple rounds): how fast the simulator
retires flows and how the water-filling/greedy primitives scale.  These
guard against performance regressions in the hot paths the HPC guides
call out (vectorised volume integration, progressive filling), and
against the observability hooks costing anything while disabled.
"""

import time

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, run_policy
from repro.core import rate_allocation as ra
from repro.obs import Observability
from repro.traces.distributions import LogNormalSizes
from repro.traces.generator import WorkloadConfig, generate_workload
from repro.units import MB, mbps

N_FLOWS = 2000
N_PORTS = 64


@pytest.fixture(scope="module")
def flowset():
    rng = np.random.default_rng(0)
    src = rng.integers(0, N_PORTS, N_FLOWS)
    dst = rng.integers(0, N_PORTS, N_FLOWS)
    caps = np.full(N_PORTS, 100.0)
    return src, dst, caps


def test_maxmin_fair_speed(benchmark, flowset):
    src, dst, caps = flowset
    rates = benchmark(lambda: ra.maxmin_fair(src, dst, caps.copy(), caps.copy()))
    assert rates.sum() > 0


def test_greedy_priority_speed(benchmark, flowset):
    src, dst, caps = flowset
    order = np.arange(N_FLOWS)
    rates = benchmark(
        lambda: ra.greedy_priority(order, src, dst, caps.copy(), caps.copy())
    )
    assert rates.sum() > 0


def test_madd_speed(benchmark, flowset):
    src, dst, caps = flowset
    vol = np.linspace(1.0, 50.0, N_FLOWS)
    groups = [np.arange(i, N_FLOWS, 20) for i in range(20)]
    rates = benchmark(
        lambda: ra.madd(groups, src, dst, vol, caps.copy(), caps.copy())
    )
    assert rates.sum() > 0


def test_simulator_throughput(benchmark):
    """End-to-end: 200 coflows / ~600 flows through SEBF."""
    cfg = WorkloadConfig(
        num_coflows=200,
        num_ports=32,
        size_dist=LogNormalSizes(median=4 * MB, sigma=1.0, lo=256 * 1024, hi=64 * MB),
        width=(1, 5),
        arrival_rate=10.0,
    )
    workload = generate_workload(cfg, np.random.default_rng(3))
    setup = ExperimentSetup(num_ports=32, bandwidth=mbps(200), slice_len=0.01)
    res = benchmark.pedantic(
        lambda: run_policy("sebf", workload, setup), rounds=1, iterations=1
    )
    assert len(res.coflow_results) == 200


def test_disabled_tracing_overhead_under_5pct():
    """The NULL_OBS hook sites must stay within noise of the seed engine.

    Best-of-N timing of the same FVDF workload with (a) the default
    NULL_OBS bundle and (b) an explicitly disabled bundle vs the enabled
    one, asserting the disabled path costs < 5 % extra.  Best-of-N makes
    the comparison robust to scheduler jitter in CI containers.
    """
    cfg = WorkloadConfig(
        num_coflows=60,
        num_ports=16,
        size_dist=LogNormalSizes(median=4 * MB, sigma=1.0, lo=256 * 1024, hi=64 * MB),
        width=(1, 4),
        arrival_rate=10.0,
    )
    workload = generate_workload(cfg, np.random.default_rng(7))
    setup = ExperimentSetup(num_ports=16, bandwidth=mbps(200), slice_len=0.01)

    def best_of(n, fn):
        best = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    # warm-up (JIT-free, but primes allocators and caches)
    run_policy("fvdf", workload, setup)
    baseline = best_of(5, lambda: run_policy("fvdf", workload, setup))
    disabled = best_of(
        5,
        lambda: run_policy(
            "fvdf", workload, setup,
            obs=Observability(trace=False, metrics=False, profile=False),
        ),
    )
    overhead = disabled / baseline - 1.0
    assert overhead < 0.05, (
        f"disabled-observability run is {overhead:.1%} slower than the "
        f"default NULL_OBS path ({disabled:.4f}s vs {baseline:.4f}s)"
    )


def test_recorder_overhead_under_15pct():
    """A flight recorder must ride the batched path nearly for free.

    Same best-of-N discipline as the disabled-tracing guard: the FVDF
    workload with a :class:`~repro.obs.recorder.FlightRecorder` attached
    (``record=True``, no tracer) must stay within 15 % of the untraced
    columnar run — the recorder exists so full-fidelity capture does not
    reintroduce the per-record Python path.
    """
    cfg = WorkloadConfig(
        num_coflows=60,
        num_ports=16,
        size_dist=LogNormalSizes(median=4 * MB, sigma=1.0, lo=256 * 1024, hi=64 * MB),
        width=(1, 4),
        arrival_rate=10.0,
    )
    workload = generate_workload(cfg, np.random.default_rng(7))
    setup = ExperimentSetup(num_ports=16, bandwidth=mbps(200), slice_len=0.01)

    def best_of(n, fn):
        best = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    run_policy("fvdf", workload, setup)  # warm-up
    baseline = best_of(5, lambda: run_policy("fvdf", workload, setup))
    recorded = best_of(
        5,
        lambda: run_policy(
            "fvdf", workload, setup,
            obs=Observability(trace=False, metrics=False, record=True),
        ),
    )
    overhead = recorded / baseline - 1.0
    assert overhead < 0.15, (
        f"recorder-attached run is {overhead:.1%} slower than the "
        f"untraced columnar path ({recorded:.4f}s vs {baseline:.4f}s)"
    )


def test_arena_cuts_decision_allocations():
    """The scratch arenas must actually remove hot-path allocations.

    tracemalloc A/B over the same heavily contended ``priority_fill``:
    the traced window covers only the fills themselves (numpy internals
    and the arena's own buffers are warmed *outside* it), so the peak
    traced bytes of the disabled arm are dominated by the per-round
    scratch the arena exists to eliminate.  Three assertions:

    * the disabled arm really exercises the guarded path (an
      allocation-count floor, counted by the null arena itself);
    * a warmed arena performs **zero** scratch (re)allocations inside
      the window (``grows`` frozen);
    * the arena arm's traced peak is well below the plain arm's.
    """
    import tracemalloc

    from repro.core import kernels
    from repro.core.kernels import arena

    rng = np.random.default_rng(5)
    n = 600
    src = rng.integers(0, 8, size=n)
    dst = rng.integers(0, 8, size=n)
    perm = rng.permutation(n).astype(np.intp)
    # Dimension templates and gathers are built *outside* the traced
    # window (the ``gathers=`` fast path), so the window isolates what
    # the arena owns: the per-round backfill scratch.  Only the tiny
    # 8-element caps copies repeat per fill.
    template = ra.build_dims(src, dst, np.full(8, 3.0), np.full(8, 2.5), None)
    gathers = ra.gather_groups(perm, template)

    def fill_once():
        dims = [(g, c.copy()) for g, c in template]
        with kernels.use_kernel("python"):
            return ra.priority_fill(perm, dims, n=n, gathers=gathers)

    def traced_peak(repeats=3):
        tracemalloc.start()
        try:
            for _ in range(repeats):
                fill_once()
            return tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    old_tail = ra._SCALAR_TAIL
    ra._SCALAR_TAIL = 0  # keep every round on the vectorized arena path
    try:
        arena.set_enabled(False)
        fill_once()  # warm numpy's internal caches
        null_grows = arena._NULL.grows
        plain_peak = traced_peak()
        plain_allocs = arena._NULL.grows - null_grows
        # Floor: the guarded path must be hot enough to mean anything.
        assert plain_allocs >= 100, (
            f"contended fill only made {plain_allocs} scratch allocations "
            "— the allocation guard is no longer measuring the hot path"
        )

        arena.set_enabled(True)
        fill_once()  # warm the arena buffers outside the traced window
        ar = arena.local_arena()
        grows_before = ar.grows
        arena_peak = traced_peak()
        # The allocation-count cut itself: the plain arm made >= 100
        # scratch allocations in the window; the warmed arena made zero.
        assert ar.grows == grows_before, (
            "a warmed arena re-allocated scratch inside the traced window"
        )
        assert arena_peak < 0.85 * plain_peak, (
            f"arena run peaked at {arena_peak}B vs {plain_peak}B plain — "
            "the arena no longer cuts per-decision allocations"
        )
    finally:
        arena.set_enabled(None)
        ra._SCALAR_TAIL = old_tail


def test_columnar_ingest_cuts_submit_share():
    """Block-columnar ingest must hold its lead over the per-flow path.

    A bigtrace-style case — ~20k coflows / ~40k flows submitted in one
    batch, then a short bounded run — against the pinned pre-columnar
    engine (:class:`~repro.core.reference.PreColumnarSliceSimulator`,
    kept verbatim for exactly this purpose).  Two guards:

    * **wall time** — ``submit_many``'s share of (submit + run window)
      must be at least halved versus the pre-columnar engine (best-of-N
      so container jitter cannot flake it);
    * **tracemalloc** — the columnar submit's traced allocation peak must
      stay well below the object path's (no per-coflow record objects,
      heap entries or per-flow scalar conversions on the ingest path).
    """
    import tracemalloc

    from repro.core.reference import PreColumnarSliceSimulator
    from repro.fabric.bigswitch import BigSwitch
    from repro.schedulers import make_scheduler
    from repro.traces.distributions import ConstantSize
    from repro.units import KB

    cfg = WorkloadConfig(
        num_coflows=20_000,
        num_ports=16,
        size_dist=ConstantSize(200 * KB),
        width=(1, 4),
        arrival_rate=20_000.0,
    )
    workload = generate_workload(cfg, np.random.default_rng(3))

    def make(kind):
        from repro.analysis import ExperimentSetup

        setup = ExperimentSetup(
            num_ports=16, bandwidth=mbps(500), slice_len=0.01
        )
        if kind == "old":
            return PreColumnarSliceSimulator(
                BigSwitch(16, mbps(500)), make_scheduler("sebf"),
                slice_len=0.01,
            )
        return setup.build_simulator(make_scheduler("sebf"))

    def one(kind):
        sim = make(kind)
        t0 = time.perf_counter()
        sim.submit_many(list(workload))
        t1 = time.perf_counter()
        sim.run(until=0.1)
        t2 = time.perf_counter()
        return t1 - t0, t2 - t1

    one("new")  # warm numpy / allocator caches
    one("old")
    best = {}
    for kind in ("old", "new"):
        s_best = r_best = float("inf")
        for _ in range(3):
            s, r = one(kind)
            s_best, r_best = min(s_best, s), min(r_best, r)
        best[kind] = (s_best, r_best)
    share = {k: s / (s + r) for k, (s, r) in best.items()}
    # Floor: the case must actually be ingest-heavy on the old engine,
    # or the share comparison stops measuring the ingest path at all.
    assert share["old"] > 0.2, (
        f"pre-columnar submit share is only {share['old']:.1%} — the "
        "bigtrace case no longer stresses ingest"
    )
    assert share["new"] <= 0.5 * share["old"], (
        f"columnar ingest submit share {share['new']:.1%} is not a 2x cut "
        f"of the pre-columnar {share['old']:.1%} "
        f"(submit {best['new'][0]:.4f}s vs {best['old'][0]:.4f}s)"
    )

    def traced_submit_peak(kind):
        sim = make(kind)
        tracemalloc.start()
        try:
            sim.submit_many(list(workload))
            return tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    old_peak = traced_submit_peak("old")
    new_peak = traced_submit_peak("new")
    assert new_peak < 0.85 * old_peak, (
        f"columnar submit peaked at {new_peak}B vs {old_peak}B on the "
        "object path — block ingest no longer cuts ingest allocations"
    )


def test_telemetry_plane_overhead_under_5pct():
    """The live telemetry plane must cost the streaming loop ~nothing.

    Same best-of-N discipline as the disabled-tracing guard, but over
    the streaming service: an identical bounded stream driven with (a)
    no plane and (b) a :class:`~repro.obs.exposition.TelemetryPlane`
    attached *and serving HTTP* on an ephemeral port.  The plane's whole
    design is once-per-tick instrument updates plus snapshot-on-read —
    the admission loop itself takes no locks and does nothing per flow —
    so the enabled arm must stay within 5 % of the plane-off arm.  Also
    asserts the other half of the contract: a plane-off driver registers
    zero ``stream.*`` instruments at all.
    """
    from repro.obs.exposition import TelemetryPlane
    from repro.schedulers import make_scheduler
    from repro.service import SourceSpec, StreamDriver
    from repro.traces.distributions import ConstantSize
    from repro.units import KB

    spec = SourceSpec(
        rate=500.0, num_ports=8, width=(1, 3),
        size_dist=ConstantSize(200 * KB), seed=9, limit=5_000,
    )
    setup = ExperimentSetup(num_ports=8, bandwidth=mbps(500), slice_len=0.05)

    def one(with_plane):
        sim = setup.build_simulator(make_scheduler("fvdf-flow"))
        driver = StreamDriver(
            sim, spec.build(), tick=0.5, max_in_flight=2_000,
            setup=setup, source_spec=spec,
        )
        plane = None
        if with_plane:
            plane = TelemetryPlane(driver)
            plane.start(0)
        try:
            # Time the streaming loop only: stop() deliberately sits
            # outside the window (it blocks on the server's poll loop,
            # which is shutdown latency, not per-tick overhead).
            t0 = time.perf_counter()
            driver.run()
            wall = time.perf_counter() - t0
        finally:
            if plane is not None:
                plane.stop()
        return wall, driver

    one(False)  # warm-up
    # Interleave the arms so clock drift / container jitter lands on
    # both equally, then compare best-of-N.
    baseline = enabled = float("inf")
    plain_driver = None
    for _ in range(4):
        wall, plain_driver = one(False)
        baseline = min(baseline, wall)
        wall, _ = one(True)
        enabled = min(enabled, wall)
    # Plane off: no stream.* instrument may ever have been created.
    assert not any(
        n.startswith("stream.")
        for n in plain_driver.sim.obs.metrics.names()
    ), "a plane-off driver registered stream.* instruments"
    overhead = enabled / baseline - 1.0
    assert overhead < 0.05, (
        f"telemetry-plane run is {overhead:.1%} slower than the plane-off "
        f"stream ({enabled:.4f}s vs {baseline:.4f}s)"
    )


def test_incremental_view_overhead_under_5pct():
    """Incremental view maintenance must never cost more than regrouping.

    The simulator keeps the per-decision ``SchedulerView`` incrementally
    (dirty flags + in-place volume updates) instead of regrouping active
    flows from scratch at every decision point.  On a small workload —
    where a from-scratch regroup is cheapest and the incremental
    bookkeeping is pure overhead — the incremental path must stay within
    5 % of the ``force_regroup`` path.  (At scale it is strictly faster;
    ``benchmarks/bench_hotpath_scale.py`` tracks that side.)
    """
    cfg = WorkloadConfig(
        num_coflows=60,
        num_ports=16,
        size_dist=LogNormalSizes(median=4 * MB, sigma=1.0, lo=256 * 1024, hi=64 * MB),
        width=(1, 4),
        arrival_rate=10.0,
    )
    workload = generate_workload(cfg, np.random.default_rng(7))
    setup = ExperimentSetup(num_ports=16, bandwidth=mbps(200), slice_len=0.01)
    obs = Observability(trace=False, metrics=False, profile=False)

    def run(force_regroup):
        from repro.schedulers import make_scheduler

        sim = setup.build_simulator(make_scheduler("fvdf"), obs=obs)
        sim.force_regroup = force_regroup
        sim.submit_many(list(workload))
        return sim.run()

    def best_of(n, fn):
        best = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    run(False)  # warm-up
    regroup = best_of(5, lambda: run(True))
    incremental = best_of(5, lambda: run(False))
    overhead = incremental / regroup - 1.0
    assert overhead < 0.05, (
        f"incremental view path is {overhead:.1%} slower than per-decision "
        f"regroup ({incremental:.4f}s vs {regroup:.4f}s)"
    )