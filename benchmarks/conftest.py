"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment once (via ``benchmark.pedantic(..., rounds=1)`` — these are
simulations, not microbenchmarks), prints the paper-style report, saves it
under ``benchmarks/reports/`` and asserts the paper's qualitative claims
(who wins, by roughly what factor, where crossovers fall).
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture
def report():
    """Save a report under benchmarks/reports/<name>.txt and echo it."""

    def _save(name: str, text: str) -> None:
        REPORTS_DIR.mkdir(exist_ok=True)
        path = REPORTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture
def figure():
    """Save an SVG figure under benchmarks/reports/<name>.svg."""

    def _save(name: str, svg: str) -> None:
        REPORTS_DIR.mkdir(exist_ok=True)
        path = REPORTS_DIR / f"{name}.svg"
        path.write_text(svg)
        print(f"[figure saved to {path}]")

    return _save


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
