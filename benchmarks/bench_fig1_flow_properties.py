"""Fig. 1 — flow properties: CDFs of flow count and traffic bytes by size.

Paper observations: 89.49% of flows are smaller than 10 GB (most scattered
in [10 MB, 10 GB]); more than 93.03% of traffic bytes come from flows
larger than 10 GB.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.traces.distributions import byte_share_above, fig1_distribution
from repro.units import GB, MB, TB

N_SAMPLES = 200_000
DECADES = [10 * MB, 100 * MB, GB, 10 * GB, 100 * GB, TB]


def run():
    rng = np.random.default_rng(1)
    sizes = fig1_distribution().sample(rng, N_SAMPLES)
    total = sizes.sum()
    rows = []
    for d in DECADES:
        count_cdf = float((sizes < d).mean())
        bytes_cdf = float(sizes[sizes < d].sum() / total)
        rows.append([f"{d / GB:g} GB", count_cdf, bytes_cdf])
    return sizes, rows


def test_fig1_flow_properties(once, report):
    sizes, rows = once(run)
    report(
        "fig1_flow_properties",
        render_table(
            ["size <", "CDF of flow count (a)", "CDF of traffic bytes (b)"],
            rows,
            title="Fig. 1 — flow properties (heavy-tailed sizes)",
        ),
    )
    # (a) 89.49% of flows below 10 GB.
    assert (sizes < 10 * GB).mean() == pytest.approx(0.8949, abs=0.02)
    # (b) >93% of bytes from flows above 10 GB.
    assert byte_share_above(sizes, 10 * GB) > 0.90
    # Most flows scattered in [10 MB, 10 GB].
    assert ((sizes >= 10 * MB) & (sizes <= 10 * GB)).mean() > 0.85
