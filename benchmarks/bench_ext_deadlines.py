"""Extension — deadline guarantees: EDF with vs without admission control.

Varys' deadline mode (which Swallow inherits the machinery for but never
evaluates): admit a coflow only if its minimum finishing rates fit the
residual fabric, then hold exactly those rates.  Under overload, admission
control should keep the *admitted* coflows' deadline-met fraction near 1,
while EDF-without-admission lets everyone slip; FVDF/SEBF (deadline-blind)
provide the context.
"""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, render_table, run_policy
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.schedulers import DeadlineEDF, deadline_stats, make_scheduler
from repro.traces.distributions import LogNormalSizes
from repro.units import KB, MB, mbps

NUM_PORTS = 8
SETUP = ExperimentSetup(num_ports=NUM_PORTS, bandwidth=mbps(100), slice_len=0.01)


def deadline_workload(seed=5, n=40, tightness=1.3, mean_gap=0.25):
    """Genuinely overloaded deadline workload: tight deadlines (1.3x each
    coflow's solo bottleneck time) and fast arrivals, so not everyone can
    make it and admission has real decisions to take."""
    rng = np.random.default_rng(seed)
    sizes = LogNormalSizes(median=8 * MB, sigma=1.0, lo=512 * KB, hi=64 * MB)
    coflows = []
    t = 0.0
    for k in range(n):
        width = int(rng.integers(1, 4))
        flows = [
            Flow(int(rng.integers(0, NUM_PORTS)), int(rng.integers(0, NUM_PORTS)),
                 float(s))
            for s in sizes.sample(rng, width)
        ]
        c = Coflow(flows, arrival=t, label=f"d{k}")
        # deadline = tightness x the coflow's solo bottleneck time
        solo = c.bottleneck_load(
            np.full(NUM_PORTS, SETUP.bandwidth), np.full(NUM_PORTS, SETUP.bandwidth)
        )
        coflows.append(
            Coflow(flows=[Flow(f.src, f.dst, f.size) for f in flows],
                   arrival=t, label=f"d{k}", deadline=solo * tightness)
        )
        t += float(rng.exponential(mean_gap))
    return coflows


def run_all():
    out = {}
    for name in ["edf-deadline", "edf-noadmission", "sebf", "fvdf"]:
        res = run_policy(name, deadline_workload(), SETUP)
        stats = deadline_stats(res.coflow_results)
        out[name] = {
            "met_fraction": stats["met_fraction"],
            "avg_cct": res.avg_cct,
        }
    # Admitted-only success rate for the admission policy.
    sched = DeadlineEDF()
    res = run_policy(sched, deadline_workload(), SETUP)
    admitted = [
        c for c in res.coflow_results if sched.was_admitted(c.coflow_id)
    ]
    out["edf-deadline"]["admitted"] = len(admitted)
    out["edf-deadline"]["admitted_met"] = (
        sum(1 for c in admitted if c.met_deadline) / len(admitted)
        if admitted else 1.0
    )
    return out


def test_ext_deadlines(once, report):
    out = once(run_all)
    rows = [
        [name, f"{d['met_fraction'] * 100:.1f}%", d["avg_cct"]]
        for name, d in out.items()
    ]
    text = render_table(
        ["policy", "deadlines met (all)", "avg CCT (s)"], rows,
        title="Extension — deadline-aware scheduling under overload",
    )
    text += (
        f"\n\nadmission policy: {out['edf-deadline']['admitted']} admitted, "
        f"{out['edf-deadline']['admitted_met'] * 100:.1f}% of admitted met "
        "their deadline"
    )
    report("ext_deadlines", text)
    # The headline guarantee: every admitted coflow meets its deadline.
    assert out["edf-deadline"]["admitted_met"] >= 0.99
    # Admission control beats unconditional EDF on overall met fraction:
    # unguarded EDF lets everyone slip under overload.
    assert out["edf-deadline"]["met_fraction"] > out["edf-noadmission"]["met_fraction"]
    # Observation worth reporting: deadline-*blind* FVDF meets more
    # deadlines overall than conservative admission here — compression
    # simply finishes coflows early.  (Guarantees vs. throughput tradeoff:
    # only admission gives the 100%-of-admitted property.)
    assert out["fvdf"]["met_fraction"] >= out["sebf"]["met_fraction"] - 0.05