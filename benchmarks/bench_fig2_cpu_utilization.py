"""Fig. 2 — CPU utilisation: idle periods grow as bandwidth shrinks.

Paper observations: at 10 Gbps more than 30.77% of CPU time is idle; at
100 Mbps the wasted share grows past 69.23%, because jobs shift from
CPU-bound to I/O-bound and cores wait on the network.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.cluster import ClusterConfig, ClusterSimulator, hibench_suite
from repro.schedulers import make_scheduler
from repro.units import gbps, mbps

BANDWIDTHS = {"10 Gbps": gbps(10), "100 Mbps": mbps(100)}


def run_once(bandwidth: float):
    cfg = ClusterConfig(
        num_nodes=8, bandwidth=bandwidth, slice_len=0.01, sample_cpu=True
    )
    # No compression: Fig. 2 motivates it, so it is not yet in play.
    sim = ClusterSimulator(cfg, make_scheduler("sebf"))
    sim.submit_jobs(
        hibench_suite("large", np.random.default_rng(3), num_jobs=8)
    )
    res = sim.run()
    rec = res.cpu_recorder
    return {
        "idle_fraction": rec.idle_time_fraction(threshold=0.05),
        "mean_utilization": rec.mean_utilization(),
        "samples": len(rec),
        "idle_periods_node0": len(rec.idle_periods(0)),
    }


def run_all():
    return {label: run_once(bw) for label, bw in BANDWIDTHS.items()}


def test_fig2_cpu_utilization(once, report):
    out = once(run_all)
    rows = [
        [label, d["idle_fraction"], d["mean_utilization"], d["idle_periods_node0"]]
        for label, d in out.items()
    ]
    report(
        "fig2_cpu_utilization",
        render_table(
            ["bandwidth", "idle time fraction", "mean utilization",
             "idle periods (node 0)"],
            rows,
            title="Fig. 2 — CPU idle periods vs network bandwidth",
        ),
    )
    # Idle CPU time grows markedly as the network thins (the paper's point).
    assert out["100 Mbps"]["idle_fraction"] > out["10 Gbps"]["idle_fraction"]
    # Substantial idle share exists even at 10 Gbps (paper: >30%).
    assert out["10 Gbps"]["idle_fraction"] > 0.2
    # At 100 Mbps most CPU time is idle (paper: >69%).
    assert out["100 Mbps"]["idle_fraction"] > 0.5
